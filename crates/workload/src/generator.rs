//! The traffic generator: population + catalog → a chronological stream
//! of client queries.
//!
//! Each client is a small state machine (connect → announce shares → ask
//! about files); a binary heap merges all clients into one time-ordered
//! event stream, so memory stays O(clients) no matter how many messages
//! the campaign produces. The stream contains only *client queries* — the
//! directory server (etw-server) produces the answers, exactly as in the
//! measured system where the capture saw both directions.

use crate::catalog::Catalog;
use crate::clients::{ClientProfile, Population};
use etw_edonkey::ids::{ClientId, FileId};
use etw_edonkey::messages::{FileEntry, Message};
use etw_edonkey::search::{NumCmp, SearchExpr};
use etw_edonkey::tags::{special, Tag, TagList, TagName};
use etw_netsim::clock::VirtualTime;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

/// Generator tuning parameters.
#[derive(Clone, Debug)]
pub struct GeneratorParams {
    /// Virtual campaign duration in seconds (the paper: ten weeks).
    pub duration_secs: u64,
    /// Probability that an ask is preceded by a metadata search (the
    /// rest go straight to a source query, e.g. resumed downloads).
    pub p_search_first: f64,
    /// Probability that a search carries a file-size constraint.
    pub p_size_constraint: f64,
    /// Probability of a management query at connect time.
    pub p_management: f64,
    /// Files per OfferFiles announcement message.
    pub announce_chunk: usize,
    /// Probability that an announcement uses an oversized chunk (these
    /// are the datagrams that exceed the MTU and exercise IP
    /// fragmentation, rare as in the paper).
    pub p_large_chunk: f64,
    /// Weight client arrival times by a diurnal profile (evening peak,
    /// early-morning trough) instead of uniformly. Off by default so the
    /// calibrated figures stay seed-stable; turn on for load-realism
    /// studies (the Fig. 2 rate model carries its own diurnal term).
    pub diurnal: bool,
}

impl Default for GeneratorParams {
    fn default() -> Self {
        GeneratorParams {
            duration_secs: 7 * 86_400, // one virtual week by default
            p_search_first: 0.8,
            p_size_constraint: 0.15,
            p_management: 0.5,
            announce_chunk: 12,
            p_large_chunk: 0.003,
            diurnal: false,
        }
    }
}

/// One client query with its envelope.
#[derive(Clone, Debug)]
pub struct QueryEvent {
    /// Virtual emission time.
    pub t: VirtualTime,
    /// Sender.
    pub client: ClientId,
    /// Sender UDP port.
    pub port: u16,
    /// The query.
    pub msg: Message,
}

#[derive(Clone, Debug)]
enum Phase {
    Connect,
    Announce { offset: u32 },
    AnnounceForged { offset: u32 },
    Ask { done: u32 },
    GetSourcesFor { file_idx: u32, done: u32 },
    Done,
}

struct ClientState {
    phase: Phase,
    asked: HashSet<u32>,
    /// Files this client shares (catalog indices, deduplicated).
    shared: Vec<u32>,
}

/// Time-ordered query stream over the whole campaign.
pub struct TrafficGenerator<'a> {
    catalog: &'a Catalog,
    profiles: &'a [ClientProfile],
    states: Vec<ClientState>,
    heap: BinaryHeap<Reverse<(u64, u32)>>,
    params: GeneratorParams,
    rng: StdRng,
    emitted: u64,
}

impl<'a> TrafficGenerator<'a> {
    /// Builds the generator; deterministic in `seed`.
    pub fn new(
        catalog: &'a Catalog,
        population: &'a Population,
        params: GeneratorParams,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6765_6e65); // "gene"
        let profiles = population.clients();
        let mut heap = BinaryHeap::with_capacity(profiles.len());
        let mut states = Vec::with_capacity(profiles.len());
        for (i, p) in profiles.iter().enumerate() {
            // Pick this client's share set once: repeated Zipf draws give
            // popular files many providers (Fig. 4) while the *distinct*
            // count per client follows the class profile (Fig. 6).
            let mut shared = HashSet::with_capacity(p.n_shared as usize);
            let mut attempts = 0u32;
            while (shared.len() as u32) < p.n_shared && attempts < p.n_shared * 8 {
                shared.insert(catalog.sample_provided(&mut rng) as u32);
                attempts += 1;
            }
            // Sort: HashSet iteration order is nondeterministic and the
            // announce order must not leak it into the message stream.
            let mut shared: Vec<u32> = shared.into_iter().collect();
            shared.sort_unstable();
            // Arrival spread over the first 90% of the campaign,
            // optionally weighted by the diurnal profile.
            let horizon_us = (params.duration_secs * 900_000).max(1);
            let start_us = if params.diurnal {
                sample_diurnal_arrival(horizon_us, &mut rng)
            } else {
                rng.gen_range(0..horizon_us)
            };
            states.push(ClientState {
                phase: Phase::Connect,
                asked: HashSet::new(),
                shared,
            });
            heap.push(Reverse((start_us, i as u32)));
        }
        TrafficGenerator {
            catalog,
            profiles,
            states,
            heap,
            params,
            rng,
            emitted: 0,
        }
    }

    /// Queries emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    fn exp_gap_us(&mut self, mean_secs: f64) -> u64 {
        let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        ((-u.ln() * mean_secs).min(86_400.0 * 7.0) * 1e6) as u64
    }

    fn schedule(&mut self, idx: u32, at_us: u64) {
        if at_us < self.params.duration_secs * 1_000_000 {
            self.heap.push(Reverse((at_us, idx)));
        } else {
            // Campaign over before this client finished: activity is
            // truncated, as at the real capture's end.
            self.states[idx as usize].phase = Phase::Done;
        }
    }

    fn file_entry(&self, file_idx: u32, client: &ClientProfile) -> FileEntry {
        let f = self.catalog.file(file_idx as usize);
        FileEntry {
            file_id: f.id,
            client_id: client.id,
            port: client.port,
            tags: TagList(vec![
                Tag::str(special::FILENAME, f.name.clone()),
                Tag::u32(special::FILESIZE, f.size),
                Tag::str(special::FILETYPE, f.kind.tag_value()),
            ]),
        }
    }

    fn forged_entry(&mut self, client_idx: u32, seq: u32, client: &ClientProfile) -> FileEntry {
        // Pollution decoys advertise *popular* content names (that is the
        // point of pollution) under forged IDs with constant prefixes —
        // the phenomenon behind the paper's Fig. 3.
        let decoy_idx = self.catalog.sample_sought(&mut self.rng);
        let decoy = self.catalog.file(decoy_idx);
        let prefix = if client.id.raw().is_multiple_of(2) {
            [0x00, 0x00] // bucket 0 under first-two-bytes indexing
        } else {
            [0x00, 0x01] // bucket 256
        };
        let counter = ((client_idx as u64) << 32) | seq as u64;
        FileEntry {
            file_id: FileId::forged(counter, prefix),
            client_id: client.id,
            port: client.port,
            tags: TagList(vec![
                Tag::str(special::FILENAME, decoy.name.clone()),
                // Decoys copy the real file's metadata wholesale (that is
                // what makes pollution effective), so forged entries do
                // not distort the Fig. 8 size histogram's shape.
                Tag::u32(special::FILESIZE, decoy.size),
                Tag::str(special::FILETYPE, decoy.kind.tag_value()),
            ]),
        }
    }

    fn search_expr(&mut self, file_idx: u32) -> SearchExpr {
        let f = self.catalog.file(file_idx as usize);
        let kws = &f.keywords;
        let n = kws.len().min(1 + self.rng.gen_range(0..3));
        let mut expr = SearchExpr::keyword(kws[0].clone());
        for kw in kws.iter().take(n).skip(1) {
            expr = SearchExpr::and(expr, SearchExpr::keyword(kw.clone()));
        }
        if self.rng.gen_bool(self.params.p_size_constraint) {
            let half = f.size / 2;
            expr = SearchExpr::and(
                expr,
                SearchExpr::MetaNum {
                    name: TagName::Special(special::FILESIZE),
                    cmp: NumCmp::Min,
                    value: half,
                },
            );
        }
        expr
    }

    /// Picks the next distinct file for a client to ask about. The
    /// distinctness matters: the paper's Fig. 7 counts *distinct* files
    /// per client, and the 52-cap spike must stay exact.
    fn pick_ask(&mut self, idx: u32) -> u32 {
        for _ in 0..4 {
            let f = self.catalog.sample_sought(&mut self.rng) as u32;
            if !self.states[idx as usize].asked.contains(&f) {
                self.states[idx as usize].asked.insert(f);
                return f;
            }
        }
        if self.states[idx as usize].asked.len() >= self.catalog.len() {
            // A scanner has asked about the entire catalog; repeats are
            // the only option left.
            return self.catalog.sample_sought(&mut self.rng) as u32;
        }
        // Popular head is crowded; uniform draws terminate quickly.
        loop {
            let f = self.rng.gen_range(0..self.catalog.len()) as u32;
            if self.states[idx as usize].asked.insert(f) {
                return f;
            }
        }
    }

    fn chunk_size(&mut self) -> usize {
        if self.rng.gen_bool(self.params.p_large_chunk) {
            self.params.announce_chunk * 4
        } else {
            self.params.announce_chunk
        }
    }

    /// Advances client `idx` one step; returns the query to emit now, if
    /// any, and schedules the follow-up.
    fn step(&mut self, idx: u32, now_us: u64) -> Option<QueryEvent> {
        let profile = &self.profiles[idx as usize];
        let client = profile.id;
        let port = profile.port;
        let t = VirtualTime(now_us);
        let phase = self.states[idx as usize].phase.clone();
        match phase {
            Phase::Connect => {
                self.states[idx as usize].phase = if !self.states[idx as usize].shared.is_empty() {
                    Phase::Announce { offset: 0 }
                } else if profile.n_forged > 0 {
                    Phase::AnnounceForged { offset: 0 }
                } else {
                    Phase::Ask { done: 0 }
                };
                let gap = self.exp_gap_us(2.0);
                self.schedule(idx, now_us + gap);
                if self.rng.gen_bool(self.params.p_management) {
                    let msg = if self.rng.gen_bool(0.6) {
                        Message::StatusRequest {
                            challenge: self.rng.gen(),
                        }
                    } else if self.rng.gen_bool(0.5) {
                        Message::GetServerList
                    } else {
                        Message::ServerDescRequest
                    };
                    Some(QueryEvent {
                        t,
                        client,
                        port,
                        msg,
                    })
                } else {
                    None
                }
            }
            Phase::Announce { offset } => {
                let chunk = self.chunk_size();
                let shared = &self.states[idx as usize].shared;
                let end = (offset as usize + chunk).min(shared.len());
                let files: Vec<FileEntry> = shared[offset as usize..end]
                    .to_vec()
                    .iter()
                    .map(|&f| self.file_entry(f, profile))
                    .collect();
                self.states[idx as usize].phase = if end < self.states[idx as usize].shared.len() {
                    Phase::Announce { offset: end as u32 }
                } else if profile.n_forged > 0 {
                    Phase::AnnounceForged { offset: 0 }
                } else {
                    Phase::Ask { done: 0 }
                };
                let gap = self.exp_gap_us(3.0);
                self.schedule(idx, now_us + gap);
                Some(QueryEvent {
                    t,
                    client,
                    port,
                    msg: Message::OfferFiles { files },
                })
            }
            Phase::AnnounceForged { offset } => {
                let chunk = self.chunk_size() as u32;
                let end = (offset + chunk).min(profile.n_forged);
                let files: Vec<FileEntry> = (offset..end)
                    .map(|seq| self.forged_entry(idx, seq, profile))
                    .collect();
                self.states[idx as usize].phase = if end < profile.n_forged {
                    Phase::AnnounceForged { offset: end }
                } else {
                    Phase::Ask { done: 0 }
                };
                let gap = self.exp_gap_us(3.0);
                self.schedule(idx, now_us + gap);
                Some(QueryEvent {
                    t,
                    client,
                    port,
                    msg: Message::OfferFiles { files },
                })
            }
            Phase::Ask { done } => {
                if done >= profile.n_asks {
                    self.states[idx as usize].phase = Phase::Done;
                    return None;
                }
                let file_idx = self.pick_ask(idx);
                if self.rng.gen_bool(self.params.p_search_first) {
                    // Search now; GetSources follows in a few seconds.
                    self.states[idx as usize].phase = Phase::GetSourcesFor { file_idx, done };
                    let gap = self.exp_gap_us(4.0);
                    self.schedule(idx, now_us + gap.max(500_000));
                    let expr = self.search_expr(file_idx);
                    Some(QueryEvent {
                        t,
                        client,
                        port,
                        msg: Message::SearchRequest { expr },
                    })
                } else {
                    self.states[idx as usize].phase = Phase::Ask { done: done + 1 };
                    let gap = self.ask_gap(idx, now_us, done + 1);
                    self.schedule(idx, now_us + gap);
                    let file_id = self.catalog.file(file_idx as usize).id;
                    Some(QueryEvent {
                        t,
                        client,
                        port,
                        msg: Message::GetSources {
                            file_ids: vec![file_id],
                        },
                    })
                }
            }
            Phase::GetSourcesFor { file_idx, done } => {
                self.states[idx as usize].phase = Phase::Ask { done: done + 1 };
                let gap = self.ask_gap(idx, now_us, done + 1);
                self.schedule(idx, now_us + gap);
                let file_id = self.catalog.file(file_idx as usize).id;
                Some(QueryEvent {
                    t,
                    client,
                    port,
                    msg: Message::GetSources {
                        file_ids: vec![file_id],
                    },
                })
            }
            Phase::Done => None,
        }
    }

    /// Mean gap sized so the client's remaining asks roughly fill the
    /// remaining campaign time (heavy clients stay active throughout).
    /// Pacing targets a soft deadline at 97% of the campaign so the last
    /// ask (and its search→sources follow-up) lands inside the horizon;
    /// only genuinely late arrivals get truncated, as at a real capture's
    /// end.
    fn ask_gap(&mut self, idx: u32, now_us: u64, done: u32) -> u64 {
        let remaining_asks = self.profiles[idx as usize].n_asks.saturating_sub(done) + 1;
        let soft_end = self.params.duration_secs * 1_000_000 / 100 * 97;
        let remaining_secs = soft_end.saturating_sub(now_us) as f64 / 1e6;
        let mean = (remaining_secs / remaining_asks as f64).clamp(1.0, 3_600.0);
        self.exp_gap_us(mean)
    }
}

/// Rejection-samples an arrival time whose density follows the daily
/// activity cycle: peak in the evening, trough in the early morning
/// (same shape as the Fig. 2 rate model's diurnal term).
fn sample_diurnal_arrival<R: Rng + ?Sized>(horizon_us: u64, rng: &mut R) -> u64 {
    use std::f64::consts::TAU;
    loop {
        let t = rng.gen_range(0..horizon_us);
        let day_phase = (t as f64 / 1e6) / 86_400.0;
        let density = 1.0 + 0.6 * (TAU * (day_phase - 0.33)).sin();
        if rng.gen_range(0.0..1.6) < density {
            return t;
        }
    }
}

impl<'a> Iterator for TrafficGenerator<'a> {
    type Item = QueryEvent;

    fn next(&mut self) -> Option<QueryEvent> {
        while let Some(Reverse((now_us, idx))) = self.heap.pop() {
            if let Some(ev) = self.step(idx, now_us) {
                self.emitted += 1;
                return Some(ev);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::CatalogParams;
    use crate::clients::{ClientClass, PopulationParams};

    fn setup(n_clients: usize, n_files: usize) -> (Catalog, Population) {
        let catalog = Catalog::generate(
            &CatalogParams {
                n_files,
                ..CatalogParams::default()
            },
            1,
        );
        let pop = Population::generate(
            &PopulationParams {
                n_clients,
                id_space_bits: 20,
                ..PopulationParams::default()
            },
            2,
        );
        (catalog, pop)
    }

    fn default_events(n_clients: usize) -> Vec<QueryEvent> {
        let (catalog, pop) = setup(n_clients, 3000);
        let params = GeneratorParams {
            duration_secs: 3_600,
            ..GeneratorParams::default()
        };
        TrafficGenerator::new(&catalog, &pop, params, 3).collect()
    }

    #[test]
    fn stream_is_time_ordered() {
        let events = default_events(300);
        assert!(events.len() > 500, "only {} events", events.len());
        for w in events.windows(2) {
            assert!(w[0].t <= w[1].t);
        }
        let horizon = VirtualTime::from_secs(3_600);
        assert!(events.iter().all(|e| e.t < horizon));
    }

    #[test]
    fn deterministic_given_seed() {
        let (catalog, pop) = setup(100, 1000);
        let run = || -> Vec<(u64, u32)> {
            TrafficGenerator::new(&catalog, &pop, GeneratorParams::default(), 9)
                .take(2000)
                .map(|e| (e.t.0, e.client.raw()))
                .collect()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn all_queries_are_client_to_server() {
        for e in default_events(200) {
            assert!(e.msg.is_client_to_server(), "{:?}", e.msg);
        }
    }

    #[test]
    fn announcements_cover_shared_files() {
        let (catalog, pop) = setup(150, 2000);
        let params = GeneratorParams {
            duration_secs: 86_400,
            ..GeneratorParams::default()
        };
        let events: Vec<_> = TrafficGenerator::new(&catalog, &pop, params, 5).collect();
        // Per client: distinct announced legit files == profile.n_shared
        // (unless truncated by campaign end; a day is plenty here).
        use std::collections::{HashMap, HashSet};
        let mut announced: HashMap<u32, HashSet<FileId>> = HashMap::new();
        for e in &events {
            if let Message::OfferFiles { files } = &e.msg {
                let set = announced.entry(e.client.raw()).or_default();
                for f in files {
                    set.insert(f.file_id);
                }
            }
        }
        let legit: HashSet<FileId> = catalog.files().iter().map(|f| f.id).collect();
        let mut checked = 0;
        for p in pop.clients() {
            if p.n_shared > 0 {
                if let Some(set) = announced.get(&p.id.raw()) {
                    let legit_count = set.iter().filter(|id| legit.contains(id)).count();
                    // Zipf dedup may give slightly fewer distinct files
                    // than requested for very large shares.
                    assert!(
                        legit_count as u32 <= p.n_shared,
                        "client shared more than profiled"
                    );
                    if p.n_shared <= 100 {
                        assert!(
                            legit_count as u32 >= p.n_shared.min(1),
                            "client announced nothing"
                        );
                    }
                    checked += 1;
                }
            }
        }
        assert!(checked > 50, "too few announcing clients checked");
    }

    #[test]
    fn capped_clients_ask_exactly_52_distinct_files() {
        let (catalog, pop) = setup(400, 3000);
        let params = GeneratorParams {
            duration_secs: 86_400,
            ..GeneratorParams::default()
        };
        let events: Vec<_> = TrafficGenerator::new(&catalog, &pop, params, 7).collect();
        use std::collections::{HashMap, HashSet};
        let mut asked: HashMap<u32, HashSet<FileId>> = HashMap::new();
        for e in &events {
            if let Message::GetSources { file_ids } = &e.msg {
                asked
                    .entry(e.client.raw())
                    .or_default()
                    .extend(file_ids.iter().copied());
            }
        }
        let mut at_52 = 0;
        let mut total = 0;
        for p in pop.of_class(ClientClass::CappedSearcher) {
            if let Some(set) = asked.get(&p.id.raw()) {
                // Campaign-end truncation can clip the very last ask of a
                // late-arriving client; never more than the cap though.
                assert!(set.len() <= 52, "capped client asked {} files", set.len());
                total += 1;
                if set.len() == 52 {
                    at_52 += 1;
                }
            }
        }
        assert!(total > 20, "only {total} capped clients seen");
        assert!(
            at_52 as f64 > 0.8 * total as f64,
            "spike too smeared: {at_52}/{total} at exactly 52"
        );
    }

    #[test]
    fn polluters_announce_forged_prefixes() {
        let (catalog, pop) = setup(600, 2000);
        let params = GeneratorParams {
            duration_secs: 86_400,
            ..GeneratorParams::default()
        };
        let events: Vec<_> = TrafficGenerator::new(&catalog, &pop, params, 8).collect();
        let mut forged = 0u64;
        for e in &events {
            if let Message::OfferFiles { files } = &e.msg {
                for f in files {
                    let b = f.file_id.as_bytes();
                    if b[0] == 0 && (b[1] == 0 || b[1] == 1) {
                        forged += 1;
                    }
                }
            }
        }
        assert!(forged > 500, "only {forged} forged announcements");
    }

    #[test]
    fn searches_use_catalog_keywords() {
        let (catalog, pop) = setup(200, 1000);
        let events: Vec<_> = TrafficGenerator::new(
            &catalog,
            &pop,
            GeneratorParams {
                duration_secs: 3_600,
                ..GeneratorParams::default()
            },
            4,
        )
        .collect();
        let vocab: std::collections::HashSet<&str> = catalog
            .files()
            .iter()
            .flat_map(|f| f.keywords.iter().map(String::as_str))
            .collect();
        let mut searches = 0;
        for e in &events {
            if let Message::SearchRequest { expr } = &e.msg {
                searches += 1;
                for kw in expr.keywords() {
                    assert!(vocab.contains(kw), "keyword {kw} not from catalog");
                }
            }
        }
        assert!(searches > 100, "only {searches} searches");
    }

    #[test]
    fn diurnal_arrivals_follow_the_cycle() {
        let (catalog, pop) = setup(600, 1000);
        let params = GeneratorParams {
            duration_secs: 86_400, // one full day
            diurnal: true,
            ..GeneratorParams::default()
        };
        // Collect connect-phase times per 6h quadrant via first event of
        // each client.
        use std::collections::HashMap;
        let mut first_seen: HashMap<u32, u64> = HashMap::new();
        for ev in TrafficGenerator::new(&catalog, &pop, params, 6) {
            first_seen.entry(ev.client.raw()).or_insert(ev.t.0);
        }
        let mut quadrants = [0u32; 4];
        for &t in first_seen.values() {
            quadrants[(t / 21_600_000_000).min(3) as usize] += 1;
        }
        // The evening quadrant (hours 12-18, containing the 0.33-phase
        // peak shifted) must outnumber the trough quadrant.
        let max = *quadrants.iter().max().unwrap();
        let min = *quadrants.iter().min().unwrap();
        assert!(
            max as f64 > 1.5 * min as f64,
            "no diurnal contrast: {quadrants:?}"
        );
    }

    #[test]
    fn emitted_counter_matches() {
        let (catalog, pop) = setup(50, 500);
        let mut g = TrafficGenerator::new(
            &catalog,
            &pop,
            GeneratorParams {
                duration_secs: 600,
                ..GeneratorParams::default()
            },
            4,
        );
        let mut n = 0;
        while g.next().is_some() {
            n += 1;
        }
        assert_eq!(g.emitted(), n);
    }
}
