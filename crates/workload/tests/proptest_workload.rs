//! Property tests for the synthetic population and traffic generator:
//! the invariants every campaign run relies on.

use etw_edonkey::messages::Message;
use etw_workload::catalog::{Catalog, CatalogParams};
use etw_workload::clients::{ClientClass, Population, PopulationParams};
use etw_workload::generator::{GeneratorParams, TrafficGenerator};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

fn small_catalog(n_files: usize, seed: u64) -> Catalog {
    Catalog::generate(
        &CatalogParams {
            n_files,
            ..CatalogParams::default()
        },
        seed,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The event stream is time-ordered and bounded by the campaign
    /// duration, for any population size and duration.
    #[test]
    fn stream_ordered_and_bounded(
        n_clients in 5usize..120,
        duration in 300u64..4_000,
        seed in 0u64..1_000,
    ) {
        let catalog = small_catalog(500, seed);
        let pop = Population::generate(
            &PopulationParams {
                n_clients,
                id_space_bits: 18,
                scanner_max_asks: 300,
                heavy_max_shared: 100,
                ..PopulationParams::default()
            },
            seed ^ 1,
        );
        let params = GeneratorParams {
            duration_secs: duration,
            ..GeneratorParams::default()
        };
        let mut last = 0u64;
        let mut n = 0u64;
        for ev in TrafficGenerator::new(&catalog, &pop, params, seed ^ 2) {
            prop_assert!(ev.t.0 >= last, "time went backwards");
            prop_assert!(ev.t.as_secs() < duration);
            prop_assert!(ev.msg.is_client_to_server());
            last = ev.t.0;
            n += 1;
        }
        prop_assert!(n > 0);
    }

    /// Every event's sender is a population member, and per-client
    /// announced distinct files never exceed the profile.
    #[test]
    fn senders_and_share_bounds(seed in 0u64..500) {
        let catalog = small_catalog(800, seed);
        let pop = Population::generate(
            &PopulationParams {
                n_clients: 80,
                id_space_bits: 18,
                scanner_max_asks: 200,
                heavy_max_shared: 150,
                ..PopulationParams::default()
            },
            seed ^ 3,
        );
        let members: HashMap<u32, u32> = pop
            .clients()
            .iter()
            .map(|c| (c.id.raw(), c.n_shared + c.n_forged))
            .collect();
        let params = GeneratorParams {
            duration_secs: 2_000,
            ..GeneratorParams::default()
        };
        let mut announced: HashMap<u32, HashSet<etw_edonkey::FileId>> = HashMap::new();
        for ev in TrafficGenerator::new(&catalog, &pop, params, seed ^ 4) {
            prop_assert!(members.contains_key(&ev.client.raw()), "unknown sender");
            if let Message::OfferFiles { files } = &ev.msg {
                let set = announced.entry(ev.client.raw()).or_default();
                for f in files {
                    set.insert(f.file_id);
                }
            }
        }
        for (client, set) in &announced {
            let budget = members[client];
            prop_assert!(
                set.len() as u32 <= budget,
                "client {client} announced {} > budget {budget}",
                set.len()
            );
        }
    }

    /// Catalog popularity sampling always returns valid indices and the
    /// most popular rank dominates.
    #[test]
    fn catalog_sampling_valid(n_files in 10usize..3_000, seed in 0u64..500) {
        let catalog = small_catalog(n_files, seed);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        use rand::SeedableRng;
        for _ in 0..500 {
            let p = catalog.sample_provided(&mut rng);
            let s = catalog.sample_sought(&mut rng);
            prop_assert!(p < n_files);
            prop_assert!(s < n_files);
        }
    }

    /// Population class counts roughly follow the mix (chi-square-free
    /// sanity: each configured-nonzero class appears given enough
    /// clients).
    #[test]
    fn population_mix_represented(seed in 0u64..200) {
        let pop = Population::generate(
            &PopulationParams {
                n_clients: 3_000,
                id_space_bits: 20,
                ..PopulationParams::default()
            },
            seed,
        );
        for class in ClientClass::ALL {
            prop_assert!(
                pop.of_class(class).next().is_some(),
                "class {class:?} absent at n=3000"
            );
        }
        // Casual is the majority class.
        let casual = pop.of_class(ClientClass::Casual).count();
        prop_assert!(casual * 2 > pop.len());
    }
}
