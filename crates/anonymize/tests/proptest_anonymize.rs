//! Property-based tests for the anonymisation structures: all
//! implementations must agree with a reference oracle, values must be a
//! dense 0..N prefix, and the scheme must be deterministic and
//! repetition-consistent.

use etw_anonymize::clientid::{
    BTreeAnonymizer, ClientIdAnonymizer, DirectArrayAnonymizer, HashMapAnonymizer,
};
use etw_anonymize::fields::anonymize_filesize;
use etw_anonymize::fileid::{
    BucketedArrays, ByteSelector, FileIdAnonymizer, HashMapFileAnonymizer, SingleSortedArray,
};
use etw_anonymize::scheme::PaperScheme;
use etw_edonkey::ids::{ClientId, FileId};
use etw_edonkey::messages::Message;
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    /// Differential test: every clientID encoder computes the identical
    /// order-of-appearance function.
    #[test]
    fn clientid_encoders_agree(stream in prop::collection::vec(0u32..(1 << 14), 1..500)) {
        let mut reference: HashMap<u32, u32> = HashMap::new();
        let mut direct = DirectArrayAnonymizer::new(14);
        let mut hash = HashMapAnonymizer::new();
        let mut btree = BTreeAnonymizer::new();
        for &raw in &stream {
            let n = reference.len() as u32;
            let want = *reference.entry(raw).or_insert(n);
            let id = ClientId(raw);
            prop_assert_eq!(direct.anonymize(id), want);
            prop_assert_eq!(hash.anonymize(id), want);
            prop_assert_eq!(btree.anonymize(id), want);
        }
        prop_assert_eq!(direct.distinct() as usize, reference.len());
    }

    /// Differential test for the fileID encoders, under both byte
    /// selectors and with pollution mixed in.
    #[test]
    fn fileid_encoders_agree(
        identities in prop::collection::vec(0u64..300, 1..400),
        forged in prop::collection::vec(0u64..100, 0..100),
    ) {
        let mut stream: Vec<FileId> = identities.iter().map(|&i| FileId::of_identity(i)).collect();
        stream.extend(forged.iter().map(|&c| FileId::forged(c, [0x00, 0x00])));
        let mut reference: HashMap<FileId, u64> = HashMap::new();
        let mut first = BucketedArrays::new(ByteSelector::FIRST_TWO);
        let mut alt = BucketedArrays::new(ByteSelector::ALTERNATIVE);
        let mut single = SingleSortedArray::new();
        let mut hash = HashMapFileAnonymizer::new();
        for id in &stream {
            let n = reference.len() as u64;
            let want = *reference.entry(*id).or_insert(n);
            prop_assert_eq!(first.anonymize(id), want);
            prop_assert_eq!(alt.anonymize(id), want);
            prop_assert_eq!(single.anonymize(id), want);
            prop_assert_eq!(hash.anonymize(id), want);
        }
        // Bucket sizes always sum to the number of distinct IDs.
        prop_assert_eq!(
            first.bucket_sizes().iter().sum::<usize>() as u64,
            first.distinct()
        );
        prop_assert_eq!(
            alt.bucket_sizes().iter().sum::<usize>() as u64,
            alt.distinct()
        );
    }

    /// Anonymised values form a dense prefix 0..N-1 — the property the
    /// paper highlights as making "further use of the dataset much
    /// easier".
    #[test]
    fn values_form_dense_prefix(stream in prop::collection::vec(0u32..2048, 1..300)) {
        let mut a = DirectArrayAnonymizer::new(11);
        let mut seen = std::collections::HashSet::new();
        for &raw in &stream {
            seen.insert(a.anonymize(ClientId(raw)));
        }
        let n = a.distinct();
        prop_assert_eq!(seen.len() as u32, n);
        for v in 0..n {
            prop_assert!(seen.contains(&v), "hole at {}", v);
        }
    }

    /// Filesize anonymisation is monotone and bounded by 1 KB resolution.
    #[test]
    fn filesize_kb_properties(a in any::<u64>(), b in any::<u64>()) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(anonymize_filesize(lo) <= anonymize_filesize(hi));
        prop_assert!(lo / 1024 == anonymize_filesize(lo));
    }

    /// Scheme determinism: anonymising the same stream twice with fresh
    /// schemes yields identical records.
    #[test]
    fn scheme_deterministic(
        peers in prop::collection::vec(0u32..(1 << 12), 1..60),
        ids in prop::collection::vec(0u64..50, 1..60),
    ) {
        let msgs: Vec<(ClientId, Message)> = peers
            .iter()
            .zip(ids.iter())
            .map(|(&p, &i)| {
                (
                    ClientId(p),
                    Message::GetSources {
                        file_ids: vec![FileId::of_identity(i)],
                    },
                )
            })
            .collect();
        let run = || {
            let mut s = PaperScheme::paper(12);
            msgs.iter()
                .enumerate()
                .map(|(k, (p, m))| s.anonymize(k as u64, *p, m))
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }
}
