//! # etw-anonymize — real-time anonymisation of eDonkey traffic
//!
//! Implements §2.4 of *"Ten weeks in the life of an eDonkey server"*: the
//! anonymisation layer that must run in real time between the decoder and
//! the XML store, and whose data structures are the paper's main
//! engineering contribution.
//!
//! * [`md5`] — MD5 from scratch (RFC 1321), used for strings;
//! * [`clientid`] — order-of-appearance clientID encoding via the paper's
//!   direct-index array, plus the "classical" baselines it outperforms;
//! * [`fileid`] — order-of-appearance fileID encoding via 65 536 bucketed
//!   sorted arrays with a selectable byte pair — including the pollution
//!   pathology of Fig. 3 — plus baselines;
//! * [`fields`] — file sizes to kilo-bytes, strings to MD5, timestamps
//!   relative;
//! * [`scheme`] — the whole-record anonymiser producing dataset records;
//! * [`shard`] — the anonymiser sharded along the clientID/fileID split
//!   (striped provisionals + sequential remap), byte-identical to the
//!   serial scheme for any shard count.
//!
//! ## Example
//!
//! ```
//! use etw_anonymize::scheme::{AnonMessage, PaperScheme};
//! use etw_edonkey::{ClientId, FileId, Message};
//!
//! let mut scheme = PaperScheme::paper(16); // 16-bit clientID space
//! let msg = Message::GetSources { file_ids: vec![FileId([7; 16])] };
//! let record = scheme.anonymize(1_000, ClientId(4321), &msg);
//! assert_eq!(record.peer, 0);               // first client seen → 0
//! match record.msg {
//!     AnonMessage::GetSources { files } => assert_eq!(files, vec![0]),
//!     _ => unreachable!(),
//! }
//! ```

#![warn(missing_docs)]

pub mod clientid;
pub mod fields;
pub mod fileid;
pub mod md5;
pub mod scheme;
pub mod shard;

pub use clientid::{BTreeAnonymizer, ClientIdAnonymizer, DirectArrayAnonymizer, HashMapAnonymizer};
pub use fields::{anonymize_filesize, anonymize_string, StringAnonymizer};
pub use fileid::{
    BucketedArrays, ByteSelector, FileIdAnonymizer, HashMapFileAnonymizer, SingleSortedArray,
    NUM_BUCKETS,
};
pub use scheme::{AnonMessage, AnonRecord, AnonymizationScheme, PaperScheme};
pub use shard::{
    build_sharded, collect_ids, shard_count_valid, Assembler, ClientShard, FileShard, ShardSet,
    ShardedAnonymizer, MAX_SHARDS,
};
