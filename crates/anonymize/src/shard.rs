//! Sharded anonymisation along the paper's clientID/fileID split.
//!
//! The paper's two encoder structures partition naturally:
//!
//! * **clientIDs** — the direct-index array splits by the *low bits* of
//!   the raw clientID: shard `s` of `S` owns every id with
//!   `id & (S-1) == s` and indexes its private slice with
//!   `id >> log2(S)`, so the `S` tables tile the full address space with
//!   no overlap and no locking;
//! * **fileIDs** — the 65 536 sorted buckets split by the *low bits of
//!   the bucket index* (the byte-pair selector value), again giving each
//!   shard a disjoint set of buckets.
//!
//! The subtle part is the **order-of-appearance contract**: the dataset
//! promises that the `n`-th distinct id *in stream order* encodes to
//! `n-1`. A shard cannot know the global order, so it assigns
//! **striped provisionals**: shard `s` numbers its `k`-th locally-new id
//! `p = s + k·S` — forever. Provisionals from different shards can never
//! collide (they differ mod `S`), and within a shard they are dense.
//! The single sequential **assembler** owns a provisional→final remap:
//! walking each batch's resolved ids in stream order, the first touch of
//! a provisional assigns the next final number. Because an id maps to
//! exactly one provisional, and the assembler walks in stream order, the
//! final numbers are *exactly* the serial appearance order for any `S`
//! (see DESIGN.md §13 for the proof sketch). `S = 1` degenerates to the
//! serial encoders with an identity remap.

use crate::clientid::{ClientIdAnonymizer, DirectArrayAnonymizer};
use crate::fileid::{BucketedArrays, ByteSelector, FileIdAnonymizer, ProbeStats};
use crate::scheme::{AnonRecord, AnonymizationScheme, BatchSummary};
use etw_edonkey::ids::{ClientId, FileId};
use etw_edonkey::messages::Message;

/// Upper bound on the shard count (the client partition uses at most
/// the low 4 bits, matching the checkpoint sidecar's canonical 16
/// stripes).
pub const MAX_SHARDS: usize = 16;

/// Sentinel for a not-yet-scattered provisional clientID slot.
const UNRESOLVED_CLIENT: u32 = u32::MAX;
/// Sentinel for a not-yet-scattered provisional fileID slot.
const UNRESOLVED_FILE: u64 = u64::MAX;
/// Sentinel for an unassigned remap cell.
const UNMAPPED_CLIENT: u32 = u32::MAX;
/// Sentinel for an unassigned remap cell (files).
const UNMAPPED_FILE: u64 = u64::MAX;

/// True iff `n` is an acceptable shard count: a power of two in
/// `1..=MAX_SHARDS`.
pub fn shard_count_valid(n: usize) -> bool {
    n.is_power_of_two() && (1..=MAX_SHARDS).contains(&n)
}

/// One shard of the clientID direct-index array.
///
/// Owns raw ids with `raw & (shards-1) == shard`; stores striped
/// provisionals `shard + k·shards` where `k` is the shard-local
/// first-sight index (delegated to a narrower [`DirectArrayAnonymizer`]
/// over `raw >> log2(shards)`).
pub struct ClientShard {
    shard: u32,
    shards: u32,
    shard_bits: u32,
    inner: DirectArrayAnonymizer,
}

impl ClientShard {
    /// Shard `shard` of `shards` over a `width_bits`-wide id space.
    pub fn new(width_bits: u32, shards: usize, shard: usize) -> Self {
        assert!(shard_count_valid(shards), "bad shard count {shards}");
        assert!(shard < shards);
        let shard_bits = shards.trailing_zeros();
        assert!(
            width_bits > shard_bits && width_bits <= 31,
            "client space of {width_bits} bits cannot be split {shards} ways"
        );
        ClientShard {
            shard: shard as u32,
            shards: shards as u32,
            shard_bits,
            inner: DirectArrayAnonymizer::new(width_bits - shard_bits),
        }
    }

    /// Does this shard own `raw`?
    #[inline]
    pub fn owns(&self, raw: u32) -> bool {
        raw & (self.shards - 1) == self.shard
    }

    /// Striped provisional for `raw` (must be owned by this shard).
    #[inline]
    // etwlint: sanitize(raw-id): maps a raw clientID to its provisional index
    pub fn resolve(&mut self, raw: u32) -> u32 {
        debug_assert!(self.owns(raw));
        let k = self.inner.anonymize(ClientId(raw >> self.shard_bits));
        k * self.shards + self.shard
    }

    /// Distinct clientIDs this shard has seen.
    pub fn distinct(&self) -> u32 {
        self.inner.distinct()
    }
}

/// One shard of the bucketed fileID arrays.
///
/// Owns fileIDs whose bucket index (byte-pair selector value) satisfies
/// `bucket & (shards-1) == shard`; stripes provisionals the same way as
/// [`ClientShard`].
pub struct FileShard {
    shard: u64,
    shards: u64,
    bucket_mask: usize,
    bucket_shard: usize,
    inner: BucketedArrays,
}

impl FileShard {
    /// Shard `shard` of `shards` using `selector` for bucket indices.
    pub fn new(selector: ByteSelector, shards: usize, shard: usize) -> Self {
        assert!(shard_count_valid(shards), "bad shard count {shards}");
        assert!(shard < shards);
        FileShard {
            shard: shard as u64,
            shards: shards as u64,
            bucket_mask: shards - 1,
            bucket_shard: shard,
            inner: BucketedArrays::new(selector),
        }
    }

    /// Does this shard own `id`?
    #[inline]
    pub fn owns(&self, id: &FileId) -> bool {
        self.inner.selector().index(id) & self.bucket_mask == self.bucket_shard
    }

    /// Striped provisional for `id` (must be owned by this shard).
    #[inline]
    // etwlint: sanitize(raw-id): maps a raw fileID to its provisional index
    pub fn resolve(&mut self, id: &FileId) -> u64 {
        debug_assert!(self.owns(id));
        self.inner.anonymize(id) * self.shards + self.shard
    }

    /// Distinct fileIDs this shard has seen.
    pub fn distinct(&self) -> u64 {
        self.inner.distinct()
    }

    /// Probe accounting for this shard's buckets.
    pub fn probe_stats(&self) -> ProbeStats {
        self.inner.probe_stats()
    }
}

/// Everything one shard worker owns: its slice of both id spaces.
pub struct ShardSet {
    /// ClientID slice.
    pub clients: ClientShard,
    /// FileID bucket slice.
    pub files: FileShard,
}

impl ShardSet {
    /// Shard `shard` of `shards`.
    pub fn new(width_bits: u32, selector: ByteSelector, shards: usize, shard: usize) -> Self {
        ShardSet {
            clients: ClientShard::new(width_bits, shards, shard),
            files: FileShard::new(selector, shards, shard),
        }
    }

    /// Scans a batch's flat id arrays (stream order, as produced by
    /// [`collect_ids`]), resolves the ids this shard owns, and emits
    /// sparse `(index, provisional)` pairs into the reused output
    /// vectors.
    pub fn resolve_batch(
        &mut self,
        client_ids: &[u32],
        file_ids: &[FileId],
        clients_out: &mut Vec<(u32, u32)>,
        files_out: &mut Vec<(u32, u64)>,
    ) {
        clients_out.clear();
        files_out.clear();
        for (i, &raw) in client_ids.iter().enumerate() {
            if self.clients.owns(raw) {
                clients_out.push((i as u32, self.clients.resolve(raw)));
            }
        }
        for (i, id) in file_ids.iter().enumerate() {
            if self.files.owns(id) {
                files_out.push((i as u32, self.files.resolve(id)));
            }
        }
    }
}

/// Appends every clientID and fileID the anonymiser will encode for
/// `(peer, msg)` — in exactly the order [`AnonymizationScheme`] touches
/// its encoders (peer first, then the message walk). The visit pass
/// runs once in the sequential stage so the shards can resolve from
/// flat arrays instead of re-walking message trees.
pub fn collect_ids(
    peer: ClientId,
    msg: &Message,
    client_ids: &mut Vec<u32>,
    file_ids: &mut Vec<FileId>,
) {
    client_ids.push(peer.raw());
    match msg {
        Message::ServerList { servers } => {
            for s in servers {
                client_ids.push(s.ip);
            }
        }
        Message::SearchResponse { results } | Message::OfferFiles { files: results } => {
            for e in results {
                file_ids.push(e.file_id);
                client_ids.push(e.client_id.raw());
            }
        }
        Message::GetSources { file_ids: ids } => {
            for id in ids {
                file_ids.push(*id);
            }
        }
        Message::FoundSources { file_id, sources } => {
            file_ids.push(*file_id);
            for s in sources {
                client_ids.push(s.client_id.raw());
            }
        }
        _ => {}
    }
}

/// ClientID "encoder" that replays pre-resolved final values in order.
/// The assembler fills `values` per batch; record construction then pops
/// them by cursor, so [`AnonymizationScheme`]'s walk never touches a
/// shared table.
pub struct ResolvedClientIds {
    pub(crate) values: Vec<u32>,
    pub(crate) cursor: usize,
    pub(crate) distinct: u32,
}

impl ClientIdAnonymizer for ResolvedClientIds {
    #[inline]
    // etwlint: sanitize(raw-id): pops the pre-resolved appearance-order index
    fn anonymize(&mut self, _id: ClientId) -> u32 {
        let v = self.values[self.cursor];
        self.cursor += 1;
        v
    }

    fn distinct(&self) -> u32 {
        self.distinct
    }

    fn lookup(&self, _id: ClientId) -> Option<u32> {
        None
    }

    fn name(&self) -> &'static str {
        "sharded-resolved"
    }
}

/// FileID counterpart of [`ResolvedClientIds`].
pub struct ResolvedFileIds {
    pub(crate) values: Vec<u64>,
    pub(crate) cursor: usize,
    pub(crate) distinct: u64,
}

impl FileIdAnonymizer for ResolvedFileIds {
    #[inline]
    // etwlint: sanitize(raw-id): pops the pre-resolved appearance-order index
    fn anonymize(&mut self, _id: &FileId) -> u64 {
        let v = self.values[self.cursor];
        self.cursor += 1;
        v
    }

    fn distinct(&self) -> u64 {
        self.distinct
    }

    fn lookup(&self, _id: &FileId) -> Option<u64> {
        None
    }

    fn name(&self) -> &'static str {
        "sharded-resolved"
    }
}

/// The sequential reassembly stage: scatters shard results back into
/// stream order, remaps striped provisionals to final global
/// appearance orders, and constructs records (with allocation reuse)
/// through an [`AnonymizationScheme`] whose id encoders replay the
/// remapped values.
pub struct Assembler {
    client_remap: Vec<u32>,
    client_order: Vec<u32>,
    file_remap: Vec<u64>,
    file_order: Vec<FileId>,
    scheme: AnonymizationScheme<ResolvedClientIds, ResolvedFileIds>,
}

impl Default for Assembler {
    fn default() -> Self {
        Self::new()
    }
}

impl Assembler {
    /// Fresh assembler (no ids seen).
    pub fn new() -> Self {
        Assembler {
            client_remap: Vec::new(),
            client_order: Vec::new(),
            file_remap: Vec::new(),
            file_order: Vec::new(),
            scheme: AnonymizationScheme::new(
                ResolvedClientIds {
                    values: Vec::new(),
                    cursor: 0,
                    distinct: 0,
                },
                ResolvedFileIds {
                    values: Vec::new(),
                    cursor: 0,
                    distinct: 0,
                },
            ),
        }
    }

    /// Prepares the per-batch scatter buffers for `n_clients` clientID
    /// touches and `n_files` fileID touches.
    pub fn begin_batch(&mut self, n_clients: usize, n_files: usize) {
        let (c, f) = self.scheme.encoders_mut();
        c.values.clear();
        c.values.resize(n_clients, UNRESOLVED_CLIENT);
        c.cursor = 0;
        f.values.clear();
        f.values.resize(n_files, UNRESOLVED_FILE);
        f.cursor = 0;
    }

    /// Scatters one shard's clientID resolutions into the batch buffer.
    pub fn apply_clients(&mut self, res: &[(u32, u32)]) {
        let (c, _) = self.scheme.encoders_mut();
        for &(idx, prov) in res {
            debug_assert_eq!(c.values[idx as usize], UNRESOLVED_CLIENT);
            c.values[idx as usize] = prov;
        }
    }

    /// Scatters one shard's fileID resolutions into the batch buffer.
    pub fn apply_files(&mut self, res: &[(u32, u64)]) {
        let (_, f) = self.scheme.encoders_mut();
        for &(idx, prov) in res {
            debug_assert_eq!(f.values[idx as usize], UNRESOLVED_FILE);
            f.values[idx as usize] = prov;
        }
    }

    /// After every shard has scattered: remap provisionals to final
    /// appearance orders, in stream order. `client_ids`/`file_ids` are
    /// the batch's raw id arrays (for recording first appearances).
    pub fn finish_batch(&mut self, client_ids: &[u32], file_ids: &[FileId]) {
        let (c, f) = self.scheme.encoders_mut();
        assert_eq!(c.values.len(), client_ids.len());
        assert_eq!(f.values.len(), file_ids.len());
        for (i, slot) in c.values.iter_mut().enumerate() {
            let p = *slot as usize;
            assert!(
                *slot != UNRESOLVED_CLIENT,
                "clientID index {i} was never resolved by any shard"
            );
            if p >= self.client_remap.len() {
                self.client_remap.resize(p + 1, UNMAPPED_CLIENT);
            }
            if self.client_remap[p] == UNMAPPED_CLIENT {
                self.client_remap[p] = self.client_order.len() as u32;
                self.client_order.push(client_ids[i]);
            }
            *slot = self.client_remap[p];
        }
        c.distinct = self.client_order.len() as u32;
        for (i, slot) in f.values.iter_mut().enumerate() {
            let p = *slot as usize;
            assert!(
                *slot != UNRESOLVED_FILE,
                "fileID index {i} was never resolved by any shard"
            );
            if p >= self.file_remap.len() {
                self.file_remap.resize(p + 1, UNMAPPED_FILE);
            }
            if self.file_remap[p] == UNMAPPED_FILE {
                self.file_remap[p] = self.file_order.len() as u64;
                self.file_order.push(file_ids[i]);
            }
            *slot = self.file_remap[p];
        }
        f.distinct = self.file_order.len() as u64;
    }

    /// Constructs the batch's records after [`finish_batch`]
    /// (allocation-reusing; `out` must keep its stale records — see
    /// [`AnonymizationScheme::anonymize_batch_reuse`]). Asserts that the
    /// construction walk consumed exactly the ids the visit pass
    /// collected — a cheap per-batch guard that the two walks agree.
    pub fn construct<'a, I>(&mut self, items: I, out: &mut Vec<AnonRecord>) -> BatchSummary
    where
        I: IntoIterator<Item = (u64, ClientId, &'a Message)>,
    {
        let summary = self.scheme.anonymize_batch_reuse(items, out);
        let (c, f) = self.scheme.encoders_mut();
        assert_eq!(
            c.cursor,
            c.values.len(),
            "construction touched {} clientIDs but the visit pass collected {}",
            c.cursor,
            c.values.len()
        );
        assert_eq!(
            f.cursor,
            f.values.len(),
            "construction touched {} fileIDs but the visit pass collected {}",
            f.cursor,
            f.values.len()
        );
        summary
    }

    /// Global clientID appearance order so far (checkpoints snapshot
    /// this).
    // etwlint: source(raw-id): global clientID appearance order, raw
    pub fn client_order(&self) -> &[u32] {
        &self.client_order
    }

    /// Global fileID appearance order so far.
    // etwlint: source(raw-id): global fileID appearance order, raw
    pub fn file_order(&self) -> &[FileId] {
        &self.file_order
    }

    /// Distinct clientIDs seen.
    pub fn distinct_clients(&self) -> u32 {
        self.client_order.len() as u32
    }

    /// Distinct fileIDs seen.
    pub fn distinct_files(&self) -> u64 {
        self.file_order.len() as u64
    }
}

/// Builds `shards` shard sets plus an assembler, replaying checkpointed
/// appearance orders (empty slices = fresh start). Replay drives each
/// id through its owning shard in global appearance order, which
/// reproduces exactly the shard-local state and remap a live run would
/// have reached — so resume continues bit-for-bit.
pub fn build_sharded(
    width_bits: u32,
    selector: ByteSelector,
    shards: usize,
    client_order: &[u32],
    file_order: &[FileId],
) -> (Vec<ShardSet>, Assembler) {
    assert!(shard_count_valid(shards), "bad shard count {shards}");
    let mut sets: Vec<ShardSet> = (0..shards)
        .map(|s| ShardSet::new(width_bits, selector, shards, s))
        .collect();
    let mut asm = Assembler::new();
    let mask = (shards - 1) as u32;
    for &raw in client_order {
        let p = sets[(raw & mask) as usize].clients.resolve(raw) as usize;
        if p >= asm.client_remap.len() {
            asm.client_remap.resize(p + 1, UNMAPPED_CLIENT);
        }
        debug_assert_eq!(asm.client_remap[p], UNMAPPED_CLIENT);
        asm.client_remap[p] = asm.client_order.len() as u32;
        asm.client_order.push(raw);
    }
    for id in file_order {
        let s = selector.index(id) & (shards - 1);
        let p = sets[s].files.resolve(id) as usize;
        if p >= asm.file_remap.len() {
            asm.file_remap.resize(p + 1, UNMAPPED_FILE);
        }
        debug_assert_eq!(asm.file_remap[p], UNMAPPED_FILE);
        asm.file_remap[p] = asm.file_order.len() as u64;
        asm.file_order.push(*id);
    }
    let (c, f) = asm.scheme.encoders_mut();
    c.distinct = asm.client_order.len() as u32;
    f.distinct = asm.file_order.len() as u64;
    (sets, asm)
}

/// Single-threaded composition of the sharded protocol: visit → resolve
/// (every shard in turn) → scatter/remap → construct. This is the exact
/// data path the threaded pipeline runs, minus the channels — the bench
/// measures it, the differential tests pin it to the serial scheme, and
/// the interleave model permutes its steps.
pub struct ShardedAnonymizer {
    shards: Vec<ShardSet>,
    assembler: Assembler,
    client_ids: Vec<u32>,
    file_ids: Vec<FileId>,
    client_res: Vec<(u32, u32)>,
    file_res: Vec<(u32, u64)>,
}

impl ShardedAnonymizer {
    /// Fresh sharded anonymiser.
    pub fn new(width_bits: u32, selector: ByteSelector, shards: usize) -> Self {
        Self::from_orders(width_bits, selector, shards, &[], &[])
    }

    /// Rebuilds from checkpointed appearance orders (campaign resume).
    // etwlint: sanitize(raw-id): raw checkpoint orders are replayed into shard tables
    pub fn from_orders(
        width_bits: u32,
        selector: ByteSelector,
        shards: usize,
        client_order: &[u32],
        file_order: &[FileId],
    ) -> Self {
        let (shards, assembler) =
            build_sharded(width_bits, selector, shards, client_order, file_order);
        ShardedAnonymizer {
            shards,
            assembler,
            client_ids: Vec::new(),
            file_ids: Vec::new(),
            client_res: Vec::new(),
            file_res: Vec::new(),
        }
    }

    /// Anonymises one batch; produces exactly the records the serial
    /// [`AnonymizationScheme`] would. `out` keeps its stale records
    /// between calls (allocation pool), like
    /// [`AnonymizationScheme::anonymize_batch_reuse`].
    // etwlint: sanitize(raw-id): full sharded resolve/assemble pass over the batch
    pub fn anonymize_batch<'a, I>(&mut self, items: I, out: &mut Vec<AnonRecord>) -> BatchSummary
    where
        I: Iterator<Item = (u64, ClientId, &'a Message)> + Clone,
    {
        self.client_ids.clear();
        self.file_ids.clear();
        for (_ts, peer, msg) in items.clone() {
            collect_ids(peer, msg, &mut self.client_ids, &mut self.file_ids);
        }
        self.assembler
            .begin_batch(self.client_ids.len(), self.file_ids.len());
        for shard in &mut self.shards {
            shard.resolve_batch(
                &self.client_ids,
                &self.file_ids,
                &mut self.client_res,
                &mut self.file_res,
            );
            self.assembler.apply_clients(&self.client_res);
            self.assembler.apply_files(&self.file_res);
        }
        self.assembler
            .finish_batch(&self.client_ids, &self.file_ids);
        self.assembler.construct(items, out)
    }

    /// The assembler (orders, distinct counts).
    pub fn assembler(&self) -> &Assembler {
        &self.assembler
    }

    /// The shard sets (probe stats, distinct counts per shard).
    pub fn shard_sets(&self) -> &[ShardSet] {
        &self.shards
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::PaperScheme;
    use etw_edonkey::messages::Source;
    use etw_edonkey::search::SearchExpr;

    fn mixed(n: u64) -> Vec<(u64, ClientId, Message)> {
        (0..n)
            .map(|i| {
                let m = match i % 5 {
                    0 => Message::GetSources {
                        file_ids: (0..(i % 4))
                            .map(|k| FileId::of_identity((i + k) % 37))
                            .collect(),
                    },
                    1 => Message::SearchRequest {
                        expr: SearchExpr::keyword(format!("kw {}", i % 7)),
                    },
                    2 => Message::FoundSources {
                        file_id: FileId::of_identity(i % 23),
                        sources: (0..(i % 3))
                            .map(|k| Source {
                                client_id: ClientId(((i * 7 + k) % 97) as u32),
                                port: 4662,
                            })
                            .collect(),
                    },
                    3 => Message::ServerList {
                        servers: (0..(i % 2))
                            .map(|k| etw_edonkey::messages::ServerAddr {
                                ip: ((i + k) % 41) as u32,
                                port: 4661,
                            })
                            .collect(),
                    },
                    _ => Message::StatusRequest {
                        challenge: i as u32,
                    },
                };
                (i, ClientId(((i * 13) % 89) as u32), m)
            })
            .collect()
    }

    fn serial_reference(msgs: &[(u64, ClientId, Message)]) -> (Vec<AnonRecord>, PaperScheme) {
        let mut s = PaperScheme::paper(16);
        let mut out = Vec::new();
        s.anonymize_batch(msgs.iter().map(|(ts, p, m)| (*ts, *p, m)), &mut out);
        (out, s)
    }

    #[test]
    fn provisionals_are_striped_and_disjoint() {
        let shards = 4;
        let mut sets: Vec<ClientShard> = (0..shards)
            .map(|s| ClientShard::new(16, shards, s))
            .collect();
        let mut seen = std::collections::HashSet::new();
        for raw in 0..64u32 {
            let s = (raw % shards as u32) as usize;
            let p = sets[s].resolve(raw);
            assert_eq!(p as usize % shards, s, "provisional {p} off-stripe");
            assert!(seen.insert(p), "provisional {p} assigned twice");
        }
    }

    #[test]
    fn sharded_matches_serial_for_every_shard_count() {
        let msgs = mixed(600);
        let (expected, serial) = serial_reference(&msgs);
        for shards in [1usize, 2, 4, 8, 16] {
            let mut sh = ShardedAnonymizer::new(16, ByteSelector::ALTERNATIVE, shards);
            let mut got = Vec::new();
            let mut out = Vec::new();
            for chunk in msgs.chunks(41) {
                sh.anonymize_batch(chunk.iter().map(|(ts, p, m)| (*ts, *p, m)), &mut out);
                got.extend(out.iter().cloned());
            }
            assert_eq!(got, expected, "diverged at {shards} shards");
            assert_eq!(sh.assembler().distinct_clients(), serial.distinct_clients());
            assert_eq!(sh.assembler().distinct_files(), serial.distinct_files());
            assert_eq!(
                sh.assembler().client_order(),
                &serial.client_encoder().appearance_order()[..],
            );
            assert_eq!(
                sh.assembler().file_order(),
                &serial.file_encoder().appearance_order()[..],
            );
        }
    }

    #[test]
    fn resume_from_orders_continues_identically() {
        let msgs = mixed(400);
        let (expected, _) = serial_reference(&msgs);
        let (head, tail) = msgs.split_at(173);
        let mut first = ShardedAnonymizer::new(16, ByteSelector::ALTERNATIVE, 4);
        let mut out = Vec::new();
        first.anonymize_batch(head.iter().map(|(ts, p, m)| (*ts, *p, m)), &mut out);
        // Restart from the checkpointed orders, at a different shard
        // count — the orders are shard-count-independent.
        let mut resumed = ShardedAnonymizer::from_orders(
            16,
            ByteSelector::ALTERNATIVE,
            8,
            first.assembler().client_order(),
            first.assembler().file_order(),
        );
        let mut out2 = Vec::new();
        resumed.anonymize_batch(tail.iter().map(|(ts, p, m)| (*ts, *p, m)), &mut out2);
        let got: Vec<AnonRecord> = out.iter().chain(out2.iter()).cloned().collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn shards_tile_both_id_spaces() {
        let shards = 8;
        let sets: Vec<ShardSet> = (0..shards)
            .map(|s| ShardSet::new(16, ByteSelector::ALTERNATIVE, shards, s))
            .collect();
        for raw in 0..256u32 {
            let owners = sets.iter().filter(|s| s.clients.owns(raw)).count();
            assert_eq!(owners, 1, "clientID {raw} owned by {owners} shards");
        }
        for i in 0..256u64 {
            let id = FileId::of_identity(i);
            let owners = sets.iter().filter(|s| s.files.owns(&id)).count();
            assert_eq!(owners, 1, "fileID {i} owned by {owners} shards");
        }
    }

    #[test]
    #[should_panic(expected = "bad shard count")]
    fn non_power_of_two_shard_count_rejected() {
        let _ = ClientShard::new(16, 3, 0);
    }

    #[test]
    fn visit_pass_counts_match_construction() {
        // collect_ids must mirror the scheme's encoder-touch order; the
        // Assembler asserts the counts agree, so a full batch through
        // ShardedAnonymizer exercises the guard for every message shape.
        let msgs = mixed(100);
        let mut sh = ShardedAnonymizer::new(16, ByteSelector::ALTERNATIVE, 2);
        let mut out = Vec::new();
        let s = sh.anonymize_batch(msgs.iter().map(|(ts, p, m)| (*ts, *p, m)), &mut out);
        assert_eq!(s.records, 100);
    }
}
