//! clientID anonymisation by order of appearance (paper §2.4).
//!
//! The paper rejects hashing (trivially reversible over a 2³² space by
//! exhaustive application) and shuffling (too weak), and instead encodes
//! each clientID "according to their order of appearance in the captured
//! data: the first one is anonymised with the value 0, the second with 1
//! and so on". Billions of lookups plus millions of insertions make
//! "classical data structures (like hashtables or trees) … too slow
//! and/or too space consuming"; the authors use a direct-index array of
//! 2³² integers (16 GB) giving anonymisation by "a direct memory access
//! operation only".
//!
//! [`DirectArrayAnonymizer`] is that structure with a configurable index
//! width (the full 32-bit width is available given 16 GB of RAM; tests
//! and the campaign default to 24 bits). [`HashMapAnonymizer`] and
//! [`BTreeAnonymizer`] are the "classical" baselines the paper dismisses;
//! bench `anonymize_clientid` (ablation A1) quantifies the comparison.

use etw_edonkey::ids::ClientId;
use std::collections::{BTreeMap, HashMap};

/// Sentinel meaning "clientID not yet seen" in the direct array.
const UNSEEN: u32 = u32::MAX;

/// Order-of-appearance encoder for clientIDs.
///
/// Implementations must be deterministic: the n-th *distinct* clientID
/// pushed receives the value `n-1`, regardless of structure.
pub trait ClientIdAnonymizer {
    /// Returns the anonymised value for `id`, assigning the next integer
    /// on first sight.
    fn anonymize(&mut self, id: ClientId) -> u32;

    /// Number of distinct clientIDs seen so far.
    fn distinct(&self) -> u32;

    /// Looks up without inserting (`None` if never seen).
    fn lookup(&self, id: ClientId) -> Option<u32>;

    /// Implementation name for reports.
    fn name(&self) -> &'static str;
}

/// The paper's direct-index array: one cell per possible clientID.
///
/// At the paper's full 32-bit width the array covers the entire clientID
/// space. At narrower test/campaign widths, clientIDs beyond the array —
/// real on live traffic, where high-ID clients and the peer-server
/// addresses in ServerList answers are full IPv4 addresses — spill into
/// a hash side-table instead of being a hard error: the array keeps the
/// dense low-ID space at one memory access, the spill absorbs the sparse
/// remainder, and the order-of-appearance contract holds across both.
pub struct DirectArrayAnonymizer {
    table: Vec<u32>,
    spill: HashMap<u32, u32>,
    next: u32,
    width_bits: u32,
}

impl DirectArrayAnonymizer {
    /// Creates an array covering clientIDs below `2^width_bits`.
    ///
    /// `width_bits = 32` reproduces the paper's 16 GB configuration
    /// exactly; smaller widths cover proportionally smaller clientID
    /// spaces (the campaign generates IDs inside the configured space).
    pub fn new(width_bits: u32) -> Self {
        assert!((1..=32).contains(&width_bits), "width must be 1..=32");
        let size = 1usize << width_bits;
        DirectArrayAnonymizer {
            table: vec![UNSEEN; size],
            spill: HashMap::new(),
            next: 0,
            width_bits,
        }
    }

    /// Memory footprint of the table in bytes (the paper's 16 GB figure
    /// at width 32).
    pub fn table_bytes(&self) -> usize {
        self.table.len() * std::mem::size_of::<u32>()
    }

    /// Index width in bits.
    pub fn width_bits(&self) -> u32 {
        self.width_bits
    }

    /// Raw clientIDs in order of first appearance. This is the entire
    /// checkpointable state of the anonymiser: replaying the returned
    /// IDs through [`ClientIdAnonymizer::anonymize`] rebuilds an
    /// identical table, which is what [`DirectArrayAnonymizer::from_order`]
    /// does on campaign resume.
    // etwlint: source(raw-id): returns the raw clientID table for checkpointing
    pub fn appearance_order(&self) -> Vec<u32> {
        let mut order = vec![0u32; self.next as usize];
        for (raw, &v) in self.table.iter().enumerate() {
            if v != UNSEEN {
                order[v as usize] = raw as u32;
            }
        }
        for (&raw, &v) in &self.spill {
            order[v as usize] = raw;
        }
        order
    }

    /// Rebuilds an anonymiser from a checkpointed appearance order.
    // etwlint: sanitize(raw-id): raw checkpoint ids are replayed into the private table
    pub fn from_order(width_bits: u32, order: &[u32]) -> Self {
        let mut a = DirectArrayAnonymizer::new(width_bits);
        for &raw in order {
            a.anonymize(ClientId(raw));
        }
        a
    }

    /// Number of clientIDs that fell outside the array and live in the
    /// spill side-table (0 at the paper's full 32-bit width).
    pub fn spilled(&self) -> usize {
        self.spill.len()
    }
}

impl ClientIdAnonymizer for DirectArrayAnonymizer {
    #[inline]
    // etwlint: sanitize(raw-id): raw id becomes its appearance-order index
    fn anonymize(&mut self, id: ClientId) -> u32 {
        let raw = id.raw();
        if let Some(cell) = self.table.get_mut(raw as usize) {
            if *cell == UNSEEN {
                *cell = self.next;
                self.next += 1;
            }
            *cell
        } else {
            let next = &mut self.next;
            *self.spill.entry(raw).or_insert_with(|| {
                let v = *next;
                *next += 1;
                v
            })
        }
    }

    fn distinct(&self) -> u32 {
        self.next
    }

    fn lookup(&self, id: ClientId) -> Option<u32> {
        match self.table.get(id.raw() as usize) {
            Some(&v) => (v != UNSEEN).then_some(v),
            None => self.spill.get(&id.raw()).copied(),
        }
    }

    fn name(&self) -> &'static str {
        "direct_array"
    }
}

/// Baseline: std `HashMap` (SipHash), the "hashtable" the paper found too
/// slow at capture rates.
#[derive(Default)]
pub struct HashMapAnonymizer {
    map: HashMap<u32, u32>,
}

impl HashMapAnonymizer {
    /// Empty anonymiser.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ClientIdAnonymizer for HashMapAnonymizer {
    // etwlint: sanitize(raw-id): raw id becomes its appearance-order index
    fn anonymize(&mut self, id: ClientId) -> u32 {
        let next = self.map.len() as u32;
        *self.map.entry(id.raw()).or_insert(next)
    }

    fn distinct(&self) -> u32 {
        self.map.len() as u32
    }

    fn lookup(&self, id: ClientId) -> Option<u32> {
        self.map.get(&id.raw()).copied()
    }

    fn name(&self) -> &'static str {
        "hashmap"
    }
}

/// Baseline: `BTreeMap` (the "trees" of the paper's comparison).
#[derive(Default)]
pub struct BTreeAnonymizer {
    map: BTreeMap<u32, u32>,
}

impl BTreeAnonymizer {
    /// Empty anonymiser.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ClientIdAnonymizer for BTreeAnonymizer {
    // etwlint: sanitize(raw-id): raw id becomes its appearance-order index
    fn anonymize(&mut self, id: ClientId) -> u32 {
        let next = self.map.len() as u32;
        *self.map.entry(id.raw()).or_insert(next)
    }

    fn distinct(&self) -> u32 {
        self.map.len() as u32
    }

    fn lookup(&self, id: ClientId) -> Option<u32> {
        self.map.get(&id.raw()).copied()
    }

    fn name(&self) -> &'static str {
        "btreemap"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn all_impls(width: u32) -> Vec<Box<dyn ClientIdAnonymizer>> {
        vec![
            Box::new(DirectArrayAnonymizer::new(width)),
            Box::new(HashMapAnonymizer::new()),
            Box::new(BTreeAnonymizer::new()),
        ]
    }

    #[test]
    fn order_of_appearance() {
        for mut a in all_impls(16) {
            assert_eq!(a.anonymize(ClientId(500)), 0, "{}", a.name());
            assert_eq!(a.anonymize(ClientId(7)), 1);
            assert_eq!(a.anonymize(ClientId(500)), 0, "repeat keeps value");
            assert_eq!(a.anonymize(ClientId(65_000)), 2);
            assert_eq!(a.distinct(), 3);
        }
    }

    #[test]
    fn lookup_does_not_insert() {
        for mut a in all_impls(16) {
            assert_eq!(a.lookup(ClientId(9)), None);
            assert_eq!(a.distinct(), 0, "{}", a.name());
            a.anonymize(ClientId(9));
            assert_eq!(a.lookup(ClientId(9)), Some(0));
        }
    }

    #[test]
    fn implementations_agree_differentially() {
        // The HashMap is the oracle; the paper's structure must encode
        // identically on a random stream with repetitions.
        let mut rng = StdRng::seed_from_u64(99);
        let stream: Vec<ClientId> = (0..20_000)
            .map(|_| ClientId(rng.gen_range(0..1u32 << 16)))
            .collect();
        let mut direct = DirectArrayAnonymizer::new(16);
        let mut oracle = HashMapAnonymizer::new();
        let mut btree = BTreeAnonymizer::new();
        for &id in &stream {
            let want = oracle.anonymize(id);
            assert_eq!(direct.anonymize(id), want);
            assert_eq!(btree.anonymize(id), want);
        }
        assert_eq!(direct.distinct(), oracle.distinct());
        assert_eq!(btree.distinct(), oracle.distinct());
    }

    #[test]
    fn anonymized_values_are_dense() {
        // Paper: "anonymised clientID are integers between 0 and N-1".
        let mut a = DirectArrayAnonymizer::new(16);
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..5000 {
            seen.insert(a.anonymize(ClientId(rng.gen_range(0..1u32 << 16))));
        }
        let n = a.distinct();
        assert_eq!(seen.len() as u32, n);
        assert!(seen.iter().all(|&v| v < n));
    }

    #[test]
    fn table_bytes_matches_width() {
        let a = DirectArrayAnonymizer::new(20);
        assert_eq!(a.table_bytes(), (1usize << 20) * 4);
        assert_eq!(a.width_bits(), 20);
        // The paper's configuration: width 32 → 16 GB (not allocated in
        // tests, just arithmetic).
        let cells: usize = 1 << 32;
        assert_eq!(cells * 4, 16 * (1usize << 30));
    }

    #[test]
    fn out_of_space_ids_spill_without_panicking() {
        // Live traffic carries clientIDs beyond a narrow array: high-ID
        // clients and peer-server addresses are full IPv4 addresses. They
        // must encode through the spill side-table, in the same dense
        // order-of-appearance sequence as array-resident IDs.
        let mut a = DirectArrayAnonymizer::new(8);
        assert_eq!(a.anonymize(ClientId(3)), 0);
        assert_eq!(a.anonymize(ClientId(0x5216_0a01)), 1, "spilled id");
        assert_eq!(a.anonymize(ClientId(7)), 2);
        assert_eq!(a.anonymize(ClientId(0x5216_0a01)), 1, "repeat keeps value");
        assert_eq!(a.distinct(), 3);
        assert_eq!(a.spilled(), 1);
        assert_eq!(a.lookup(ClientId(0x5216_0a01)), Some(1));
        assert_eq!(a.lookup(ClientId(0x5216_0a02)), None);
        // The checkpointable order covers both halves and round-trips.
        let order = a.appearance_order();
        assert_eq!(order, vec![3, 0x5216_0a01, 7]);
        let b = DirectArrayAnonymizer::from_order(8, &order);
        assert_eq!(b.lookup(ClientId(0x5216_0a01)), Some(1));
        assert_eq!(b.distinct(), 3);
    }

    #[test]
    fn high_and_low_ids_both_encoded() {
        let mut a = DirectArrayAnonymizer::new(32 - 8); // 24-bit space
        let low = ClientId::low(42);
        assert_eq!(a.anonymize(low), 0);
        assert_eq!(a.distinct(), 1);
    }
}
