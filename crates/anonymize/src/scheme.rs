//! Whole-record anonymisation: eDonkey messages → anonymised dataset
//! records (paper §2.4).
//!
//! Every sensitive field is rewritten with its dedicated method:
//!
//! | field | method |
//! |---|---|
//! | clientID (incl. server IPs in server lists) | order of appearance ([`crate::clientid`]) |
//! | fileID | order of appearance ([`crate::fileid`]) |
//! | search strings, filenames, string metadata, server descriptions | MD5 ([`crate::fields`]) |
//! | file sizes (tags and numeric search constraints) | bytes → kilo-bytes |
//! | timestamps | relative to capture start |
//!
//! Non-sensitive integers (ports, source counts, challenges) pass
//! through: they carry the behavioural signal the dataset exists to
//! preserve.

use crate::clientid::{ClientIdAnonymizer, DirectArrayAnonymizer};
use crate::fields::{anonymize_filesize, StringAnonymizer};
use crate::fileid::{BucketedArrays, ByteSelector, FileIdAnonymizer};
use etw_edonkey::messages::{Family, Message};
use etw_edonkey::search::{BoolOp, NumCmp, SearchExpr};
use etw_edonkey::tags::{special, Tag, TagName, TagValue};
use std::borrow::Cow;
use std::sync::Arc;

/// An anonymised metadata tag.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AnonTag {
    /// Human-readable tag name (tag *names* are protocol constants, not
    /// user data, and stay in clear — as in the released dataset's
    /// formal specification). `Cow` because the well-known special names
    /// are static strings: the hot path borrows, only the exotic tail
    /// allocates.
    pub name: Cow<'static, str>,
    /// Anonymised value.
    pub value: AnonTagValue,
}

/// An anonymised tag value.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AnonTagValue {
    /// MD5 hex of the original string. Shared with the memo cache, so
    /// repeated strings cost a refcount bump, not an allocation.
    Hashed(Arc<str>),
    /// Integer value; file sizes are already reduced to kilo-bytes.
    UInt(u64),
}

/// An anonymised file entry.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AnonFileEntry {
    /// Anonymised fileID.
    pub file: u64,
    /// Anonymised clientID of the provider.
    pub client: u32,
    /// TCP port (not sensitive).
    pub port: u16,
    /// Anonymised tags.
    pub tags: Vec<AnonTag>,
}

/// An anonymised search expression (structure preserved, strings hashed).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AnonSearchExpr {
    /// Boolean node.
    Bool {
        /// Connective ("and" / "or" / "andnot").
        op: &'static str,
        /// Left operand.
        left: Box<AnonSearchExpr>,
        /// Right operand.
        right: Box<AnonSearchExpr>,
    },
    /// Hashed keyword.
    Keyword(Arc<str>),
    /// Metadata string constraint with hashed value.
    MetaStr {
        /// Tag name in clear.
        name: Cow<'static, str>,
        /// MD5 hex of the required value.
        value: Arc<str>,
    },
    /// Numeric constraint (file sizes reduced to KB).
    MetaNum {
        /// Tag name in clear.
        name: Cow<'static, str>,
        /// ">=" or "<=".
        cmp: &'static str,
        /// Bound (KB for file sizes).
        value: u64,
    },
}

/// An anonymised message: same shape as [`Message`], sensitive fields
/// rewritten.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AnonMessage {
    /// Status request.
    StatusRequest {
        /// Echo token (not sensitive).
        challenge: u32,
    },
    /// Status answer.
    StatusResponse {
        /// Echo token.
        challenge: u32,
        /// Connected users.
        users: u32,
        /// Indexed files.
        files: u32,
    },
    /// Description request.
    ServerDescRequest,
    /// Description answer (hashed, per the paper: "server descriptions
    /// are encoded by their md5 hash code").
    ServerDescResponse {
        /// MD5 hex of the server name.
        name: Arc<str>,
        /// MD5 hex of the description.
        description: Arc<str>,
    },
    /// Server-list request.
    GetServerList,
    /// Server-list answer; server IPs are IP addresses and anonymised
    /// through the clientID encoder.
    ServerList {
        /// `(anon_ip, port)` pairs.
        servers: Vec<(u32, u16)>,
    },
    /// Search request.
    SearchRequest {
        /// Anonymised expression.
        expr: AnonSearchExpr,
    },
    /// Search answer.
    SearchResponse {
        /// Anonymised results.
        results: Vec<AnonFileEntry>,
    },
    /// Source request.
    GetSources {
        /// Anonymised fileIDs.
        files: Vec<u64>,
    },
    /// Source answer.
    FoundSources {
        /// Anonymised fileID.
        file: u64,
        /// `(anon_client, port)` pairs.
        sources: Vec<(u32, u16)>,
    },
    /// Announcement.
    OfferFiles {
        /// Announced files. The *announcing* client is the message
        /// sender, recorded in the record envelope.
        files: Vec<AnonFileEntry>,
    },
}

impl AnonMessage {
    /// Message family (same taxonomy as the cleartext message).
    pub fn family(&self) -> Family {
        match self {
            AnonMessage::StatusRequest { .. }
            | AnonMessage::StatusResponse { .. }
            | AnonMessage::ServerDescRequest
            | AnonMessage::ServerDescResponse { .. }
            | AnonMessage::GetServerList
            | AnonMessage::ServerList { .. } => Family::Management,
            AnonMessage::SearchRequest { .. } | AnonMessage::SearchResponse { .. } => {
                Family::FileSearch
            }
            AnonMessage::GetSources { .. } | AnonMessage::FoundSources { .. } => {
                Family::SourceSearch
            }
            AnonMessage::OfferFiles { .. } => Family::Announcement,
        }
    }

    /// True for client→server queries.
    pub fn is_query(&self) -> bool {
        matches!(
            self,
            AnonMessage::StatusRequest { .. }
                | AnonMessage::ServerDescRequest
                | AnonMessage::GetServerList
                | AnonMessage::SearchRequest { .. }
                | AnonMessage::GetSources { .. }
                | AnonMessage::OfferFiles { .. }
        )
    }
}

/// A dataset record: one anonymised message with its envelope.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AnonRecord {
    /// Microseconds since capture start.
    pub ts_us: u64,
    /// Anonymised clientID of the peer the server was talking to (the
    /// sender for queries, the recipient for answers).
    pub peer: u32,
    /// The anonymised message.
    pub msg: AnonMessage,
}

/// Per-batch aggregate returned by
/// [`AnonymizationScheme::anonymize_batch`], so a batched caller can
/// bump its telemetry counters once per batch instead of once per
/// record (the counter touches are the per-record overhead the batched
/// capture tail exists to hoist).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct BatchSummary {
    /// Records anonymised in this batch.
    pub records: u64,
    /// How many of them are client→server queries.
    pub queries: u64,
}

/// The full §2.4 anonymisation pipeline, holding the stateful encoders.
pub struct AnonymizationScheme<C, F> {
    clients: C,
    files: F,
    strings: StringAnonymizer,
}

/// The paper's configuration: direct array for clientIDs, bucketed sorted
/// arrays with the fixed byte selector for fileIDs.
pub type PaperScheme = AnonymizationScheme<DirectArrayAnonymizer, BucketedArrays>;

impl PaperScheme {
    /// Builds the paper's scheme with a clientID space of
    /// `client_width_bits` (32 = the paper's 16 GB table).
    pub fn paper(client_width_bits: u32) -> Self {
        AnonymizationScheme::new(
            DirectArrayAnonymizer::new(client_width_bits),
            BucketedArrays::new(ByteSelector::ALTERNATIVE),
        )
    }

    /// Rebuilds a scheme from checkpointed appearance orders (campaign
    /// resume). The string anonymiser needs no state: it is a pure
    /// function of its input (MD5), memoised only for speed.
    // etwlint: sanitize(raw-id): raw checkpoint orders are replayed into the encoders
    pub fn from_orders(
        client_width_bits: u32,
        selector: ByteSelector,
        clients: &[u32],
        files: &[etw_edonkey::ids::FileId],
    ) -> Self {
        AnonymizationScheme::new(
            DirectArrayAnonymizer::from_order(client_width_bits, clients),
            BucketedArrays::from_order(selector, files),
        )
    }
}

/// Renders a tag name — borrowed statics for the well-known special
/// names (the overwhelming majority of real traffic), `fmt` only for
/// the long tail.
fn tag_name(name: &TagName) -> Cow<'static, str> {
    match name.static_name() {
        Some(s) => Cow::Borrowed(s),
        None => Cow::Owned(name.to_string()),
    }
}

impl<C: ClientIdAnonymizer, F: FileIdAnonymizer> AnonymizationScheme<C, F> {
    /// Builds a scheme from explicit encoders (benchmarks swap baselines
    /// in here).
    pub fn new(clients: C, files: F) -> Self {
        AnonymizationScheme {
            clients,
            files,
            strings: StringAnonymizer::new(),
        }
    }

    /// Anonymises one message with its envelope.
    // etwlint: sanitize(raw-id): the paper scheme replaces every identifier
    pub fn anonymize(
        &mut self,
        ts_us: u64,
        peer: etw_edonkey::ClientId,
        msg: &Message,
    ) -> AnonRecord {
        AnonRecord {
            ts_us: crate::fields::anonymize_timestamp(ts_us),
            peer: self.clients.anonymize(peer),
            msg: self.anonymize_message(msg),
        }
    }

    /// Anonymises a batch of messages, appending to `out` (the caller
    /// recycles the `Vec` across batches, so steady state allocates
    /// nothing for the batch container itself).
    ///
    /// Equivalent to calling [`anonymize`](Self::anonymize) per item in
    /// order — the encoders are stateful, so order matters and is
    /// preserved — but returns the per-batch [`BatchSummary`] aggregate
    /// instead of making the caller classify every record again.
    // etwlint: sanitize(raw-id): per-item paper scheme over the batch
    pub fn anonymize_batch<'a, I>(&mut self, items: I, out: &mut Vec<AnonRecord>) -> BatchSummary
    where
        I: IntoIterator<Item = (u64, etw_edonkey::ClientId, &'a Message)>,
    {
        let mut summary = BatchSummary::default();
        for (ts_us, peer, msg) in items {
            let r = self.anonymize(ts_us, peer, msg);
            summary.records += 1;
            summary.queries += u64::from(r.msg.is_query());
            out.push(r);
        }
        summary
    }

    /// Like [`anonymize_batch`](Self::anonymize_batch), but `out` keeps
    /// whatever records it held from a previous batch and they are
    /// overwritten **in place**: strings, entry vectors and tag lists are
    /// reused whenever the old record has the same message shape, so the
    /// steady state allocates (almost) nothing per record. The caller
    /// must *not* clear `out` between batches — the stale records *are*
    /// the allocation pool. Produces exactly the records
    /// [`anonymize_batch`](Self::anonymize_batch) would.
    // etwlint: sanitize(raw-id): per-item paper scheme, slots reused in place
    pub fn anonymize_batch_reuse<'a, I>(
        &mut self,
        items: I,
        out: &mut Vec<AnonRecord>,
    ) -> BatchSummary
    where
        I: IntoIterator<Item = (u64, etw_edonkey::ClientId, &'a Message)>,
    {
        let mut summary = BatchSummary::default();
        let mut n = 0usize;
        for (ts_us, peer, msg) in items {
            summary.records += 1;
            // `anonymize` preserves query-ness (pinned by the
            // family_and_direction_preserved test), so classify from the
            // cleartext message and skip re-walking the anonymised one.
            summary.queries += u64::from(msg.is_client_to_server());
            if n < out.len() {
                self.anonymize_into(ts_us, peer, msg, &mut out[n]);
            } else {
                out.push(self.anonymize(ts_us, peer, msg));
            }
            n += 1;
        }
        out.truncate(n);
        summary
    }

    /// Anonymises one message into an existing record slot, reusing its
    /// heap allocations where the slot already holds the same message
    /// shape. Equivalent to `*slot = self.anonymize(ts_us, peer, msg)`.
    // etwlint: sanitize(raw-id): paper scheme into an existing record slot
    pub fn anonymize_into(
        &mut self,
        ts_us: u64,
        peer: etw_edonkey::ClientId,
        msg: &Message,
        slot: &mut AnonRecord,
    ) {
        slot.ts_us = crate::fields::anonymize_timestamp(ts_us);
        slot.peer = self.clients.anonymize(peer);
        self.anonymize_message_into(msg, &mut slot.msg);
    }

    /// Mutable access to both id encoders; the shard assembler pokes its
    /// pre-resolved value queues in here between batches.
    pub(crate) fn encoders_mut(&mut self) -> (&mut C, &mut F) {
        (&mut self.clients, &mut self.files)
    }

    /// Distinct clientIDs seen (dataset headline number).
    pub fn distinct_clients(&self) -> u32 {
        self.clients.distinct()
    }

    /// Distinct fileIDs seen (dataset headline number).
    pub fn distinct_files(&self) -> u64 {
        self.files.distinct()
    }

    /// The fileID encoder (Fig. 3 reads its bucket sizes).
    pub fn file_encoder(&self) -> &F {
        &self.files
    }

    /// The clientID encoder.
    pub fn client_encoder(&self) -> &C {
        &self.clients
    }

    fn anonymize_message(&mut self, msg: &Message) -> AnonMessage {
        match msg {
            Message::StatusRequest { challenge } => AnonMessage::StatusRequest {
                challenge: *challenge,
            },
            Message::StatusResponse {
                challenge,
                users,
                files,
            } => AnonMessage::StatusResponse {
                challenge: *challenge,
                users: *users,
                files: *files,
            },
            Message::ServerDescRequest => AnonMessage::ServerDescRequest,
            Message::ServerDescResponse { name, description } => AnonMessage::ServerDescResponse {
                name: self.strings.anonymize(name),
                description: self.strings.anonymize(description),
            },
            Message::GetServerList => AnonMessage::GetServerList,
            Message::ServerList { servers } => AnonMessage::ServerList {
                servers: servers
                    .iter()
                    .map(|s| (self.clients.anonymize(etw_edonkey::ClientId(s.ip)), s.port))
                    .collect(),
            },
            Message::SearchRequest { expr } => AnonMessage::SearchRequest {
                expr: self.anonymize_expr(expr),
            },
            Message::SearchResponse { results } => AnonMessage::SearchResponse {
                results: results.iter().map(|e| self.anonymize_entry(e)).collect(),
            },
            Message::GetSources { file_ids } => AnonMessage::GetSources {
                files: file_ids.iter().map(|id| self.files.anonymize(id)).collect(),
            },
            Message::FoundSources { file_id, sources } => AnonMessage::FoundSources {
                file: self.files.anonymize(file_id),
                sources: sources
                    .iter()
                    .map(|s| (self.clients.anonymize(s.client_id), s.port))
                    .collect(),
            },
            Message::OfferFiles { files } => AnonMessage::OfferFiles {
                files: files.iter().map(|e| self.anonymize_entry(e)).collect(),
            },
        }
    }

    fn anonymize_message_into(&mut self, msg: &Message, out: &mut AnonMessage) {
        match (msg, out) {
            (Message::StatusRequest { challenge }, AnonMessage::StatusRequest { challenge: c }) => {
                *c = *challenge;
            }
            (
                Message::StatusResponse {
                    challenge,
                    users,
                    files,
                },
                AnonMessage::StatusResponse {
                    challenge: c,
                    users: u,
                    files: f,
                },
            ) => {
                *c = *challenge;
                *u = *users;
                *f = *files;
            }
            (Message::ServerDescRequest, AnonMessage::ServerDescRequest) => {}
            (
                Message::ServerDescResponse { name, description },
                AnonMessage::ServerDescResponse {
                    name: n,
                    description: d,
                },
            ) => {
                *n = self.strings.anonymize(name);
                *d = self.strings.anonymize(description);
            }
            (Message::GetServerList, AnonMessage::GetServerList) => {}
            (Message::ServerList { servers }, AnonMessage::ServerList { servers: out }) => {
                let clients = &mut self.clients;
                out.clear();
                out.extend(
                    servers
                        .iter()
                        .map(|s| (clients.anonymize(etw_edonkey::ClientId(s.ip)), s.port)),
                );
            }
            (Message::SearchRequest { expr }, AnonMessage::SearchRequest { expr: e }) => {
                self.anonymize_expr_into(expr, e);
            }
            (Message::SearchResponse { results }, AnonMessage::SearchResponse { results: out }) => {
                self.anonymize_entries_into(results, out);
            }
            (Message::GetSources { file_ids }, AnonMessage::GetSources { files }) => {
                let enc = &mut self.files;
                files.clear();
                files.extend(file_ids.iter().map(|id| enc.anonymize(id)));
            }
            (
                Message::FoundSources { file_id, sources },
                AnonMessage::FoundSources { file, sources: out },
            ) => {
                *file = self.files.anonymize(file_id);
                let clients = &mut self.clients;
                out.clear();
                out.extend(
                    sources
                        .iter()
                        .map(|s| (clients.anonymize(s.client_id), s.port)),
                );
            }
            (Message::OfferFiles { files }, AnonMessage::OfferFiles { files: out }) => {
                self.anonymize_entries_into(files, out);
            }
            // Shape changed since the last use of this slot: build fresh.
            (m, out) => *out = self.anonymize_message(m),
        }
    }

    fn anonymize_entries_into(
        &mut self,
        entries: &[etw_edonkey::FileEntry],
        out: &mut Vec<AnonFileEntry>,
    ) {
        let keep = entries.len().min(out.len());
        for (e, slot) in entries.iter().zip(out.iter_mut()) {
            self.anonymize_entry_into(e, slot);
        }
        if entries.len() > keep {
            for e in &entries[keep..] {
                let fresh = self.anonymize_entry(e);
                out.push(fresh);
            }
        } else {
            out.truncate(entries.len());
        }
    }

    fn anonymize_entry_into(&mut self, e: &etw_edonkey::FileEntry, slot: &mut AnonFileEntry) {
        slot.file = self.files.anonymize(&e.file_id);
        slot.client = self.clients.anonymize(e.client_id);
        slot.port = e.port;
        let keep = e.tags.0.len().min(slot.tags.len());
        for (t, ts) in e.tags.0.iter().zip(slot.tags.iter_mut()) {
            self.anonymize_tag_into(t, ts);
        }
        if e.tags.0.len() > keep {
            for t in &e.tags.0[keep..] {
                let fresh = self.anonymize_tag(t);
                slot.tags.push(fresh);
            }
        } else {
            slot.tags.truncate(e.tags.0.len());
        }
    }

    fn anonymize_tag_into(&mut self, t: &Tag, out: &mut AnonTag) {
        // Names and hashed values are Cow/Arc: rebuilding the tag is as
        // cheap as patching it, so the reuse path is plain assignment.
        *out = self.anonymize_tag(t);
    }

    fn anonymize_expr_into(&mut self, e: &SearchExpr, out: &mut AnonSearchExpr) {
        match (e, out) {
            (
                SearchExpr::Bool { op, left, right },
                AnonSearchExpr::Bool {
                    op: o,
                    left: l,
                    right: r,
                },
            ) => {
                *o = match op {
                    BoolOp::And => "and",
                    BoolOp::Or => "or",
                    BoolOp::AndNot => "andnot",
                };
                self.anonymize_expr_into(left, l);
                self.anonymize_expr_into(right, r);
            }
            (SearchExpr::Keyword(k), AnonSearchExpr::Keyword(s)) => {
                *s = self.strings.anonymize(k);
            }
            (
                SearchExpr::MetaStr { name, value },
                AnonSearchExpr::MetaStr { name: n, value: v },
            ) => {
                *n = tag_name(name);
                *v = self.strings.anonymize(value);
            }
            (
                SearchExpr::MetaNum { name, cmp, value },
                AnonSearchExpr::MetaNum {
                    name: n,
                    cmp: c,
                    value: v,
                },
            ) => {
                *n = tag_name(name);
                *c = match cmp {
                    NumCmp::Min => ">=",
                    NumCmp::Max => "<=",
                };
                let is_filesize = matches!(name, TagName::Special(special::FILESIZE));
                *v = if is_filesize {
                    anonymize_filesize(*value as u64)
                } else {
                    *value as u64
                };
            }
            (e, out) => *out = self.anonymize_expr(e),
        }
    }

    fn anonymize_entry(&mut self, e: &etw_edonkey::FileEntry) -> AnonFileEntry {
        AnonFileEntry {
            file: self.files.anonymize(&e.file_id),
            client: self.clients.anonymize(e.client_id),
            port: e.port,
            tags: e.tags.0.iter().map(|t| self.anonymize_tag(t)).collect(),
        }
    }

    fn anonymize_tag(&mut self, t: &Tag) -> AnonTag {
        let is_filesize = matches!(t.name, TagName::Special(special::FILESIZE));
        let value = match &t.value {
            TagValue::Str(s) => AnonTagValue::Hashed(self.strings.anonymize(s)),
            TagValue::U32(v) if is_filesize => AnonTagValue::UInt(anonymize_filesize(*v as u64)),
            TagValue::U32(v) => AnonTagValue::UInt(*v as u64),
        };
        AnonTag {
            name: tag_name(&t.name),
            value,
        }
    }

    fn anonymize_expr(&mut self, e: &SearchExpr) -> AnonSearchExpr {
        match e {
            SearchExpr::Bool { op, left, right } => AnonSearchExpr::Bool {
                op: match op {
                    BoolOp::And => "and",
                    BoolOp::Or => "or",
                    BoolOp::AndNot => "andnot",
                },
                left: Box::new(self.anonymize_expr(left)),
                right: Box::new(self.anonymize_expr(right)),
            },
            SearchExpr::Keyword(k) => AnonSearchExpr::Keyword(self.strings.anonymize(k)),
            SearchExpr::MetaStr { name, value } => AnonSearchExpr::MetaStr {
                name: tag_name(name),
                value: self.strings.anonymize(value),
            },
            SearchExpr::MetaNum { name, cmp, value } => {
                let is_filesize = matches!(name, TagName::Special(special::FILESIZE));
                AnonSearchExpr::MetaNum {
                    name: tag_name(name),
                    cmp: match cmp {
                        NumCmp::Min => ">=",
                        NumCmp::Max => "<=",
                    },
                    value: if is_filesize {
                        anonymize_filesize(*value as u64)
                    } else {
                        *value as u64
                    },
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fields::anonymize_string;
    use etw_edonkey::ids::{ClientId, FileId};
    use etw_edonkey::messages::{FileEntry, Source};
    use etw_edonkey::tags::TagList;

    fn scheme() -> PaperScheme {
        PaperScheme::paper(16)
    }

    #[test]
    fn peer_and_ids_are_order_of_appearance() {
        let mut s = scheme();
        let m = Message::GetSources {
            file_ids: vec![FileId([1; 16]), FileId([2; 16]), FileId([1; 16])],
        };
        let r = s.anonymize(10, ClientId(100), &m);
        assert_eq!(r.peer, 0);
        assert_eq!(r.ts_us, 10);
        match r.msg {
            AnonMessage::GetSources { files } => assert_eq!(files, vec![0, 1, 0]),
            other => panic!("{other:?}"),
        }
        // Second message from another peer.
        let r2 = s.anonymize(20, ClientId(200), &m);
        assert_eq!(r2.peer, 1);
        assert_eq!(s.distinct_clients(), 2);
        assert_eq!(s.distinct_files(), 2);
    }

    #[test]
    fn filenames_hashed_filesizes_in_kb() {
        let mut s = scheme();
        let entry = FileEntry {
            file_id: FileId([9; 16]),
            client_id: ClientId(5),
            port: 4662,
            tags: TagList(vec![
                Tag::str(special::FILENAME, "secret song.mp3"),
                Tag::u32(special::FILESIZE, 5 * 1024 * 1024),
                Tag::u32(special::SOURCES, 3),
            ]),
        };
        let r = s.anonymize(0, ClientId(5), &Message::OfferFiles { files: vec![entry] });
        match r.msg {
            AnonMessage::OfferFiles { files } => {
                let tags = &files[0].tags;
                assert_eq!(
                    tags[0].value,
                    AnonTagValue::Hashed(anonymize_string("secret song.mp3").into())
                );
                assert_eq!(tags[1].value, AnonTagValue::UInt(5 * 1024));
                // SOURCES count is not a filesize: passes through.
                assert_eq!(tags[2].value, AnonTagValue::UInt(3));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn search_strings_hashed_structure_kept() {
        let mut s = scheme();
        let expr = SearchExpr::and(
            SearchExpr::keyword("pink floyd"),
            SearchExpr::MetaNum {
                name: TagName::Special(special::FILESIZE),
                cmp: NumCmp::Min,
                value: 2048,
            },
        );
        let r = s.anonymize(0, ClientId(1), &Message::SearchRequest { expr });
        match r.msg {
            AnonMessage::SearchRequest {
                expr: AnonSearchExpr::Bool { op, left, right },
            } => {
                assert_eq!(op, "and");
                assert_eq!(
                    *left,
                    AnonSearchExpr::Keyword(anonymize_string("pink floyd").into())
                );
                assert_eq!(
                    *right,
                    AnonSearchExpr::MetaNum {
                        name: "filesize".into(),
                        cmp: ">=",
                        value: 2, // 2048 bytes → 2 KB
                    }
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn same_string_same_hash_across_messages() {
        let mut s = scheme();
        let q = Message::SearchRequest {
            expr: SearchExpr::keyword("beatles"),
        };
        let r1 = s.anonymize(0, ClientId(1), &q);
        let r2 = s.anonymize(1, ClientId(2), &q);
        let k = |r: &AnonRecord| match &r.msg {
            AnonMessage::SearchRequest {
                expr: AnonSearchExpr::Keyword(k),
            } => k.clone(),
            other => panic!("{other:?}"),
        };
        // Coherence: the dataset remains joinable on hashed strings.
        assert_eq!(k(&r1), k(&r2));
    }

    #[test]
    fn found_sources_encode_providers() {
        let mut s = scheme();
        let m = Message::FoundSources {
            file_id: FileId([3; 16]),
            sources: vec![
                Source {
                    client_id: ClientId(1000),
                    port: 4662,
                },
                Source {
                    client_id: ClientId(2000),
                    port: 4672,
                },
            ],
        };
        // peer is a third client
        let r = s.anonymize(0, ClientId(3000), &m);
        match r.msg {
            AnonMessage::FoundSources { file, sources } => {
                assert_eq!(file, 0);
                // peer got 0, then providers 1 and 2
                assert_eq!(sources, vec![(1, 4662), (2, 4672)]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn server_desc_hashed() {
        let mut s = scheme();
        let m = Message::ServerDescResponse {
            name: "DonkeyServer No1".into(),
            description: "we index things".into(),
        };
        let r = s.anonymize(0, ClientId(1), &m);
        match r.msg {
            AnonMessage::ServerDescResponse { name, description } => {
                assert_eq!(&*name, anonymize_string("DonkeyServer No1"));
                assert_eq!(&*description, anonymize_string("we index things"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn export_restore_round_trips_encoder_state() {
        // Drive a scheme, export the appearance orders, rebuild, and
        // check the rebuilt scheme continues encoding identically.
        let mut a = scheme();
        for i in 0..300u64 {
            let m = Message::GetSources {
                file_ids: vec![FileId::of_identity(i % 40)],
            };
            a.anonymize(i, ClientId((i % 23) as u32), &m);
        }
        let clients = a.client_encoder().appearance_order();
        let files = a.file_encoder().appearance_order();
        assert_eq!(clients.len() as u32, a.distinct_clients());
        assert_eq!(files.len() as u64, a.distinct_files());
        let mut b = PaperScheme::from_orders(16, a.file_encoder().selector(), &clients, &files);
        assert_eq!(b.distinct_clients(), a.distinct_clients());
        assert_eq!(b.distinct_files(), a.distinct_files());
        for i in 300..400u64 {
            let m = Message::GetSources {
                file_ids: vec![FileId::of_identity(i % 60)],
            };
            let ra = a.anonymize(i, ClientId((i % 29) as u32), &m);
            let rb = b.anonymize(i, ClientId((i % 29) as u32), &m);
            assert_eq!(ra, rb, "restored scheme diverged at {i}");
        }
    }

    #[test]
    fn batch_equals_per_record_sequence() {
        let msgs: Vec<(u64, ClientId, Message)> = (0..200u64)
            .map(|i| {
                let m = match i % 3 {
                    0 => Message::GetSources {
                        file_ids: vec![FileId::of_identity(i % 17)],
                    },
                    1 => Message::SearchRequest {
                        expr: SearchExpr::keyword("abba"),
                    },
                    _ => Message::StatusResponse {
                        challenge: i as u32,
                        users: 1,
                        files: 2,
                    },
                };
                (i, ClientId((i % 11) as u32), m)
            })
            .collect();

        // Reference: one record at a time.
        let mut serial = scheme();
        let expected: Vec<AnonRecord> = msgs
            .iter()
            .map(|(ts, peer, m)| serial.anonymize(*ts, *peer, m))
            .collect();
        let expected_queries = expected.iter().filter(|r| r.msg.is_query()).count() as u64;

        // Batched, in uneven chunks, recycling the output Vec.
        let mut batched = scheme();
        let mut got = Vec::new();
        let mut out = Vec::new();
        let mut total = BatchSummary::default();
        for chunk in msgs.chunks(23) {
            out.clear();
            let s = batched
                .anonymize_batch(chunk.iter().map(|(ts, peer, m)| (*ts, *peer, m)), &mut out);
            assert_eq!(s.records, chunk.len() as u64);
            total.records += s.records;
            total.queries += s.queries;
            got.extend(out.iter().cloned());
        }
        assert_eq!(got, expected);
        assert_eq!(total.records, expected.len() as u64);
        assert_eq!(total.queries, expected_queries);
        assert_eq!(batched.distinct_clients(), serial.distinct_clients());
        assert_eq!(batched.distinct_files(), serial.distinct_files());
    }

    #[test]
    fn batch_reuse_equals_fresh_construction() {
        // Cycle every message shape so slot reuse hits both the
        // matched-variant arms and the shape-mismatch fallback, with
        // growing and shrinking vectors/tag lists.
        let entry = |i: u64, ntags: usize| FileEntry {
            file_id: FileId::of_identity(i % 13),
            client_id: ClientId((i % 7) as u32),
            port: 4662,
            tags: TagList(
                (0..ntags)
                    .map(|t| {
                        if t % 2 == 0 {
                            Tag::str(special::FILENAME, format!("file {}.mp3", i % 9))
                        } else {
                            Tag::u32(special::FILESIZE, (i as u32 + 1) * 1024)
                        }
                    })
                    .collect(),
            ),
        };
        let msgs: Vec<(u64, ClientId, Message)> = (0..400u64)
            .map(|i| {
                let m = match i % 11 {
                    0 => Message::StatusRequest {
                        challenge: i as u32,
                    },
                    1 => Message::StatusResponse {
                        challenge: i as u32,
                        users: 9,
                        files: 22,
                    },
                    2 => Message::ServerDescRequest,
                    3 => Message::ServerDescResponse {
                        name: format!("server {}", i % 3),
                        description: "we index things".into(),
                    },
                    4 => Message::GetServerList,
                    5 => Message::ServerList {
                        servers: (0..(i % 4))
                            .map(|k| etw_edonkey::messages::ServerAddr {
                                ip: (k as u32) + 1,
                                port: 4661,
                            })
                            .collect(),
                    },
                    6 => Message::SearchRequest {
                        expr: if i % 2 == 0 {
                            SearchExpr::keyword(format!("band {}", i % 5))
                        } else {
                            SearchExpr::and(
                                SearchExpr::keyword("live"),
                                SearchExpr::MetaNum {
                                    name: TagName::Special(special::FILESIZE),
                                    cmp: NumCmp::Min,
                                    value: 2048,
                                },
                            )
                        },
                    },
                    7 => Message::SearchResponse {
                        results: (0..(i % 3))
                            .map(|k| entry(i + k, (i % 4) as usize))
                            .collect(),
                    },
                    8 => Message::GetSources {
                        file_ids: (0..(i % 5)).map(|k| FileId::of_identity(k % 17)).collect(),
                    },
                    9 => Message::FoundSources {
                        file_id: FileId::of_identity(i % 19),
                        sources: (0..(i % 4))
                            .map(|k| Source {
                                client_id: ClientId((k % 6) as u32 + 50),
                                port: 4662,
                            })
                            .collect(),
                    },
                    _ => Message::OfferFiles {
                        files: (0..(i % 2 + 1)).map(|k| entry(i + k, 3)).collect(),
                    },
                };
                (i, ClientId((i % 11) as u32), m)
            })
            .collect();

        let mut fresh = scheme();
        let mut reuse = scheme();
        let mut out = Vec::new();
        for chunk in msgs.chunks(37) {
            let mut expected = Vec::new();
            let se = fresh.anonymize_batch(
                chunk.iter().map(|(ts, peer, m)| (*ts, *peer, m)),
                &mut expected,
            );
            // NOTE: `out` is deliberately NOT cleared — stale records are
            // the reuse pool.
            let sr = reuse
                .anonymize_batch_reuse(chunk.iter().map(|(ts, peer, m)| (*ts, *peer, m)), &mut out);
            assert_eq!(out, expected);
            assert_eq!(sr, se);
        }
        assert_eq!(reuse.distinct_clients(), fresh.distinct_clients());
        assert_eq!(reuse.distinct_files(), fresh.distinct_files());
    }

    #[test]
    fn family_and_direction_preserved() {
        let mut s = scheme();
        let cases: Vec<Message> = vec![
            Message::StatusRequest { challenge: 1 },
            Message::SearchRequest {
                expr: SearchExpr::keyword("x"),
            },
            Message::OfferFiles { files: vec![] },
        ];
        for m in cases {
            let r = s.anonymize(0, ClientId(1), &m);
            assert_eq!(r.msg.family(), m.family());
            assert_eq!(r.msg.is_query(), m.is_client_to_server());
        }
    }
}
