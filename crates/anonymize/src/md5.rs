//! MD5 message digest (RFC 1321), implemented from scratch.
//!
//! The paper anonymises "search strings, filenames, and server
//! descriptions … by their md5 hash code, which provides satisfying
//! anonymisation while keeping a coherent dataset" (§2.4). This is that
//! hash. Validated against every RFC 1321 appendix A.5 test vector.

/// Digest size in bytes.
pub const DIGEST_LEN: usize = 16;

const BLOCK_LEN: usize = 64;

/// Per-round left-rotation amounts.
const S: [u32; 64] = [
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, //
    5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, //
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, //
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
];

/// Binary integer parts of abs(sin(i+1)) * 2^32 (RFC 1321 T table).
const K: [u32; 64] = [
    0xd76a_a478,
    0xe8c7_b756,
    0x2420_70db,
    0xc1bd_ceee, //
    0xf57c_0faf,
    0x4787_c62a,
    0xa830_4613,
    0xfd46_9501, //
    0x6980_98d8,
    0x8b44_f7af,
    0xffff_5bb1,
    0x895c_d7be, //
    0x6b90_1122,
    0xfd98_7193,
    0xa679_438e,
    0x49b4_0821, //
    0xf61e_2562,
    0xc040_b340,
    0x265e_5a51,
    0xe9b6_c7aa, //
    0xd62f_105d,
    0x0244_1453,
    0xd8a1_e681,
    0xe7d3_fbc8, //
    0x21e1_cde6,
    0xc337_07d6,
    0xf4d5_0d87,
    0x455a_14ed, //
    0xa9e3_e905,
    0xfcef_a3f8,
    0x676f_02d9,
    0x8d2a_4c8a, //
    0xfffa_3942,
    0x8771_f681,
    0x6d9d_6122,
    0xfde5_380c, //
    0xa4be_ea44,
    0x4bde_cfa9,
    0xf6bb_4b60,
    0xbebf_bc70, //
    0x289b_7ec6,
    0xeaa1_27fa,
    0xd4ef_3085,
    0x0488_1d05, //
    0xd9d4_d039,
    0xe6db_99e5,
    0x1fa2_7cf8,
    0xc4ac_5665, //
    0xf429_2244,
    0x432a_ff97,
    0xab94_23a7,
    0xfc93_a039, //
    0x655b_59c3,
    0x8f0c_cc92,
    0xffef_f47d,
    0x8584_5dd1, //
    0x6fa8_7e4f,
    0xfe2c_e6e0,
    0xa301_4314,
    0x4e08_11a1, //
    0xf753_7e82,
    0xbd3a_f235,
    0x2ad7_d2bb,
    0xeb86_d391,
];

/// Incremental MD5 hasher.
#[derive(Clone)]
pub struct Md5 {
    state: [u32; 4],
    len: u64,
    buf: [u8; BLOCK_LEN],
    buf_len: usize,
}

impl Default for Md5 {
    fn default() -> Self {
        Self::new()
    }
}

impl Md5 {
    /// Creates a hasher in the RFC 1321 initial state.
    pub fn new() -> Self {
        Md5 {
            state: [0x6745_2301, 0xefcd_ab89, 0x98ba_dcfe, 0x1032_5476],
            len: 0,
            buf: [0u8; BLOCK_LEN],
            buf_len: 0,
        }
    }

    /// Absorbs `data`.
    pub fn update(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.buf_len > 0 {
            let take = (BLOCK_LEN - self.buf_len).min(rest.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len == BLOCK_LEN {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while rest.len() >= BLOCK_LEN {
            let (block, tail) = rest.split_at(BLOCK_LEN);
            let mut b = [0u8; BLOCK_LEN];
            b.copy_from_slice(block);
            self.compress(&b);
            rest = tail;
        }
        if !rest.is_empty() {
            self.buf[..rest.len()].copy_from_slice(rest);
            self.buf_len = rest.len();
        }
    }

    /// Pads and returns the digest.
    pub fn finalize(mut self) -> [u8; DIGEST_LEN] {
        let bit_len = self.len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buf_len != BLOCK_LEN - 8 {
            self.update(&[0]);
        }
        self.len = 0;
        self.update(&bit_len.to_le_bytes());
        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; BLOCK_LEN]) {
        let mut m = [0u32; 16];
        for (i, w) in m.iter_mut().enumerate() {
            *w = u32::from_le_bytes([
                block[i * 4],
                block[i * 4 + 1],
                block[i * 4 + 2],
                block[i * 4 + 3],
            ]);
        }
        let [mut a, mut b, mut c, mut d] = self.state;
        for i in 0..64 {
            let (f, g) = match i / 16 {
                0 => ((b & c) | (!b & d), i),
                1 => ((d & b) | (!d & c), (5 * i + 1) % 16),
                2 => (b ^ c ^ d, (3 * i + 5) % 16),
                _ => (c ^ (b | !d), (7 * i) % 16),
            };
            let tmp = d;
            d = c;
            c = b;
            b = b.wrapping_add(
                a.wrapping_add(f)
                    .wrapping_add(K[i])
                    .wrapping_add(m[g])
                    .rotate_left(S[i]),
            );
            a = tmp;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
    }
}

/// One-shot MD5.
pub fn md5(data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut h = Md5::new();
    h.update(data);
    h.finalize()
}

/// Hex rendering of a digest (the form stored in the XML dataset).
pub fn hex_digest(d: &[u8; DIGEST_LEN]) -> String {
    let mut s = String::with_capacity(32);
    for b in d {
        use std::fmt::Write;
        let _ = write!(s, "{b:02x}");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1321_vectors() {
        let cases: &[(&[u8], &str)] = &[
            (b"", "d41d8cd98f00b204e9800998ecf8427e"),
            (b"a", "0cc175b9c0f1b6a831c399e269772661"),
            (b"abc", "900150983cd24fb0d6963f7d28e17f72"),
            (b"message digest", "f96b697d7cb7938d525a2f31aaf161d0"),
            (
                b"abcdefghijklmnopqrstuvwxyz",
                "c3fcd3d76192e4007dfb496cca67e13b",
            ),
            (
                b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
                "d174ab98d277d9f5a5611c2c9f419d9f",
            ),
            (
                b"12345678901234567890123456789012345678901234567890123456789012345678901234567890",
                "57edf4a22be3c955ac49da2e2107b67a",
            ),
        ];
        for (input, want) in cases {
            assert_eq!(hex_digest(&md5(input)), *want, "input {input:?}");
        }
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0u32..777).map(|i| (i % 253) as u8).collect();
        let whole = md5(&data);
        for chunk in [1usize, 7, 63, 64, 65, 200] {
            let mut h = Md5::new();
            for p in data.chunks(chunk) {
                h.update(p);
            }
            assert_eq!(h.finalize(), whole, "chunk {chunk}");
        }
    }

    #[test]
    fn padding_boundaries() {
        for n in [55usize, 56, 63, 64, 119, 120, 128] {
            let data = vec![0x5au8; n];
            let d = md5(&data);
            let mut h = Md5::new();
            h.update(&data[..n / 3]);
            h.update(&data[n / 3..]);
            assert_eq!(h.finalize(), d, "len {n}");
        }
    }

    #[test]
    fn hex_digest_formats() {
        assert_eq!(hex_digest(&[0u8; 16]), "0".repeat(32));
        assert_eq!(hex_digest(&[0xff; 16]), "f".repeat(32));
    }
}
