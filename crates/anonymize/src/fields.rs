//! Field-level anonymisers (paper §2.4).
//!
//! * file sizes: stored in kilo-bytes instead of bytes — "this precision
//!   reduction seems enough to protect this information";
//! * strings (search strings, filenames, server descriptions): replaced
//!   by their MD5 hex digest;
//! * timestamps: replaced by time elapsed since the capture began (our
//!   virtual clock is already relative, so this is the identity — kept
//!   explicit so the policy is visible and testable).

use crate::md5::{hex_digest, md5};

/// Reduces a byte-precise file size to kilo-bytes (floor division, the
/// paper's "precision reduction").
#[inline]
// etwlint: sanitize(raw-id): precision reduction is the published policy for sizes
pub fn anonymize_filesize(bytes: u64) -> u64 {
    bytes / 1024
}

/// Replaces a string by its MD5 hex digest.
// etwlint: sanitize(raw-id): MD5 digest replaces the cleartext string
pub fn anonymize_string(s: &str) -> String {
    hex_digest(&md5(s.as_bytes()))
}

/// Timestamps: the dataset stores time elapsed since the beginning of the
/// capture, in microseconds. Virtual time is already origin-relative;
/// this function documents (and pins in tests) that no absolute time may
/// leak.
#[inline]
// etwlint: sanitize(raw-id): capture-relative time carries no absolute timestamp
pub fn anonymize_timestamp(relative_us: u64) -> u64 {
    relative_us
}

/// A memoising string anonymiser: real traffic repeats the same filenames
/// and keywords enormously (popular files are announced by thousands of
/// clients), so hashing each occurrence is wasted work. The cache maps
/// seen strings to their digests.
#[derive(Default)]
pub struct StringAnonymizer {
    cache: std::collections::HashMap<String, String>,
    hits: u64,
    misses: u64,
}

impl StringAnonymizer {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the MD5 hex of `s`, memoised.
    // etwlint: sanitize(raw-id): memoised MD5 digest of the string
    pub fn anonymize(&mut self, s: &str) -> String {
        if let Some(d) = self.cache.get(s) {
            self.hits += 1;
            return d.clone();
        }
        self.misses += 1;
        let d = anonymize_string(s);
        self.cache.insert(s.to_owned(), d.clone());
        d
    }

    /// [`anonymize`](Self::anonymize) into an existing `String`, reusing
    /// its buffer. Digests are exactly 32 hex characters, so once a slot
    /// has held one digest every later write fits its capacity and the
    /// hit path allocates nothing.
    // etwlint: sanitize(raw-id): memoised MD5 digest, written in place
    pub fn anonymize_into(&mut self, s: &str, out: &mut String) {
        if let Some(d) = self.cache.get(s) {
            self.hits += 1;
            d.clone_into(out);
            return;
        }
        self.misses += 1;
        let d = anonymize_string(s);
        d.clone_into(out);
        self.cache.insert(s.to_owned(), d);
    }

    /// `(cache_hits, cache_misses)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Number of distinct strings seen.
    pub fn distinct(&self) -> usize {
        self.cache.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filesize_floor_to_kb() {
        assert_eq!(anonymize_filesize(0), 0);
        assert_eq!(anonymize_filesize(1023), 0);
        assert_eq!(anonymize_filesize(1024), 1);
        assert_eq!(anonymize_filesize(700 * 1024 * 1024), 700 * 1024);
        // Two files differing only below 1 KB become indistinguishable —
        // the privacy property the paper relies on.
        assert_eq!(anonymize_filesize(5000), anonymize_filesize(5120 - 1));
    }

    #[test]
    fn string_is_md5_hex() {
        assert_eq!(anonymize_string("abc"), "900150983cd24fb0d6963f7d28e17f72");
        assert_eq!(anonymize_string("").len(), 32);
    }

    #[test]
    fn timestamps_stay_relative() {
        assert_eq!(anonymize_timestamp(0), 0);
        assert_eq!(anonymize_timestamp(123_456), 123_456);
    }

    #[test]
    fn cache_consistency() {
        let mut a = StringAnonymizer::new();
        let d1 = a.anonymize("blue oyster cult");
        let d2 = a.anonymize("blue oyster cult");
        assert_eq!(d1, d2);
        assert_eq!(d1, anonymize_string("blue oyster cult"));
        assert_eq!(a.stats(), (1, 1));
        assert_eq!(a.distinct(), 1);
        a.anonymize("other");
        assert_eq!(a.distinct(), 2);
    }
}
