//! Field-level anonymisers (paper §2.4).
//!
//! * file sizes: stored in kilo-bytes instead of bytes — "this precision
//!   reduction seems enough to protect this information";
//! * strings (search strings, filenames, server descriptions): replaced
//!   by their MD5 hex digest;
//! * timestamps: replaced by time elapsed since the capture began (our
//!   virtual clock is already relative, so this is the identity — kept
//!   explicit so the policy is visible and testable).

use crate::md5::{hex_digest, md5};

/// Reduces a byte-precise file size to kilo-bytes (floor division, the
/// paper's "precision reduction").
#[inline]
// etwlint: sanitize(raw-id): precision reduction is the published policy for sizes
pub fn anonymize_filesize(bytes: u64) -> u64 {
    bytes / 1024
}

/// Replaces a string by its MD5 hex digest.
// etwlint: sanitize(raw-id): MD5 digest replaces the cleartext string
pub fn anonymize_string(s: &str) -> String {
    hex_digest(&md5(s.as_bytes()))
}

/// Timestamps: the dataset stores time elapsed since the beginning of the
/// capture, in microseconds. Virtual time is already origin-relative;
/// this function documents (and pins in tests) that no absolute time may
/// leak.
#[inline]
// etwlint: sanitize(raw-id): capture-relative time carries no absolute timestamp
pub fn anonymize_timestamp(relative_us: u64) -> u64 {
    relative_us
}

/// Multiply-xor string hasher (the rustc/Firefox "Fx" construction).
/// Cache keys here are short filenames and keywords, where SipHash's
/// per-call setup dominates the whole lookup; this hash is a handful of
/// cycles per 8-byte chunk. Not DoS-resistant — fine for a cache keyed
/// by our own synthetic traffic.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl std::hash::Hasher for FxHasher {
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            let w = u64::from_le_bytes(c.try_into().unwrap());
            self.hash = (self.hash.rotate_left(5) ^ w).wrapping_mul(FX_SEED);
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            let w = u64::from_le_bytes(buf);
            self.hash = (self.hash.rotate_left(5) ^ w).wrapping_mul(FX_SEED);
        }
    }

    fn write_u8(&mut self, b: u8) {
        self.hash = (self.hash.rotate_left(5) ^ u64::from(b)).wrapping_mul(FX_SEED);
    }

    fn finish(&self) -> u64 {
        self.hash
    }
}

/// [`BuildHasher`](std::hash::BuildHasher) for [`FxHasher`].
pub type FxBuildHasher = std::hash::BuildHasherDefault<FxHasher>;

/// A memoising string anonymiser: real traffic repeats the same filenames
/// and keywords enormously (popular files are announced by thousands of
/// clients), so hashing each occurrence is wasted work. The cache maps
/// seen strings to their digests. Digests are handed out as `Arc<str>`:
/// the hit path is a lookup plus a refcount bump, no allocation.
#[derive(Default)]
pub struct StringAnonymizer {
    cache: std::collections::HashMap<Box<str>, std::sync::Arc<str>, FxBuildHasher>,
    hits: u64,
    misses: u64,
}

impl StringAnonymizer {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the MD5 hex of `s`, memoised.
    // etwlint: sanitize(raw-id): memoised MD5 digest of the string
    pub fn anonymize(&mut self, s: &str) -> std::sync::Arc<str> {
        if let Some(d) = self.cache.get(s) {
            self.hits += 1;
            return d.clone();
        }
        self.misses += 1;
        let d: std::sync::Arc<str> = anonymize_string(s).into();
        self.cache.insert(s.into(), d.clone());
        d
    }

    /// `(cache_hits, cache_misses)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Number of distinct strings seen.
    pub fn distinct(&self) -> usize {
        self.cache.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filesize_floor_to_kb() {
        assert_eq!(anonymize_filesize(0), 0);
        assert_eq!(anonymize_filesize(1023), 0);
        assert_eq!(anonymize_filesize(1024), 1);
        assert_eq!(anonymize_filesize(700 * 1024 * 1024), 700 * 1024);
        // Two files differing only below 1 KB become indistinguishable —
        // the privacy property the paper relies on.
        assert_eq!(anonymize_filesize(5000), anonymize_filesize(5120 - 1));
    }

    #[test]
    fn string_is_md5_hex() {
        assert_eq!(anonymize_string("abc"), "900150983cd24fb0d6963f7d28e17f72");
        assert_eq!(anonymize_string("").len(), 32);
    }

    #[test]
    fn timestamps_stay_relative() {
        assert_eq!(anonymize_timestamp(0), 0);
        assert_eq!(anonymize_timestamp(123_456), 123_456);
    }

    #[test]
    fn cache_consistency() {
        let mut a = StringAnonymizer::new();
        let d1 = a.anonymize("blue oyster cult");
        let d2 = a.anonymize("blue oyster cult");
        assert_eq!(d1, d2);
        assert_eq!(&*d1, anonymize_string("blue oyster cult"));
        assert_eq!(a.stats(), (1, 1));
        assert_eq!(a.distinct(), 1);
        a.anonymize("other");
        assert_eq!(a.distinct(), 2);
    }
}
