//! fileID anonymisation by order of appearance (paper §2.4, Fig. 3).
//!
//! fileIDs are 128-bit MD4 digests, so the clientID direct-array trick is
//! impossible. The paper's solution: exploit MD4 uniformity by splitting
//! one huge sorted array into 65 536 small sorted arrays indexed by two
//! bytes of the fileID; each bucket stays short (≈1 500 entries at their
//! 88 M-fileID scale), so sorted insertion stays affordable and lookup is
//! a binary search.
//!
//! The paper's twist — and their Fig. 3 — is that indexing by the *first*
//! two bytes fails in practice: forged (polluted) fileIDs concentrate in
//! buckets 0 and 256, which balloon and "strongly hamper" the
//! computation. Choosing two *other* bytes restores near-uniformity.
//! [`ByteSelector`] makes the choice explicit, and
//! [`BucketedArrays::bucket_sizes`] exposes the distribution Fig. 3
//! plots.
//!
//! Baselines for ablation A2: [`SingleSortedArray`] (the "prohibitive
//! insertion" strawman the paper dismisses) and [`HashMapFileAnonymizer`]
//! (the classical structure).

use etw_edonkey::ids::FileId;
use std::collections::HashMap;

/// Order-of-appearance encoder for fileIDs.
pub trait FileIdAnonymizer {
    /// Returns the anonymised value for `id`, assigning the next integer
    /// on first sight.
    fn anonymize(&mut self, id: &FileId) -> u64;

    /// Number of distinct fileIDs seen so far. The paper makes a point of
    /// how non-trivial this count is at scale ("like for instance
    /// counting the number of distinct fileID observed"); with
    /// order-of-appearance encoding it falls out for free.
    fn distinct(&self) -> u64;

    /// Looks up without inserting.
    fn lookup(&self, id: &FileId) -> Option<u64>;

    /// Implementation name for reports.
    fn name(&self) -> &'static str;
}

/// Which two bytes of the 16-byte fileID index the 65 536 buckets.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ByteSelector {
    /// Byte supplying the high 8 bits of the bucket index.
    pub hi: usize,
    /// Byte supplying the low 8 bits.
    pub lo: usize,
}

impl ByteSelector {
    /// The paper's first attempt: index by the first two bytes. Under
    /// pollution this is the pathological choice of Fig. 3 (left).
    pub const FIRST_TWO: ByteSelector = ByteSelector { hi: 1, lo: 0 };

    /// The paper's fix: "selecting two different bytes in the fileID".
    /// Forged IDs only fix their first bytes, so any interior pair works;
    /// we pick bytes 5 and 9.
    pub const ALTERNATIVE: ByteSelector = ByteSelector { hi: 9, lo: 5 };

    /// Builds a selector, checking byte positions.
    pub fn new(hi: usize, lo: usize) -> Self {
        assert!(hi < 16 && lo < 16 && hi != lo, "invalid byte selector");
        ByteSelector { hi, lo }
    }

    /// Bucket index of `id` under this selector.
    #[inline]
    pub fn index(&self, id: &FileId) -> usize {
        ((id.byte(self.hi) as usize) << 8) | id.byte(self.lo) as usize
    }
}

/// Number of buckets (two index bytes).
pub const NUM_BUCKETS: usize = 1 << 16;

/// Running work counters for a [`BucketedArrays`] store: how deep its
/// binary searches probe and how much sorted insertion shifts. This is
/// the per-operation cost Fig. 3 is about — under a bad selector the
/// oversized buckets show up here as growing probe depths and shift
/// distances long before wall-clock time degrades visibly.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct ProbeStats {
    /// Encode operations performed (`anonymize` calls).
    pub probes: u64,
    /// Total binary-search comparisons across all probes.
    pub comparisons: u64,
    /// Deepest single probe, in comparisons.
    pub max_probe_depth: u64,
    /// First-sight insertions.
    pub inserts: u64,
    /// Total elements shifted right by sorted insertions.
    pub shifted: u64,
    /// Largest single insertion shift.
    pub max_shift: u64,
}

/// The paper's structure: 65 536 sorted arrays of `(fileID, value)`.
pub struct BucketedArrays {
    selector: ByteSelector,
    buckets: Vec<Vec<(FileId, u64)>>,
    next: u64,
    probe_stats: ProbeStats,
}

impl BucketedArrays {
    /// Creates an empty store indexed by `selector`.
    pub fn new(selector: ByteSelector) -> Self {
        BucketedArrays {
            selector,
            buckets: vec![Vec::new(); NUM_BUCKETS],
            next: 0,
            probe_stats: ProbeStats::default(),
        }
    }

    /// Accumulated probe/insertion work counters.
    pub fn probe_stats(&self) -> ProbeStats {
        self.probe_stats
    }

    /// The selector in use.
    pub fn selector(&self) -> ByteSelector {
        self.selector
    }

    /// Sizes of all 65 536 buckets — the data behind Fig. 3.
    pub fn bucket_sizes(&self) -> Vec<usize> {
        self.buckets.iter().map(Vec::len).collect()
    }

    /// Largest bucket (paper quotes "our max array size: 819" after one
    /// week with the alternative selector, vs 24 024 in bucket 0 with the
    /// first-two-bytes selector).
    pub fn max_bucket_size(&self) -> usize {
        self.buckets.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Mean bucket size.
    pub fn mean_bucket_size(&self) -> f64 {
        self.next as f64 / NUM_BUCKETS as f64
    }

    /// fileIDs in order of first appearance — the checkpointable state
    /// of the store. Replaying them through
    /// [`FileIdAnonymizer::anonymize`] rebuilds identical buckets, which
    /// is what [`BucketedArrays::from_order`] does on campaign resume.
    // etwlint: source(raw-id): returns the raw fileID store for checkpointing
    pub fn appearance_order(&self) -> Vec<FileId> {
        let mut entries: Vec<(u64, FileId)> = self
            .buckets
            .iter()
            .flatten()
            .map(|&(id, v)| (v, id))
            .collect();
        entries.sort_unstable_by_key(|&(v, _)| v);
        entries.into_iter().map(|(_, id)| id).collect()
    }

    /// Rebuilds a store from a checkpointed appearance order. Probe
    /// statistics restart from zero: they describe work done by *this*
    /// process, not by the campaign as a whole.
    // etwlint: sanitize(raw-id): raw checkpoint ids are replayed into the private buckets
    pub fn from_order(selector: ByteSelector, order: &[FileId]) -> Self {
        let mut b = BucketedArrays::new(selector);
        for id in order {
            b.anonymize(id);
        }
        b.probe_stats = ProbeStats::default();
        b
    }
}

impl FileIdAnonymizer for BucketedArrays {
    // etwlint: sanitize(raw-id): raw id becomes its appearance-order index
    fn anonymize(&mut self, id: &FileId) -> u64 {
        let bucket = &mut self.buckets[self.selector.index(id)];
        let mut depth = 0u64;
        let found = bucket.binary_search_by(|(k, _)| {
            depth += 1;
            k.cmp(id)
        });
        self.probe_stats.probes += 1;
        self.probe_stats.comparisons += depth;
        self.probe_stats.max_probe_depth = self.probe_stats.max_probe_depth.max(depth);
        match found {
            Ok(pos) => bucket[pos].1,
            Err(pos) => {
                let v = self.next;
                self.next += 1;
                // Sorted insertion: the cost the bucket splitting keeps
                // small, and the cost that explodes in Fig. 3's oversized
                // buckets. The shift distance is that cost, element by
                // element.
                let shift = (bucket.len() - pos) as u64;
                self.probe_stats.inserts += 1;
                self.probe_stats.shifted += shift;
                self.probe_stats.max_shift = self.probe_stats.max_shift.max(shift);
                bucket.insert(pos, (*id, v));
                v
            }
        }
    }

    fn distinct(&self) -> u64 {
        self.next
    }

    fn lookup(&self, id: &FileId) -> Option<u64> {
        let bucket = &self.buckets[self.selector.index(id)];
        bucket
            .binary_search_by(|(k, _)| k.cmp(id))
            .ok()
            .map(|pos| bucket[pos].1)
    }

    fn name(&self) -> &'static str {
        "bucketed_arrays"
    }
}

/// Strawman baseline: a single sorted array. Lookup is a fast dichotomic
/// search, but "insertion has a prohibitive cost, due to the
/// reorganisation it implies to keep the array sorted" (paper §2.4).
#[derive(Default)]
pub struct SingleSortedArray {
    entries: Vec<(FileId, u64)>,
}

impl SingleSortedArray {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl FileIdAnonymizer for SingleSortedArray {
    // etwlint: sanitize(raw-id): raw id becomes its appearance-order index
    fn anonymize(&mut self, id: &FileId) -> u64 {
        match self.entries.binary_search_by(|(k, _)| k.cmp(id)) {
            Ok(pos) => self.entries[pos].1,
            Err(pos) => {
                let v = self.entries.len() as u64;
                self.entries.insert(pos, (*id, v));
                v
            }
        }
    }

    fn distinct(&self) -> u64 {
        self.entries.len() as u64
    }

    fn lookup(&self, id: &FileId) -> Option<u64> {
        self.entries
            .binary_search_by(|(k, _)| k.cmp(id))
            .ok()
            .map(|pos| self.entries[pos].1)
    }

    fn name(&self) -> &'static str {
        "single_sorted_array"
    }
}

/// Classical baseline: a hash map keyed by the 128-bit fileID.
#[derive(Default)]
pub struct HashMapFileAnonymizer {
    map: HashMap<FileId, u64>,
}

impl HashMapFileAnonymizer {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl FileIdAnonymizer for HashMapFileAnonymizer {
    // etwlint: sanitize(raw-id): raw id becomes its appearance-order index
    fn anonymize(&mut self, id: &FileId) -> u64 {
        let next = self.map.len() as u64;
        *self.map.entry(*id).or_insert(next)
    }

    fn distinct(&self) -> u64 {
        self.map.len() as u64
    }

    fn lookup(&self, id: &FileId) -> Option<u64> {
        self.map.get(id).copied()
    }

    fn name(&self) -> &'static str {
        "hashmap"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn impls() -> Vec<Box<dyn FileIdAnonymizer>> {
        vec![
            Box::new(BucketedArrays::new(ByteSelector::ALTERNATIVE)),
            Box::new(SingleSortedArray::new()),
            Box::new(HashMapFileAnonymizer::new()),
        ]
    }

    #[test]
    fn order_of_appearance() {
        for mut a in impls() {
            let x = FileId([1; 16]);
            let y = FileId([2; 16]);
            assert_eq!(a.anonymize(&x), 0, "{}", a.name());
            assert_eq!(a.anonymize(&y), 1);
            assert_eq!(a.anonymize(&x), 0);
            assert_eq!(a.distinct(), 2);
            assert_eq!(a.lookup(&y), Some(1));
            assert_eq!(a.lookup(&FileId([3; 16])), None);
        }
    }

    #[test]
    fn implementations_agree_differentially() {
        let mut rng = StdRng::seed_from_u64(4);
        let ids: Vec<FileId> = (0..3000)
            .map(|_| FileId::of_identity(rng.gen_range(0..800)))
            .collect();
        let mut oracle = HashMapFileAnonymizer::new();
        let mut bucketed = BucketedArrays::new(ByteSelector::ALTERNATIVE);
        let mut bucketed_first = BucketedArrays::new(ByteSelector::FIRST_TWO);
        let mut single = SingleSortedArray::new();
        for id in &ids {
            let want = oracle.anonymize(id);
            assert_eq!(bucketed.anonymize(id), want);
            assert_eq!(bucketed_first.anonymize(id), want);
            assert_eq!(single.anonymize(id), want);
        }
        assert_eq!(bucketed.distinct(), oracle.distinct());
    }

    #[test]
    fn byte_selector_index() {
        let mut bytes = [0u8; 16];
        bytes[0] = 0xcd;
        bytes[1] = 0xab;
        let id = FileId(bytes);
        assert_eq!(ByteSelector::FIRST_TWO.index(&id), 0xabcd);
        let sel = ByteSelector::new(3, 2);
        bytes[2] = 0x34;
        bytes[3] = 0x12;
        assert_eq!(sel.index(&FileId(bytes)), 0x1234);
    }

    #[test]
    #[should_panic(expected = "invalid byte selector")]
    fn selector_rejects_equal_bytes() {
        let _ = ByteSelector::new(3, 3);
    }

    #[test]
    fn legitimate_ids_spread_across_buckets() {
        let mut b = BucketedArrays::new(ByteSelector::FIRST_TWO);
        for i in 0..20_000u64 {
            b.anonymize(&FileId::of_identity(i));
        }
        // MD4 uniformity: max bucket should be close to the mean.
        let max = b.max_bucket_size();
        assert!(max <= 6, "max bucket {max} too large for uniform input");
        assert_eq!(b.distinct(), 20_000);
    }

    #[test]
    fn forged_ids_blow_up_first_two_bytes_selector() {
        // The Fig. 3 phenomenon: pollution with fixed prefixes lands in
        // buckets 0 and 256 under FIRST_TWO, and spreads under
        // ALTERNATIVE.
        let mut first = BucketedArrays::new(ByteSelector::FIRST_TWO);
        let mut alt = BucketedArrays::new(ByteSelector::ALTERNATIVE);
        for i in 0..4000u64 {
            // Paper-observed prefixes: bucket 0 ("00 00") and 256
            // ("00 01" under little-endian two-byte index).
            let prefix = if i % 2 == 0 {
                [0x00, 0x00]
            } else {
                [0x00, 0x01]
            };
            let id = FileId::forged(i, prefix);
            first.anonymize(&id);
            alt.anonymize(&id);
        }
        for i in 0..4000u64 {
            let id = FileId::of_identity(i);
            first.anonymize(&id);
            alt.anonymize(&id);
        }
        let sizes = first.bucket_sizes();
        assert_eq!(sizes[0], 2000, "forged 00 00 IDs in bucket 0");
        assert_eq!(sizes[256], 2000, "forged 00 01 IDs in bucket 256");
        assert!(first.max_bucket_size() >= 2000);
        // The alternative selector sees the forged IDs' *random* interior
        // bytes and stays balanced.
        assert!(
            alt.max_bucket_size() < 20,
            "alt max {}",
            alt.max_bucket_size()
        );
        assert_eq!(first.distinct(), alt.distinct());
    }

    #[test]
    fn bucket_size_accounting() {
        let mut b = BucketedArrays::new(ByteSelector::ALTERNATIVE);
        for i in 0..500u64 {
            b.anonymize(&FileId::of_identity(i));
        }
        let sizes = b.bucket_sizes();
        assert_eq!(sizes.len(), NUM_BUCKETS);
        assert_eq!(sizes.iter().sum::<usize>(), 500);
        assert!((b.mean_bucket_size() - 500.0 / 65_536.0).abs() < 1e-12);
    }

    #[test]
    fn probe_stats_track_search_and_insert_work() {
        let mut b = BucketedArrays::new(ByteSelector::ALTERNATIVE);
        assert_eq!(b.probe_stats(), ProbeStats::default());
        for i in 0..1_000u64 {
            b.anonymize(&FileId::of_identity(i));
        }
        for i in 0..1_000u64 {
            b.anonymize(&FileId::of_identity(i)); // all hits, no inserts
        }
        let s = b.probe_stats();
        assert_eq!(s.probes, 2_000);
        assert_eq!(s.inserts, 1_000);
        // Probes into empty buckets compare zero times, but each of the
        // 1 000 second-pass hits compares at least once.
        assert!(
            s.comparisons >= 1_000,
            "hits must compare at least once each (saw {})",
            s.comparisons
        );
        assert!(s.max_probe_depth >= 1);
        // Uniform input keeps buckets tiny, so shifts stay tiny too.
        assert!(s.max_shift <= b.max_bucket_size() as u64);

        // A polluted bucket drives insertion shifts up.
        let mut polluted = BucketedArrays::new(ByteSelector::FIRST_TWO);
        for i in 0..500u64 {
            polluted.anonymize(&FileId::forged(i, [0x00, 0x00]));
        }
        assert!(
            polluted.probe_stats().shifted > b.probe_stats().shifted,
            "concentrated inserts must shift more than uniform ones"
        );
    }

    #[test]
    fn values_are_dense_prefix() {
        let mut b = BucketedArrays::new(ByteSelector::ALTERNATIVE);
        let mut rng = StdRng::seed_from_u64(8);
        let mut max_v = 0;
        for _ in 0..1000 {
            let v = b.anonymize(&FileId::of_identity(rng.gen_range(0..300)));
            max_v = max_v.max(v);
        }
        assert_eq!(max_v + 1, b.distinct());
    }
}
