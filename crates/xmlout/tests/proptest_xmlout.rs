//! Property tests for the dataset format: writer→reader identity over
//! arbitrary records, and compressor round-trip over arbitrary bytes.

use etw_anonymize::scheme::{
    AnonFileEntry, AnonMessage, AnonRecord, AnonSearchExpr, AnonTag, AnonTagValue,
};
use etw_xmlout::compress::{compress, decompress};
use etw_xmlout::encode::encode_batch;
use etw_xmlout::reader::DatasetReader;
use etw_xmlout::writer::{to_xml_string, DatasetWriter};
use proptest::prelude::*;

/// Attribute-value text that exercises the escaper: all five XML
/// specials plus plain characters, so the zero-alloc encoder's
/// lookup-table escape path and the writer's `escape()` both take their
/// dirty branches in the differential tests below.
const ESCAPY: &str = "[a-z_&<>\"' ]{1,12}";

fn arb_tag() -> impl Strategy<Value = AnonTag> {
    (
        ESCAPY,
        prop_oneof![
            "[0-9a-f]{32}".prop_map(|h| AnonTagValue::Hashed(h.into())),
            any::<u64>().prop_map(AnonTagValue::UInt),
        ],
    )
        .prop_map(|(name, value)| AnonTag {
            name: name.into(),
            value,
        })
}

fn arb_entry() -> impl Strategy<Value = AnonFileEntry> {
    (
        any::<u64>(),
        any::<u32>(),
        any::<u16>(),
        prop::collection::vec(arb_tag(), 0..4),
    )
        .prop_map(|(file, client, port, tags)| AnonFileEntry {
            file,
            client,
            port,
            tags,
        })
}

fn arb_expr() -> impl Strategy<Value = AnonSearchExpr> {
    let leaf = prop_oneof![
        "[0-9a-f]{32}".prop_map(|k| AnonSearchExpr::Keyword(k.into())),
        (ESCAPY, "[0-9a-f]{32}").prop_map(|(name, value)| AnonSearchExpr::MetaStr {
            name: name.into(),
            value: value.into()
        }),
        (
            "[a-z_]{1,10}",
            prop_oneof![Just(">="), Just("<=")],
            any::<u64>()
        )
            .prop_map(|(name, cmp, value)| AnonSearchExpr::MetaNum {
                name: name.into(),
                cmp,
                value
            }),
    ];
    leaf.prop_recursive(3, 12, 2, |inner| {
        (
            prop_oneof![Just("and"), Just("or"), Just("andnot")],
            inner.clone(),
            inner,
        )
            .prop_map(|(op, l, r)| AnonSearchExpr::Bool {
                op,
                left: Box::new(l),
                right: Box::new(r),
            })
    })
}

fn arb_message() -> impl Strategy<Value = AnonMessage> {
    prop_oneof![
        any::<u32>().prop_map(|challenge| AnonMessage::StatusRequest { challenge }),
        (any::<u32>(), any::<u32>(), any::<u32>()).prop_map(|(challenge, users, files)| {
            AnonMessage::StatusResponse {
                challenge,
                users,
                files,
            }
        }),
        Just(AnonMessage::ServerDescRequest),
        (ESCAPY, ESCAPY).prop_map(|(name, description)| AnonMessage::ServerDescResponse {
            name: name.into(),
            description: description.into()
        }),
        Just(AnonMessage::GetServerList),
        prop::collection::vec((any::<u32>(), any::<u16>()), 0..6)
            .prop_map(|servers| AnonMessage::ServerList { servers }),
        arb_expr().prop_map(|expr| AnonMessage::SearchRequest { expr }),
        prop::collection::vec(arb_entry(), 0..4)
            .prop_map(|results| AnonMessage::SearchResponse { results }),
        prop::collection::vec(any::<u64>(), 1..6)
            .prop_map(|files| AnonMessage::GetSources { files }),
        (
            any::<u64>(),
            prop::collection::vec((any::<u32>(), any::<u16>()), 0..8)
        )
            .prop_map(|(file, sources)| AnonMessage::FoundSources { file, sources }),
        prop::collection::vec(arb_entry(), 0..4)
            .prop_map(|files| AnonMessage::OfferFiles { files }),
    ]
}

fn arb_record() -> impl Strategy<Value = AnonRecord> {
    (any::<u64>(), any::<u32>(), arb_message()).prop_map(|(ts_us, peer, msg)| AnonRecord {
        ts_us,
        peer,
        msg,
    })
}

proptest! {
    /// XML writer → reader is the identity on arbitrary record streams.
    #[test]
    fn xml_round_trip(records in prop::collection::vec(arb_record(), 0..20)) {
        let xml = to_xml_string(&records);
        let back: Vec<AnonRecord> = DatasetReader::new(&xml)
            .collect::<Result<_, _>>()
            .expect("parse");
        prop_assert_eq!(back, records);
    }

    /// The zero-alloc batch encoder is byte-identical to the
    /// `write!`-based serial writer on arbitrary records — including
    /// attribute values that force the escaper's entity branches. This
    /// identity is what keeps `.etwckpt` byte offsets valid when the
    /// batched tail replaces the serial one.
    #[test]
    fn encoder_matches_writer_bytes(records in prop::collection::vec(arb_record(), 0..24),
                                    batch in 1usize..9) {
        let mut serial = DatasetWriter::new(Vec::new()).expect("vec write");
        for r in &records {
            serial.write_record(r).expect("vec write");
        }
        let serial_bytes = serial.finish().expect("vec write");

        let mut batched = DatasetWriter::new(Vec::new()).expect("vec write");
        let mut buf = Vec::new();
        for chunk in records.chunks(batch) {
            buf.clear();
            encode_batch(&mut buf, chunk);
            batched.write_encoded(&buf, chunk.len() as u64).expect("vec write");
        }
        let batched_bytes = batched.finish().expect("vec write");
        prop_assert_eq!(serial_bytes, batched_bytes);
    }

    /// LZSS compress → decompress is the identity on arbitrary bytes.
    #[test]
    fn compress_round_trip(data in prop::collection::vec(any::<u8>(), 0..5_000)) {
        let c = compress(&data);
        prop_assert_eq!(decompress(&c).expect("decompress"), data);
    }

    /// Compressing structured (repetitive) data shrinks it.
    #[test]
    fn compression_shrinks_repetition(unit in prop::collection::vec(any::<u8>(), 4..50),
                                      reps in 50usize..200) {
        let data: Vec<u8> = unit.iter().cycle().take(unit.len() * reps).copied().collect();
        let c = compress(&data);
        prop_assert!(c.len() < data.len() / 3,
            "only {} -> {}", data.len(), c.len());
    }

    /// The reader is total: arbitrary input never panics — it returns
    /// records or errors.
    #[test]
    fn reader_never_panics(input in "[ -~<>/\"=]{0,400}") {
        let mut reader = DatasetReader::new(&input);
        for _ in 0..500 {
            match reader.next_record() {
                Ok(Some(_)) => {}
                Ok(None) | Err(_) => break,
            }
        }
    }

    /// Nor does the decompressor, on arbitrary container bytes.
    #[test]
    fn decompress_never_panics(mut bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        let _ = decompress(&bytes);
        // Even with a valid magic prefix and lying length fields.
        if bytes.len() >= 12 {
            bytes[..4].copy_from_slice(b"ETWZ");
            let _ = decompress(&bytes);
        }
    }

    /// The compressed dataset round-trips through XML too: compress the
    /// document, decompress, reparse, same records.
    #[test]
    fn compressed_dataset_round_trip(records in prop::collection::vec(arb_record(), 1..10)) {
        let xml = to_xml_string(&records);
        let stored = compress(xml.as_bytes());
        let restored = String::from_utf8(decompress(&stored).unwrap()).unwrap();
        let back: Vec<AnonRecord> = DatasetReader::new(&restored)
            .collect::<Result<_, _>>()
            .unwrap();
        prop_assert_eq!(back, records);
    }
}
