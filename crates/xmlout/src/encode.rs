//! Zero-allocation XML encoder for the batched capture tail.
//!
//! [`crate::writer::DatasetWriter`] renders each record through
//! `fmt::Write` machinery — correct, but every field goes through a
//! format-string interpreter. The paper's capture machine had to keep up
//! with a live server ("up to 3,000 messages per second at peak"), and
//! our end-to-end throughput is bounded by exactly this serial tail. The
//! encoder in this module renders the *same bytes* with direct pushes
//! into a caller-owned `Vec<u8>`:
//!
//! * integers go through itoa-style stack-buffer formatters
//!   ([`push_u64`] decimal, [`push_hex_u64`] hex) instead of `write!`;
//! * strings go through the lookup-table escape path
//!   ([`crate::escape::escape_into`]), which allocates nothing;
//! * the output buffer is reused across batches, so steady-state
//!   formatting performs **zero heap allocations per record**.
//!
//! Byte-identity with the `write!`-based writer is the correctness spine
//! (the differential proptests in `tests/proptest_xmlout.rs` assert it),
//! because `.etwckpt` checkpoints store absolute writer offsets: if the
//! fast path produced even one different byte, resume would tear.

use crate::escape::escape_into;
use etw_anonymize::scheme::{AnonFileEntry, AnonMessage, AnonRecord, AnonSearchExpr, AnonTagValue};

/// Pairs `00`..`99`, so the decimal formatter emits two digits per
/// division — halving the division chain, which dominates itoa for the
/// dataset's big values (microsecond timestamps, file sizes).
static DIGITS2: [u8; 200] = {
    let mut t = [0u8; 200];
    let mut i = 0;
    while i < 100 {
        t[i * 2] = b'0' + (i / 10) as u8;
        t[i * 2 + 1] = b'0' + (i % 10) as u8;
        i += 1;
    }
    t
};

/// Appends the decimal representation of `v` (itoa-style: digit pairs
/// are produced backwards into a stack buffer via [`DIGITS2`], then
/// copied in one splice).
#[inline]
pub fn push_u64(out: &mut Vec<u8>, mut v: u64) {
    let mut buf = [0u8; 20]; // u64::MAX has 20 digits
    let mut i = buf.len();
    while v >= 100 {
        let d = ((v % 100) as usize) * 2;
        v /= 100;
        i -= 2;
        buf[i] = DIGITS2[d];
        buf[i + 1] = DIGITS2[d + 1];
    }
    if v >= 10 {
        let d = (v as usize) * 2;
        i -= 2;
        buf[i] = DIGITS2[d];
        buf[i + 1] = DIGITS2[d + 1];
    } else {
        i -= 1;
        buf[i] = b'0' + v as u8;
    }
    out.extend_from_slice(&buf[i..]);
}

/// Appends the lowercase hexadecimal representation of `v` (no prefix,
/// no leading zeros). The dataset's digest strings are pre-rendered by
/// the anonymiser, but offset/telemetry surfaces want hex too.
pub fn push_hex_u64(out: &mut Vec<u8>, mut v: u64) {
    const HEX: &[u8; 16] = b"0123456789abcdef";
    let mut buf = [0u8; 16]; // u64::MAX has 16 hex digits
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = HEX[(v & 0xf) as usize];
        v >>= 4;
        if v == 0 {
            break;
        }
    }
    out.extend_from_slice(&buf[i..]);
}

/// Appends an escaped string attribute value.
#[inline]
fn push_escaped(out: &mut Vec<u8>, s: &str) {
    escape_into(out, s);
}

/// Encodes one dialog record — byte-identical to
/// [`crate::writer::DatasetWriter::write_record`].
pub fn encode_record(out: &mut Vec<u8>, r: &AnonRecord) {
    out.extend_from_slice(b"<dialog ts=\"");
    push_u64(out, r.ts_us);
    out.extend_from_slice(b"\" peer=\"");
    push_u64(out, u64::from(r.peer));
    out.extend_from_slice(b"\">");
    encode_msg(out, &r.msg);
    out.extend_from_slice(b"</dialog>\n");
}

/// Encodes a batch of records into `out` (appending). The buffer is the
/// caller's to recycle: clear it, encode the next batch, repeat — the
/// capacity high-water mark is reached once and reused forever.
// etwlint: sink(xml): these bytes become the published dataset
pub fn encode_batch(out: &mut Vec<u8>, records: &[AnonRecord]) {
    for r in records {
        encode_record(out, r);
    }
}

fn encode_msg(out: &mut Vec<u8>, m: &AnonMessage) {
    match m {
        AnonMessage::StatusRequest { challenge } => {
            out.extend_from_slice(b"<status_req challenge=\"");
            push_u64(out, u64::from(*challenge));
            out.extend_from_slice(b"\"/>");
        }
        AnonMessage::StatusResponse {
            challenge,
            users,
            files,
        } => {
            out.extend_from_slice(b"<status_res challenge=\"");
            push_u64(out, u64::from(*challenge));
            out.extend_from_slice(b"\" users=\"");
            push_u64(out, u64::from(*users));
            out.extend_from_slice(b"\" files=\"");
            push_u64(out, u64::from(*files));
            out.extend_from_slice(b"\"/>");
        }
        AnonMessage::ServerDescRequest => out.extend_from_slice(b"<desc_req/>"),
        AnonMessage::ServerDescResponse { name, description } => {
            out.extend_from_slice(b"<desc_res name=\"");
            push_escaped(out, name);
            out.extend_from_slice(b"\" desc=\"");
            push_escaped(out, description);
            out.extend_from_slice(b"\"/>");
        }
        AnonMessage::GetServerList => out.extend_from_slice(b"<server_list_req/>"),
        AnonMessage::ServerList { servers } => {
            out.extend_from_slice(b"<server_list>");
            for (ip, port) in servers {
                out.extend_from_slice(b"<server ip=\"");
                push_u64(out, u64::from(*ip));
                out.extend_from_slice(b"\" port=\"");
                push_u64(out, u64::from(*port));
                out.extend_from_slice(b"\"/>");
            }
            out.extend_from_slice(b"</server_list>");
        }
        AnonMessage::SearchRequest { expr } => {
            out.extend_from_slice(b"<search>");
            encode_expr(out, expr);
            out.extend_from_slice(b"</search>");
        }
        AnonMessage::SearchResponse { results } => {
            out.extend_from_slice(b"<search_res>");
            for e in results {
                encode_entry(out, b"result", e);
            }
            out.extend_from_slice(b"</search_res>");
        }
        AnonMessage::GetSources { files } => {
            out.extend_from_slice(b"<get_sources>");
            for f in files {
                out.extend_from_slice(b"<file id=\"");
                push_u64(out, *f);
                out.extend_from_slice(b"\"/>");
            }
            out.extend_from_slice(b"</get_sources>");
        }
        AnonMessage::FoundSources { file, sources } => {
            out.extend_from_slice(b"<found_sources file=\"");
            push_u64(out, *file);
            out.extend_from_slice(b"\">");
            for (client, port) in sources {
                out.extend_from_slice(b"<src client=\"");
                push_u64(out, u64::from(*client));
                out.extend_from_slice(b"\" port=\"");
                push_u64(out, u64::from(*port));
                out.extend_from_slice(b"\"/>");
            }
            out.extend_from_slice(b"</found_sources>");
        }
        AnonMessage::OfferFiles { files } => {
            out.extend_from_slice(b"<offer>");
            for e in files {
                encode_entry(out, b"f", e);
            }
            out.extend_from_slice(b"</offer>");
        }
    }
}

fn encode_entry(out: &mut Vec<u8>, elem: &[u8], e: &AnonFileEntry) {
    out.push(b'<');
    out.extend_from_slice(elem);
    out.extend_from_slice(b" id=\"");
    push_u64(out, e.file);
    out.extend_from_slice(b"\" client=\"");
    push_u64(out, u64::from(e.client));
    out.extend_from_slice(b"\" port=\"");
    push_u64(out, u64::from(e.port));
    out.extend_from_slice(b"\">");
    for t in &e.tags {
        match &t.value {
            AnonTagValue::Hashed(h) => {
                out.extend_from_slice(b"<tag name=\"");
                push_escaped(out, &t.name);
                out.extend_from_slice(b"\" hash=\"");
                push_escaped(out, h);
                out.extend_from_slice(b"\"/>");
            }
            AnonTagValue::UInt(v) => {
                out.extend_from_slice(b"<tag name=\"");
                push_escaped(out, &t.name);
                out.extend_from_slice(b"\" uint=\"");
                push_u64(out, *v);
                out.extend_from_slice(b"\"/>");
            }
        }
    }
    out.extend_from_slice(b"</");
    out.extend_from_slice(elem);
    out.push(b'>');
}

fn encode_expr(out: &mut Vec<u8>, e: &AnonSearchExpr) {
    match e {
        AnonSearchExpr::Bool { op, left, right } => {
            out.push(b'<');
            out.extend_from_slice(op.as_bytes());
            out.push(b'>');
            encode_expr(out, left);
            encode_expr(out, right);
            out.extend_from_slice(b"</");
            out.extend_from_slice(op.as_bytes());
            out.push(b'>');
        }
        AnonSearchExpr::Keyword(h) => {
            out.extend_from_slice(b"<kw hash=\"");
            push_escaped(out, h);
            out.extend_from_slice(b"\"/>");
        }
        AnonSearchExpr::MetaStr { name, value } => {
            out.extend_from_slice(b"<metastr name=\"");
            push_escaped(out, name);
            out.extend_from_slice(b"\" hash=\"");
            push_escaped(out, value);
            out.extend_from_slice(b"\"/>");
        }
        AnonSearchExpr::MetaNum { name, cmp, value } => {
            out.extend_from_slice(b"<metanum name=\"");
            push_escaped(out, name);
            out.extend_from_slice(b"\" cmp=\"");
            out.extend_from_slice(if *cmp == ">=" { b"ge" } else { b"le" });
            out.extend_from_slice(b"\" value=\"");
            push_u64(out, *value);
            out.extend_from_slice(b"\"/>");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etw_anonymize::scheme::AnonTag;

    #[test]
    fn decimal_formatter_matches_display() {
        for v in [
            0u64,
            1,
            9,
            10,
            99,
            100,
            12_345,
            u64::from(u32::MAX),
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut out = Vec::new();
            push_u64(&mut out, v);
            assert_eq!(String::from_utf8(out).unwrap(), v.to_string());
        }
    }

    #[test]
    fn hex_formatter_matches_format() {
        for v in [0u64, 1, 0xf, 0x10, 0xdead_beef, u64::MAX] {
            let mut out = Vec::new();
            push_hex_u64(&mut out, v);
            assert_eq!(String::from_utf8(out).unwrap(), format!("{v:x}"));
        }
    }

    fn record(msg: AnonMessage) -> AnonRecord {
        AnonRecord {
            ts_us: 123_456,
            peer: 7,
            msg,
        }
    }

    fn writer_bytes(r: &AnonRecord) -> Vec<u8> {
        let mut w = crate::writer::DatasetWriter::new(Vec::new()).unwrap();
        let header = w.bytes_written() as usize;
        w.write_record(r).unwrap();
        let off = w.bytes_written() as usize;
        let bytes = w.finish().unwrap();
        bytes[header..off].to_vec()
    }

    #[test]
    fn every_message_shape_matches_writer() {
        let entry = AnonFileEntry {
            file: 11,
            client: 3,
            port: 4662,
            tags: vec![
                AnonTag {
                    name: "filename".into(),
                    value: AnonTagValue::Hashed("ab&cd".into()),
                },
                AnonTag {
                    name: "filesize".into(),
                    value: AnonTagValue::UInt(716_800),
                },
            ],
        };
        let msgs = vec![
            AnonMessage::StatusRequest { challenge: 42 },
            AnonMessage::StatusResponse {
                challenge: 42,
                users: 50_000,
                files: 1_234_567,
            },
            AnonMessage::ServerDescRequest,
            AnonMessage::ServerDescResponse {
                name: "a<b".into(),
                description: "c\"d'e".into(),
            },
            AnonMessage::GetServerList,
            AnonMessage::ServerList {
                servers: vec![(1, 4661), (2, 4662)],
            },
            AnonMessage::SearchRequest {
                expr: AnonSearchExpr::Bool {
                    op: "andnot",
                    left: Box::new(AnonSearchExpr::Keyword("aa".into())),
                    right: Box::new(AnonSearchExpr::Bool {
                        op: "or",
                        left: Box::new(AnonSearchExpr::MetaStr {
                            name: "artist".into(),
                            value: "bb".into(),
                        }),
                        right: Box::new(AnonSearchExpr::MetaNum {
                            name: "filesize".into(),
                            cmp: ">=",
                            value: 1024,
                        }),
                    }),
                },
            },
            AnonMessage::SearchRequest {
                expr: AnonSearchExpr::MetaNum {
                    name: "filesize".into(),
                    cmp: "<=",
                    value: 2048,
                },
            },
            AnonMessage::SearchResponse {
                results: vec![entry.clone()],
            },
            AnonMessage::GetSources {
                files: vec![0, 1, 2],
            },
            AnonMessage::FoundSources {
                file: 5,
                sources: vec![(9, 4662)],
            },
            AnonMessage::OfferFiles { files: vec![entry] },
        ];
        for msg in msgs {
            let r = record(msg);
            let mut fast = Vec::new();
            encode_record(&mut fast, &r);
            assert_eq!(fast, writer_bytes(&r), "diverged on {:?}", r.msg);
        }
    }

    #[test]
    fn batch_is_concatenation_and_buffer_reuses() {
        let a = record(AnonMessage::GetServerList);
        let b = record(AnonMessage::StatusRequest { challenge: 1 });
        let mut buf = Vec::new();
        encode_batch(&mut buf, &[a.clone(), b.clone()]);
        let mut one = Vec::new();
        encode_record(&mut one, &a);
        encode_record(&mut one, &b);
        assert_eq!(buf, one);
        // Recycled buffer: clear, re-encode, same bytes, no growth needed.
        let cap = buf.capacity();
        buf.clear();
        encode_batch(&mut buf, &[a, b]);
        assert_eq!(buf, one);
        assert_eq!(buf.capacity(), cap);
    }
}
