//! XML attribute/text escaping.
//!
//! The dataset only ever stores hex digests, decimal integers and fixed
//! element names, so escaping is rarely *exercised* — but the writer must
//! be correct for any string (the paper's format is "rigorously
//! specified", and a format that breaks on `&` would not be).
//!
//! Because the common case is a clean string, [`escape`] returns a
//! borrowed [`Cow`] when nothing needs rewriting, and [`escape_into`]
//! appends straight into a byte buffer so the hot formatting path never
//! allocates at all.

use std::borrow::Cow;

/// Per-byte "needs an entity" table. Multi-byte UTF-8 sequences only use
/// bytes `>= 0x80`, which never collide with the five specials, so the
/// scan can stay on raw bytes.
static NEEDS_ESCAPE: [bool; 256] = {
    let mut t = [false; 256];
    t[b'&' as usize] = true;
    t[b'<' as usize] = true;
    t[b'>' as usize] = true;
    t[b'"' as usize] = true;
    t[b'\'' as usize] = true;
    t
};

/// The entity replacement for a byte flagged in [`NEEDS_ESCAPE`].
fn entity(b: u8) -> &'static [u8] {
    match b {
        b'&' => b"&amp;",
        b'<' => b"&lt;",
        b'>' => b"&gt;",
        b'"' => b"&quot;",
        _ => b"&apos;",
    }
}

/// Escapes a string for use in attribute values or text content.
///
/// Returns `Cow::Borrowed` — no allocation — when the input contains
/// none of the five predefined specials, which is every hash digest,
/// decimal number and protocol constant in the dataset.
pub fn escape(s: &str) -> Cow<'_, str> {
    if !s.bytes().any(|b| NEEDS_ESCAPE[b as usize]) {
        return Cow::Borrowed(s);
    }
    let mut out = Vec::with_capacity(s.len() + 8);
    escape_into(&mut out, s);
    // escape_into only splices ASCII entities between valid UTF-8 runs.
    Cow::Owned(String::from_utf8(out).expect("escaped output is utf-8"))
}

/// Appends the escaped form of `s` to `out`.
///
/// This is the zero-allocation path used by [`crate::encode`]: clean
/// runs are copied with `extend_from_slice`, entities are spliced in
/// from static tables, and nothing is allocated beyond what `out`
/// already holds.
pub fn escape_into(out: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    let mut start = 0;
    for (i, &b) in bytes.iter().enumerate() {
        if NEEDS_ESCAPE[b as usize] {
            out.extend_from_slice(&bytes[start..i]);
            out.extend_from_slice(entity(b));
            start = i + 1;
        }
    }
    out.extend_from_slice(&bytes[start..]);
}

/// Reverses [`escape`]. Unknown entities are an error.
pub fn unescape(s: &str) -> Result<String, UnescapeError> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.char_indices();
    while let Some((i, c)) = chars.next() {
        if c != '&' {
            out.push(c);
            continue;
        }
        let rest = &s[i + 1..];
        let end = rest.find(';').ok_or(UnescapeError::UnterminatedEntity)?;
        let entity = &rest[..end];
        out.push(match entity {
            "amp" => '&',
            "lt" => '<',
            "gt" => '>',
            "quot" => '"',
            "apos" => '\'',
            // etwlint: allow(no-alloc-hot-loop): cold error path — allocates
            // once on malformed input, then the whole parse aborts
            _ => return Err(UnescapeError::UnknownEntity(entity.to_owned())),
        });
        // Skip the entity body and the semicolon.
        for _ in 0..=end {
            chars.next();
        }
    }
    Ok(out)
}

/// Unescaping failures.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum UnescapeError {
    /// `&` without a closing `;`.
    UnterminatedEntity,
    /// An entity name outside the XML 1.0 predefined five.
    UnknownEntity(String),
}

impl std::fmt::Display for UnescapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UnescapeError::UnterminatedEntity => write!(f, "unterminated entity"),
            UnescapeError::UnknownEntity(e) => write!(f, "unknown entity &{e};"),
        }
    }
}

impl std::error::Error for UnescapeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_specials() {
        let s = r#"a & b < c > "d" 'e'"#;
        let esc = escape(s);
        assert!(matches!(esc, Cow::Owned(_)));
        assert!(!esc.contains('<'));
        assert!(!esc.contains('"'));
        assert_eq!(unescape(&esc).unwrap(), s);
    }

    #[test]
    fn plain_strings_borrowed() {
        let s = "d41d8cd98f00b204";
        let esc = escape(s);
        assert!(matches!(esc, Cow::Borrowed(_)), "clean input must borrow");
        assert_eq!(esc, s);
        assert_eq!(unescape("12345").unwrap(), "12345");
    }

    #[test]
    fn escape_into_matches_escape() {
        for s in [
            "",
            "plain",
            "a&b",
            "<<>>",
            "tail&",
            "&head",
            r#"a & b < c > "d" 'e'"#,
            "héllo & wörld ☺",
        ] {
            let mut buf = Vec::new();
            escape_into(&mut buf, s);
            assert_eq!(String::from_utf8(buf).unwrap(), escape(s).as_ref(), "{s:?}");
        }
    }

    #[test]
    fn unterminated_entity_rejected() {
        assert_eq!(unescape("a&amp"), Err(UnescapeError::UnterminatedEntity));
    }

    #[test]
    fn unknown_entity_rejected() {
        assert!(matches!(
            unescape("&bogus;"),
            Err(UnescapeError::UnknownEntity(_))
        ));
    }

    #[test]
    fn unicode_passes_through() {
        let s = "héllo wörld ☺";
        assert_eq!(unescape(&escape(s)).unwrap(), s);
    }

    #[test]
    fn consecutive_entities() {
        assert_eq!(unescape("&amp;&amp;&lt;").unwrap(), "&&<");
    }
}
