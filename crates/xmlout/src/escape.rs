//! XML attribute/text escaping.
//!
//! The dataset only ever stores hex digests, decimal integers and fixed
//! element names, so escaping is rarely *exercised* — but the writer must
//! be correct for any string (the paper's format is "rigorously
//! specified", and a format that breaks on `&` would not be).

/// Escapes a string for use in attribute values or text content.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            _ => out.push(c),
        }
    }
    out
}

/// Reverses [`escape`]. Unknown entities are an error.
pub fn unescape(s: &str) -> Result<String, UnescapeError> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.char_indices();
    while let Some((i, c)) = chars.next() {
        if c != '&' {
            out.push(c);
            continue;
        }
        let rest = &s[i + 1..];
        let end = rest.find(';').ok_or(UnescapeError::UnterminatedEntity)?;
        let entity = &rest[..end];
        out.push(match entity {
            "amp" => '&',
            "lt" => '<',
            "gt" => '>',
            "quot" => '"',
            "apos" => '\'',
            _ => return Err(UnescapeError::UnknownEntity(entity.to_owned())),
        });
        // Skip the entity body and the semicolon.
        for _ in 0..=end {
            chars.next();
        }
    }
    Ok(out)
}

/// Unescaping failures.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum UnescapeError {
    /// `&` without a closing `;`.
    UnterminatedEntity,
    /// An entity name outside the XML 1.0 predefined five.
    UnknownEntity(String),
}

impl std::fmt::Display for UnescapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UnescapeError::UnterminatedEntity => write!(f, "unterminated entity"),
            UnescapeError::UnknownEntity(e) => write!(f, "unknown entity &{e};"),
        }
    }
}

impl std::error::Error for UnescapeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_specials() {
        let s = r#"a & b < c > "d" 'e'"#;
        let esc = escape(s);
        assert!(!esc.contains('<'));
        assert!(!esc.contains('"'));
        assert_eq!(unescape(&esc).unwrap(), s);
    }

    #[test]
    fn plain_strings_untouched() {
        assert_eq!(escape("d41d8cd98f00b204"), "d41d8cd98f00b204");
        assert_eq!(unescape("12345").unwrap(), "12345");
    }

    #[test]
    fn unterminated_entity_rejected() {
        assert_eq!(unescape("a&amp"), Err(UnescapeError::UnterminatedEntity));
    }

    #[test]
    fn unknown_entity_rejected() {
        assert!(matches!(
            unescape("&bogus;"),
            Err(UnescapeError::UnknownEntity(_))
        ));
    }

    #[test]
    fn unicode_passes_through() {
        let s = "héllo wörld ☺";
        assert_eq!(unescape(&escape(s)).unwrap(), s);
    }

    #[test]
    fn consecutive_entities() {
        assert_eq!(unescape("&amp;&amp;&lt;").unwrap(), "&&<");
    }
}
