//! The dataset's formal specification (paper §2.5: the data is released
//! "with its formal specification").
//!
//! The constant [`SPEC`] is the human-readable grammar shipped with the
//! dataset; [`validate`] checks a document against it structurally by
//! parsing every record.

use crate::reader::{DatasetReader, XmlError};

/// Specification version identifier carried in the `<capture spec>`
/// attribute.
pub const SPEC_VERSION: &str = "etw-1.0";

/// The formal specification text.
pub const SPEC: &str = r#"
etw-1.0 dataset specification
=============================

document   := <?xml ...?> <capture spec="etw-1.0"> dialog* </capture>
dialog     := <dialog ts="MICROSECONDS" peer="ANONCLIENT"> message </dialog>

ts    : microseconds elapsed since the beginning of the capture (no
        absolute time appears anywhere in the dataset).
peer  : the anonymised clientID of the peer the server exchanged this
        message with; anonymised clientIDs are integers 0..N-1 assigned
        by order of first appearance.

message :=
    <status_req challenge="U32"/>
  | <status_res challenge="U32" users="U32" files="U32"/>
  | <desc_req/>
  | <desc_res name="MD5HEX" desc="MD5HEX"/>
  | <server_list_req/>
  | <server_list> (<server ip="ANONCLIENT" port="U16"/>)* </server_list>
  | <search> expr </search>
  | <search_res> (entry<result>)* </search_res>
  | <get_sources> (<file id="ANONFILE"/>)+ </get_sources>
  | <found_sources file="ANONFILE"> (<src client="ANONCLIENT" port="U16"/>)* </found_sources>
  | <offer> (entry<f>)* </offer>

entry<E>  := <E id="ANONFILE" client="ANONCLIENT" port="U16"> tag* </E>
tag       := <tag name="NAME" hash="MD5HEX"/> | <tag name="NAME" uint="U64"/>
            (file sizes appear under name="filesize" with uint in KILO-BYTES)

expr :=
    <and> expr expr </and> | <or> expr expr </or> | <andnot> expr expr </andnot>
  | <kw hash="MD5HEX"/>
  | <metastr name="NAME" hash="MD5HEX"/>
  | <metanum name="NAME" cmp="ge|le" value="U64"/>

ANONFILE   : integers 0..M-1 assigned by order of first appearance.
MD5HEX     : 32 lowercase hex characters (md5 of the original string).
"#;

/// Statistics from a validation pass.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct ValidationReport {
    /// Dialog records parsed.
    pub records: u64,
}

/// Parses every record of `xml`, returning counts or the first error.
pub fn validate(xml: &str) -> Result<ValidationReport, XmlError> {
    let mut reader = DatasetReader::new(xml);
    let mut report = ValidationReport::default();
    while let Some(_record) = reader.next_record()? {
        report.records += 1;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::to_xml_string;
    use etw_anonymize::scheme::{AnonMessage, AnonRecord};

    #[test]
    fn writer_output_validates() {
        let records: Vec<AnonRecord> = (0..10)
            .map(|i| AnonRecord {
                ts_us: i,
                peer: (i % 3) as u32,
                msg: AnonMessage::GetSources { files: vec![i] },
            })
            .collect();
        let xml = to_xml_string(&records);
        let report = validate(&xml).unwrap();
        assert_eq!(report.records, 10);
    }

    #[test]
    fn garbage_fails_validation() {
        assert!(validate("<capture spec=\"etw-1.0\"><dialog></capture>").is_err());
        assert!(validate("not xml").is_err());
    }

    #[test]
    fn spec_mentions_every_message_element() {
        for elem in [
            "status_req",
            "status_res",
            "desc_req",
            "desc_res",
            "server_list_req",
            "server_list",
            "search",
            "search_res",
            "get_sources",
            "found_sources",
            "offer",
        ] {
            assert!(SPEC.contains(elem), "SPEC missing {elem}");
        }
        assert!(SPEC.contains(SPEC_VERSION));
    }
}
