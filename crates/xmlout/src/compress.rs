//! Dataset storage codec (paper §2.4, footnote 3).
//!
//! > "We chose xml as output format because it leads to easy-to-read and
//! > rigorously specified text files, and, once compressed, does not
//! > have a prohibitive space cost."
//!
//! The capture machine therefore needs a compressor. This is an LZSS
//! codec built from scratch (no external crates): a 32 KiB sliding
//! window, hash-chained longest-match search, and a bit-flagged token
//! stream. XML's heavy tag repetition is exactly the redundancy LZSS
//! eats; dataset files compress ~6–10×.
//!
//! Container format:
//!
//! ```text
//! "ETWZ" magic | orig_len: u64 LE | token stream
//! token stream := { flags: u8 (MSB first), 8 tokens }*
//! token        := literal byte                      (flag 0)
//!               | len-3: u8, offset-1: u16 LE       (flag 1)
//! ```

/// Container magic.
pub const MAGIC: &[u8; 4] = b"ETWZ";
/// Sliding window size.
pub const WINDOW: usize = 32 * 1024;
/// Minimum match length worth encoding (a match token costs 3 bytes).
pub const MIN_MATCH: usize = 4;
/// Maximum encodable match length.
pub const MAX_MATCH: usize = 255 + 3;

/// Decompression failures.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CompressError {
    /// Missing or wrong magic.
    BadMagic,
    /// Stream ended inside a token.
    Truncated,
    /// A match referenced bytes before the start of the output.
    BadReference,
    /// Output length disagrees with the header.
    LengthMismatch,
}

impl std::fmt::Display for CompressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompressError::BadMagic => write!(f, "bad magic"),
            CompressError::Truncated => write!(f, "truncated stream"),
            CompressError::BadReference => write!(f, "match reference out of range"),
            CompressError::LengthMismatch => write!(f, "declared length mismatch"),
        }
    }
}

impl std::error::Error for CompressError {}

const HASH_BITS: usize = 15;
const HASH_SIZE: usize = 1 << HASH_BITS;
const NO_POS: u32 = u32::MAX;
/// How many chain links to follow per position (compression/speed knob).
const MAX_CHAIN: usize = 64;

#[inline]
fn hash3(data: &[u8], i: usize) -> usize {
    let h = (data[i] as u32)
        .wrapping_mul(0x9E37)
        .wrapping_add((data[i + 1] as u32).wrapping_mul(0x79B9))
        .wrapping_add((data[i + 2] as u32).wrapping_mul(0x0101));
    (h as usize) & (HASH_SIZE - 1)
}

/// Compresses `data` into the container format.
pub fn compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + data.len() / 2);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&(data.len() as u64).to_le_bytes());

    // Token batching: flag byte position + count of tokens in it.
    let mut flag_pos = 0usize;
    let mut flag_count = 8u8; // forces allocation of a flag byte first
    let mut head = vec![NO_POS; HASH_SIZE];
    let mut chain = vec![NO_POS; data.len().max(1)];

    let push_flag = |out: &mut Vec<u8>, flag_pos: &mut usize, flag_count: &mut u8, bit: bool| {
        if *flag_count == 8 {
            *flag_pos = out.len();
            out.push(0);
            *flag_count = 0;
        }
        if bit {
            out[*flag_pos] |= 0x80 >> *flag_count;
        }
        *flag_count += 1;
    };

    let mut i = 0usize;
    while i < data.len() {
        let mut best_len = 0usize;
        let mut best_off = 0usize;
        if i + MIN_MATCH <= data.len() {
            let h = hash3(data, i);
            let mut cand = head[h];
            let mut steps = 0;
            while cand != NO_POS && steps < MAX_CHAIN {
                let c = cand as usize;
                if i - c > WINDOW {
                    break;
                }
                // Extend the match.
                let limit = (data.len() - i).min(MAX_MATCH);
                let mut l = 0usize;
                while l < limit && data[c + l] == data[i + l] {
                    l += 1;
                }
                if l > best_len {
                    best_len = l;
                    best_off = i - c;
                    if l == MAX_MATCH {
                        break;
                    }
                }
                cand = chain[c];
                steps += 1;
            }
        }
        if best_len >= MIN_MATCH {
            push_flag(&mut out, &mut flag_pos, &mut flag_count, true);
            out.push((best_len - 3) as u8);
            out.extend_from_slice(&((best_off - 1) as u16).to_le_bytes());
            // Index every position the match covers.
            let end = i + best_len;
            while i < end {
                if i + 3 <= data.len() {
                    let h = hash3(data, i);
                    chain[i] = head[h];
                    head[h] = i as u32;
                }
                i += 1;
            }
        } else {
            push_flag(&mut out, &mut flag_pos, &mut flag_count, false);
            out.push(data[i]);
            if i + 3 <= data.len() {
                let h = hash3(data, i);
                chain[i] = head[h];
                head[h] = i as u32;
            }
            i += 1;
        }
    }
    out
}

/// Decompresses a container produced by [`compress`].
pub fn decompress(stream: &[u8]) -> Result<Vec<u8>, CompressError> {
    if stream.len() < 12 || &stream[..4] != MAGIC {
        return Err(CompressError::BadMagic);
    }
    let mut len_bytes = [0u8; 8];
    len_bytes.copy_from_slice(&stream[4..12]);
    let orig_len = u64::from_le_bytes(len_bytes) as usize;
    // The declared length is attacker-controlled; never allocate on its
    // word alone. A token stream of B bytes can produce at most
    // B/3 * MAX_MATCH output bytes (every 3-byte match token expanding
    // maximally), so anything above that bound is a forged header.
    let max_producible = (stream.len() - 12).saturating_mul(MAX_MATCH) / 3 + 1;
    if orig_len > max_producible {
        return Err(CompressError::LengthMismatch);
    }
    let mut out = Vec::with_capacity(orig_len);
    let mut pos = 12usize;
    let mut flags = 0u8;
    let mut flag_count = 8u8;
    while out.len() < orig_len {
        if flag_count == 8 {
            flags = *stream.get(pos).ok_or(CompressError::Truncated)?;
            pos += 1;
            flag_count = 0;
        }
        let is_match = flags & (0x80 >> flag_count) != 0;
        flag_count += 1;
        if is_match {
            if pos + 3 > stream.len() {
                return Err(CompressError::Truncated);
            }
            let len = stream[pos] as usize + 3;
            let off = u16::from_le_bytes([stream[pos + 1], stream[pos + 2]]) as usize + 1;
            pos += 3;
            if off > out.len() {
                return Err(CompressError::BadReference);
            }
            let start = out.len() - off;
            // Overlapping copies are legal (run-length encoding).
            for k in 0..len {
                let b = out[start + k];
                out.push(b);
            }
        } else {
            let b = *stream.get(pos).ok_or(CompressError::Truncated)?;
            pos += 1;
            out.push(b);
        }
    }
    if out.len() != orig_len {
        return Err(CompressError::LengthMismatch);
    }
    Ok(out)
}

/// Convenience: compression ratio (original / compressed).
pub fn ratio(original: usize, compressed: usize) -> f64 {
    original as f64 / compressed.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8]) -> usize {
        let c = compress(data);
        let d = decompress(&c).expect("decompress");
        assert_eq!(d, data, "round trip");
        c.len()
    }

    #[test]
    fn empty_and_tiny() {
        assert_eq!(round_trip(b""), 12);
        round_trip(b"a");
        round_trip(b"ab");
        round_trip(b"abcabcabc");
    }

    #[test]
    fn xmlish_input_compresses_well() {
        let record = "<dialog ts=\"123456\" peer=\"42\"><get_sources><file id=\"7\"/></get_sources></dialog>\n";
        let doc: String = std::iter::repeat_n(record, 500).collect();
        let c_len = round_trip(doc.as_bytes());
        let r = ratio(doc.len(), c_len);
        assert!(r > 8.0, "ratio {r}");
    }

    #[test]
    fn incompressible_input_survives() {
        // Pseudo-random bytes: expansion bounded by the flag overhead
        // (1 bit per literal = 12.5 %).
        let mut x = 0x12345678u64;
        let data: Vec<u8> = (0..10_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x as u8
            })
            .collect();
        let c_len = round_trip(&data);
        assert!(c_len < data.len() + data.len() / 7 + 16);
    }

    #[test]
    fn runs_collapse() {
        let data = vec![0x55u8; 100_000];
        let c_len = round_trip(&data);
        assert!(c_len < 2_000, "run compressed to {c_len}");
    }

    #[test]
    fn overlapping_match_semantics() {
        // "ababab..." forces overlapping copies (offset < length).
        let data: Vec<u8> = b"ab".iter().cycle().take(9999).copied().collect();
        round_trip(&data);
    }

    #[test]
    fn long_matches_hit_the_cap() {
        let mut data = b"the quick brown fox ".repeat(100);
        data.extend_from_slice(&[1, 2, 3]);
        round_trip(&data);
    }

    #[test]
    fn window_boundary() {
        // Repetition farther apart than the window cannot be matched but
        // must still round-trip.
        let mut data = vec![7u8; 100];
        data.extend(std::iter::repeat_n(0u8, WINDOW + 10));
        data.extend_from_slice(&[7u8; 100]);
        round_trip(&data);
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(decompress(b"NOPE00000000"), Err(CompressError::BadMagic));
        assert_eq!(decompress(b""), Err(CompressError::BadMagic));
    }

    #[test]
    fn truncation_rejected() {
        let c = compress(b"hello hello hello hello");
        for cut in 12..c.len() {
            let r = decompress(&c[..cut]);
            assert!(r.is_err(), "cut {cut} accepted");
        }
    }

    #[test]
    fn forged_length_header_rejected_without_allocation() {
        // A 16-byte stream claiming a 2^60-byte original must be
        // rejected up front (found by fuzzing: Vec::with_capacity on the
        // attacker-controlled header was an allocation bomb).
        let mut s = Vec::new();
        s.extend_from_slice(MAGIC);
        s.extend_from_slice(&(1u64 << 60).to_le_bytes());
        s.extend_from_slice(&[0u8; 4]);
        assert_eq!(decompress(&s), Err(CompressError::LengthMismatch));
    }

    #[test]
    fn corrupted_reference_rejected() {
        // Handcraft: declared len 4, one match token referencing back 200.
        let mut s = Vec::new();
        s.extend_from_slice(MAGIC);
        s.extend_from_slice(&4u64.to_le_bytes());
        s.push(0x80); // first token is a match
        s.push(1); // len 4
        s.extend_from_slice(&199u16.to_le_bytes()); // offset 200
        assert_eq!(decompress(&s), Err(CompressError::BadReference));
    }
}
