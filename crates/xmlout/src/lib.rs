//! # etw-xmlout — the XML dialog dataset
//!
//! The paper stores the anonymised capture "as xml documents" because XML
//! "leads to easy-to-read and rigorously specified text files" (§2.4,
//! footnote 3), and releases the dataset "with its formal specification"
//! (§2.5). This crate is that format:
//!
//! * [`writer`] — streaming writer (one ten-week capture never fits in
//!   memory);
//! * [`reader`] — pull parser back into `AnonRecord`s, proving
//!   round-trip fidelity and letting analyses consume released files;
//!   also the truncated-tail recovery used after a crashed capture;
//! * [`schema`] — the formal specification text and a validator;
//! * [`escape`] — XML entity escaping (borrowed fast path for the
//!   common no-escape case);
//! * [`mod@encode`] — zero-allocation record encoder for the batched
//!   capture tail, byte-identical to [`writer`];
//! * [`mod@compress`] — the LZSS storage codec behind the paper's "once
//!   compressed, does not have a prohibitive space cost" footnote.
//!
//! ## Example
//!
//! ```
//! use etw_anonymize::scheme::{AnonMessage, AnonRecord};
//! use etw_xmlout::writer::to_xml_string;
//! use etw_xmlout::reader::DatasetReader;
//!
//! let records = vec![AnonRecord {
//!     ts_us: 42,
//!     peer: 0,
//!     msg: AnonMessage::GetSources { files: vec![0, 1] },
//! }];
//! let xml = to_xml_string(&records);
//! let back: Vec<AnonRecord> = DatasetReader::new(&xml)
//!     .collect::<Result<_, _>>()
//!     .unwrap();
//! assert_eq!(back, records);
//! ```

#![warn(missing_docs)]

pub mod compress;
pub mod encode;
pub mod escape;
pub mod reader;
pub mod schema;
pub mod writer;

pub use compress::{compress, decompress, CompressError};
pub use encode::{encode_batch, encode_record};
pub use reader::{repair_truncated, scan_valid_prefix, DatasetReader, RecoveredDataset, XmlError};
pub use schema::{validate, ValidationReport, SPEC, SPEC_VERSION};
pub use writer::{to_xml_string, DatasetWriter};
