//! Pull parser for the dataset XML: proves the format round-trips and
//! gives analyses a way to consume released datasets without re-running a
//! capture.
//!
//! The parser handles the XML subset the writer emits (elements,
//! attributes, self-closing tags, the XML declaration); it is not a
//! general XML processor.

use crate::escape::unescape;
use etw_anonymize::scheme::{
    AnonFileEntry, AnonMessage, AnonRecord, AnonSearchExpr, AnonTag, AnonTagValue,
};

/// Parse errors.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum XmlError {
    /// Input ended inside a construct.
    UnexpectedEof,
    /// Malformed markup at byte offset.
    Malformed(usize, &'static str),
    /// Well-formed XML that does not follow the dataset schema.
    Schema(String),
}

impl std::fmt::Display for XmlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            XmlError::UnexpectedEof => write!(f, "unexpected end of input"),
            XmlError::Malformed(at, why) => write!(f, "malformed XML at byte {at}: {why}"),
            XmlError::Schema(why) => write!(f, "schema violation: {why}"),
        }
    }
}

impl std::error::Error for XmlError {}

/// One markup event.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Token {
    /// `<name a="v" ...>` or `<name ... />`.
    Open {
        /// Element name.
        name: String,
        /// Attributes in document order, values unescaped.
        attrs: Vec<(String, String)>,
        /// True for `<e/>`.
        self_closing: bool,
    },
    /// `</name>`.
    Close(String),
}

/// Streaming tokenizer over the writer's XML subset.
pub struct Tokenizer<'a> {
    s: &'a str,
    pos: usize,
}

impl<'a> Tokenizer<'a> {
    /// Starts at the beginning of `s`.
    pub fn new(s: &'a str) -> Self {
        Tokenizer { s, pos: 0 }
    }

    /// Current byte offset (just past the last consumed token).
    pub fn byte_pos(&self) -> usize {
        self.pos
    }

    fn skip_ws(&mut self) {
        while self.pos < self.s.len() && self.s.as_bytes()[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    /// Returns the next markup token, skipping the XML declaration and
    /// inter-element whitespace. `Ok(None)` at a clean end of input.
    pub fn next_token(&mut self) -> Result<Option<Token>, XmlError> {
        loop {
            self.skip_ws();
            if self.pos >= self.s.len() {
                return Ok(None);
            }
            let bytes = self.s.as_bytes();
            if bytes[self.pos] != b'<' {
                return Err(XmlError::Malformed(self.pos, "expected '<'"));
            }
            // XML declaration `<?...?>`: skip.
            if self.s[self.pos..].starts_with("<?") {
                let end = self.s[self.pos..]
                    .find("?>")
                    .ok_or(XmlError::UnexpectedEof)?;
                self.pos += end + 2;
                continue;
            }
            // Comment `<!--...-->`: skip. The writer's crash-recovery
            // marker is a comment, so a recovered dataset reads back
            // transparently.
            if self.s[self.pos..].starts_with("<!--") {
                let end = self.s[self.pos..]
                    .find("-->")
                    .ok_or(XmlError::UnexpectedEof)?;
                self.pos += end + 3;
                continue;
            }
            // Closing tag.
            if self.s[self.pos..].starts_with("</") {
                let end = self.s[self.pos..]
                    .find('>')
                    .ok_or(XmlError::UnexpectedEof)?;
                let name = self.s[self.pos + 2..self.pos + end].trim().to_owned();
                if name.is_empty() {
                    return Err(XmlError::Malformed(self.pos, "empty closing tag"));
                }
                self.pos += end + 1;
                return Ok(Some(Token::Close(name)));
            }
            // Opening tag.
            let end = self.s[self.pos..]
                .find('>')
                .ok_or(XmlError::UnexpectedEof)?;
            let inner = &self.s[self.pos + 1..self.pos + end];
            let tag_start = self.pos;
            self.pos += end + 1;
            let (inner, self_closing) = match inner.strip_suffix('/') {
                Some(rest) => (rest, true),
                None => (inner, false),
            };
            let mut parts = inner.splitn(2, char::is_whitespace);
            let name = parts
                .next()
                .filter(|n| !n.is_empty())
                .ok_or(XmlError::Malformed(tag_start, "empty tag name"))?
                .to_owned();
            let attrs = match parts.next() {
                Some(rest) => parse_attrs(rest, tag_start)?,
                None => Vec::new(),
            };
            return Ok(Some(Token::Open {
                name,
                attrs,
                self_closing,
            }));
        }
    }
}

fn parse_attrs(mut s: &str, at: usize) -> Result<Vec<(String, String)>, XmlError> {
    let mut attrs = Vec::new();
    loop {
        s = s.trim_start();
        if s.is_empty() {
            return Ok(attrs);
        }
        let eq = s
            .find('=')
            .ok_or(XmlError::Malformed(at, "attribute without '='"))?;
        let name = s[..eq].trim().to_owned();
        if name.is_empty() {
            return Err(XmlError::Malformed(at, "empty attribute name"));
        }
        let rest = s[eq + 1..].trim_start();
        let mut chars = rest.chars();
        if chars.next() != Some('"') {
            return Err(XmlError::Malformed(at, "attribute value not quoted"));
        }
        let close = rest[1..]
            .find('"')
            .ok_or(XmlError::Malformed(at, "unterminated attribute value"))?;
        let raw = &rest[1..1 + close];
        let value = unescape(raw).map_err(|_| XmlError::Malformed(at, "bad entity"))?;
        attrs.push((name, value));
        s = &rest[close + 2..];
    }
}

/// A parsed element subtree (records are tiny; a tree per dialog is
/// cheap and keeps the record decoding readable).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Node {
    /// Element name.
    pub name: String,
    /// Attributes.
    pub attrs: Vec<(String, String)>,
    /// Child elements.
    pub children: Vec<Node>,
}

impl Node {
    /// Attribute lookup.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Parsed numeric attribute.
    pub fn attr_u64(&self, name: &str) -> Result<u64, XmlError> {
        self.attr(name)
            .ok_or_else(|| XmlError::Schema(format!("<{}> missing @{name}", self.name)))?
            .parse()
            .map_err(|_| XmlError::Schema(format!("<{}> @{name} not a number", self.name)))
    }

    /// Required string attribute.
    pub fn attr_str(&self, name: &str) -> Result<&str, XmlError> {
        self.attr(name)
            .ok_or_else(|| XmlError::Schema(format!("<{}> missing @{name}", self.name)))
    }
}

/// Reads one full element subtree starting from an already-consumed
/// `Open` token.
fn read_subtree(tok: &mut Tokenizer, open: Token) -> Result<Node, XmlError> {
    let Token::Open {
        name,
        attrs,
        self_closing,
    } = open
    else {
        return Err(XmlError::Schema("expected element".into()));
    };
    let mut node = Node {
        name,
        attrs,
        children: Vec::new(),
    };
    if self_closing {
        return Ok(node);
    }
    loop {
        match tok.next_token()?.ok_or(XmlError::UnexpectedEof)? {
            Token::Close(n) if n == node.name => return Ok(node),
            Token::Close(n) => {
                return Err(XmlError::Schema(format!(
                    "mismatched </{n}> inside <{}>",
                    node.name
                )))
            }
            open @ Token::Open { .. } => node.children.push(read_subtree(tok, open)?),
        }
    }
}

/// Streaming reader over a dataset document.
pub struct DatasetReader<'a> {
    tok: Tokenizer<'a>,
    /// Set once `<capture>` has been consumed.
    started: bool,
    finished: bool,
}

impl<'a> DatasetReader<'a> {
    /// Wraps a document.
    pub fn new(s: &'a str) -> Self {
        DatasetReader {
            tok: Tokenizer::new(s),
            started: false,
            finished: false,
        }
    }

    /// Returns the next dialog record, or `None` after `</capture>`.
    pub fn next_record(&mut self) -> Result<Option<AnonRecord>, XmlError> {
        if self.finished {
            return Ok(None);
        }
        if !self.started {
            match self.tok.next_token()? {
                Some(Token::Open { name, .. }) if name == "capture" => self.started = true,
                other => {
                    return Err(XmlError::Schema(format!(
                        "expected <capture>, got {other:?}"
                    )))
                }
            }
        }
        match self.tok.next_token()? {
            Some(Token::Close(n)) if n == "capture" => {
                self.finished = true;
                Ok(None)
            }
            Some(open @ Token::Open { .. }) => {
                let node = read_subtree(&mut self.tok, open)?;
                decode_record(&node).map(Some)
            }
            other => Err(XmlError::Schema(format!(
                "expected <dialog>, got {other:?}"
            ))),
        }
    }
}

impl<'a> Iterator for DatasetReader<'a> {
    type Item = Result<AnonRecord, XmlError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_record().transpose()
    }
}

impl<'a> DatasetReader<'a> {
    /// Byte offset just past the last fully parsed construct. After a
    /// successful [`DatasetReader::next_record`] this is the end of that
    /// record's `</dialog>` — the truncation point recovery uses.
    pub fn byte_pos(&self) -> usize {
        self.tok.byte_pos()
    }
}

/// What a crashed capture left on disk, as established by
/// [`scan_valid_prefix`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RecoveredDataset {
    /// Complete records in the valid prefix.
    pub records: u64,
    /// Bytes of the valid prefix (end of the last complete record).
    pub valid_bytes: usize,
    /// True when the document parsed to its `</capture>` — nothing was
    /// lost and no repair is needed.
    pub complete: bool,
}

/// Walks a (possibly torn) dataset document and reports the longest
/// prefix of complete records. A hard kill can stop the writer mid-record
/// (strict reading rejects the document, see
/// `reader::tests::truncated_document_rejected`); this establishes how
/// much of it is still good.
pub fn scan_valid_prefix(s: &str) -> RecoveredDataset {
    let mut r = DatasetReader::new(s);
    let mut records = 0u64;
    let mut valid_bytes = 0usize;
    loop {
        match r.next_record() {
            Ok(Some(_)) => {
                records += 1;
                valid_bytes = r.byte_pos();
            }
            Ok(None) => {
                return RecoveredDataset {
                    records,
                    valid_bytes: s.len(),
                    complete: true,
                }
            }
            Err(_) => {
                return RecoveredDataset {
                    records,
                    valid_bytes,
                    complete: false,
                }
            }
        }
    }
}

/// Repairs a torn dataset: keeps the valid record prefix, discards the
/// torn tail, and closes the document with a recovery comment recording
/// what was dropped. A complete document comes back unchanged. The
/// repaired text parses cleanly (the marker is a comment the tokenizer
/// skips).
pub fn repair_truncated(s: &str) -> (String, RecoveredDataset) {
    let scan = scan_valid_prefix(s);
    if scan.complete {
        return (s.to_owned(), scan);
    }
    let mut out = if scan.valid_bytes == 0 {
        // Even the header was torn; emit a fresh empty document.
        String::from("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<capture spec=\"etw-1.0\">\n")
    } else {
        s[..scan.valid_bytes].to_owned()
    };
    if !out.ends_with('\n') {
        out.push('\n');
    }
    out.push_str(&format!(
        "<!-- etw:recovered records=\"{}\" dropped-bytes=\"{}\" -->\n</capture>\n",
        scan.records,
        s.len() - scan.valid_bytes
    ));
    (out, scan)
}

fn decode_record(node: &Node) -> Result<AnonRecord, XmlError> {
    if node.name != "dialog" {
        return Err(XmlError::Schema(format!(
            "expected <dialog>, got <{}>",
            node.name
        )));
    }
    let ts_us = node.attr_u64("ts")?;
    let peer = node.attr_u64("peer")? as u32;
    let [msg_node] = &node.children[..] else {
        return Err(XmlError::Schema(
            "dialog must contain exactly one message".into(),
        ));
    };
    Ok(AnonRecord {
        ts_us,
        peer,
        msg: decode_message(msg_node)?,
    })
}

fn decode_message(n: &Node) -> Result<AnonMessage, XmlError> {
    match n.name.as_str() {
        "status_req" => Ok(AnonMessage::StatusRequest {
            challenge: n.attr_u64("challenge")? as u32,
        }),
        "status_res" => Ok(AnonMessage::StatusResponse {
            challenge: n.attr_u64("challenge")? as u32,
            users: n.attr_u64("users")? as u32,
            files: n.attr_u64("files")? as u32,
        }),
        "desc_req" => Ok(AnonMessage::ServerDescRequest),
        "desc_res" => Ok(AnonMessage::ServerDescResponse {
            name: n.attr_str("name")?.into(),
            description: n.attr_str("desc")?.into(),
        }),
        "server_list_req" => Ok(AnonMessage::GetServerList),
        "server_list" => {
            let mut servers = Vec::with_capacity(n.children.len());
            for c in &n.children {
                expect_name(c, "server")?;
                servers.push((c.attr_u64("ip")? as u32, c.attr_u64("port")? as u16));
            }
            Ok(AnonMessage::ServerList { servers })
        }
        "search" => {
            let [expr] = &n.children[..] else {
                return Err(XmlError::Schema("search needs one expression".into()));
            };
            Ok(AnonMessage::SearchRequest {
                expr: decode_expr(expr)?,
            })
        }
        "search_res" => {
            let results = n
                .children
                .iter()
                .map(|c| decode_entry(c, "result"))
                .collect::<Result<_, _>>()?;
            Ok(AnonMessage::SearchResponse { results })
        }
        "get_sources" => {
            let mut files = Vec::with_capacity(n.children.len());
            for c in &n.children {
                expect_name(c, "file")?;
                files.push(c.attr_u64("id")?);
            }
            Ok(AnonMessage::GetSources { files })
        }
        "found_sources" => {
            let file = n.attr_u64("file")?;
            let mut sources = Vec::with_capacity(n.children.len());
            for c in &n.children {
                expect_name(c, "src")?;
                sources.push((c.attr_u64("client")? as u32, c.attr_u64("port")? as u16));
            }
            Ok(AnonMessage::FoundSources { file, sources })
        }
        "offer" => {
            let files = n
                .children
                .iter()
                .map(|c| decode_entry(c, "f"))
                .collect::<Result<_, _>>()?;
            Ok(AnonMessage::OfferFiles { files })
        }
        other => Err(XmlError::Schema(format!(
            "unknown message element <{other}>"
        ))),
    }
}

fn expect_name(n: &Node, want: &str) -> Result<(), XmlError> {
    if n.name == want {
        Ok(())
    } else {
        Err(XmlError::Schema(format!(
            "expected <{want}>, got <{}>",
            n.name
        )))
    }
}

fn decode_entry(n: &Node, elem: &str) -> Result<AnonFileEntry, XmlError> {
    expect_name(n, elem)?;
    let tags = n
        .children
        .iter()
        .map(|c| {
            expect_name(c, "tag")?;
            let name: std::borrow::Cow<'static, str> = c.attr_str("name")?.to_owned().into();
            let value = if let Some(h) = c.attr("hash") {
                AnonTagValue::Hashed(h.into())
            } else {
                AnonTagValue::UInt(c.attr_u64("uint")?)
            };
            Ok(AnonTag { name, value })
        })
        .collect::<Result<_, XmlError>>()?;
    Ok(AnonFileEntry {
        file: n.attr_u64("id")?,
        client: n.attr_u64("client")? as u32,
        port: n.attr_u64("port")? as u16,
        tags,
    })
}

fn decode_expr(n: &Node) -> Result<AnonSearchExpr, XmlError> {
    match n.name.as_str() {
        "and" | "or" | "andnot" => {
            let [l, r] = &n.children[..] else {
                return Err(XmlError::Schema(format!("<{}> needs two operands", n.name)));
            };
            let op = match n.name.as_str() {
                "and" => "and",
                "or" => "or",
                _ => "andnot",
            };
            Ok(AnonSearchExpr::Bool {
                op,
                left: Box::new(decode_expr(l)?),
                right: Box::new(decode_expr(r)?),
            })
        }
        "kw" => Ok(AnonSearchExpr::Keyword(n.attr_str("hash")?.into())),
        "metastr" => Ok(AnonSearchExpr::MetaStr {
            name: n.attr_str("name")?.to_owned().into(),
            value: n.attr_str("hash")?.into(),
        }),
        "metanum" => Ok(AnonSearchExpr::MetaNum {
            name: n.attr_str("name")?.to_owned().into(),
            cmp: if n.attr_str("cmp")? == "ge" {
                ">="
            } else {
                "<="
            },
            value: n.attr_u64("value")?,
        }),
        other => Err(XmlError::Schema(format!(
            "unknown expression element <{other}>"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::to_xml_string;

    fn sample_records() -> Vec<AnonRecord> {
        vec![
            AnonRecord {
                ts_us: 0,
                peer: 0,
                msg: AnonMessage::StatusRequest { challenge: 99 },
            },
            AnonRecord {
                ts_us: 5,
                peer: 1,
                msg: AnonMessage::SearchRequest {
                    expr: AnonSearchExpr::Bool {
                        op: "and",
                        left: Box::new(AnonSearchExpr::Keyword("deadbeef".into())),
                        right: Box::new(AnonSearchExpr::MetaNum {
                            name: "filesize".into(),
                            cmp: ">=",
                            value: 700,
                        }),
                    },
                },
            },
            AnonRecord {
                ts_us: 7,
                peer: 0,
                msg: AnonMessage::FoundSources {
                    file: 3,
                    sources: vec![(1, 4662), (2, 4672)],
                },
            },
            AnonRecord {
                ts_us: 9,
                peer: 2,
                msg: AnonMessage::OfferFiles {
                    files: vec![AnonFileEntry {
                        file: 8,
                        client: 2,
                        port: 4662,
                        tags: vec![
                            AnonTag {
                                name: "filename".into(),
                                value: AnonTagValue::Hashed("aa".into()),
                            },
                            AnonTag {
                                name: "filesize".into(),
                                value: AnonTagValue::UInt(5120),
                            },
                        ],
                    }],
                },
            },
        ]
    }

    #[test]
    fn full_round_trip() {
        let records = sample_records();
        let xml = to_xml_string(&records);
        let got: Vec<AnonRecord> = DatasetReader::new(&xml).collect::<Result<_, _>>().unwrap();
        assert_eq!(got, records);
    }

    #[test]
    fn tokenizer_basic() {
        let mut t = Tokenizer::new("<?xml version=\"1.0\"?>\n<a x=\"1\"><b/></a>");
        assert_eq!(
            t.next_token().unwrap().unwrap(),
            Token::Open {
                name: "a".into(),
                attrs: vec![("x".into(), "1".into())],
                self_closing: false
            }
        );
        assert_eq!(
            t.next_token().unwrap().unwrap(),
            Token::Open {
                name: "b".into(),
                attrs: vec![],
                self_closing: true
            }
        );
        assert_eq!(t.next_token().unwrap().unwrap(), Token::Close("a".into()));
        assert!(t.next_token().unwrap().is_none());
    }

    #[test]
    fn mismatched_close_rejected() {
        let xml = "<capture spec=\"etw-1.0\"><dialog ts=\"0\" peer=\"0\"><status_req challenge=\"1\"/></oops></capture>";
        let mut r = DatasetReader::new(xml);
        assert!(r.next_record().is_err());
    }

    #[test]
    fn truncated_document_rejected() {
        let records = sample_records();
        let xml = to_xml_string(&records);
        let cut = &xml[..xml.len() - 20];
        let result: Result<Vec<AnonRecord>, XmlError> = DatasetReader::new(cut).collect();
        assert!(result.is_err());
    }

    #[test]
    fn comments_skipped_transparently() {
        let xml = "<?xml version=\"1.0\"?>\n<capture spec=\"etw-1.0\">\n\
                   <dialog ts=\"1\" peer=\"0\"><status_req challenge=\"9\"/></dialog>\n\
                   <!-- etw:recovered records=\"1\" -->\n</capture>\n";
        let records: Vec<AnonRecord> = DatasetReader::new(xml).collect::<Result<_, _>>().unwrap();
        assert_eq!(records.len(), 1);
    }

    #[test]
    fn scan_reports_complete_document() {
        let xml = to_xml_string(&sample_records());
        let scan = scan_valid_prefix(&xml);
        assert!(scan.complete);
        assert_eq!(scan.records, 4);
        assert_eq!(scan.valid_bytes, xml.len());
        let (repaired, _) = repair_truncated(&xml);
        assert_eq!(repaired, xml, "complete documents come back unchanged");
    }

    #[test]
    fn repair_recovers_valid_prefix_of_torn_document() {
        let records = sample_records();
        let xml = to_xml_string(&records);
        // Tear the document at every byte: the repair must always yield
        // a parseable document holding a prefix of the records.
        for cut in 0..xml.len() {
            let torn = &xml[..cut];
            let (repaired, scan) = repair_truncated(torn);
            let got: Vec<AnonRecord> = DatasetReader::new(&repaired)
                .collect::<Result<_, _>>()
                .unwrap_or_else(|e| panic!("repair at {cut} unparseable: {e}"));
            assert_eq!(got.len() as u64, scan.records);
            assert_eq!(&records[..got.len()], &got[..], "cut at {cut}");
            if !scan.complete {
                assert!(repaired.contains("etw:recovered"));
            }
        }
    }

    #[test]
    fn schema_violations_detected() {
        let xml =
            "<capture spec=\"etw-1.0\"><dialog ts=\"0\" peer=\"0\"><bogus/></dialog></capture>";
        let err = DatasetReader::new(xml).next_record().unwrap_err();
        assert!(matches!(err, XmlError::Schema(_)));

        // Missing attribute.
        let xml = "<capture spec=\"etw-1.0\"><dialog peer=\"0\"><status_req challenge=\"1\"/></dialog></capture>";
        assert!(DatasetReader::new(xml).next_record().is_err());
    }

    #[test]
    fn escaped_attributes_unescaped() {
        let mut t = Tokenizer::new("<a v=\"x &amp; y\"/>");
        match t.next_token().unwrap().unwrap() {
            Token::Open { attrs, .. } => assert_eq!(attrs[0].1, "x & y"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn empty_capture() {
        let xml =
            "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<capture spec=\"etw-1.0\">\n</capture>\n";
        let records: Vec<AnonRecord> = DatasetReader::new(xml).collect::<Result<_, _>>().unwrap();
        assert!(records.is_empty());
    }

    #[test]
    fn reader_is_fused_after_end() {
        let xml = to_xml_string(&sample_records());
        let mut r = DatasetReader::new(&xml);
        while r.next_record().unwrap().is_some() {}
        assert!(r.next_record().unwrap().is_none());
        assert!(r.next_record().unwrap().is_none());
    }
}
