//! Streaming XML writer for the anonymised dialog dataset (paper §2.4:
//! "XML encoding and storage"; §2.5: the released dataset "in xml
//! format... with its formal specification").
//!
//! The element vocabulary is documented in [`crate::schema`]. The writer
//! streams to any `io::Write`, never holding more than one record in
//! memory — the paper's capture machine wrote continuously for ten weeks.

use crate::escape::escape;
use etw_anonymize::scheme::{AnonFileEntry, AnonMessage, AnonRecord, AnonSearchExpr, AnonTagValue};
use std::io::{self, Write};

/// Streaming dataset writer.
pub struct DatasetWriter<W: Write> {
    out: W,
    records: u64,
    closed: bool,
}

impl<W: Write> DatasetWriter<W> {
    /// Starts a dataset document.
    pub fn new(mut out: W) -> io::Result<Self> {
        out.write_all(b"<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n")?;
        out.write_all(b"<capture spec=\"etw-1.0\">\n")?;
        Ok(DatasetWriter {
            out,
            records: 0,
            closed: false,
        })
    }

    /// Records written so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Writes one dialog record.
    pub fn write_record(&mut self, r: &AnonRecord) -> io::Result<()> {
        debug_assert!(!self.closed);
        self.records += 1;
        write!(self.out, "<dialog ts=\"{}\" peer=\"{}\">", r.ts_us, r.peer)?;
        self.write_msg(&r.msg)?;
        self.out.write_all(b"</dialog>\n")
    }

    fn write_msg(&mut self, m: &AnonMessage) -> io::Result<()> {
        match m {
            AnonMessage::StatusRequest { challenge } => {
                write!(self.out, "<status_req challenge=\"{challenge}\"/>")
            }
            AnonMessage::StatusResponse {
                challenge,
                users,
                files,
            } => write!(
                self.out,
                "<status_res challenge=\"{challenge}\" users=\"{users}\" files=\"{files}\"/>"
            ),
            AnonMessage::ServerDescRequest => self.out.write_all(b"<desc_req/>"),
            AnonMessage::ServerDescResponse { name, description } => write!(
                self.out,
                "<desc_res name=\"{}\" desc=\"{}\"/>",
                escape(name),
                escape(description)
            ),
            AnonMessage::GetServerList => self.out.write_all(b"<server_list_req/>"),
            AnonMessage::ServerList { servers } => {
                self.out.write_all(b"<server_list>")?;
                for (ip, port) in servers {
                    write!(self.out, "<server ip=\"{ip}\" port=\"{port}\"/>")?;
                }
                self.out.write_all(b"</server_list>")
            }
            AnonMessage::SearchRequest { expr } => {
                self.out.write_all(b"<search>")?;
                self.write_expr(expr)?;
                self.out.write_all(b"</search>")
            }
            AnonMessage::SearchResponse { results } => {
                self.out.write_all(b"<search_res>")?;
                for e in results {
                    self.write_entry("result", e)?;
                }
                self.out.write_all(b"</search_res>")
            }
            AnonMessage::GetSources { files } => {
                self.out.write_all(b"<get_sources>")?;
                for f in files {
                    write!(self.out, "<file id=\"{f}\"/>")?;
                }
                self.out.write_all(b"</get_sources>")
            }
            AnonMessage::FoundSources { file, sources } => {
                write!(self.out, "<found_sources file=\"{file}\">")?;
                for (client, port) in sources {
                    write!(self.out, "<src client=\"{client}\" port=\"{port}\"/>")?;
                }
                self.out.write_all(b"</found_sources>")
            }
            AnonMessage::OfferFiles { files } => {
                self.out.write_all(b"<offer>")?;
                for e in files {
                    self.write_entry("f", e)?;
                }
                self.out.write_all(b"</offer>")
            }
        }
    }

    fn write_entry(&mut self, elem: &str, e: &AnonFileEntry) -> io::Result<()> {
        write!(
            self.out,
            "<{elem} id=\"{}\" client=\"{}\" port=\"{}\">",
            e.file, e.client, e.port
        )?;
        for t in &e.tags {
            match &t.value {
                AnonTagValue::Hashed(h) => write!(
                    self.out,
                    "<tag name=\"{}\" hash=\"{}\"/>",
                    escape(&t.name),
                    escape(h)
                )?,
                AnonTagValue::UInt(v) => {
                    write!(self.out, "<tag name=\"{}\" uint=\"{v}\"/>", escape(&t.name))?
                }
            }
        }
        write!(self.out, "</{elem}>")
    }

    fn write_expr(&mut self, e: &AnonSearchExpr) -> io::Result<()> {
        match e {
            AnonSearchExpr::Bool { op, left, right } => {
                write!(self.out, "<{op}>")?;
                self.write_expr(left)?;
                self.write_expr(right)?;
                write!(self.out, "</{op}>")
            }
            AnonSearchExpr::Keyword(h) => write!(self.out, "<kw hash=\"{}\"/>", escape(h)),
            AnonSearchExpr::MetaStr { name, value } => write!(
                self.out,
                "<metastr name=\"{}\" hash=\"{}\"/>",
                escape(name),
                escape(value)
            ),
            AnonSearchExpr::MetaNum { name, cmp, value } => {
                let cmp = match *cmp {
                    ">=" => "ge",
                    _ => "le",
                };
                write!(
                    self.out,
                    "<metanum name=\"{}\" cmp=\"{cmp}\" value=\"{value}\"/>",
                    escape(name)
                )
            }
        }
    }

    /// Closes the document and returns the sink.
    pub fn finish(mut self) -> io::Result<W> {
        self.out.write_all(b"</capture>\n")?;
        self.closed = true;
        Ok(self.out)
    }
}

/// Convenience: serialises records into an in-memory XML string.
pub fn to_xml_string(records: &[AnonRecord]) -> String {
    let mut w = DatasetWriter::new(Vec::new()).expect("vec write");
    for r in records {
        w.write_record(r).expect("vec write");
    }
    let bytes = w.finish().expect("vec write");
    String::from_utf8(bytes).expect("writer emits utf-8")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record() -> AnonRecord {
        AnonRecord {
            ts_us: 123_456,
            peer: 7,
            msg: AnonMessage::GetSources {
                files: vec![0, 1, 2],
            },
        }
    }

    #[test]
    fn document_structure() {
        let xml = to_xml_string(&[sample_record()]);
        assert!(xml.starts_with("<?xml"));
        assert!(xml.contains("<capture spec=\"etw-1.0\">"));
        assert!(xml.contains("<dialog ts=\"123456\" peer=\"7\">"));
        assert!(xml.contains(
            "<get_sources><file id=\"0\"/><file id=\"1\"/><file id=\"2\"/></get_sources>"
        ));
        assert!(xml.trim_end().ends_with("</capture>"));
    }

    #[test]
    fn record_counter() {
        let mut w = DatasetWriter::new(Vec::new()).unwrap();
        for _ in 0..5 {
            w.write_record(&sample_record()).unwrap();
        }
        assert_eq!(w.records(), 5);
        w.finish().unwrap();
    }

    #[test]
    fn search_expression_nesting() {
        let r = AnonRecord {
            ts_us: 1,
            peer: 0,
            msg: AnonMessage::SearchRequest {
                expr: AnonSearchExpr::Bool {
                    op: "and",
                    left: Box::new(AnonSearchExpr::Keyword("aa".into())),
                    right: Box::new(AnonSearchExpr::MetaNum {
                        name: "filesize".into(),
                        cmp: ">=",
                        value: 1024,
                    }),
                },
            },
        };
        let xml = to_xml_string(&[r]);
        assert!(xml.contains(
            "<search><and><kw hash=\"aa\"/><metanum name=\"filesize\" cmp=\"ge\" value=\"1024\"/></and></search>"
        ));
    }

    #[test]
    fn entries_with_tags() {
        use etw_anonymize::scheme::AnonTag;
        let r = AnonRecord {
            ts_us: 9,
            peer: 3,
            msg: AnonMessage::OfferFiles {
                files: vec![AnonFileEntry {
                    file: 11,
                    client: 3,
                    port: 4662,
                    tags: vec![
                        AnonTag {
                            name: "filename".into(),
                            value: AnonTagValue::Hashed("abcd".into()),
                        },
                        AnonTag {
                            name: "filesize".into(),
                            value: AnonTagValue::UInt(700 * 1024),
                        },
                    ],
                }],
            },
        };
        let xml = to_xml_string(&[r]);
        assert!(xml.contains("<offer><f id=\"11\" client=\"3\" port=\"4662\">"));
        assert!(xml.contains("<tag name=\"filename\" hash=\"abcd\"/>"));
        assert!(xml.contains("<tag name=\"filesize\" uint=\"716800\"/>"));
    }
}
