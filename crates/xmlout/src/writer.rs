//! Streaming XML writer for the anonymised dialog dataset (paper §2.4:
//! "XML encoding and storage"; §2.5: the released dataset "in xml
//! format... with its formal specification").
//!
//! The element vocabulary is documented in [`crate::schema`]. The writer
//! streams to any `io::Write`, never holding more than one record in
//! memory — the paper's capture machine wrote continuously for ten weeks.
//!
//! Ten weeks of continuous writing also means surviving whatever happens
//! in between, so the writer is crash-aware:
//!
//! * [`DatasetWriter::bytes_written`] exposes the exact output offset, so
//!   a campaign checkpoint can record where the dataset stood;
//! * [`DatasetWriter::resume`] continues an interrupted document (the
//!   caller truncates it to the checkpointed offset first);
//! * dropping an unfinished writer (a panic unwinding past it) appends a
//!   recovery comment and the closing tag, leaving a readable document
//!   that says it is incomplete instead of a torn one.

use crate::escape::escape;
use etw_anonymize::scheme::{AnonFileEntry, AnonMessage, AnonRecord, AnonSearchExpr, AnonTagValue};
use std::io::{self, Write};

/// Byte-counting adapter so the writer always knows its output offset.
struct CountingWriter<W: Write> {
    inner: W,
    bytes: u64,
}

impl<W: Write> Write for CountingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.bytes += n as u64;
        Ok(n)
    }
    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Streaming dataset writer.
pub struct DatasetWriter<W: Write> {
    /// `None` only after `finish` handed the sink back.
    out: Option<CountingWriter<W>>,
    records: u64,
    closed: bool,
}

impl<W: Write> DatasetWriter<W> {
    /// Starts a dataset document.
    pub fn new(out: W) -> io::Result<Self> {
        let mut out = CountingWriter {
            inner: out,
            bytes: 0,
        };
        out.write_all(b"<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n")?;
        out.write_all(b"<capture spec=\"etw-1.0\">\n")?;
        Ok(DatasetWriter {
            out: Some(out),
            records: 0,
            closed: false,
        })
    }

    /// Continues an interrupted document: no header is written, the
    /// record counter starts at `records` and the byte counter at
    /// `bytes_already` (both from the checkpoint the caller restored;
    /// the caller is responsible for truncating the underlying file to
    /// that offset first).
    pub fn resume(out: W, records: u64, bytes_already: u64) -> Self {
        DatasetWriter {
            out: Some(CountingWriter {
                inner: out,
                bytes: bytes_already,
            }),
            records,
            closed: false,
        }
    }

    /// Records written so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Bytes written so far (header included; for a resumed writer this
    /// continues from the checkpointed offset).
    pub fn bytes_written(&self) -> u64 {
        self.out.as_ref().map_or(0, |o| o.bytes)
    }

    fn o(&mut self) -> &mut CountingWriter<W> {
        // A `None` here means use-after-finish, which the type system
        // already prevents (finish consumes self); unwrap is unreachable.
        self.out.as_mut().expect("writer already finished")
    }

    /// Flushes a run of pre-encoded records in one write.
    ///
    /// This is the buffer-reuse fast path behind the batched capture
    /// tail: `bytes` must be the exact [`crate::encode`] rendering of
    /// `records` records (the encoder is byte-identical to
    /// [`write_record`](Self::write_record), so offsets and the record
    /// counter stay consistent with the serial path).
    // etwlint: sink(xml): bytes written to the dataset output
    pub fn write_encoded(&mut self, bytes: &[u8], records: u64) -> io::Result<()> {
        debug_assert!(!self.closed);
        self.records += records;
        self.o().write_all(bytes)
    }

    /// Writes one dialog record.
    // etwlint: sink(xml): record serialised into the dataset output
    pub fn write_record(&mut self, r: &AnonRecord) -> io::Result<()> {
        debug_assert!(!self.closed);
        self.records += 1;
        write!(self.o(), "<dialog ts=\"{}\" peer=\"{}\">", r.ts_us, r.peer)?;
        self.write_msg(&r.msg)?;
        self.o().write_all(b"</dialog>\n")
    }

    fn write_msg(&mut self, m: &AnonMessage) -> io::Result<()> {
        match m {
            AnonMessage::StatusRequest { challenge } => {
                write!(self.o(), "<status_req challenge=\"{challenge}\"/>")
            }
            AnonMessage::StatusResponse {
                challenge,
                users,
                files,
            } => write!(
                self.o(),
                "<status_res challenge=\"{challenge}\" users=\"{users}\" files=\"{files}\"/>"
            ),
            AnonMessage::ServerDescRequest => self.o().write_all(b"<desc_req/>"),
            AnonMessage::ServerDescResponse { name, description } => write!(
                self.o(),
                "<desc_res name=\"{}\" desc=\"{}\"/>",
                escape(name),
                escape(description)
            ),
            AnonMessage::GetServerList => self.o().write_all(b"<server_list_req/>"),
            AnonMessage::ServerList { servers } => {
                self.o().write_all(b"<server_list>")?;
                for (ip, port) in servers {
                    write!(self.o(), "<server ip=\"{ip}\" port=\"{port}\"/>")?;
                }
                self.o().write_all(b"</server_list>")
            }
            AnonMessage::SearchRequest { expr } => {
                self.o().write_all(b"<search>")?;
                self.write_expr(expr)?;
                self.o().write_all(b"</search>")
            }
            AnonMessage::SearchResponse { results } => {
                self.o().write_all(b"<search_res>")?;
                for e in results {
                    self.write_entry("result", e)?;
                }
                self.o().write_all(b"</search_res>")
            }
            AnonMessage::GetSources { files } => {
                self.o().write_all(b"<get_sources>")?;
                for f in files {
                    write!(self.o(), "<file id=\"{f}\"/>")?;
                }
                self.o().write_all(b"</get_sources>")
            }
            AnonMessage::FoundSources { file, sources } => {
                write!(self.o(), "<found_sources file=\"{file}\">")?;
                for (client, port) in sources {
                    write!(self.o(), "<src client=\"{client}\" port=\"{port}\"/>")?;
                }
                self.o().write_all(b"</found_sources>")
            }
            AnonMessage::OfferFiles { files } => {
                self.o().write_all(b"<offer>")?;
                for e in files {
                    self.write_entry("f", e)?;
                }
                self.o().write_all(b"</offer>")
            }
        }
    }

    fn write_entry(&mut self, elem: &str, e: &AnonFileEntry) -> io::Result<()> {
        write!(
            self.o(),
            "<{elem} id=\"{}\" client=\"{}\" port=\"{}\">",
            e.file,
            e.client,
            e.port
        )?;
        for t in &e.tags {
            match &t.value {
                AnonTagValue::Hashed(h) => write!(
                    self.o(),
                    "<tag name=\"{}\" hash=\"{}\"/>",
                    escape(&t.name),
                    escape(h)
                )?,
                AnonTagValue::UInt(v) => {
                    write!(self.o(), "<tag name=\"{}\" uint=\"{v}\"/>", escape(&t.name))?
                }
            }
        }
        write!(self.o(), "</{elem}>")
    }

    fn write_expr(&mut self, e: &AnonSearchExpr) -> io::Result<()> {
        match e {
            AnonSearchExpr::Bool { op, left, right } => {
                write!(self.o(), "<{op}>")?;
                self.write_expr(left)?;
                self.write_expr(right)?;
                write!(self.o(), "</{op}>")
            }
            AnonSearchExpr::Keyword(h) => write!(self.o(), "<kw hash=\"{}\"/>", escape(h)),
            AnonSearchExpr::MetaStr { name, value } => write!(
                self.o(),
                "<metastr name=\"{}\" hash=\"{}\"/>",
                escape(name),
                escape(value)
            ),
            AnonSearchExpr::MetaNum { name, cmp, value } => {
                let cmp = match *cmp {
                    ">=" => "ge",
                    _ => "le",
                };
                write!(
                    self.o(),
                    "<metanum name=\"{}\" cmp=\"{cmp}\" value=\"{value}\"/>",
                    escape(name)
                )
            }
        }
    }

    /// Closes the document and returns the sink.
    pub fn finish(mut self) -> io::Result<W> {
        self.closed = true;
        let mut out = self.out.take().expect("writer already finished");
        out.write_all(b"</capture>\n")?;
        Ok(out.inner)
    }
}

impl<W: Write> Drop for DatasetWriter<W> {
    /// Last line of defence for abnormal exits that still unwind (a
    /// panic somewhere above the writer): closes the document with a
    /// recovery comment so what is on disk stays parseable and says it
    /// is incomplete. Best-effort — write errors are swallowed because
    /// panicking in drop during unwind would abort. A hard kill skips
    /// drops entirely; that case is [`crate::reader::repair_truncated`]'s
    /// job.
    fn drop(&mut self) {
        if self.closed {
            return;
        }
        if let Some(out) = self.out.as_mut() {
            let _ = write!(
                out,
                "<!-- etw:recovered records=\"{}\" -->\n</capture>\n",
                self.records
            );
            let _ = out.flush();
        }
    }
}

/// Convenience: serialises records into an in-memory XML string.
pub fn to_xml_string(records: &[AnonRecord]) -> String {
    let mut w = DatasetWriter::new(Vec::new()).expect("vec write");
    for r in records {
        w.write_record(r).expect("vec write");
    }
    let bytes = w.finish().expect("vec write");
    String::from_utf8(bytes).expect("writer emits utf-8")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record() -> AnonRecord {
        AnonRecord {
            ts_us: 123_456,
            peer: 7,
            msg: AnonMessage::GetSources {
                files: vec![0, 1, 2],
            },
        }
    }

    #[test]
    fn document_structure() {
        let xml = to_xml_string(&[sample_record()]);
        assert!(xml.starts_with("<?xml"));
        assert!(xml.contains("<capture spec=\"etw-1.0\">"));
        assert!(xml.contains("<dialog ts=\"123456\" peer=\"7\">"));
        assert!(xml.contains(
            "<get_sources><file id=\"0\"/><file id=\"1\"/><file id=\"2\"/></get_sources>"
        ));
        assert!(xml.trim_end().ends_with("</capture>"));
    }

    #[test]
    fn record_counter() {
        let mut w = DatasetWriter::new(Vec::new()).unwrap();
        for _ in 0..5 {
            w.write_record(&sample_record()).unwrap();
        }
        assert_eq!(w.records(), 5);
        w.finish().unwrap();
    }

    #[test]
    fn byte_counter_tracks_output_exactly() {
        let mut w = DatasetWriter::new(Vec::new()).unwrap();
        let mut offsets = vec![w.bytes_written()];
        for _ in 0..3 {
            w.write_record(&sample_record()).unwrap();
            offsets.push(w.bytes_written());
        }
        let bytes = w.finish().unwrap();
        // Each recorded offset is the exact prefix length at that point.
        for (i, off) in offsets.iter().enumerate() {
            assert!(*off <= bytes.len() as u64);
            assert!(i == 0 || offsets[i - 1] < *off);
        }
        assert_eq!(
            offsets[0],
            bytes.len() as u64 - 3 * (offsets[1] - offsets[0]) - "</capture>\n".len() as u64
        );
    }

    #[test]
    fn dropped_writer_leaves_recovered_document() {
        use std::sync::{Arc, Mutex};
        // A shared sink survives the writer's drop.
        #[derive(Clone)]
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl std::io::Write for Shared {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let sink = Shared(Arc::new(Mutex::new(Vec::new())));
        {
            let mut w = DatasetWriter::new(sink.clone()).unwrap();
            w.write_record(&sample_record()).unwrap();
            w.write_record(&sample_record()).unwrap();
            // No finish(): simulate an unwind past the writer.
        }
        let xml = String::from_utf8(sink.0.lock().unwrap().clone()).unwrap();
        assert!(xml.contains("<!-- etw:recovered records=\"2\" -->"));
        assert!(xml.trim_end().ends_with("</capture>"));
        // The recovered document parses cleanly.
        let got: Vec<AnonRecord> = crate::reader::DatasetReader::new(&xml)
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn resumed_writer_continues_byte_identically() {
        // Full run.
        let mut w = DatasetWriter::new(Vec::new()).unwrap();
        for _ in 0..5 {
            w.write_record(&sample_record()).unwrap();
        }
        let full = w.finish().unwrap();

        // Interrupted after 2 records at a known offset…
        let mut w = DatasetWriter::new(Vec::new()).unwrap();
        for _ in 0..2 {
            w.write_record(&sample_record()).unwrap();
        }
        let (records, bytes) = (w.records(), w.bytes_written());
        let mut prefix = w.finish().unwrap();
        prefix.truncate(bytes as usize); // drop the </capture> tail

        // …then resumed: no second header, counters carry on.
        let mut w = DatasetWriter::resume(prefix, records, bytes);
        assert_eq!(w.records(), 2);
        assert_eq!(w.bytes_written(), bytes);
        for _ in 0..3 {
            w.write_record(&sample_record()).unwrap();
        }
        let resumed = w.finish().unwrap();
        assert_eq!(resumed, full, "resumed dataset must be byte-identical");
    }

    #[test]
    fn search_expression_nesting() {
        let r = AnonRecord {
            ts_us: 1,
            peer: 0,
            msg: AnonMessage::SearchRequest {
                expr: AnonSearchExpr::Bool {
                    op: "and",
                    left: Box::new(AnonSearchExpr::Keyword("aa".into())),
                    right: Box::new(AnonSearchExpr::MetaNum {
                        name: "filesize".into(),
                        cmp: ">=",
                        value: 1024,
                    }),
                },
            },
        };
        let xml = to_xml_string(&[r]);
        assert!(xml.contains(
            "<search><and><kw hash=\"aa\"/><metanum name=\"filesize\" cmp=\"ge\" value=\"1024\"/></and></search>"
        ));
    }

    #[test]
    fn entries_with_tags() {
        use etw_anonymize::scheme::AnonTag;
        let r = AnonRecord {
            ts_us: 9,
            peer: 3,
            msg: AnonMessage::OfferFiles {
                files: vec![AnonFileEntry {
                    file: 11,
                    client: 3,
                    port: 4662,
                    tags: vec![
                        AnonTag {
                            name: "filename".into(),
                            value: AnonTagValue::Hashed("abcd".into()),
                        },
                        AnonTag {
                            name: "filesize".into(),
                            value: AnonTagValue::UInt(700 * 1024),
                        },
                    ],
                }],
            },
        };
        let xml = to_xml_string(&[r]);
        assert!(xml.contains("<offer><f id=\"11\" client=\"3\" port=\"4662\">"));
        assert!(xml.contains("<tag name=\"filename\" hash=\"abcd\"/>"));
        assert!(xml.contains("<tag name=\"filesize\" uint=\"716800\"/>"));
    }
}
