//! A parser for the Prometheus text exposition format — the inverse of
//! [`crate::Snapshot::render_prometheus`].
//!
//! The ops surface serves `/metrics` in the text format; this module
//! lets tests (and `etwtool`) prove the rendering round-trips instead
//! of string-matching a handful of lines. The parser covers the subset
//! an actual scraper needs: `# TYPE` lines, `# HELP`/comment lines
//! (skipped), samples with optional `{label="value"}` sets and an
//! optional trailing timestamp. It is strict about what it does accept:
//! a malformed sample line is an error with its line number, not a
//! silent skip.

use std::collections::BTreeMap;

/// Metric kind declared by a `# TYPE` line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PromKind {
    /// Monotonic counter.
    Counter,
    /// Instantaneous level.
    Gauge,
    /// Cumulative-bucket histogram.
    Histogram,
    /// Any other declared type (summary, untyped, ...).
    Other,
}

/// One sample line: `name{labels} value`.
#[derive(Clone, Debug, PartialEq)]
pub struct PromSample {
    /// The full sample name, including `_bucket`/`_sum`/`_count`
    /// suffixes for histogram series.
    pub name: String,
    /// Label pairs in order of appearance (empty for most series).
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

impl PromSample {
    /// The value of the label `key`, when present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a scrape failed to parse.
#[derive(Clone, Debug, PartialEq)]
pub enum PromParseError {
    /// A `# TYPE` line without both a name and a kind.
    BadTypeLine {
        /// 1-based line number.
        line: usize,
    },
    /// A sample line that is not `name[{labels}] value [timestamp]`.
    BadSample {
        /// 1-based line number.
        line: usize,
        /// What was wrong with it.
        reason: &'static str,
    },
}

impl std::fmt::Display for PromParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PromParseError::BadTypeLine { line } => {
                write!(f, "line {line}: malformed # TYPE line")
            }
            PromParseError::BadSample { line, reason } => {
                write!(f, "line {line}: malformed sample ({reason})")
            }
        }
    }
}

impl std::error::Error for PromParseError {}

/// A parsed scrape: every sample plus the declared types.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PromScrape {
    /// Samples in document order.
    pub samples: Vec<PromSample>,
    /// `# TYPE` declarations by metric family name.
    pub types: BTreeMap<String, PromKind>,
}

impl PromScrape {
    /// The value of the unlabelled sample `name`, when present.
    pub fn value(&self, name: &str) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| s.name == name && s.labels.is_empty())
            .map(|s| s.value)
    }

    /// All samples named `name` (e.g. every `_bucket` line of one
    /// histogram), in document order.
    pub fn series(&self, name: &str) -> Vec<&PromSample> {
        self.samples.iter().filter(|s| s.name == name).collect()
    }

    /// The declared kind of the metric family `name`.
    pub fn kind(&self, name: &str) -> Option<PromKind> {
        self.types.get(name).copied()
    }

    /// Checks every declared histogram family for internal consistency:
    /// bucket counts cumulative and non-decreasing, the `+Inf` bucket
    /// present and equal to `_count`. Returns the names that fail.
    pub fn inconsistent_histograms(&self) -> Vec<String> {
        let mut bad = Vec::new();
        for (family, kind) in &self.types {
            if *kind != PromKind::Histogram {
                continue;
            }
            let buckets = self.series(&format!("{family}_bucket"));
            let count = self.value(&format!("{family}_count"));
            let mut prev = 0.0f64;
            let mut inf = None;
            let mut ok = !buckets.is_empty() && count.is_some();
            for b in &buckets {
                if b.value < prev {
                    ok = false;
                }
                prev = b.value;
                match b.label("le") {
                    Some("+Inf") => inf = Some(b.value),
                    Some(_) => {}
                    None => ok = false,
                }
            }
            if inf.is_none() || inf != count {
                ok = false;
            }
            if !ok {
                bad.push(family.clone());
            }
        }
        bad
    }
}

/// Parses a scrape in the Prometheus text exposition format.
pub fn parse_prometheus(text: &str) -> Result<PromScrape, PromParseError> {
    let mut scrape = PromScrape::default();
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(comment) = trimmed.strip_prefix('#') {
            let comment = comment.trim_start();
            if let Some(decl) = comment.strip_prefix("TYPE ") {
                let mut parts = decl.split_whitespace();
                let (Some(name), Some(kind)) = (parts.next(), parts.next()) else {
                    return Err(PromParseError::BadTypeLine { line });
                };
                let kind = match kind {
                    "counter" => PromKind::Counter,
                    "gauge" => PromKind::Gauge,
                    "histogram" => PromKind::Histogram,
                    _ => PromKind::Other,
                };
                scrape.types.insert(name.to_string(), kind);
            }
            continue; // HELP and free comments are ignored
        }
        scrape.samples.push(parse_sample(trimmed, line)?);
    }
    Ok(scrape)
}

fn parse_sample(s: &str, line: usize) -> Result<PromSample, PromParseError> {
    let bad = |reason| PromParseError::BadSample { line, reason };
    let (head, rest) = match s.find('{') {
        Some(open) => {
            let close = s[open..]
                .find('}')
                .map(|c| open + c)
                .ok_or(bad("unterminated label set"))?;
            (
                (&s[..open], parse_labels(&s[open + 1..close], line)?),
                &s[close + 1..],
            )
        }
        None => {
            let sp = s.find(char::is_whitespace).ok_or(bad("missing value"))?;
            ((&s[..sp], Vec::new()), &s[sp..])
        }
    };
    let (name, labels) = head;
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    {
        return Err(bad("invalid metric name"));
    }
    // rest = " value [timestamp]"
    let mut parts = rest.split_whitespace();
    let value = parts.next().ok_or(bad("missing value"))?;
    let value = parse_value(value).ok_or(bad("unparseable value"))?;
    if let Some(ts) = parts.next() {
        if ts.parse::<i64>().is_err() {
            return Err(bad("unparseable timestamp"));
        }
    }
    if parts.next().is_some() {
        return Err(bad("trailing garbage"));
    }
    Ok(PromSample {
        name: name.to_string(),
        labels,
        value,
    })
}

fn parse_value(s: &str) -> Option<f64> {
    match s {
        "+Inf" => Some(f64::INFINITY),
        "-Inf" => Some(f64::NEG_INFINITY),
        "NaN" => Some(f64::NAN),
        _ => s.parse().ok(),
    }
}

fn parse_labels(s: &str, line: usize) -> Result<Vec<(String, String)>, PromParseError> {
    let bad = |reason| PromParseError::BadSample { line, reason };
    let mut labels = Vec::new();
    let mut rest = s.trim();
    while !rest.is_empty() {
        let eq = rest.find('=').ok_or(bad("label without ="))?;
        let key = rest[..eq].trim();
        if key.is_empty() {
            return Err(bad("empty label name"));
        }
        let after = &rest[eq + 1..];
        if !after.starts_with('"') {
            return Err(bad("unquoted label value"));
        }
        // Scan for the closing quote, honouring backslash escapes.
        let mut value = String::new();
        let mut chars = after[1..].char_indices();
        let mut end = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '"' => {
                    end = Some(i);
                    break;
                }
                '\\' => match chars.next() {
                    Some((_, 'n')) => value.push('\n'),
                    Some((_, e)) => value.push(e),
                    None => return Err(bad("dangling escape")),
                },
                c => value.push(c),
            }
        }
        let end = end.ok_or(bad("unterminated label value"))?;
        labels.push((key.to_string(), value));
        rest = after[1 + end + 1..].trim_start();
        if let Some(r) = rest.strip_prefix(',') {
            rest = r.trim_start();
        } else if !rest.is_empty() {
            return Err(bad("expected , between labels"));
        }
    }
    Ok(labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_counters_gauges_and_timestamps() {
        let scrape = parse_prometheus(
            "# HELP etw_x ignored\n# TYPE etw_x counter\netw_x 42\n\n# TYPE etw_g gauge\netw_g -7 1700000000\n",
        )
        .unwrap();
        assert_eq!(scrape.kind("etw_x"), Some(PromKind::Counter));
        assert_eq!(scrape.value("etw_x"), Some(42.0));
        assert_eq!(scrape.kind("etw_g"), Some(PromKind::Gauge));
        assert_eq!(scrape.value("etw_g"), Some(-7.0));
        assert_eq!(scrape.value("etw_missing"), None);
    }

    #[test]
    fn parses_labels_and_escapes() {
        let scrape = parse_prometheus("m{le=\"+Inf\", path=\"a\\\"b\\\\c\\nd\"} 3\n").unwrap();
        let s = &scrape.samples[0];
        assert_eq!(s.label("le"), Some("+Inf"));
        assert_eq!(s.label("path"), Some("a\"b\\c\nd"));
        assert!(s.value == 3.0);
        assert!(parse_value("+Inf").unwrap().is_infinite());
        assert!(parse_value("NaN").unwrap().is_nan());
    }

    #[test]
    fn rejects_malformed_lines() {
        let err = |t: &str| parse_prometheus(t).unwrap_err();
        assert!(matches!(
            err("novalue\n"),
            PromParseError::BadSample { line: 1, .. }
        ));
        assert!(matches!(
            err("x{le=\"1\" 3\n"),
            PromParseError::BadSample { .. }
        ));
        assert!(matches!(
            err("x{le=1} 3\n"),
            PromParseError::BadSample { .. }
        ));
        assert!(matches!(err("x abc\n"), PromParseError::BadSample { .. }));
        assert!(matches!(err("x 1 2 3\n"), PromParseError::BadSample { .. }));
        assert!(matches!(
            err("bad-name 1\n"),
            PromParseError::BadSample { .. }
        ));
        assert!(matches!(
            err("# TYPE onlyname\n"),
            PromParseError::BadTypeLine { line: 1 }
        ));
        let e = err("ok 1\nbroken\n");
        assert_eq!(e.to_string(), "line 2: malformed sample (missing value)");
    }

    #[test]
    fn histogram_consistency_check_bites() {
        let good = parse_prometheus(
            "# TYPE h histogram\nh_bucket{le=\"7\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 9\nh_count 2\n",
        )
        .unwrap();
        assert!(good.inconsistent_histograms().is_empty());
        let bad = parse_prometheus(
            "# TYPE h histogram\nh_bucket{le=\"7\"} 5\nh_bucket{le=\"+Inf\"} 2\nh_sum 9\nh_count 2\n",
        )
        .unwrap();
        assert_eq!(bad.inconsistent_histograms(), vec!["h".to_string()]);
        let missing_inf =
            parse_prometheus("# TYPE h histogram\nh_bucket{le=\"7\"} 1\nh_sum 9\nh_count 2\n")
                .unwrap();
        assert_eq!(missing_inf.inconsistent_histograms(), vec!["h".to_string()]);
    }

    #[test]
    fn round_trips_a_rendered_snapshot() {
        let reg = crate::Registry::new();
        reg.counter("stage.decode.frames_total").add(1234);
        reg.gauge("chan.decode_in.depth").set(-3);
        let h = reg.histogram("stage.decode.service_ns");
        for v in [0u64, 5, 5, 700, 70_000] {
            h.record(v);
        }
        let snap = reg.snapshot();
        let scrape = parse_prometheus(&snap.render_prometheus()).unwrap();
        assert_eq!(scrape.value("etw_stage_decode_frames_total"), Some(1234.0));
        assert_eq!(scrape.value("etw_chan_decode_in_depth"), Some(-3.0));
        assert_eq!(scrape.value("etw_stage_decode_service_ns_count"), Some(5.0));
        assert_eq!(
            scrape.value("etw_stage_decode_service_ns_sum"),
            Some(70_710.0)
        );
        assert_eq!(
            scrape.kind("etw_stage_decode_service_ns"),
            Some(PromKind::Histogram)
        );
        assert!(scrape.inconsistent_histograms().is_empty());
        let buckets = scrape.series("etw_stage_decode_service_ns_bucket");
        assert_eq!(buckets.last().unwrap().label("le"), Some("+Inf"));
        assert_eq!(buckets.last().unwrap().value, 5.0);
    }
}
