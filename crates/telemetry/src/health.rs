//! Virtual-time health snapshots.
//!
//! A campaign simulates weeks of virtual time in minutes of wall time.
//! The [`HealthRecorder`] sits on the pipeline's producer thread (which
//! observes every virtual-second tick) and cuts a [`HealthRecord`] each
//! time virtual time crosses an interval boundary: the full metric
//! [`Snapshot`] plus wall-clock progress and the real-time factor (how
//! many virtual seconds elapsed per wall second). A sagging RTF or a
//! climbing queue depth between records is the reproduction's
//! equivalent of the paper's capture machine falling behind the link.

use crate::{Registry, Snapshot};
use std::time::Instant;

const MICROS_PER_SEC: u64 = 1_000_000;

/// One periodic health observation.
#[derive(Clone, Debug)]
pub struct HealthRecord {
    /// Virtual time of the cut, in microseconds since campaign start.
    pub virtual_us: u64,
    /// Wall-clock seconds since the recorder started.
    pub wall_secs: f64,
    /// Virtual seconds per wall second over the last interval.
    pub rtf_interval: f64,
    /// Virtual seconds per wall second since the recorder started.
    pub rtf_cumulative: f64,
    /// Metric values at the cut.
    pub snapshot: Snapshot,
}

impl HealthRecord {
    /// Virtual time in whole seconds.
    pub fn virtual_secs(&self) -> u64 {
        self.virtual_us / MICROS_PER_SEC
    }
}

/// The completed output of a [`HealthRecorder`].
#[derive(Clone, Debug, Default)]
pub struct HealthSeries {
    /// Records in virtual-time order.
    pub records: Vec<HealthRecord>,
}

impl HealthSeries {
    /// Whether any records were cut.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Per-interval delta of a counter across consecutive records
    /// (first entry is the counter's value at the first record).
    pub fn counter_deltas(&self, name: &str) -> Vec<u64> {
        let mut prev = 0u64;
        self.records
            .iter()
            .map(|r| {
                let v = r.snapshot.counter(name);
                let d = v.saturating_sub(prev);
                prev = v;
                d
            })
            .collect()
    }
}

/// Cuts periodic [`HealthRecord`]s from a [`Registry`] as virtual time
/// advances. Inert when built with `interval_secs == 0` or a disabled
/// registry.
#[derive(Debug)]
pub struct HealthRecorder {
    registry: Registry,
    interval_us: u64,
    next_cut_us: u64,
    start_wall: Instant,
    last_cut_wall: Instant,
    last_cut_virtual_us: u64,
    records: Vec<HealthRecord>,
}

impl HealthRecorder {
    /// A recorder cutting a record each `interval_secs` of virtual
    /// time. `interval_secs == 0` disables recording.
    pub fn new(registry: Registry, interval_secs: u64) -> HealthRecorder {
        let now = Instant::now();
        let interval_us = interval_secs.saturating_mul(MICROS_PER_SEC);
        HealthRecorder {
            interval_us,
            next_cut_us: interval_us,
            registry,
            start_wall: now,
            last_cut_wall: now,
            last_cut_virtual_us: 0,
            records: Vec::new(),
        }
    }

    /// Whether this recorder will ever cut a record.
    pub fn is_enabled(&self) -> bool {
        self.interval_us > 0 && self.registry.is_enabled()
    }

    /// Notes that virtual time has reached `virtual_us`; cuts one
    /// record if an interval boundary was crossed since the last cut.
    /// Cheap when no boundary was crossed (one comparison).
    #[inline]
    pub fn observe(&mut self, virtual_us: u64) {
        if self.interval_us == 0 || virtual_us < self.next_cut_us {
            return;
        }
        self.cut(virtual_us);
        // One record per crossing, however far time jumped; the next
        // boundary is relative to where virtual time actually is.
        self.next_cut_us = (virtual_us / self.interval_us + 1) * self.interval_us;
    }

    /// Cuts a final record at `virtual_us` (if time advanced past the
    /// last cut) and returns the finished series.
    pub fn finish(mut self, virtual_us: u64) -> HealthSeries {
        if self.is_enabled() && virtual_us > self.last_cut_virtual_us {
            self.cut(virtual_us);
        }
        HealthSeries {
            records: self.records,
        }
    }

    fn cut(&mut self, virtual_us: u64) {
        if !self.registry.is_enabled() {
            return;
        }
        let now = Instant::now();
        let wall_total = now.duration_since(self.start_wall).as_secs_f64();
        let wall_interval = now.duration_since(self.last_cut_wall).as_secs_f64();
        let virt_total = virtual_us as f64 / MICROS_PER_SEC as f64;
        let virt_interval = (virtual_us - self.last_cut_virtual_us) as f64 / MICROS_PER_SEC as f64;
        self.records.push(HealthRecord {
            virtual_us,
            wall_secs: wall_total,
            rtf_interval: rtf(virt_interval, wall_interval),
            rtf_cumulative: rtf(virt_total, wall_total),
            snapshot: self.registry.snapshot(),
        });
        self.last_cut_wall = now;
        self.last_cut_virtual_us = virtual_us;
    }
}

/// Virtual-over-wall ratio, guarding the division: a sub-microsecond
/// wall interval reports the ratio against 1 µs instead of infinity.
fn rtf(virtual_secs: f64, wall_secs: f64) -> f64 {
    virtual_secs / wall_secs.max(1e-6)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn cuts_once_per_interval_boundary() {
        let reg = Registry::new();
        let frames = reg.counter("frames");
        let mut rec = HealthRecorder::new(reg, 10);
        assert!(rec.is_enabled());
        for sec in 0..35u64 {
            frames.add(100);
            rec.observe(sec * MICROS_PER_SEC);
        }
        let series = rec.finish(35 * MICROS_PER_SEC);
        let virt: Vec<u64> = series.records.iter().map(|r| r.virtual_secs()).collect();
        assert_eq!(virt, vec![10, 20, 30, 35]);
        // Monotone in both clocks.
        for pair in series.records.windows(2) {
            assert!(pair[1].virtual_us > pair[0].virtual_us);
            assert!(pair[1].wall_secs >= pair[0].wall_secs);
        }
        // Counter deltas reflect the 100/sec rate at 10-sec intervals.
        let deltas = series.counter_deltas("frames");
        assert_eq!(deltas[0], 1100); // 11 ticks seen by the first cut
        assert_eq!(deltas[1], 1000);
        assert_eq!(deltas[2], 1000);
    }

    #[test]
    fn rtf_is_positive_and_finite() {
        let reg = Registry::new();
        let mut rec = HealthRecorder::new(reg, 1);
        rec.observe(MICROS_PER_SEC);
        rec.observe(2 * MICROS_PER_SEC);
        let series = rec.finish(2 * MICROS_PER_SEC);
        for r in &series.records {
            assert!(r.rtf_interval.is_finite());
            assert!(r.rtf_interval > 0.0);
            assert!(r.rtf_cumulative.is_finite());
        }
    }

    #[test]
    fn zero_interval_or_disabled_registry_is_inert() {
        let mut rec = HealthRecorder::new(Registry::new(), 0);
        assert!(!rec.is_enabled());
        rec.observe(1_000 * MICROS_PER_SEC);
        assert!(rec.finish(2_000 * MICROS_PER_SEC).is_empty());

        let mut rec = HealthRecorder::new(Registry::disabled(), 5);
        assert!(!rec.is_enabled());
        rec.observe(1_000 * MICROS_PER_SEC);
        assert!(rec.finish(2_000 * MICROS_PER_SEC).is_empty());
    }

    #[test]
    fn long_jumps_cut_single_records() {
        let reg = Registry::new();
        let mut rec = HealthRecorder::new(reg, 10);
        rec.observe(95 * MICROS_PER_SEC); // jumped over 9 boundaries
        rec.observe(96 * MICROS_PER_SEC); // inside the new interval
        rec.observe(101 * MICROS_PER_SEC);
        let series = rec.finish(101 * MICROS_PER_SEC);
        let virt: Vec<u64> = series.records.iter().map(|r| r.virtual_secs()).collect();
        assert_eq!(virt, vec![95, 101]);
    }
}
