//! Bounded channels instrumented with depth, throughput, and
//! backpressure accounting.
//!
//! A [`metered_bounded`] channel behaves exactly like
//! `crossbeam::channel::bounded`, but maintains four metrics in the
//! owning [`Registry`](crate::Registry), named after the channel:
//!
//! * `chan.<name>.depth` (gauge) — messages currently queued;
//! * `chan.<name>.depth_hwm` (gauge) — high-water mark of the above;
//! * `chan.<name>.sent_total` (counter) — messages enqueued;
//! * `chan.<name>.stalls_total` / `chan.<name>.stall_ns_total`
//!   (counters) — how often and for how long senders blocked because
//!   the channel was full (backpressure).
//!
//! The fast path is a `try_send` plus three relaxed atomic updates; the
//! clock is read only when the channel is actually full, so an
//! uncontended instrumented channel costs a few nanoseconds over the
//! raw one, and a disabled registry reduces the updates to no-ops.
//!
//! Depth accounting is intentionally loose: the gauge is bumped after
//! the underlying send and decremented after the receive, so a
//! concurrent snapshot can transiently read a depth off by one per
//! in-flight message (including briefly negative). Health reporting
//! tolerates that; drained channels always settle back to zero.

use crate::{Counter, Gauge, Registry};
use crossbeam::channel::{self, RecvError, SendError, TrySendError};
use std::time::Instant;

/// Metric handles shared by all clones of one channel's sender side.
#[derive(Clone, Debug)]
struct ChannelStats {
    depth: Gauge,
    depth_hwm: Gauge,
    sent: Counter,
    stalls: Counter,
    stall_ns: Counter,
}

impl ChannelStats {
    fn new(registry: &Registry, name: &str) -> ChannelStats {
        ChannelStats {
            depth: registry.gauge(&format!("chan.{name}.depth")),
            depth_hwm: registry.gauge(&format!("chan.{name}.depth_hwm")),
            sent: registry.counter(&format!("chan.{name}.sent_total")),
            stalls: registry.counter(&format!("chan.{name}.stalls_total")),
            stall_ns: registry.counter(&format!("chan.{name}.stall_ns_total")),
        }
    }

    #[inline]
    fn on_send(&self) {
        self.sent.inc();
        let depth = self.depth.add(1);
        if depth > self.depth_hwm.get() {
            // Racy max, but the HWM only drifts low by at most the
            // number of concurrently racing senders — fine for health
            // reporting, and it keeps the fast path CAS-free.
            self.depth_hwm.set(depth);
        }
    }
}

/// The sending half of a metered channel. Cloneable; clones share the
/// channel's metrics.
pub struct MeteredSender<T> {
    inner: channel::Sender<T>,
    stats: ChannelStats,
}

// Manual impl: a derive would demand `T: Clone`, but only the handle is
// cloned, never a `T`.
impl<T> Clone for MeteredSender<T> {
    fn clone(&self) -> Self {
        MeteredSender {
            inner: self.inner.clone(),
            stats: self.stats.clone(),
        }
    }
}

impl<T> MeteredSender<T> {
    /// Sends, blocking while the channel is full; blocked time is
    /// charged to the channel's stall counters.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        match self.inner.try_send(value) {
            Ok(()) => {
                self.stats.on_send();
                Ok(())
            }
            Err(TrySendError::Disconnected(v)) => Err(SendError(v)),
            Err(TrySendError::Full(v)) => {
                self.stats.stalls.inc();
                let t = Instant::now();
                let result = self.inner.send(v);
                self.stats.stall_ns.add(t.elapsed().as_nanos() as u64);
                if result.is_ok() {
                    self.stats.on_send();
                }
                result
            }
        }
    }

    /// Non-blocking send with the same accounting.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let result = self.inner.try_send(value);
        match &result {
            Ok(()) => self.stats.on_send(),
            Err(TrySendError::Full(_)) => self.stats.stalls.inc(),
            Err(TrySendError::Disconnected(_)) => {}
        }
        result
    }
}

/// The receiving half of a metered channel.
pub struct MeteredReceiver<T> {
    inner: channel::Receiver<T>,
    depth: Gauge,
}

impl<T> MeteredReceiver<T> {
    /// Blocks for the next message.
    pub fn recv(&self) -> Result<T, RecvError> {
        let v = self.inner.recv()?;
        self.depth.add(-1);
        Ok(v)
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<T> {
        let v = self.inner.try_recv()?;
        self.depth.add(-1);
        Some(v)
    }

    /// Blocking iterator over messages until all senders disconnect.
    pub fn iter(&self) -> MeteredIter<'_, T> {
        MeteredIter { rx: self }
    }
}

impl<'a, T> IntoIterator for &'a MeteredReceiver<T> {
    type Item = T;
    type IntoIter = MeteredIter<'a, T>;
    fn into_iter(self) -> MeteredIter<'a, T> {
        self.iter()
    }
}

/// Blocking iterator over a [`MeteredReceiver`].
pub struct MeteredIter<'a, T> {
    rx: &'a MeteredReceiver<T>,
}

impl<T> Iterator for MeteredIter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.rx.recv().ok()
    }
}

/// Creates a bounded channel of capacity `cap` whose depth, throughput,
/// and stalls are tracked in `registry` under `chan.<name>.*`.
pub fn metered_bounded<T>(
    cap: usize,
    registry: &Registry,
    name: &str,
) -> (MeteredSender<T>, MeteredReceiver<T>) {
    let (tx, rx) = channel::bounded(cap);
    let stats = ChannelStats::new(registry, name);
    let depth = stats.depth.clone();
    (
        MeteredSender { inner: tx, stats },
        MeteredReceiver { inner: rx, depth },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn depth_and_throughput_accounting() {
        let reg = Registry::new();
        let (tx, rx) = metered_bounded::<u32>(8, &reg, "test");
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        let snap = reg.snapshot();
        assert_eq!(snap.gauge("chan.test.depth"), 5);
        assert_eq!(snap.gauge("chan.test.depth_hwm"), 5);
        assert_eq!(snap.counter("chan.test.sent_total"), 5);
        assert_eq!(snap.counter("chan.test.stalls_total"), 0);

        assert_eq!(rx.recv().unwrap(), 0);
        assert_eq!(rx.try_recv(), Some(1));
        let snap = reg.snapshot();
        assert_eq!(snap.gauge("chan.test.depth"), 3);
        assert_eq!(snap.gauge("chan.test.depth_hwm"), 5);
    }

    #[test]
    fn full_channel_records_stall() {
        let reg = Registry::new();
        let (tx, rx) = metered_bounded::<u32>(1, &reg, "full");
        tx.send(1).unwrap();
        let handle = std::thread::spawn(move || tx.send(2));
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(rx.recv().unwrap(), 1);
        handle.join().unwrap().unwrap();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("chan.full.stalls_total"), 1);
        assert!(snap.counter("chan.full.stall_ns_total") >= 10_000_000);
        assert_eq!(snap.counter("chan.full.sent_total"), 2);
    }

    #[test]
    fn iteration_drains_and_tracks_depth() {
        let reg = Registry::new();
        let (tx, rx) = metered_bounded::<u32>(16, &reg, "drain");
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<u32> = rx.iter().collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        assert_eq!(reg.snapshot().gauge("chan.drain.depth"), 0);
    }

    #[test]
    fn disabled_registry_still_transports() {
        let reg = Registry::disabled();
        let (tx, rx) = metered_bounded::<u32>(4, &reg, "off");
        tx.send(7).unwrap();
        assert_eq!(rx.recv().unwrap(), 7);
        assert_eq!(reg.snapshot(), crate::Snapshot::default());
    }
}
