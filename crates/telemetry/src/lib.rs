//! Capture-machine telemetry: a lock-free metrics registry, instrumented
//! channels, and virtual-time health snapshots.
//!
//! The paper's capture setup ran unattended for ten weeks on a single
//! machine next to the eDonkey server; knowing whether that machine is
//! keeping up (ring occupancy, decode backlog, anonymiser service time)
//! is as important as the measurement itself. This crate provides the
//! observability layer for the reproduction's pipeline:
//!
//! * [`Registry`] — named [`Counter`]s, [`Gauge`]s, and log₂-bucketed
//!   [`Histogram`]s. Handles are `Arc`-backed and update with relaxed
//!   atomics, so worker threads clone them once and touch no locks on
//!   the hot path. A disabled registry hands out no-op handles whose
//!   updates compile to a null-pointer check.
//! * [`channel`] — bounded crossbeam channels wrapped with depth,
//!   throughput, and backpressure-stall accounting.
//! * [`health`] — a virtual-time-driven snapshotter that cuts periodic
//!   [`health::HealthRecord`]s (virtual time, wall time, real-time
//!   factor, full metric snapshot) from the registry.
//! * [`Snapshot::render_prometheus`] — text exposition of a snapshot in
//!   the Prometheus format, for scraping or offline diffing.
//! * [`prom`] — the inverse: a parser for the text exposition format,
//!   so tests can prove the rendering (and the `/metrics` endpoint)
//!   round-trips instead of string-matching a few lines.

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};
use std::time::Instant;

pub mod channel;
pub mod health;
pub mod prom;

/// Number of log₂ buckets in a [`Histogram`]: one per possible
/// `bit_length(value)` for a `u64`, plus one for zero.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A monotonically increasing event count.
///
/// Cloning is cheap (an `Arc` clone); clones share the underlying cell.
/// A counter from a disabled registry holds `None` and every operation
/// is a no-op.
#[derive(Clone, Debug, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// A detached no-op counter (what a disabled registry hands out).
    pub fn noop() -> Counter {
        Counter(None)
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            // ordering: relaxed — independent event count; snapshot
            // readers tolerate staleness and nothing is published via
            // this cell.
            cell.fetch_add(n, Relaxed);
        }
    }

    /// Current value (0 for a no-op counter).
    pub fn get(&self) -> u64 {
        // ordering: relaxed — monotone advisory read, no cross-variable
        // ordering required.
        self.0.as_ref().map_or(0, |c| c.load(Relaxed))
    }

    /// Whether updates actually land anywhere. Lets callers skip work
    /// that exists only to feed the metric (e.g. clock reads).
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }
}

/// An instantaneous signed level (queue depth, occupancy).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Option<Arc<AtomicI64>>);

impl Gauge {
    /// A detached no-op gauge.
    pub fn noop() -> Gauge {
        Gauge(None)
    }

    /// Sets the level.
    #[inline]
    pub fn set(&self, v: i64) {
        if let Some(cell) = &self.0 {
            // ordering: relaxed — last-writer-wins level; readers only
            // ever sample it, never synchronise through it.
            cell.store(v, Relaxed);
        }
    }

    /// Adjusts the level by `delta` and returns the new value, or 0 if
    /// disabled.
    #[inline]
    pub fn add(&self, delta: i64) -> i64 {
        match &self.0 {
            // ordering: relaxed — the RMW is atomic on its own cell,
            // which is all depth accounting needs.
            Some(cell) => cell.fetch_add(delta, Relaxed) + delta,
            None => 0,
        }
    }

    /// Current level (0 for a no-op gauge).
    pub fn get(&self) -> i64 {
        // ordering: relaxed — advisory sample of the level.
        self.0.as_ref().map_or(0, |c| c.load(Relaxed))
    }

    /// Whether updates actually land anywhere.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }
}

#[derive(Debug)]
struct HistogramCore {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl HistogramCore {
    fn new() -> HistogramCore {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// Index of the log₂ bucket covering `v`: bucket `i` holds values whose
/// bit length is `i`, i.e. `[2^(i-1), 2^i)`; bucket 0 holds only zero.
#[inline]
fn bucket_index(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// A log₂-scaled histogram of `u64` samples (latencies in nanoseconds,
/// occupancies, depths). Relaxed atomics throughout; buckets double in
/// width, which is plenty to spot a service-time distribution shifting
/// by an order of magnitude.
#[derive(Clone, Debug, Default)]
pub struct Histogram(Option<Arc<HistogramCore>>);

impl Histogram {
    /// A detached no-op histogram.
    pub fn noop() -> Histogram {
        Histogram(None)
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(core) = &self.0 {
            // ordering: relaxed — each cell is independently atomic; a
            // concurrent snapshot may see (count, sum) torn relative to
            // each other, which telemetry accepts by design.
            core.buckets[bucket_index(v)].fetch_add(1, Relaxed);
            core.count.fetch_add(1, Relaxed); // ordering: relaxed, as above
            core.sum.fetch_add(v, Relaxed); // ordering: relaxed, as above
            core.min.fetch_min(v, Relaxed); // ordering: relaxed, as above
            core.max.fetch_max(v, Relaxed); // ordering: relaxed, as above
        }
    }

    /// Whether samples actually land anywhere. Callers use this to skip
    /// the `Instant::now()` pair that would feed a latency histogram.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// `Some(Instant::now())` when enabled — pair with
    /// [`Histogram::record_since`] to time a section at zero disabled
    /// cost.
    #[inline]
    pub fn start(&self) -> Option<Instant> {
        if self.0.is_some() {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Records the elapsed nanoseconds since `start` (from
    /// [`Histogram::start`]); no-op when `start` is `None`.
    #[inline]
    pub fn record_since(&self, start: Option<Instant>) {
        if let Some(t) = start {
            self.record(t.elapsed().as_nanos() as u64);
        }
    }

    fn snapshot(&self) -> HistogramSnapshot {
        match &self.0 {
            None => HistogramSnapshot::default(),
            Some(core) => {
                // ordering: relaxed — snapshot reads are advisory and
                // may be mutually torn under concurrent writers; totals
                // are exact once writers quiesce.
                let count = core.count.load(Relaxed);
                HistogramSnapshot {
                    count,
                    sum: core.sum.load(Relaxed), // ordering: relaxed, as above
                    min: if count == 0 {
                        0
                    } else {
                        core.min.load(Relaxed) // ordering: relaxed, as above
                    },
                    max: core.max.load(Relaxed), // ordering: relaxed, as above
                    // ordering: relaxed, as above
                    buckets: core.buckets.iter().map(|b| b.load(Relaxed)).collect(),
                }
            }
        }
    }
}

/// A point-in-time copy of one histogram.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Per-bucket sample counts; bucket `i` covers values of bit length
    /// `i` (see [`HISTOGRAM_BUCKETS`]).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Arithmetic mean of the samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimates the `q`-quantile (`0 ≤ q ≤ 1`) from the buckets,
    /// returning the upper bound of the bucket containing it. Exact min
    /// and max are available directly.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank.max(1) {
                return bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }
}

/// Inclusive upper bound of bucket `i`: `2^i - 1` (zero for bucket 0).
fn bucket_upper_bound(i: usize) -> u64 {
    if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

#[derive(Debug)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

#[derive(Debug, Default)]
struct RegistryCore {
    // Registration is rare (once per metric per pipeline run); updates
    // never touch this lock — they go straight to the Arc'd cells.
    metrics: Mutex<BTreeMap<String, Metric>>,
}

/// A named collection of metrics.
///
/// `Registry` is a cheap cloneable handle. [`Registry::disabled`]
/// produces a registry whose metric handles are all no-ops, so
/// instrumented code pays one branch per update and nothing else when
/// telemetry is off.
#[derive(Clone, Debug, Default)]
pub struct Registry(Option<Arc<RegistryCore>>);

impl Registry {
    /// An enabled, empty registry.
    pub fn new() -> Registry {
        Registry(Some(Arc::new(RegistryCore::default())))
    }

    /// A registry that hands out no-op metric handles.
    pub fn disabled() -> Registry {
        Registry(None)
    }

    /// Whether metric handles from this registry record anything.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Returns the counter named `name`, creating it on first use.
    /// Panics if the name is already registered as a different kind.
    pub fn counter(&self, name: &str) -> Counter {
        let Some(core) = &self.0 else {
            return Counter::noop();
        };
        let mut metrics = core.metrics.lock().unwrap();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter(Some(Arc::new(AtomicU64::new(0))))))
        {
            Metric::Counter(c) => c.clone(),
            other => panic!("metric {name:?} already registered as {other:?}, wanted counter"),
        }
    }

    /// Returns the gauge named `name`, creating it on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let Some(core) = &self.0 else {
            return Gauge::noop();
        };
        let mut metrics = core.metrics.lock().unwrap();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge(Some(Arc::new(AtomicI64::new(0))))))
        {
            Metric::Gauge(g) => g.clone(),
            other => panic!("metric {name:?} already registered as {other:?}, wanted gauge"),
        }
    }

    /// Returns the histogram named `name`, creating it on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        let Some(core) = &self.0 else {
            return Histogram::noop();
        };
        let mut metrics = core.metrics.lock().unwrap();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram(Some(Arc::new(HistogramCore::new())))))
        {
            Metric::Histogram(h) => h.clone(),
            other => panic!("metric {name:?} already registered as {other:?}, wanted histogram"),
        }
    }

    /// Copies every metric's current value. Returns an empty snapshot
    /// for a disabled registry.
    pub fn snapshot(&self) -> Snapshot {
        let mut snap = Snapshot::default();
        let Some(core) = &self.0 else {
            return snap;
        };
        let metrics = core.metrics.lock().unwrap();
        for (name, metric) in metrics.iter() {
            match metric {
                Metric::Counter(c) => {
                    snap.counters.insert(name.clone(), c.get());
                }
                Metric::Gauge(g) => {
                    snap.gauges.insert(name.clone(), g.get());
                }
                Metric::Histogram(h) => {
                    snap.histograms.insert(name.clone(), h.snapshot());
                }
            }
        }
        snap
    }
}

/// A point-in-time copy of a whole [`Registry`], ordered by name.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge levels by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// Counter value, or 0 when absent (mirrors a no-op counter).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge level, or 0 when absent.
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Histogram state, when present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Difference of this snapshot's counter against an earlier
    /// snapshot's (saturating at zero, in case a metric appeared late).
    pub fn counter_delta(&self, earlier: &Snapshot, name: &str) -> u64 {
        self.counter(name).saturating_sub(earlier.counter(name))
    }

    /// Renders the snapshot in the Prometheus text exposition format.
    /// Metric names are sanitised to `[a-zA-Z0-9_]` and prefixed with
    /// `etw_`; histograms emit cumulative `_bucket{le="..."}` series
    /// plus `_sum` and `_count`.
    // etwlint: sink(telemetry): text is scraped by external collectors
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let n = prom_name(name);
            let _ = writeln!(out, "# TYPE {n} counter");
            let _ = writeln!(out, "{n} {value}");
        }
        for (name, value) in &self.gauges {
            let n = prom_name(name);
            let _ = writeln!(out, "# TYPE {n} gauge");
            let _ = writeln!(out, "{n} {value}");
        }
        for (name, h) in &self.histograms {
            let n = prom_name(name);
            let _ = writeln!(out, "# TYPE {n} histogram");
            let mut cumulative = 0u64;
            for (i, &count) in h.buckets.iter().enumerate() {
                if count == 0 {
                    continue;
                }
                cumulative += count;
                let _ = writeln!(
                    out,
                    "{n}_bucket{{le=\"{}\"}} {cumulative}",
                    bucket_upper_bound(i)
                );
            }
            let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(out, "{n}_sum {}", h.sum);
            let _ = writeln!(out, "{n}_count {}", h.count);
        }
        out
    }
}

fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("etw_");
    for c in name.chars() {
        out.push(if c.is_ascii_alphanumeric() || c == '_' {
            c
        } else {
            '_'
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_is_inert() {
        let reg = Registry::disabled();
        let c = reg.counter("x");
        let g = reg.gauge("y");
        let h = reg.histogram("z");
        c.add(5);
        g.set(3);
        h.record(100);
        assert!(!c.is_enabled());
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0);
        assert!(h.start().is_none());
        assert_eq!(reg.snapshot(), Snapshot::default());
    }

    #[test]
    fn handles_share_cells_across_clones_and_lookups() {
        let reg = Registry::new();
        let a = reg.counter("frames");
        let b = reg.counter("frames");
        let c = a.clone();
        a.inc();
        b.add(2);
        c.add(3);
        assert_eq!(reg.counter("frames").get(), 6);
        assert_eq!(reg.snapshot().counter("frames"), 6);
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);

        let reg = Registry::new();
        let h = reg.histogram("lat");
        for v in [0u64, 1, 3, 4, 1000, 1024] {
            h.record(v);
        }
        let snap = reg.snapshot();
        let hs = snap.histogram("lat").unwrap();
        assert_eq!(hs.count, 6);
        assert_eq!(hs.sum, 2032);
        assert_eq!(hs.min, 0);
        assert_eq!(hs.max, 1024);
        assert_eq!(hs.buckets[0], 1); // 0
        assert_eq!(hs.buckets[1], 1); // 1
        assert_eq!(hs.buckets[2], 1); // 3
        assert_eq!(hs.buckets[3], 1); // 4
        assert_eq!(hs.buckets[10], 1); // 1000
        assert_eq!(hs.buckets[11], 1); // 1024
        assert!((hs.mean() - 2032.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn quantile_estimates_from_buckets() {
        let reg = Registry::new();
        let h = reg.histogram("q");
        for _ in 0..90 {
            h.record(10); // bucket 4, upper bound 15
        }
        for _ in 0..10 {
            h.record(1000); // bucket 10, upper bound 1023
        }
        let snap = reg.snapshot();
        let hs = snap.histogram("q").unwrap();
        assert_eq!(hs.quantile(0.5), 15);
        assert_eq!(hs.quantile(0.99), 1000); // capped at observed max
        assert_eq!(hs.quantile(0.0), 15);
    }

    #[test]
    fn counter_delta_between_snapshots() {
        let reg = Registry::new();
        let c = reg.counter("n");
        c.add(10);
        let early = reg.snapshot();
        c.add(7);
        let late = reg.snapshot();
        assert_eq!(late.counter_delta(&early, "n"), 7);
        assert_eq!(late.counter_delta(&early, "missing"), 0);
    }

    #[test]
    fn prometheus_rendering_shape() {
        let reg = Registry::new();
        reg.counter("frames_total").add(3);
        reg.gauge("chan.depth").set(-2);
        let h = reg.histogram("svc_ns");
        h.record(5);
        h.record(700);
        let text = reg.snapshot().render_prometheus();
        assert!(text.contains("# TYPE etw_frames_total counter"));
        assert!(text.contains("etw_frames_total 3"));
        assert!(text.contains("etw_chan_depth -2"));
        assert!(text.contains("etw_svc_ns_bucket{le=\"7\"} 1"));
        assert!(text.contains("etw_svc_ns_bucket{le=\"1023\"} 2"));
        assert!(text.contains("etw_svc_ns_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("etw_svc_ns_sum 705"));
        assert!(text.contains("etw_svc_ns_count 2"));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_conflicts_panic() {
        let reg = Registry::new();
        reg.counter("dual");
        reg.gauge("dual");
    }
}
