//! Exhaustive interleaving checks over the sharded-anonymiser protocol.
//!
//! The pipeline's differential tests prove the sharded tail
//! byte-identical to the serial anonymiser on the schedules the OS
//! happens to produce. These models check *all* schedules of the
//! shard/assembler protocol at its real atomicity: a shard's
//! `resolve_batch` is one linearizable unit (the shard owns its state
//! exclusively), and the assembler's gather-remap-finish for one batch
//! is one unit on the assembler thread (it blocks until every shard's
//! result for that batch has arrived). The invariants are the
//! protocol's conservation laws:
//!
//! * **disjoint ownership** — no id-array index is resolved by two
//!   shards, in any interleaving;
//! * **order-of-appearance** — after every assembled batch, the global
//!   appearance orders equal the serial anonymiser's prefix exactly,
//!   regardless of how shard resolutions interleaved;
//! * **completeness** — every schedule assembles every batch, and ends
//!   with orders identical to the serial run over the concatenated
//!   stream.
//!
//! A deliberately broken fixture — two shard workers both owning slice
//! zero — proves the checker catches double resolution rather than
//! vacuously passing.

use etw_anonymize::fileid::{ByteSelector, FileIdAnonymizer};
use etw_anonymize::{build_sharded, Assembler, DirectArrayAnonymizer, ShardSet};
use etw_edonkey::ids::{ClientId, FileId};
use etw_interleave::{multinomial, Model, Step};

const WIDTH_BITS: u32 = 8;
const SELECTOR: ByteSelector = ByteSelector::FIRST_TWO;

/// The staged id streams the sequential stage would fan out: two
/// batches with repeats within and across batches, touching both
/// shards' slices of both id spaces.
fn batches() -> Vec<(Vec<u32>, Vec<FileId>)> {
    vec![
        (
            vec![5, 2, 5, 7],
            vec![FileId([0x10; 16]), FileId([0x21; 16])],
        ),
        (vec![2, 9, 4], vec![FileId([0x21; 16]), FileId([0x32; 16])]),
    ]
}

/// What the serial anonymiser produces over the concatenated streams:
/// the appearance orders every schedule must reproduce.
fn serial_orders(batches: &[(Vec<u32>, Vec<FileId>)]) -> (Vec<u32>, Vec<FileId>) {
    let mut clients = DirectArrayAnonymizer::new(WIDTH_BITS);
    let mut files = etw_anonymize::BucketedArrays::new(SELECTOR);
    for (cids, fids) in batches {
        for &c in cids {
            use etw_anonymize::clientid::ClientIdAnonymizer;
            clients.anonymize(ClientId(c));
        }
        for f in fids {
            files.anonymize(f);
        }
    }
    (clients.appearance_order(), files.appearance_order())
}

/// One shard's sparse resolutions for one batch: `(index, provisional)`
/// pairs for clientIDs and fileIDs.
type Resolution = (Vec<(u32, u32)>, Vec<(u32, u64)>);

/// Shared state: the shard pool, the in-flight results ("channels"),
/// the assembler, and the bookkeeping the invariants read.
struct ShardPipe {
    batches: Vec<(Vec<u32>, Vec<FileId>)>,
    shards: Vec<ShardSet>,
    /// `results[batch][shard]`: resolution delivered, not yet consumed.
    results: Vec<Vec<Option<Resolution>>>,
    /// Per shard, the next batch it will resolve (program order).
    resolved_upto: Vec<usize>,
    asm: Assembler,
    /// Batches fully assembled so far (strictly in sequence).
    assembled: usize,
    expected_clients: Vec<u32>,
    expected_files: Vec<FileId>,
    /// Protocol violations observed by the steps themselves.
    errors: Vec<String>,
}

impl ShardPipe {
    fn new(shards: Vec<ShardSet>, asm: Assembler) -> ShardPipe {
        let batches = batches();
        let (expected_clients, expected_files) = serial_orders(&batches);
        let results = batches
            .iter()
            .map(|_| shards.iter().map(|_| None).collect())
            .collect();
        let resolved_upto = vec![0; shards.len()];
        ShardPipe {
            batches,
            shards,
            results,
            resolved_upto,
            asm,
            assembled: 0,
            expected_clients,
            expected_files,
            errors: Vec::new(),
        }
    }

    /// The assembler's per-batch unit: a no-op while any shard's result
    /// for the next batch is outstanding (the real thread blocks on the
    /// channel), else gather, remap, and check the order prefix.
    fn try_assemble(&mut self) -> bool {
        if self.assembled >= self.batches.len() {
            return false;
        }
        let b = self.assembled;
        if self.results[b].iter().any(|r| r.is_none()) {
            return false;
        }
        let (cids, fids) = &self.batches[b];
        self.asm.begin_batch(cids.len(), fids.len());
        for slot in 0..self.results[b].len() {
            let (c, f) = self.results[b][slot].take().expect("checked above");
            self.asm.apply_clients(&c);
            self.asm.apply_files(&f);
        }
        let (cids, fids) = &self.batches[b];
        self.asm.finish_batch(cids, fids);
        self.assembled += 1;
        let nc = self.asm.client_order().len();
        if nc > self.expected_clients.len()
            || self.asm.client_order() != &self.expected_clients[..nc]
        {
            self.errors.push(format!(
                "after batch {b} client order {:?} is not a serial prefix",
                self.asm.client_order()
            ));
        }
        let nf = self.asm.file_order().len();
        if nf > self.expected_files.len() || self.asm.file_order() != &self.expected_files[..nf] {
            self.errors
                .push(format!("after batch {b} file order is not a serial prefix"));
        }
        true
    }
}

/// Shard `s`'s next `resolve_batch` call, checking that no index it
/// resolves was already claimed by another shard's delivered result.
fn shard_step(s: usize) -> Step<ShardPipe> {
    Box::new(move |st: &mut ShardPipe| {
        let b = st.resolved_upto[s];
        st.resolved_upto[s] += 1;
        let (mut c, mut f) = (Vec::new(), Vec::new());
        let (cids, fids) = &st.batches[b];
        st.shards[s].resolve_batch(cids, fids, &mut c, &mut f);
        for other in 0..st.results[b].len() {
            if let Some((oc, of)) = &st.results[b][other] {
                for (idx, _) in &c {
                    if oc.iter().any(|(o, _)| o == idx) {
                        st.errors.push(format!(
                            "clientID index {idx} of batch {b} resolved by shards {other} and {s}"
                        ));
                    }
                }
                for (idx, _) in &f {
                    if of.iter().any(|(o, _)| o == idx) {
                        st.errors.push(format!(
                            "fileID index {idx} of batch {b} resolved by shards {other} and {s}"
                        ));
                    }
                }
            }
        }
        st.results[b][s] = Some((c, f));
    })
}

fn assembler_step() -> Step<ShardPipe> {
    Box::new(|st: &mut ShardPipe| {
        st.try_assemble();
    })
}

fn model(make_shards: impl Fn() -> (Vec<ShardSet>, Assembler) + 'static) -> Model<ShardPipe> {
    let n_batches = batches().len();
    let n_shards = make_shards().0.len();
    let mut m = Model::new(move || {
        let (shards, asm) = make_shards();
        ShardPipe::new(shards, asm)
    });
    for s in 0..n_shards {
        m = m.thread(
            &format!("shard{s}"),
            (0..n_batches).map(|_| shard_step(s)).collect(),
        );
    }
    m.thread(
        "assembler",
        // Twice the batch count: slack so the assembler can poll early
        // (a no-op models its blocking recv) and still finish inline on
        // most schedules.
        (0..2 * n_batches).map(|_| assembler_step()).collect(),
    )
    .invariant("no protocol violations", |st| {
        if st.errors.is_empty() {
            Ok(())
        } else {
            Err(st.errors.join("; "))
        }
    })
    .invariant("assembly never outruns resolution", |st| {
        let slowest = st.resolved_upto.iter().min().copied().unwrap_or(0);
        if st.assembled <= slowest {
            Ok(())
        } else {
            Err(format!(
                "assembled {} batches but a shard has only resolved {slowest}",
                st.assembled
            ))
        }
    })
    .check_final("all batches assemble to the serial orders", |st| {
        // Drain: schedules that front-loaded the assembler's steps left
        // work pending — the real thread would still be blocked on its
        // channel, so finish it now.
        while st.try_assemble() {}
        if st.assembled != st.batches.len() {
            return Err(format!(
                "only {} of {} batches assembled",
                st.assembled,
                st.batches.len()
            ));
        }
        if !st.errors.is_empty() {
            return Err(st.errors.join("; "));
        }
        if st.asm.client_order() != st.expected_clients {
            return Err(format!(
                "final client order {:?} != serial {:?}",
                st.asm.client_order(),
                st.expected_clients
            ));
        }
        if st.asm.file_order() != st.expected_files {
            return Err("final file order diverges from serial".into());
        }
        Ok(())
    })
}

#[test]
fn sharded_resolution_conserves_serial_orders_on_every_schedule() {
    let m = model(|| {
        let (shards, asm) = build_sharded(WIDTH_BITS, SELECTOR, 2, &[], &[]);
        (shards, asm)
    });
    let report = m.run().unwrap_or_else(|v| panic!("{v}"));
    // Thread lengths: 2 shards × 2 batches, assembler 2 × 2 steps.
    assert_eq!(report.schedules, multinomial(&[2, 2, 4]));
}

#[test]
fn resuming_shards_mid_stream_conserves_too() {
    // Shards rebuilt from a checkpoint prefix (the first batch's ids
    // already seen) must keep producing serial-prefix orders for the
    // remaining stream — the model replays the same batches, so the
    // restored state simply makes the repeats cache hits.
    let m = model(|| {
        let all = batches();
        let (prefix_c, prefix_f) = serial_orders(&all[..1]);
        build_sharded(WIDTH_BITS, SELECTOR, 2, &prefix_c, &prefix_f)
    });
    assert!(m.run().is_ok());
}

#[test]
fn overlapping_ownership_is_caught() {
    // Broken fixture: both workers are shard 0 — every index both own
    // is resolved twice. The disjointness invariant must fire on the
    // first schedule where both results for a batch coexist.
    let m = model(|| {
        let (a, asm) = build_sharded(WIDTH_BITS, SELECTOR, 2, &[], &[]);
        let (b, _) = build_sharded(WIDTH_BITS, SELECTOR, 2, &[], &[]);
        let zero_a = a.into_iter().next().expect("shard 0");
        let zero_b = b.into_iter().next().expect("shard 0");
        (vec![zero_a, zero_b], asm)
    });
    let v = m.run().expect_err("double resolution must be caught");
    assert_eq!(v.check, "no protocol violations");
    assert!(v.message.contains("resolved by shards"));
}
