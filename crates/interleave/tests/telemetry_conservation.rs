//! Exhaustive interleaving checks over the lock-free telemetry layer.
//!
//! Each model maps one step to one atomic operation (or one
//! linearizable call) on real `etw_telemetry` handles, then explores
//! *every* schedule and asserts the conservation invariants the health
//! reporting relies on: counters never lose increments, gauges settle to
//! the net delta, histograms keep every sample, and the
//! `HealthRecorder` attributes every event to exactly one interval.
//!
//! The final test is a deliberately broken fixture — a read-modify-write
//! split into separate load and store steps — proving the checker
//! actually finds lost updates rather than vacuously passing.

use etw_interleave::{multinomial, Model, Step};
use etw_telemetry::health::HealthRecorder;
use etw_telemetry::{Registry, Snapshot};

/// Builds `n` steps that each `add(amount)` on a clone of `counter`-like
/// state accessors; used to keep thread construction readable.
fn counter_steps(n: usize, amount: u64) -> Vec<Step<Registry>> {
    (0..n)
        .map(|_| {
            Box::new(move |reg: &mut Registry| {
                reg.counter("conserved.events_total").add(amount);
            }) as Step<Registry>
        })
        .collect()
}

#[test]
fn counter_merge_conserves_across_all_schedules() {
    // Three threads (3 + 3 + 2 steps) each adding a distinct amount to
    // the *same* counter through their own handle clones. Conservation:
    // the snapshot total equals the sum of all contributions on every
    // one of the 560 schedules, and never overshoots mid-flight.
    let model = Model::new(Registry::new)
        .thread("a", counter_steps(3, 1))
        .thread("b", counter_steps(3, 10))
        .thread("c", counter_steps(2, 100))
        .invariant("never-overshoots", |reg: &Registry| {
            let total = reg.snapshot().counter("conserved.events_total");
            if total <= 3 + 30 + 200 {
                Ok(())
            } else {
                Err(format!("counter overshot: {total}"))
            }
        })
        .check_final("exact-total", |reg: &mut Registry| {
            let total = reg.snapshot().counter("conserved.events_total");
            if total == 3 + 30 + 200 {
                Ok(())
            } else {
                Err(format!("expected 233, got {total}"))
            }
        });
    let report = model.run().expect("counter adds commute");
    assert_eq!(report.schedules, multinomial(&[3, 3, 2]));
    assert_eq!(report.schedules, 560);
    assert_eq!(report.steps, 560 * 8);
}

#[test]
fn gauge_settles_to_net_delta_on_every_schedule() {
    // A depth-gauge protocol: two producers bump the gauge, one consumer
    // decrements it. Mid-schedule depth wanders (and may transiently
    // exceed the final value), but it is always bounded by the number of
    // increments issued so far, and every schedule ends at net +1.
    let model = Model::new(Registry::new)
        .thread(
            "prod-a",
            vec![Box::new(|reg: &mut Registry| {
                reg.gauge("conserved.depth").add(1);
            }) as Step<Registry>],
        )
        .thread(
            "prod-b",
            vec![Box::new(|reg: &mut Registry| {
                reg.gauge("conserved.depth").add(1);
            }) as Step<Registry>],
        )
        .thread(
            "consumer",
            vec![Box::new(|reg: &mut Registry| {
                reg.gauge("conserved.depth").add(-1);
            }) as Step<Registry>],
        )
        .invariant("bounded", |reg: &Registry| {
            let depth = reg.snapshot().gauge("conserved.depth");
            if (-1..=2).contains(&depth) {
                Ok(())
            } else {
                Err(format!("depth {depth} outside [-1, 2]"))
            }
        })
        .check_final("net-delta", |reg: &mut Registry| {
            let depth = reg.snapshot().gauge("conserved.depth");
            if depth == 1 {
                Ok(())
            } else {
                Err(format!("expected net +1, got {depth}"))
            }
        });
    let report = model.run().expect("gauge deltas commute");
    assert_eq!(report.schedules, multinomial(&[1, 1, 1]));
}

#[test]
fn histogram_keeps_every_sample_in_every_order() {
    // Two threads record disjoint sample sets into one histogram. On
    // every schedule the merged snapshot must contain all samples:
    // count, sum, min, max and the per-bucket totals are all
    // order-independent.
    let a_samples: &[u64] = &[1, 100, 10_000];
    let b_samples: &[u64] = &[7, 70];
    let expected_sum: u64 = a_samples.iter().chain(b_samples).sum();
    let expected_count = (a_samples.len() + b_samples.len()) as u64;

    let steps_for = |samples: &'static [u64]| -> Vec<Step<Registry>> {
        samples
            .iter()
            .map(|&v| {
                Box::new(move |reg: &mut Registry| {
                    reg.histogram("conserved.latency_us").record(v);
                }) as Step<Registry>
            })
            .collect()
    };

    let model = Model::new(Registry::new)
        .thread("a", steps_for(a_samples))
        .thread("b", steps_for(b_samples))
        .invariant("sum-tracks-count", |reg: &Registry| {
            let snap = reg.snapshot();
            match snap.histogram("conserved.latency_us") {
                None => Ok(()), // no sample recorded yet
                Some(h) => {
                    let bucket_total: u64 = h.buckets.iter().sum();
                    if bucket_total == h.count {
                        Ok(())
                    } else {
                        Err(format!("buckets hold {bucket_total}, count {}", h.count))
                    }
                }
            }
        })
        .check_final("all-samples-present", move |reg: &mut Registry| {
            let snap = reg.snapshot();
            let h = snap
                .histogram("conserved.latency_us")
                .ok_or_else(|| "histogram missing".to_string())?;
            if h.count != expected_count {
                return Err(format!("count {} != {expected_count}", h.count));
            }
            if h.sum != expected_sum {
                return Err(format!("sum {} != {expected_sum}", h.sum));
            }
            if h.min != 1 || h.max != 10_000 {
                return Err(format!("min/max {}/{} != 1/10000", h.min, h.max));
            }
            Ok(())
        });
    let report = model.run().expect("histogram merge conserves");
    assert_eq!(report.schedules, multinomial(&[3, 2]));
}

/// Shared state for the health-recorder model: the registry the workers
/// write through, and the recorder that snapshots it at virtual-time
/// boundaries. `Option` so the final check can `take()` and finish it.
struct HealthState {
    registry: Registry,
    recorder: Option<HealthRecorder>,
}

#[test]
fn health_recorder_attributes_every_event_exactly_once() {
    // Two worker threads increment a counter; an observer thread drives
    // virtual time across two interval boundaries. Whatever the order,
    // the per-interval counter deltas must sum to the number of
    // increments that have happened — intervals partition the events,
    // none double-counted, none dropped.
    let model = Model::new(|| {
        let registry = Registry::new();
        let recorder = HealthRecorder::new(registry.clone(), 1);
        HealthState {
            registry,
            recorder: Some(recorder),
        }
    })
    .thread(
        "worker-a",
        (0..2)
            .map(|_| {
                Box::new(|s: &mut HealthState| {
                    s.registry.counter("health.events_total").inc();
                }) as Step<HealthState>
            })
            .collect(),
    )
    .thread(
        "worker-b",
        (0..2)
            .map(|_| {
                Box::new(|s: &mut HealthState| {
                    s.registry.counter("health.events_total").inc();
                }) as Step<HealthState>
            })
            .collect(),
    )
    .thread(
        "observer",
        vec![
            Box::new(|s: &mut HealthState| {
                // observe() is linearizable w.r.t. the counter: it cuts a
                // record from one coherent snapshot.
                s.recorder.as_mut().unwrap().observe(1_000_000);
            }) as Step<HealthState>,
            Box::new(|s: &mut HealthState| {
                s.recorder.as_mut().unwrap().observe(2_000_000);
            }) as Step<HealthState>,
        ],
    )
    .invariant("records-monotonic", |s: &HealthState| {
        // Intermediate snapshots never exceed the number of increments
        // issuable (4) — i.e. the recorder never invents events.
        let total = s.registry.snapshot().counter("health.events_total");
        if total <= 4 {
            Ok(())
        } else {
            Err(format!("phantom events: {total}"))
        }
    })
    .check_final("deltas-partition-events", |s: &mut HealthState| {
        let series = s
            .recorder
            .take()
            .expect("recorder present")
            .finish(3_000_000);
        let deltas = series.counter_deltas("health.events_total");
        let attributed: u64 = deltas.iter().sum();
        let total = s.registry.snapshot().counter("health.events_total");
        if total != 4 {
            return Err(format!("expected 4 events, counter says {total}"));
        }
        if attributed != total {
            return Err(format!(
                "intervals attribute {attributed} of {total} events (deltas {deltas:?})"
            ));
        }
        // Interval snapshots must be monotone in the counter.
        let mut prev = 0u64;
        for rec in &series.records {
            let at = rec.snapshot.counter("health.events_total");
            if at < prev {
                return Err(format!("snapshot went backwards: {at} < {prev}"));
            }
            prev = at;
        }
        Ok(())
    });
    let report = model.run().expect("health intervals partition events");
    assert_eq!(report.schedules, multinomial(&[2, 2, 2]));
    assert_eq!(report.schedules, 90);
}

/// Deliberately broken fixture: a counter implemented as a *non-atomic*
/// read-modify-write, with the load and the store as separate steps.
/// The checker must find the schedule where one thread's store
/// overwrites the other's increment (the classic lost update).
#[derive(Default)]
struct RacyCounter {
    value: u64,
    /// Per-thread stash of the loaded value between the load step and
    /// the store step.
    stash: [u64; 2],
}

#[test]
fn broken_ordering_fixture_is_caught() {
    let thread = |idx: usize| -> Vec<Step<RacyCounter>> {
        vec![
            Box::new(move |s: &mut RacyCounter| {
                s.stash[idx] = s.value; // load
            }),
            Box::new(move |s: &mut RacyCounter| {
                s.value = s.stash[idx] + 1; // store of stale value
            }),
        ]
    };
    let model = Model::new(RacyCounter::default)
        .thread("t0", thread(0))
        .thread("t1", thread(1))
        .check_final("no-lost-update", |s: &mut RacyCounter| {
            if s.value == 2 {
                Ok(())
            } else {
                Err(format!("lost update: final value {}", s.value))
            }
        });
    let violation = model
        .run()
        .expect_err("the racy interleaving must be found");
    assert_eq!(violation.check, "no-lost-update");
    assert!(violation.message.contains("lost update"));
    // The classic failing schedule interleaves the loads before either
    // store; the checker reports whichever it hit first, which with
    // DFS order is t0.load t0... — assert only that both threads appear.
    assert!(violation.schedule.iter().any(|t| t == "t0"));
    assert!(violation.schedule.iter().any(|t| t == "t1"));
}

#[test]
fn atomic_single_step_variant_passes() {
    // Same protocol with the read-modify-write kept atomic (one step),
    // mirroring what `Counter::add`'s fetch_add guarantees: no schedule
    // loses an update.
    let thread = || -> Vec<Step<u64>> { vec![Box::new(|v: &mut u64| *v += 1)] };
    let model = Model::new(|| 0u64)
        .thread("t0", thread())
        .thread("t1", thread())
        .check_final("exact", |v: &mut u64| {
            if *v == 2 {
                Ok(())
            } else {
                Err(format!("final value {v}"))
            }
        });
    let report = model.run().expect("atomic RMW conserves");
    assert_eq!(report.schedules, 2);
}

#[test]
fn disabled_registry_is_inert_under_all_schedules() {
    // The no-op handles from a disabled registry must stay no-ops under
    // every interleaving — snapshots remain empty.
    let model = Model::new(Registry::disabled)
        .thread("a", counter_steps(2, 5))
        .thread("b", counter_steps(2, 7))
        .invariant("stays-empty", |reg: &Registry| {
            let total = reg.snapshot().counter("conserved.events_total");
            if total == 0 {
                Ok(())
            } else {
                Err(format!("disabled registry recorded {total}"))
            }
        });
    let report = model.run().expect("disabled registry records nothing");
    assert_eq!(report.schedules, 6);
}

/// Snapshot totals for the three metric kinds, used by the mixed-kind
/// conservation check below.
fn totals(snap: &Snapshot) -> (u64, i64, u64) {
    (
        snap.counter("mixed.events_total"),
        snap.gauge("mixed.depth"),
        snap.histogram("mixed.size").map(|h| h.count).unwrap_or(0),
    )
}

#[test]
fn mixed_metric_kinds_conserve_together() {
    // One thread per metric kind, all through the same registry: the
    // kinds must not interfere with each other in any order.
    let model = Model::new(Registry::new)
        .thread(
            "counter",
            (0..2)
                .map(|_| {
                    Box::new(|reg: &mut Registry| {
                        reg.counter("mixed.events_total").inc();
                    }) as Step<Registry>
                })
                .collect(),
        )
        .thread(
            "gauge",
            vec![
                Box::new(|reg: &mut Registry| {
                    reg.gauge("mixed.depth").add(3);
                }) as Step<Registry>,
                Box::new(|reg: &mut Registry| {
                    reg.gauge("mixed.depth").add(-1);
                }) as Step<Registry>,
            ],
        )
        .thread(
            "histogram",
            vec![Box::new(|reg: &mut Registry| {
                reg.histogram("mixed.size").record(42);
            }) as Step<Registry>],
        )
        .check_final("kinds-independent", |reg: &mut Registry| {
            let snap = reg.snapshot();
            match totals(&snap) {
                (2, 2, 1) => Ok(()),
                other => Err(format!("expected (2, 2, 1), got {other:?}")),
            }
        });
    let report = model.run().expect("metric kinds are independent");
    assert_eq!(report.schedules, multinomial(&[2, 2, 1]));
    assert_eq!(report.schedules, 30);
}
