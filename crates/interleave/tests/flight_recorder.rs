//! Exhaustive interleaving checks over the flight recorder's seqlock
//! span rings.
//!
//! The supervisor dumps the merged recorder *while workers are still
//! recording* — on a crash, a shed burst, a checkpoint cut. The dump
//! must never surface a torn span (payload words from two different
//! events) and never lose a span that was committed before the cut.
//! These models drive the stepwise write protocol
//! ([`SpanRing::begin_write`] / [`SpanRing::write_payload`] /
//! [`SpanRing::commit_write`]) one atomic step at a time, with a dump
//! step racing it, over **every** schedule.
//!
//! The final test is the deliberately broken fixture: a writer that
//! commits *before* storing its payload — exactly the bug the seqlock's
//! odd-while-writing discipline prevents — proving the checker finds
//! the schedule where the dump reads a published-but-unwritten slot.

use etw_interleave::{multinomial, Model, Step};
use etw_trace::ring::{SpanRing, WriteTicket};
use etw_trace::{SpanEvent, SpanKind, StageId};
use std::sync::Arc;

/// An event whose four payload words are all derived from `arg`, so a
/// torn read (words from two different events, or a half-written slot)
/// is detectable from the event alone.
fn ev(worker: u16, arg: u32) -> SpanEvent {
    SpanEvent::new(
        StageId::Decode,
        SpanKind::Service,
        worker,
        arg,
        arg as u64 * 3,
        arg as u64 * 10,
        arg as u64 * 7,
    )
}

/// `Ok` iff the event's payload words agree with its `arg` — the
/// self-consistency a torn read would break.
fn coherent(e: &SpanEvent) -> Result<(), String> {
    let a = e.arg() as u64;
    if e.virtual_us == a * 3 && e.end_wall_ns == a * 10 && e.dur_ns == a * 7 {
        Ok(())
    } else {
        Err(format!(
            "torn span: arg {} with words ({}, {}, {})",
            a, e.virtual_us, e.end_wall_ns, e.dur_ns
        ))
    }
}

/// Shared state: two single-writer rings, the writers' in-flight
/// tickets, the set of args committed so far, and what the supervisor's
/// dump cut observed (paired with the committed-set at the cut).
struct State {
    rings: [Arc<SpanRing>; 2],
    tickets: [Option<WriteTicket>; 2],
    committed: Vec<u32>,
    dump: Option<(Vec<SpanEvent>, Vec<u32>)>,
}

/// Args of the events pre-filled into the rings during setup — spans
/// committed long before the cut, which no schedule may lose.
const PREFILL: [u32; 2] = [11, 21];

fn setup() -> State {
    let rings = [Arc::new(SpanRing::new(4)), Arc::new(SpanRing::new(4))];
    for (w, ring) in rings.iter().enumerate() {
        ring.record(ev(w as u16, PREFILL[w]));
    }
    State {
        rings,
        tickets: [None, None],
        committed: PREFILL.to_vec(),
        dump: None,
    }
}

/// The conforming write protocol as three model steps: claim (slot goes
/// odd), store payload, commit (slot goes even, head advances).
fn writer_steps(w: usize, arg: u32) -> Vec<Step<State>> {
    vec![
        Box::new(move |s: &mut State| {
            s.tickets[w] = Some(s.rings[w].begin_write());
        }),
        Box::new(move |s: &mut State| {
            let ticket = s.tickets[w].as_ref().expect("begin before payload");
            s.rings[w].write_payload(ticket, ev(w as u16, arg));
        }),
        Box::new(move |s: &mut State| {
            let ticket = s.tickets[w].take().expect("begin before commit");
            s.rings[w].commit_write(ticket);
            s.committed.push(arg);
        }),
    ]
}

/// The supervisor's dump cut as one step: merge both rings' snapshots
/// and remember what was committed at that instant.
fn dump_step() -> Vec<Step<State>> {
    vec![Box::new(|s: &mut State| {
        let mut merged = s.rings[0].snapshot();
        merged.extend(s.rings[1].snapshot());
        s.dump = Some((merged, s.committed.clone()));
    })]
}

/// Every dumped span must be coherent and must have been committed; no
/// span committed before the cut may be missing.
fn dump_is_exact(s: &State) -> Result<(), String> {
    let Some((dump, committed_at_cut)) = &s.dump else {
        return Ok(()); // cut not reached yet on this schedule
    };
    for e in dump {
        coherent(e)?;
        if !s.committed.contains(&e.arg()) {
            return Err(format!("dump surfaced uncommitted span arg {}", e.arg()));
        }
    }
    for arg in committed_at_cut {
        if !dump.iter().any(|e| e.arg() == *arg) {
            return Err(format!("span arg {arg} committed before the cut but lost"));
        }
    }
    Ok(())
}

#[test]
fn dump_cut_sees_no_torn_or_lost_span_on_any_schedule() {
    // Two workers mid-write (3 protocol steps each) + one supervisor
    // cutting a dump: 7!/(3!·3!·1!) = 140 schedules. On every one, the
    // dump contains the two pre-filled spans, each committed span, and
    // nothing torn or uncommitted.
    let model = Model::new(setup)
        .thread("worker-0", writer_steps(0, 12))
        .thread("worker-1", writer_steps(1, 22))
        .thread("supervisor", dump_step())
        .invariant("dump-is-exact", dump_is_exact)
        .check_final("cut-happened", |s: &mut State| {
            let (dump, at_cut) = s.dump.as_ref().expect("supervisor always cuts");
            // Sanity on the final state too: all four spans committed,
            // and the cut saw at least the prefill.
            if s.committed.len() != 4 {
                return Err(format!("expected 4 commits, saw {:?}", s.committed));
            }
            if at_cut.len() < PREFILL.len() || dump.len() < PREFILL.len() {
                return Err(format!(
                    "cut lost the prefill: dump {} spans, {} committed at cut",
                    dump.len(),
                    at_cut.len()
                ));
            }
            Ok(())
        });
    let report = model
        .run()
        .expect("seqlock protocol holds on all schedules");
    assert_eq!(report.schedules, multinomial(&[3, 3, 1]));
    assert_eq!(report.schedules, 140);
    assert_eq!(report.steps, 140 * 7);
}

#[test]
fn broken_commit_before_payload_is_caught() {
    // The broken fixture: worker-0 publishes the slot as stable (commit)
    // *before* storing its payload. A dump between those two steps reads
    // a committed-looking slot holding the previous generation's bytes —
    // a span the writer never wrote at this generation. The checker must
    // find that schedule and name the uncommitted/incoherent span.
    let broken_writer: Vec<Step<State>> = vec![
        Box::new(|s: &mut State| {
            s.tickets[0] = Some(s.rings[0].begin_write());
        }),
        Box::new(|s: &mut State| {
            // Bug under test: commit first, claim the span as durable.
            let ticket = s.tickets[0].take().expect("begin before commit");
            s.rings[0].commit_write(ticket);
            s.committed.push(12);
        }),
        Box::new(|s: &mut State| {
            // Payload lands only after the commit already published it.
            // (The ticket is spent; model the late store via a fresh
            // generation-correct write of the same slot words — by then
            // a concurrent dump has already read the stale payload.)
            s.rings[0].record(ev(0, 12));
        }),
    ];
    let model = Model::new(setup)
        .thread("worker-0-broken", broken_writer)
        .thread("supervisor", dump_step())
        .invariant("dump-is-exact", dump_is_exact);
    let violation = model
        .run()
        .expect_err("checker must catch the torn publish");
    assert_eq!(violation.check, "dump-is-exact");
    // The early commit publishes the slot's stale (never-written) words
    // as a stable span: the dump surfaces a span nobody committed, and
    // the span the writer claimed to commit is missing.
    assert!(
        violation.message.contains("uncommitted")
            || violation.message.contains("lost")
            || violation.message.contains("torn"),
        "unexpected diagnosis: {violation}"
    );
}
