//! Exhaustive interleaving checks over the sharded traffic source.
//!
//! The pipeline's differential tests prove the threaded source
//! byte-identical to the serial one on the schedules the OS happens to
//! produce. These models check *all* schedules of the generator/merger
//! protocol at its real atomicity: a generator worker's "emit next
//! event into my channel" is one unit (the worker owns its session
//! states exclusively), and the merger's "pop the globally-minimum
//! head" is one unit that blocks while any live worker's channel is
//! empty. The invariants are the protocol's conservation laws:
//!
//! * **disjoint client ownership** — no client (global index) is ever
//!   emitted by two workers, in any interleaving; ownership is
//!   `gidx % n_shards == shard` by construction and the model verifies
//!   it event by event;
//! * **merge order** — the merged stream is always a prefix of the
//!   global `(t_us, gidx)` order over everything the workers produce,
//!   regardless of how production and merging interleaved;
//! * **completeness** — every schedule merges every produced event,
//!   exactly once.
//!
//! A deliberately broken fixture — two workers both built as shard 0 —
//! proves the ownership checker catches double-owned clients rather
//! than vacuously passing.

use etw_interleave::{multinomial, Model, Step};
use etw_workload::catalog::{Catalog, CatalogParams};
use etw_workload::clients::{Population, PopulationParams};
use etw_workload::session::{SessionShard, SourceBlobs, WireParams};
use etw_workload::GeneratorParams;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::Arc;

/// Events each worker contributes to the model: enough for merges to
/// cross shard boundaries repeatedly, small enough that the schedule
/// space stays exhaustively checkable.
const EVENTS_PER_SHARD: usize = 2;
const N_SHARDS: usize = 2;

/// An emitted event reduced to what the merge contract orders by: the
/// virtual timestamp and the owning client's global index.
type Key = (u64, u32);

fn build_shard(shard: usize) -> SessionShard {
    let catalog = Arc::new(Catalog::generate(
        &CatalogParams {
            n_files: 8,
            ..CatalogParams::default()
        },
        1,
    ));
    let population = Arc::new(Population::generate(
        &PopulationParams {
            n_clients: 6,
            id_space_bits: 20,
            ..PopulationParams::default()
        },
        2,
    ));
    let blobs = Arc::new(SourceBlobs::build(&catalog));
    let wire = WireParams {
        p_corrupt: 0.0068,
        p_corrupt_structural: 0.78,
        p_tcp_noise: 0.8,
        p_udp_noise: 0.01,
    };
    SessionShard::new(
        catalog,
        population,
        blobs,
        GeneratorParams {
            duration_secs: 3600,
            ..GeneratorParams::default()
        },
        wire,
        0xED2C,
        shard,
        N_SHARDS,
    )
}

/// Shared state: the real generator workers, their in-flight channels,
/// the merged output, and the bookkeeping the invariants read.
struct SourcePipe {
    workers: Vec<SessionShard>,
    /// Events produced per worker (each worker thread has exactly
    /// [`EVENTS_PER_SHARD`] steps, so this is also its progress).
    produced: Vec<usize>,
    /// Per-worker channel: produced, not yet merged.
    queues: Vec<VecDeque<Key>>,
    merged: Vec<Key>,
    /// First worker observed emitting each global client index.
    owner: HashMap<u32, usize>,
    /// Protocol violations observed by the steps themselves.
    errors: Vec<String>,
}

impl SourcePipe {
    fn new(workers: Vec<SessionShard>) -> SourcePipe {
        let n = workers.len();
        SourcePipe {
            workers,
            produced: vec![0; n],
            queues: vec![VecDeque::new(); n],
            merged: Vec::new(),
            owner: HashMap::new(),
            errors: Vec::new(),
        }
    }

    /// The merger's unit: a no-op while any still-producing worker's
    /// channel is empty (the real merger blocks on that channel), else
    /// pop the globally minimum `(t_us, gidx)` head.
    fn try_merge(&mut self) -> bool {
        let blocked = (0..self.queues.len())
            .any(|w| self.queues[w].is_empty() && self.produced[w] < EVENTS_PER_SHARD);
        if blocked {
            return false;
        }
        let best = (0..self.queues.len())
            .filter_map(|w| self.queues[w].front().map(|&k| (k, w)))
            .min();
        match best {
            None => false,
            Some((key, w)) => {
                self.queues[w].pop_front();
                self.merged.push(key);
                true
            }
        }
    }

    /// The global `(t_us, gidx)` order over everything produced so far —
    /// what any merged prefix must agree with once merging is complete.
    fn expected(&self) -> Vec<Key> {
        let mut all: Vec<Key> = self.merged.clone();
        for q in &self.queues {
            all.extend(q.iter().copied());
        }
        all.sort();
        all
    }
}

/// Worker `w`'s next emission, with the ownership checks: the event's
/// client must belong to the worker's stripe, and no other worker may
/// ever have emitted for the same client.
fn worker_step(w: usize) -> Step<SourcePipe> {
    Box::new(move |st: &mut SourcePipe| {
        let ev = match st.workers[w].next() {
            Some(ev) => ev,
            None => {
                st.errors
                    .push(format!("worker {w} ran dry before its model quota"));
                return;
            }
        };
        st.produced[w] += 1;
        match st.owner.get(&ev.gidx) {
            Some(&prev) if prev != w => st.errors.push(format!(
                "client gidx {} emitted by workers {prev} and {w}",
                ev.gidx
            )),
            _ => {
                st.owner.insert(ev.gidx, w);
            }
        }
        st.queues[w].push_back((ev.t_us, ev.gidx));
    })
}

fn merger_step() -> Step<SourcePipe> {
    Box::new(|st: &mut SourcePipe| {
        st.try_merge();
    })
}

fn model(make_workers: impl Fn() -> Vec<SessionShard> + 'static) -> Model<SourcePipe> {
    let n_workers = make_workers().len();
    let mut m = Model::new(move || SourcePipe::new(make_workers()));
    for w in 0..n_workers {
        m = m.thread(
            &format!("gen{w}"),
            (0..EVENTS_PER_SHARD).map(|_| worker_step(w)).collect(),
        );
    }
    m.thread(
        "merger",
        // Twice the total event count: slack so the merger can poll
        // early (a no-op models its blocking recv) and still finish
        // inline on most schedules.
        (0..2 * n_workers * EVENTS_PER_SHARD)
            .map(|_| merger_step())
            .collect(),
    )
    .invariant("no protocol violations", |st| {
        if st.errors.is_empty() {
            Ok(())
        } else {
            Err(st.errors.join("; "))
        }
    })
    .invariant("merged stream is ordered", |st| {
        if st.merged.windows(2).all(|p| p[0] <= p[1]) {
            Ok(())
        } else {
            Err(format!("merged stream out of order: {:?}", st.merged))
        }
    })
    .check_final("every event merges, in global (t_us, gidx) order", |st| {
        // Drain: schedules that front-loaded the merger's steps left
        // work pending — the real merger would still be blocked on a
        // channel, so finish it now.
        while st.try_merge() {}
        if !st.errors.is_empty() {
            return Err(st.errors.join("; "));
        }
        let expected = st.expected();
        if st.merged != expected {
            return Err(format!(
                "merged {:?} != global order {:?}",
                st.merged, expected
            ));
        }
        let produced: usize = st.produced.iter().sum();
        if st.merged.len() != produced {
            return Err(format!(
                "{} events produced but {} merged",
                produced,
                st.merged.len()
            ));
        }
        Ok(())
    })
}

#[test]
fn sharded_source_merges_to_global_order_on_every_schedule() {
    let m = model(|| (0..N_SHARDS).map(build_shard).collect());
    let report = m.run().unwrap_or_else(|v| panic!("{v}"));
    // Thread lengths: 2 workers × 2 events, merger 2 × 4 steps.
    assert_eq!(report.schedules, multinomial(&[2, 2, 8]));
}

#[test]
fn two_owners_of_one_stripe_are_caught() {
    // Broken fixture: both workers are shard 0 — they own the same
    // client stripe and replay the same sessions, so the first schedule
    // where both have emitted must trip the ownership invariant.
    let m = model(|| vec![build_shard(0), build_shard(0)]);
    let v = m.run().expect_err("double ownership must be caught");
    assert_eq!(v.check, "no protocol violations");
    assert!(v.message.contains("emitted by workers"), "{}", v.message);
}
