//! Exhaustive interleaving checks over the fault-injection accounting.
//!
//! The soak test checks the fault ledgers on *one* schedule — whatever
//! the OS produced. These models check *all* of them, at the step
//! granularity the real code guarantees: the producer's shed decision,
//! a worker's decode-or-crash, and the lossy link's per-frame fate are
//! each one linearizable unit (a frame is handled start-to-finish by
//! one thread before its counters are read). The invariants are the
//! same ledger equations `repro soak --faults` asserts:
//!
//! * `offered == shed + sent` at the producer,
//! * `decoded + tombstoned <= sent` everywhere, with equality once the
//!   queue drains (no record double-counted across a worker restart,
//!   none lost),
//! * `delivered == offered − dropped − outage + duplicated` at the link.
//!
//! A deliberately broken fixture — a crash handler that both salvages
//! *and* tombstones the in-flight frame — proves the checker catches
//! double counting rather than vacuously passing.

use etw_interleave::{multinomial, Model, Step};
use etw_telemetry::Registry;
use std::collections::VecDeque;

/// Shared state for the producer/worker models: the telemetry registry
/// both sides report into, and the frame queue between them.
struct PipeState {
    registry: Registry,
    queue: VecDeque<u64>,
    /// Frames offered so far (the producer's shed ordinal).
    ordinal: u64,
}

impl PipeState {
    fn new() -> PipeState {
        PipeState {
            registry: Registry::new(),
            queue: VecDeque::new(),
            ordinal: 0,
        }
    }
}

/// The producer's per-frame step: count the offer, then either shed it
/// (overload window, same keep-every-Nth rule as the real pipeline) or
/// enqueue it for a worker.
fn producer_step() -> Step<PipeState> {
    Box::new(|s: &mut PipeState| {
        s.ordinal += 1;
        s.registry.counter("offered").inc();
        // Frames 2 and 3 fall in the overload window; every 2nd ordinal
        // is kept (shed_keep_every = 2), so exactly frame 3 is shed.
        let in_window = (2..=3).contains(&s.ordinal);
        if in_window && !s.ordinal.is_multiple_of(2) {
            s.registry.counter("shed").inc();
        } else {
            s.registry.counter("sent").inc();
            s.queue.push_back(s.ordinal);
        }
    })
}

/// A worker's per-frame step: take the next frame; crash on the marked
/// one (the in-flight frame is tombstoned, the restart is immediate),
/// decode the rest. An empty queue is a no-op — the real worker blocks.
fn worker_step(crash_frame: u64) -> Step<PipeState> {
    Box::new(move |s: &mut PipeState| {
        let Some(f) = s.queue.pop_front() else {
            return;
        };
        if f == crash_frame {
            s.registry.counter("crashes").inc();
            s.registry.counter("restarts").inc();
            s.registry.counter("tombstoned").inc();
        } else {
            s.registry.counter("decoded").inc();
        }
    })
}

/// Drains whatever the schedule left in the queue through the same
/// worker logic, so the final ledger talks about every frame.
fn drain(s: &mut PipeState, crash_frame: u64) {
    while !s.queue.is_empty() {
        (worker_step(crash_frame))(s);
    }
}

#[test]
fn shed_and_crash_accounting_conserves_on_every_schedule() {
    const FRAMES: usize = 4;
    const CRASH_FRAME: u64 = 2;
    let model = Model::new(PipeState::new)
        .thread("producer", (0..FRAMES).map(|_| producer_step()).collect())
        .thread(
            "worker",
            (0..FRAMES).map(|_| worker_step(CRASH_FRAME)).collect(),
        )
        .invariant("producer-ledger", |s: &PipeState| {
            let snap = s.registry.snapshot();
            let (offered, shed, sent) = (
                snap.counter("offered"),
                snap.counter("shed"),
                snap.counter("sent"),
            );
            if offered == shed + sent {
                Ok(())
            } else {
                Err(format!("offered {offered} != shed {shed} + sent {sent}"))
            }
        })
        .invariant("no-phantom-outputs", |s: &PipeState| {
            let snap = s.registry.snapshot();
            let out = snap.counter("decoded") + snap.counter("tombstoned");
            let sent = snap.counter("sent");
            if out <= sent {
                Ok(())
            } else {
                Err(format!("{out} outputs from {sent} sent frames"))
            }
        })
        .invariant("restart-follows-crash", |s: &PipeState| {
            let snap = s.registry.snapshot();
            if snap.counter("crashes") == snap.counter("restarts") {
                Ok(())
            } else {
                Err("crash without restart".into())
            }
        })
        .check_final("drained-ledger-exact", |s: &mut PipeState| {
            drain(s, CRASH_FRAME);
            let snap = s.registry.snapshot();
            // Frame 3 is shed; frame 2 crashes its worker; 1 and 4 decode.
            if snap.counter("shed") != 1 {
                return Err(format!("shed {} != 1", snap.counter("shed")));
            }
            let (sent, decoded, tombstoned) = (
                snap.counter("sent"),
                snap.counter("decoded"),
                snap.counter("tombstoned"),
            );
            if sent != decoded + tombstoned {
                return Err(format!(
                    "sent {sent} != decoded {decoded} + tombstoned {tombstoned}"
                ));
            }
            if decoded != 2 || tombstoned != 1 {
                return Err(format!("fates ({decoded}, {tombstoned}) != (2, 1)"));
            }
            Ok(())
        });
    let report = model.run().expect("fault accounting conserves");
    assert_eq!(report.schedules, multinomial(&[FRAMES, FRAMES]));
    assert_eq!(report.schedules, 70);
}

/// Per-direction link thread: each step passes one frame through the
/// lossy link with a fixed fate, updating the shared ledger counters in
/// one linearizable unit (as `FaultyLink`/`LossyChannel` do — a frame's
/// fate and its counters are settled before the next frame is looked
/// at).
fn link_steps(fates: &'static [&'static str]) -> Vec<Step<Registry>> {
    fates
        .iter()
        .map(|&fate| {
            Box::new(move |reg: &mut Registry| {
                reg.counter("link.offered").inc();
                match fate {
                    "drop" => reg.counter("link.dropped").inc(),
                    "outage" => reg.counter("link.outage").inc(),
                    "dup" => {
                        reg.counter("link.duplicated").inc();
                        reg.counter("link.delivered").add(2);
                    }
                    _ => reg.counter("link.delivered").inc(),
                }
            }) as Step<Registry>
        })
        .collect()
}

#[test]
fn link_ledger_holds_under_all_schedules() {
    // Both directions share one registry (as the campaign's FaultyLink
    // and the prober's LossyChannel can): the ledger must balance after
    // every step of every interleaving, not just at the end.
    let model = Model::new(Registry::new)
        .thread(
            "to-server",
            link_steps(&["deliver", "drop", "dup", "deliver"]),
        )
        .thread("from-server", link_steps(&["outage", "deliver", "drop"]))
        .invariant("link-ledger", |reg: &Registry| {
            let snap = reg.snapshot();
            let expect = snap.counter("link.offered") - snap.counter("link.dropped")
                + snap.counter("link.duplicated")
                - snap.counter("link.outage");
            let delivered = snap.counter("link.delivered");
            if delivered == expect {
                Ok(())
            } else {
                Err(format!("delivered {delivered}, ledger says {expect}"))
            }
        })
        .check_final("totals", |reg: &mut Registry| {
            let snap = reg.snapshot();
            match (
                snap.counter("link.offered"),
                snap.counter("link.delivered"),
                snap.counter("link.dropped"),
            ) {
                (7, 5, 2) => Ok(()),
                other => Err(format!("expected (7, 5, 2), got {other:?}")),
            }
        });
    let report = model.run().expect("link ledger balances");
    assert_eq!(report.schedules, multinomial(&[4, 3]));
}

/// Deliberately broken crash handler: it salvages the in-flight frame's
/// record *and* tombstones it — the double-count the restart protocol
/// must not commit. The checker has to find a schedule where the final
/// ledger overshoots.
#[test]
fn double_counting_crash_handler_is_caught() {
    let buggy_worker = || -> Step<PipeState> {
        Box::new(|s: &mut PipeState| {
            let Some(f) = s.queue.pop_front() else {
                return;
            };
            if f == 1 {
                // BUG: the crashed worker's partial output is merged AND
                // the frame is tombstoned as lost.
                s.registry.counter("decoded").inc();
                s.registry.counter("tombstoned").inc();
            } else {
                s.registry.counter("decoded").inc();
            }
        })
    };
    let producer = || -> Step<PipeState> {
        Box::new(|s: &mut PipeState| {
            s.ordinal += 1;
            s.registry.counter("sent").inc();
            s.queue.push_back(s.ordinal);
        })
    };
    let model = Model::new(PipeState::new)
        .thread("producer", vec![producer(), producer()])
        .thread("worker", vec![buggy_worker(), buggy_worker()])
        .check_final("drained-ledger-exact", |s: &mut PipeState| {
            if !s.queue.is_empty() {
                return Ok(()); // only fully-drained schedules judge the ledger
            }
            let snap = s.registry.snapshot();
            let (sent, out) = (
                snap.counter("sent"),
                snap.counter("decoded") + snap.counter("tombstoned"),
            );
            if sent == out {
                Ok(())
            } else {
                Err(format!("{out} outputs from {sent} frames"))
            }
        });
    let violation = model.run().expect_err("double count must be found");
    assert_eq!(violation.check, "drained-ledger-exact");
    assert!(violation.message.contains("3 outputs from 2 frames"));
}
