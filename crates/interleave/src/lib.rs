//! A small, loom-inspired schedule-permutation checker.
//!
//! PR 1's telemetry integration test checks counter conservation on
//! *one* schedule — whatever interleaving the OS happened to produce.
//! This crate checks *all* of them: a [`Model`] declares 2–3 "threads"
//! as explicit step sequences over shared state, and [`Model::run`]
//! executes every interleaving (every multiset permutation of the
//! per-thread step sequences, preserving program order within each
//! thread), re-running the invariants after every step and the final
//! checks at the end of each schedule.
//!
//! ## Soundness and granularity
//!
//! Steps execute sequentially on one OS thread; atomicity is at *step*
//! granularity. That models the real telemetry exactly as long as each
//! step corresponds to one atomic operation (or one linearizable call)
//! in the system under test — which is the contract of the tests in
//! `tests/telemetry_conservation.rs`. A racy protocol is expressed by
//! *splitting* its load and store into separate steps; the checker then
//! finds the interleaving that loses an update (see the deliberately
//! broken fixture in the tests).
//!
//! With thread lengths `(a, b, c)` the schedule count is the multinomial
//! `(a+b+c)! / (a!·b!·c!)` — e.g. 560 for (3, 3, 2). Keep models small;
//! exhaustiveness, not scale, is the point.

#![warn(missing_docs)]

use std::fmt;

/// One atomic step of a model thread: a closure over the shared state.
pub type Step<S> = Box<dyn Fn(&mut S)>;

type InvariantFn<S> = Box<dyn Fn(&S) -> Result<(), String>>;
type FinalFn<S> = Box<dyn Fn(&mut S) -> Result<(), String>>;

struct Thread<S> {
    name: String,
    steps: Vec<Step<S>>,
}

struct Invariant<S> {
    name: String,
    check: InvariantFn<S>,
}

struct FinalCheck<S> {
    name: String,
    check: FinalFn<S>,
}

/// A schedule-exploration model: shared state, threads, invariants.
pub struct Model<S> {
    setup: Box<dyn Fn() -> S>,
    threads: Vec<Thread<S>>,
    invariants: Vec<Invariant<S>>,
    finals: Vec<FinalCheck<S>>,
}

/// A violated check, with the schedule that produced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Thread names in execution order — the failing schedule.
    pub schedule: Vec<String>,
    /// How many steps had executed when the check failed (0 = before
    /// any; `schedule.len()` = at the final checks).
    pub step: usize,
    /// Name of the failed invariant or final check.
    pub check: String,
    /// The failure the check reported.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "check `{}` failed after step {} of schedule [{}]: {}",
            self.check,
            self.step,
            self.schedule.join(" "),
            self.message
        )
    }
}

/// Exploration statistics from a successful run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Report {
    /// Distinct schedules executed.
    pub schedules: u64,
    /// Total steps executed across all schedules.
    pub steps: u64,
}

impl<S> Model<S> {
    /// Creates a model whose shared state is rebuilt by `setup` at the
    /// start of every schedule.
    pub fn new(setup: impl Fn() -> S + 'static) -> Model<S> {
        Model {
            setup: Box::new(setup),
            threads: Vec::new(),
            invariants: Vec::new(),
            finals: Vec::new(),
        }
    }

    /// Adds a thread: an ordered sequence of atomic steps.
    pub fn thread(mut self, name: &str, steps: Vec<Step<S>>) -> Model<S> {
        self.threads.push(Thread {
            name: name.to_string(),
            steps,
        });
        self
    }

    /// Adds an invariant, re-checked after every step of every schedule.
    pub fn invariant(
        mut self,
        name: &str,
        check: impl Fn(&S) -> Result<(), String> + 'static,
    ) -> Model<S> {
        self.invariants.push(Invariant {
            name: name.to_string(),
            check: Box::new(check),
        });
        self
    }

    /// Adds a final check, run once per schedule after all steps. Takes
    /// `&mut S` so it can consume/finish parts of the state (e.g. call
    /// `HealthRecorder::finish`).
    pub fn check_final(
        mut self,
        name: &str,
        check: impl Fn(&mut S) -> Result<(), String> + 'static,
    ) -> Model<S> {
        self.finals.push(FinalCheck {
            name: name.to_string(),
            check: Box::new(check),
        });
        self
    }

    /// Explores every schedule. Returns exploration stats, or the first
    /// violation found.
    pub fn run(&self) -> Result<Report, Violation> {
        let counts: Vec<usize> = self.threads.iter().map(|t| t.steps.len()).collect();
        let total: usize = counts.iter().sum();
        let mut report = Report {
            schedules: 0,
            steps: 0,
        };
        let mut order = Vec::with_capacity(total);
        self.explore(&mut counts.clone(), &mut order, total, &mut report)?;
        Ok(report)
    }

    /// Depth-first enumeration of multiset permutations: at each slot,
    /// pick any thread with steps remaining.
    fn explore(
        &self,
        remaining: &mut [usize],
        order: &mut Vec<usize>,
        total: usize,
        report: &mut Report,
    ) -> Result<(), Violation> {
        if order.len() == total {
            self.execute(order, report)?;
            return Ok(());
        }
        for t in 0..remaining.len() {
            if remaining[t] == 0 {
                continue;
            }
            remaining[t] -= 1;
            order.push(t);
            let r = self.explore(remaining, order, total, report);
            order.pop();
            remaining[t] += 1;
            r?;
        }
        Ok(())
    }

    /// Runs one complete schedule against fresh state.
    fn execute(&self, order: &[usize], report: &mut Report) -> Result<(), Violation> {
        let mut state = (self.setup)();
        let mut cursors = vec![0usize; self.threads.len()];
        let schedule = || {
            order
                .iter()
                .map(|&t| self.threads[t].name.clone())
                .collect::<Vec<_>>()
        };
        for (i, &t) in order.iter().enumerate() {
            let thread = &self.threads[t];
            (thread.steps[cursors[t]])(&mut state);
            cursors[t] += 1;
            report.steps += 1;
            for inv in &self.invariants {
                if let Err(message) = (inv.check)(&state) {
                    return Err(Violation {
                        schedule: schedule(),
                        step: i + 1,
                        check: inv.name.clone(),
                        message,
                    });
                }
            }
        }
        for fin in &self.finals {
            if let Err(message) = (fin.check)(&mut state) {
                return Err(Violation {
                    schedule: schedule(),
                    step: order.len(),
                    check: fin.name.clone(),
                    message,
                });
            }
        }
        report.schedules += 1;
        Ok(())
    }
}

/// The multinomial coefficient `(Σcounts)! / Π(counts[i]!)` — the number
/// of schedules [`Model::run`] will execute for the given per-thread
/// step counts. Exposed so tests can assert full exploration.
pub fn multinomial(counts: &[usize]) -> u64 {
    let mut result: u64 = 1;
    let mut placed: u64 = 0;
    for &c in counts {
        for k in 1..=c as u64 {
            placed += 1;
            // result *= placed; result /= k — kept exact by doing the
            // multiply first (binomial prefix products are integral).
            result = result * placed / k;
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;
    use std::rc::Rc;

    #[test]
    fn multinomial_counts() {
        assert_eq!(multinomial(&[3, 3, 2]), 560);
        assert_eq!(multinomial(&[2, 2]), 6);
        assert_eq!(multinomial(&[1, 1, 1]), 6);
        assert_eq!(multinomial(&[5]), 1);
        assert_eq!(multinomial(&[]), 1);
    }

    #[test]
    fn explores_every_schedule_once() {
        // Two threads of 2 steps each → 6 schedules, 4 steps each.
        let model = Model::new(|| 0u64)
            .thread(
                "a",
                vec![Box::new(|s: &mut u64| *s += 1), Box::new(|s| *s += 1)],
            )
            .thread("b", vec![Box::new(|s| *s += 10), Box::new(|s| *s += 10)])
            .check_final("sum", |s| {
                if *s == 22 {
                    Ok(())
                } else {
                    Err(format!("sum {s}"))
                }
            });
        let report = model.run().expect("all schedules conserve");
        assert_eq!(report.schedules, multinomial(&[2, 2]));
        assert_eq!(report.steps, 6 * 4);
    }

    #[test]
    fn program_order_is_preserved_within_a_thread() {
        // Thread a: push 1 then 2; thread b: push 3. In every schedule,
        // 1 must precede 2.
        let model = Model::new(Vec::<u32>::new)
            .thread(
                "a",
                vec![
                    Box::new(|s: &mut Vec<u32>| s.push(1)),
                    Box::new(|s| s.push(2)),
                ],
            )
            .thread("b", vec![Box::new(|s| s.push(3))])
            .check_final("order", |s| {
                let i1 = s.iter().position(|&x| x == 1).unwrap();
                let i2 = s.iter().position(|&x| x == 2).unwrap();
                if i1 < i2 {
                    Ok(())
                } else {
                    Err(format!("program order violated: {s:?}"))
                }
            });
        let report = model.run().expect("program order holds");
        assert_eq!(report.schedules, 3);
    }

    #[test]
    fn invariant_failure_reports_schedule_and_step() {
        let model = Model::new(|| 0i64)
            .thread("inc", vec![Box::new(|s: &mut i64| *s += 1)])
            .thread("dec", vec![Box::new(|s| *s -= 1)])
            .invariant("non-negative", |s| {
                if *s >= 0 {
                    Ok(())
                } else {
                    Err(format!("dipped to {s}"))
                }
            });
        let v = model.run().expect_err("dec-first schedule must fail");
        assert_eq!(v.schedule, vec!["dec".to_string(), "inc".to_string()]);
        assert_eq!(v.step, 1);
        assert_eq!(v.check, "non-negative");
        assert!(v.to_string().contains("dipped to -1"));
    }

    #[test]
    fn state_is_rebuilt_per_schedule() {
        let builds = Rc::new(Cell::new(0u64));
        let b = Rc::clone(&builds);
        let model = Model::new(move || {
            b.set(b.get() + 1);
            0u64
        })
        .thread("a", vec![Box::new(|_| {})])
        .thread("b", vec![Box::new(|_| {})]);
        let report = model.run().unwrap();
        assert_eq!(report.schedules, 2);
        assert_eq!(builds.get(), 2);
    }
}
