//! The rule engine: per-file context (tokens, comments, suppression
//! table, `#[cfg(test)]` spans) and the diagnostic plumbing.
//!
//! ## Suppression
//!
//! A diagnostic on line `L` is suppressed by a comment
//! `// etwlint: allow(rule-name)` (or `allow(a, b)`) on line `L` itself
//! or on line `L-1`. The text after the closing parenthesis is free-form
//! and should state *why* — the self-test keeps the workspace clean, so
//! every surviving `allow` documents a deliberate exception.

use crate::tokenizer::{tokenize, Comment, Token, TokenKind, TokenStream};
use std::collections::{BTreeMap, BTreeSet};

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule that fired.
    pub rule: &'static str,
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// `path:line:col: rule: message` — the human-readable form.
    pub fn render(&self) -> String {
        format!(
            "{}:{}:{}: {}: {}",
            self.path, self.line, self.col, self.rule, self.message
        )
    }

    /// One JSON object (hand-rolled; the workspace vendors no serde).
    pub fn render_json(&self) -> String {
        format!(
            "{{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"col\":{},\"message\":\"{}\"}}",
            json_escape(self.rule),
            json_escape(&self.path),
            self.line,
            self.col,
            json_escape(&self.message)
        )
    }
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// An input file: workspace-relative path plus content.
#[derive(Clone, Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root, with forward slashes.
    pub rel_path: String,
    /// Full file text.
    pub text: String,
}

/// Kind of a taint annotation comment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AnnKind {
    /// `etwlint: source(tag)` — the fn/field/type produces raw values.
    Source,
    /// `etwlint: sink(tag)` — the fn emits bytes to the outside world.
    Sink,
    /// `etwlint: sanitize(tag)` — the fn is a trusted cleansing boundary.
    Sanitize,
}

/// One `etwlint: source(...)/sink(...)/sanitize(...)` comment, parsed
/// but not yet attached to an item (the taint pass does attachment).
#[derive(Clone, Debug)]
pub struct Annotation {
    /// Annotation kind.
    pub kind: AnnKind,
    /// The tag inside the parentheses (e.g. `raw-id`, `xml`).
    pub tag: String,
    /// First line of the comment carrying the annotation.
    pub line: usize,
    /// Last line of the contiguous comment block — the annotated item
    /// is the next declaration after this line (or on `line` itself for
    /// trailing comments).
    pub applies_line: usize,
}

/// Everything a rule needs to know about one file.
pub struct FileContext {
    /// Workspace-relative path (forward slashes).
    pub rel_path: String,
    /// Code tokens.
    pub tokens: Vec<Token>,
    /// Taint annotations found in comments, in line order.
    pub annotations: Vec<Annotation>,
    /// Line → comment texts touching that line (block comments register
    /// on every line they span).
    comments_by_line: BTreeMap<usize, Vec<String>>,
    /// Line → rule names allowed on that line.
    allows: BTreeMap<usize, BTreeSet<String>>,
    /// Line spans (inclusive) of `#[cfg(test)] mod … { … }` blocks.
    test_spans: Vec<(usize, usize)>,
}

impl FileContext {
    /// Builds the context for one file.
    pub fn new(file: &SourceFile) -> FileContext {
        let stream = tokenize(&file.text);
        let mut comments_by_line: BTreeMap<usize, Vec<String>> = BTreeMap::new();
        let mut allows: BTreeMap<usize, BTreeSet<String>> = BTreeMap::new();
        for c in &stream.comments {
            for line in c.line..=c.end_line {
                comments_by_line
                    .entry(line)
                    .or_default()
                    .push(c.text.clone());
            }
        }
        for c in &stream.comments {
            let rules = parse_allows(c);
            if rules.is_empty() {
                continue;
            }
            // An allow covers its own comment plus the rest of the
            // contiguous comment block below it, so a multi-line `//`
            // justification reaches the code line it ends above.
            let mut last = c.end_line;
            while comments_by_line.contains_key(&(last + 1)) {
                last += 1;
            }
            for rule in rules {
                for line in c.line..=last {
                    allows.entry(line).or_default().insert(rule.clone());
                }
            }
        }
        let mut annotations = Vec::new();
        for c in &stream.comments {
            for (kind, tag) in parse_annotations(c) {
                // Like `allow`, an annotation covers the contiguous
                // comment block it lives in; the item it annotates is
                // the next declaration below the block.
                let mut last = c.end_line;
                while comments_by_line.contains_key(&(last + 1)) {
                    last += 1;
                }
                annotations.push(Annotation {
                    kind,
                    tag,
                    line: c.line,
                    applies_line: last,
                });
            }
        }
        let test_spans = find_test_spans(&stream);
        FileContext {
            rel_path: file.rel_path.clone(),
            tokens: stream.tokens,
            annotations,
            comments_by_line,
            allows,
            test_spans,
        }
    }

    /// Whether `line` falls inside a `#[cfg(test)]` module.
    pub fn in_test_code(&self, line: usize) -> bool {
        self.test_spans
            .iter()
            .any(|&(a, b)| (a..=b).contains(&line))
    }

    /// Whether the flagged `line` carries an `etwlint: allow(rule)` on
    /// the line itself or the line above.
    pub fn is_allowed(&self, rule: &str, line: usize) -> bool {
        for l in line.saturating_sub(1)..=line {
            if let Some(set) = self.allows.get(&l) {
                if set.contains(rule) {
                    return true;
                }
            }
        }
        false
    }

    /// Whether a comment containing `marker` exists on `line` or within
    /// the `lookback` lines above it (justification comments).
    pub fn has_comment_marker(&self, marker: &str, line: usize, lookback: usize) -> bool {
        for l in line.saturating_sub(lookback)..=line {
            if let Some(texts) = self.comments_by_line.get(&l) {
                if texts.iter().any(|t| t.contains(marker)) {
                    return true;
                }
            }
        }
        false
    }

    /// Emits a diagnostic at a token unless suppressed; returns whether
    /// it was suppressed.
    pub fn report(&self, out: &mut LintSink, rule: &'static str, token: &Token, message: String) {
        let d = Diagnostic {
            rule,
            path: self.rel_path.clone(),
            line: token.line,
            col: token.col,
            message,
        };
        if self.is_allowed(rule, token.line) {
            out.suppressed.push(d);
        } else {
            out.diagnostics.push(d);
        }
    }
}

/// Collects findings, separating suppressed ones for accounting.
#[derive(Default, Debug)]
pub struct LintSink {
    /// Unsuppressed findings (these fail the gate).
    pub diagnostics: Vec<Diagnostic>,
    /// Findings silenced by an inline `allow`.
    pub suppressed: Vec<Diagnostic>,
}

/// Extracts rule names from `etwlint: allow(a, b)` occurrences in a
/// comment.
fn parse_allows(comment: &Comment) -> Vec<String> {
    let mut rules = Vec::new();
    let text = &comment.text;
    let mut search = 0usize;
    while let Some(idx) = text[search..].find("etwlint:") {
        let rest = &text[search + idx + "etwlint:".len()..];
        let rest = rest.trim_start();
        if let Some(args) = rest.strip_prefix("allow(") {
            if let Some(close) = args.find(')') {
                for name in args[..close].split(',') {
                    let name = name.trim();
                    if !name.is_empty() {
                        rules.push(name.to_string());
                    }
                }
            }
        }
        search += idx + "etwlint:".len();
    }
    rules
}

/// Extracts `(kind, tag)` pairs from `etwlint: source(tag)` /
/// `sink(tag)` / `sanitize(tag)` occurrences in a comment. Text after
/// the closing parenthesis is a free-form justification, mirroring the
/// `allow` grammar.
fn parse_annotations(comment: &Comment) -> Vec<(AnnKind, String)> {
    let mut out = Vec::new();
    let text = &comment.text;
    let mut search = 0usize;
    while let Some(idx) = text[search..].find("etwlint:") {
        let rest = text[search + idx + "etwlint:".len()..].trim_start();
        for (prefix, kind) in [
            ("source(", AnnKind::Source),
            ("sink(", AnnKind::Sink),
            ("sanitize(", AnnKind::Sanitize),
        ] {
            if let Some(args) = rest.strip_prefix(prefix) {
                if let Some(close) = args.find(')') {
                    let tag = args[..close].trim();
                    if !tag.is_empty() {
                        out.push((kind, tag.to_string()));
                    }
                }
            }
        }
        search += idx + "etwlint:".len();
    }
    out
}

/// Finds `#[cfg(test)] mod name { … }` spans by token matching. Other
/// `#[cfg(test)]` placements (on items without braces) are ignored —
/// the workspace convention is test *modules*.
fn find_test_spans(stream: &TokenStream) -> Vec<(usize, usize)> {
    let t = &stream.tokens;
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < t.len() {
        if is_cfg_test_attr(t, i) {
            // Skip this attribute and any further attributes, then
            // expect `mod <name> {`.
            let mut j = skip_attr(t, i);
            while j < t.len() && t[j].kind == TokenKind::Punct && t[j].text == "#" {
                j = skip_attr(t, j);
            }
            if j + 2 < t.len()
                && t[j].kind == TokenKind::Ident
                && t[j].text == "mod"
                && t[j + 1].kind == TokenKind::Ident
                && t[j + 2].text == "{"
            {
                let start_line = t[i].line;
                let mut depth = 0usize;
                let mut k = j + 2;
                let mut end_line = t[k].line;
                while k < t.len() {
                    if t[k].kind == TokenKind::Punct {
                        if t[k].text == "{" {
                            depth += 1;
                        } else if t[k].text == "}" {
                            depth -= 1;
                            if depth == 0 {
                                end_line = t[k].line;
                                break;
                            }
                        }
                    }
                    k += 1;
                }
                spans.push((start_line, end_line));
                i = k;
                continue;
            }
        }
        i += 1;
    }
    spans
}

/// Is `t[i..]` the start of exactly `#[cfg(test)]`?
fn is_cfg_test_attr(t: &[Token], i: usize) -> bool {
    let texts = ["#", "[", "cfg", "(", "test", ")", "]"];
    if i + texts.len() > t.len() {
        return false;
    }
    texts
        .iter()
        .zip(&t[i..i + texts.len()])
        .all(|(want, tok)| tok.text == *want)
}

/// Skips one `#[…]` attribute starting at index `i` (which must point at
/// `#`); returns the index after the closing `]`.
fn skip_attr(t: &[Token], i: usize) -> usize {
    let mut j = i + 1; // at `[`
    let mut depth = 0usize;
    while j < t.len() {
        if t[j].kind == TokenKind::Punct {
            if t[j].text == "[" {
                depth += 1;
            } else if t[j].text == "]" {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
        }
        j += 1;
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(src: &str) -> FileContext {
        FileContext::new(&SourceFile {
            rel_path: "x.rs".into(),
            text: src.into(),
        })
    }

    #[test]
    fn allow_parsing_and_lookup() {
        let c = ctx("let a = 1; // etwlint: allow(no-wall-clock): operator-facing timer\nlet b;");
        assert!(c.is_allowed("no-wall-clock", 1));
        assert!(c.is_allowed("no-wall-clock", 2)); // line below an allow line
        assert!(!c.is_allowed("no-panic-hot-path", 1));
        let c = ctx("// etwlint: allow(a, b)\nflagged();");
        assert!(c.is_allowed("a", 2));
        assert!(c.is_allowed("b", 2));
        assert!(!c.is_allowed("a", 4));
    }

    #[test]
    fn comment_marker_lookback() {
        let c = ctx("// ordering: relaxed is fine here\n\nfetch_add(1, Relaxed);");
        assert!(c.has_comment_marker("ordering:", 3, 2));
        assert!(!c.has_comment_marker("ordering:", 3, 1));
    }

    #[test]
    fn test_span_detection() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x.unwrap(); }\n}\nfn after() {}";
        let c = ctx(src);
        assert!(!c.in_test_code(1));
        assert!(c.in_test_code(2));
        assert!(c.in_test_code(5));
        assert!(!c.in_test_code(7));
    }

    #[test]
    fn cfg_test_with_extra_attrs() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod tests { fn f() {} }";
        let c = ctx(src);
        assert!(c.in_test_code(3));
    }

    #[test]
    fn cfg_test_on_non_mod_is_ignored() {
        let c = ctx("#[cfg(test)]\nuse std::time::Instant;\nfn f() {}");
        assert!(!c.in_test_code(2));
    }

    #[test]
    fn json_escaping() {
        let d = Diagnostic {
            rule: "r",
            path: "a\\b.rs".into(),
            line: 1,
            col: 2,
            message: "say \"hi\"".into(),
        };
        assert_eq!(
            d.render_json(),
            "{\"rule\":\"r\",\"path\":\"a\\\\b.rs\",\"line\":1,\"col\":2,\"message\":\"say \\\"hi\\\"\"}"
        );
    }
}
