//! etwlint — repo-specific static analysis for the edonkey-ten-weeks
//! workspace.
//!
//! clippy covers general Rust hygiene; this crate encodes the project's
//! *domain* invariants: the capture machine must be wall-clock free and
//! panic free on the hot path, lock-free atomics must document their
//! memory-ordering contract, the eDonkey protocol tables must stay in
//! sync, and the offline vendored stand-ins must stay behind the
//! Cargo.toml boundary.
//!
//! The analysis is token-based (see [`tokenizer`]): a full parse is
//! overkill for these rules, but raw string matching would false-positive
//! on comments and literals. Diagnostics are suppressed inline with
//! `// etwlint: allow(<rule>): <why>` on the offending line or the line
//! above; the `tests/workspace_clean.rs` self-test keeps the repo at
//! zero unsuppressed diagnostics so every `allow` in tree is a reviewed
//! exception.

pub mod engine;
pub mod output;
pub mod parser;
pub mod rules;
pub mod taint;
pub mod tokenizer;

pub use engine::{Diagnostic, FileContext, LintSink, SourceFile};
pub use rules::{all_rules, rule_catalogue, Rule};

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Outcome of a lint run.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Unsuppressed diagnostics — non-empty fails the CI gate.
    pub diagnostics: Vec<Diagnostic>,
    /// Diagnostics silenced by inline `allow` comments.
    pub suppressed: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// True when no unsuppressed diagnostics were found.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Renders the whole report as one JSON document.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"files_scanned\":");
        out.push_str(&self.files_scanned.to_string());
        out.push_str(",\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&d.render_json());
        }
        out.push_str("],\"suppressed\":[");
        for (i, d) in self.suppressed.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&d.render_json());
        }
        out.push_str("]}");
        out
    }
}

/// Lints a set of in-memory files against the full rule catalogue.
///
/// Diagnostics come back sorted by path, then line, then column, so
/// output is deterministic regardless of input order.
pub fn lint_files(files: &[SourceFile]) -> LintReport {
    let ctxs: Vec<FileContext> = files.iter().map(FileContext::new).collect();
    let mut sink = LintSink::default();
    for rule in all_rules() {
        for ctx in &ctxs {
            rule.check_file(ctx, &mut sink);
        }
        rule.check_workspace(&ctxs, &mut sink);
    }
    let sort_key = |d: &Diagnostic| (d.path.clone(), d.line, d.col, d.rule);
    sink.diagnostics.sort_by_key(sort_key);
    sink.suppressed.sort_by_key(sort_key);
    LintReport {
        diagnostics: sink.diagnostics,
        suppressed: sink.suppressed,
        files_scanned: files.len(),
    }
}

/// Directory names never descended into when collecting sources.
const SKIP_DIRS: &[&str] = &[".git", "target", "vendor"];

/// The known-bad snippet corpus: intentionally rule-violating sources
/// that `tests/fixture_corpus.rs` lints under *virtual* paths. Skipped
/// here so the workspace self-scan stays clean by construction.
const FIXTURE_DIR: &str = "crates/etwlint/tests/fixtures";

/// Collects every workspace `.rs` file under `root`, skipping `.git`,
/// build output, the vendored stand-ins (which are exempt by
/// definition — they are the other side of the boundary rule), and the
/// lint-fixture corpus (intentionally bad by definition).
pub fn collect_sources(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = fs::read_dir(&dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for path in entries {
            let name = path
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default();
            if path.is_dir() {
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .to_string_lossy()
                    .replace('\\', "/");
                if !SKIP_DIRS.contains(&name) && rel != FIXTURE_DIR {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .to_string_lossy()
                    .replace('\\', "/");
                let text = fs::read_to_string(&path)?;
                files.push(SourceFile {
                    rel_path: rel,
                    text,
                });
            }
        }
    }
    files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
    Ok(files)
}

/// Lints everything under a workspace root on disk.
pub fn lint_workspace(root: &Path) -> io::Result<LintReport> {
    let files = collect_sources(root)?;
    Ok(lint_files(&files))
}

/// Walks up from `start` to the first directory whose `Cargo.toml`
/// declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
