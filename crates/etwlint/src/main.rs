//! CLI for etwlint.
//!
//! ```text
//! etwlint [--format text|json|sarif] [--root DIR] [--list]
//! ```
//!
//! Exit codes: 0 = clean, 1 = unsuppressed diagnostics, 2 = usage or
//! I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Text,
    Json,
    Sarif,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    run(&args)
}

fn run(args: &[String]) -> ExitCode {
    let mut format = Format::Text;
    let mut list = false;
    let mut root: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            // Back-compat alias for `--format json` (the pre-SARIF flag).
            "--json" => format = Format::Json,
            "--format" => {
                i += 1;
                match args.get(i).map(String::as_str) {
                    Some("text") => format = Format::Text,
                    Some("json") => format = Format::Json,
                    Some("sarif") => format = Format::Sarif,
                    Some(other) => {
                        eprintln!("etwlint: unknown format `{other}` (text|json|sarif)");
                        return ExitCode::from(2);
                    }
                    None => {
                        eprintln!("etwlint: --format needs an argument (text|json|sarif)");
                        return ExitCode::from(2);
                    }
                }
            }
            "--list" => list = true,
            "--root" => {
                i += 1;
                match args.get(i) {
                    Some(dir) => root = Some(PathBuf::from(dir)),
                    None => {
                        eprintln!("etwlint: --root needs a directory argument");
                        return ExitCode::from(2);
                    }
                }
            }
            "-h" | "--help" => {
                print_usage();
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("etwlint: unknown argument `{other}`");
                print_usage();
                return ExitCode::from(2);
            }
        }
        i += 1;
    }

    if list {
        for (name, desc) in etwlint::rule_catalogue() {
            println!("{name:24} {desc}");
        }
        return ExitCode::SUCCESS;
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("etwlint: cannot read current dir: {e}");
                    return ExitCode::from(2);
                }
            };
            match etwlint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("etwlint: no workspace Cargo.toml above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    let report = match etwlint::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("etwlint: scan failed under {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    match format {
        Format::Json => println!("{}", etwlint::output::render_json_versioned(&report)),
        Format::Sarif => println!("{}", etwlint::output::render_sarif(&report)),
        Format::Text => {
            for d in &report.diagnostics {
                println!("{}", d.render());
            }
            eprintln!(
                "etwlint: {} file(s) scanned, {} diagnostic(s), {} suppressed",
                report.files_scanned,
                report.diagnostics.len(),
                report.suppressed.len()
            );
        }
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn print_usage() {
    eprintln!(
        "usage: etwlint [--format text|json|sarif] [--root DIR] [--list]\n\
         \n\
         Lints the workspace against the repo-specific rule catalogue.\n\
         --format text|json|sarif\n\
         \u{20}        line diagnostics (default), the versioned JSON report\n\
         \u{20}        (etwlint-report/1), or a SARIF 2.1.0 log\n\
         --json   alias for --format json\n\
         --root   workspace root (default: walk up from cwd)\n\
         --list   print the rule catalogue and exit"
    );
}
