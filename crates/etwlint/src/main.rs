//! CLI for etwlint.
//!
//! ```text
//! etwlint [--json] [--root DIR] [--list]
//! ```
//!
//! Exit codes: 0 = clean, 1 = unsuppressed diagnostics, 2 = usage or
//! I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    run(&args)
}

fn run(args: &[String]) -> ExitCode {
    let mut json = false;
    let mut list = false;
    let mut root: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => json = true,
            "--list" => list = true,
            "--root" => {
                i += 1;
                match args.get(i) {
                    Some(dir) => root = Some(PathBuf::from(dir)),
                    None => {
                        eprintln!("etwlint: --root needs a directory argument");
                        return ExitCode::from(2);
                    }
                }
            }
            "-h" | "--help" => {
                print_usage();
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("etwlint: unknown argument `{other}`");
                print_usage();
                return ExitCode::from(2);
            }
        }
        i += 1;
    }

    if list {
        for (name, desc) in etwlint::rule_catalogue() {
            println!("{name:24} {desc}");
        }
        return ExitCode::SUCCESS;
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("etwlint: cannot read current dir: {e}");
                    return ExitCode::from(2);
                }
            };
            match etwlint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("etwlint: no workspace Cargo.toml above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    let report = match etwlint::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("etwlint: scan failed under {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if json {
        println!("{}", report.render_json());
    } else {
        for d in &report.diagnostics {
            println!("{}", d.render());
        }
        eprintln!(
            "etwlint: {} file(s) scanned, {} diagnostic(s), {} suppressed",
            report.files_scanned,
            report.diagnostics.len(),
            report.suppressed.len()
        );
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn print_usage() {
    eprintln!(
        "usage: etwlint [--json] [--root DIR] [--list]\n\
         \n\
         Lints the workspace against the repo-specific rule catalogue.\n\
         --json   emit one JSON document instead of line diagnostics\n\
         --root   workspace root (default: walk up from cwd)\n\
         --list   print the rule catalogue and exit"
    );
}
