//! A lightweight Rust tokenizer — just enough lexical structure for the
//! lint rules: identifiers, literals, punctuation, and comments with
//! exact line/column spans.
//!
//! This is deliberately not a full lexer. It understands everything
//! needed to avoid false positives inside strings and comments (nested
//! block comments, raw strings with `#` fences, byte strings, char
//! literals vs lifetimes) and nothing more. Rules operate on the token
//! stream plus the comment side-table, never on raw text.

/// What kind of lexeme a [`Token`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident,
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// Numeric literal (integer or float, any base).
    Num,
    /// Lifetime (`'a`).
    Lifetime,
    /// Single punctuation character (`.`, `{`, `#`, …).
    Punct,
}

/// One lexeme with its position (1-based line and column).
#[derive(Clone, Debug)]
pub struct Token {
    /// Lexeme kind.
    pub kind: TokenKind,
    /// The lexeme text. For [`TokenKind::Str`] this is the *content*
    /// (delimiters stripped, escapes left as written) so rules can
    /// search inside literals.
    pub text: String,
    /// 1-based line of the first character.
    pub line: usize,
    /// 1-based column of the first character.
    pub col: usize,
}

/// One comment (line or block, doc or plain) with its span.
#[derive(Clone, Debug)]
pub struct Comment {
    /// Comment text without the `//` / `/*` markers.
    pub text: String,
    /// 1-based line where the comment starts.
    pub line: usize,
    /// 1-based line where the comment ends (same as `line` for `//`).
    pub end_line: usize,
}

/// Result of tokenizing one file.
#[derive(Clone, Debug, Default)]
pub struct TokenStream {
    /// Code tokens in order.
    pub tokens: Vec<Token>,
    /// Comments in order (not interleaved with `tokens`).
    pub comments: Vec<Comment>,
}

struct Cursor<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: usize,
    col: usize,
}

impl<'a> Cursor<'a> {
    fn new(text: &'a str) -> Cursor<'a> {
        Cursor {
            chars: text.chars().peekable(),
            line: 1,
            col: 1,
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenizes `text`, producing code tokens and a comment side-table.
/// Malformed input (unterminated strings/comments) is tolerated: the
/// partial lexeme is emitted and lexing stops at end of input.
pub fn tokenize(text: &str) -> TokenStream {
    let mut cur = Cursor::new(text);
    let mut out = TokenStream::default();
    while let Some(c) = cur.peek() {
        let (line, col) = (cur.line, cur.col);
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        if c == '/' {
            let mut ahead = cur.chars.clone();
            ahead.next();
            match ahead.peek() {
                Some('/') => {
                    lex_line_comment(&mut cur, &mut out, line);
                    continue;
                }
                Some('*') => {
                    lex_block_comment(&mut cur, &mut out, line);
                    continue;
                }
                _ => {}
            }
        }
        if is_ident_start(c) {
            lex_ident_or_prefixed(&mut cur, &mut out, line, col);
            continue;
        }
        if c.is_ascii_digit() {
            lex_number(&mut cur, &mut out, line, col);
            continue;
        }
        if c == '\'' {
            lex_char_or_lifetime(&mut cur, &mut out, line, col);
            continue;
        }
        if c == '"' {
            cur.bump();
            let content = lex_string_body(&mut cur, 0);
            out.tokens.push(Token {
                kind: TokenKind::Str,
                text: content,
                line,
                col,
            });
            continue;
        }
        cur.bump();
        out.tokens.push(Token {
            kind: TokenKind::Punct,
            text: c.to_string(),
            line,
            col,
        });
    }
    out
}

fn lex_line_comment(cur: &mut Cursor, out: &mut TokenStream, line: usize) {
    cur.bump();
    cur.bump(); // consume `//`
    let mut text = String::new();
    while let Some(c) = cur.peek() {
        if c == '\n' {
            break;
        }
        text.push(c);
        cur.bump();
    }
    out.comments.push(Comment {
        text,
        line,
        end_line: line,
    });
}

fn lex_block_comment(cur: &mut Cursor, out: &mut TokenStream, line: usize) {
    cur.bump();
    cur.bump(); // consume `/*`
    let mut depth = 1usize;
    let mut text = String::new();
    while depth > 0 {
        match cur.bump() {
            None => break,
            Some('*') if cur.peek() == Some('/') => {
                cur.bump();
                depth -= 1;
                if depth > 0 {
                    text.push_str("*/");
                }
            }
            Some('/') if cur.peek() == Some('*') => {
                cur.bump();
                depth += 1;
                text.push_str("/*");
            }
            Some(c) => text.push(c),
        }
    }
    out.comments.push(Comment {
        text,
        line,
        end_line: cur.line,
    });
}

/// Identifier, or a string/char literal with an identifier-like prefix
/// (`r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'x'`).
fn lex_ident_or_prefixed(cur: &mut Cursor, out: &mut TokenStream, line: usize, col: usize) {
    let mut ident = String::new();
    while let Some(c) = cur.peek() {
        if is_ident_continue(c) {
            ident.push(c);
            cur.bump();
        } else {
            break;
        }
    }
    // String prefixes: the prefix must be exactly r/b/br and be followed
    // by a quote (or `#` fences for raw flavours).
    let is_raw = ident == "r" || ident == "br";
    let is_byte = ident == "b" || ident == "br";
    if is_raw {
        let mut fence = 0usize;
        let mut ahead = cur.chars.clone();
        while ahead.peek() == Some(&'#') {
            ahead.next();
            fence += 1;
        }
        if ahead.peek() == Some(&'"') {
            for _ in 0..fence {
                cur.bump();
            }
            cur.bump(); // opening quote
            let content = lex_raw_string_body(cur, fence);
            out.tokens.push(Token {
                kind: TokenKind::Str,
                text: content,
                line,
                col,
            });
            return;
        }
    }
    if is_byte && cur.peek() == Some('"') {
        cur.bump();
        let content = lex_string_body(cur, 0);
        out.tokens.push(Token {
            kind: TokenKind::Str,
            text: content,
            line,
            col,
        });
        return;
    }
    if is_byte && cur.peek() == Some('\'') {
        cur.bump();
        let content = lex_char_body(cur);
        out.tokens.push(Token {
            kind: TokenKind::Char,
            text: content,
            line,
            col,
        });
        return;
    }
    out.tokens.push(Token {
        kind: TokenKind::Ident,
        text: ident,
        line,
        col,
    });
}

/// Body of a normal (escaped) string; the opening quote is consumed.
fn lex_string_body(cur: &mut Cursor, _fence: usize) -> String {
    let mut content = String::new();
    while let Some(c) = cur.bump() {
        match c {
            '"' => break,
            '\\' => {
                content.push('\\');
                if let Some(escaped) = cur.bump() {
                    content.push(escaped);
                }
            }
            other => content.push(other),
        }
    }
    content
}

/// Body of a raw string with `fence` `#` characters after the quote.
fn lex_raw_string_body(cur: &mut Cursor, fence: usize) -> String {
    let mut content = String::new();
    'outer: while let Some(c) = cur.bump() {
        if c == '"' {
            // A closing quote must be followed by `fence` hashes.
            let mut ahead = cur.chars.clone();
            for _ in 0..fence {
                if ahead.next() != Some('#') {
                    content.push('"');
                    continue 'outer;
                }
            }
            for _ in 0..fence {
                cur.bump();
            }
            break;
        }
        content.push(c);
    }
    content
}

/// Char literal body after the opening `'`.
fn lex_char_body(cur: &mut Cursor) -> String {
    let mut content = String::new();
    while let Some(c) = cur.bump() {
        match c {
            '\'' => break,
            '\\' => {
                content.push('\\');
                if let Some(escaped) = cur.bump() {
                    content.push(escaped);
                }
            }
            other => content.push(other),
        }
    }
    content
}

/// Distinguishes `'a'` (char) from `'a` (lifetime): a lifetime is a
/// quote followed by an identifier not closed by another quote.
fn lex_char_or_lifetime(cur: &mut Cursor, out: &mut TokenStream, line: usize, col: usize) {
    cur.bump(); // opening quote
    let next = cur.peek();
    let looks_like_lifetime = matches!(next, Some(c) if is_ident_start(c));
    if looks_like_lifetime {
        // Look ahead: `'a'` is a char, `'a,` / `'a>` / `'a ` a lifetime.
        let mut ahead = cur.chars.clone();
        let mut len = 0usize;
        while matches!(ahead.peek(), Some(&c) if is_ident_continue(c)) {
            ahead.next();
            len += 1;
        }
        if ahead.peek() != Some(&'\'') {
            let mut name = String::new();
            for _ in 0..len {
                if let Some(c) = cur.bump() {
                    name.push(c);
                }
            }
            out.tokens.push(Token {
                kind: TokenKind::Lifetime,
                text: name,
                line,
                col,
            });
            return;
        }
    }
    let content = lex_char_body(cur);
    out.tokens.push(Token {
        kind: TokenKind::Char,
        text: content,
        line,
        col,
    });
}

/// Numeric literal. Hex/octal/binary literals never consume `.` so that
/// range expressions like `0x40..0x7f` lex as two numbers; a decimal
/// point is taken only when directly followed by a digit (so `0..n`
/// stays a range).
fn lex_number(cur: &mut Cursor, out: &mut TokenStream, line: usize, col: usize) {
    let mut text = String::new();
    let mut radix_prefix = false;
    if cur.peek() == Some('0') {
        text.push('0');
        cur.bump();
        if let Some(c) = cur.peek() {
            if c == 'x' || c == 'o' || c == 'b' {
                radix_prefix = true;
                text.push(c);
                cur.bump();
            }
        }
    }
    let mut seen_dot = false;
    while let Some(c) = cur.peek() {
        if c.is_ascii_alphanumeric() || c == '_' {
            text.push(c);
            cur.bump();
        } else if c == '.' && !seen_dot && !radix_prefix {
            let mut ahead = cur.chars.clone();
            ahead.next();
            if matches!(ahead.peek(), Some(d) if d.is_ascii_digit()) {
                seen_dot = true;
                text.push('.');
                cur.bump();
            } else {
                break;
            }
        } else {
            break;
        }
    }
    out.tokens.push(Token {
        kind: TokenKind::Num,
        text,
        line,
        col,
    });
}

/// Parses an integer literal's value, honouring `0x`/`0o`/`0b` prefixes,
/// `_` separators, and type suffixes (`0x7fu8`). Returns `None` for
/// floats and malformed input.
pub fn int_value(literal: &str) -> Option<u64> {
    let t = literal.replace('_', "");
    let (radix, digits) = match t.as_bytes() {
        [b'0', b'x', ..] => (16, &t[2..]),
        [b'0', b'o', ..] => (8, &t[2..]),
        [b'0', b'b', ..] => (2, &t[2..]),
        _ => (10, &t[..]),
    };
    // The value is the leading run of valid digits; what follows must be
    // a type suffix (`u8`), not a float continuation.
    let end = digits
        .find(|c: char| c.to_digit(radix).is_none())
        .unwrap_or(digits.len());
    if end == 0 {
        return None;
    }
    let suffix = &digits[end..];
    if suffix.contains('.') || (radix == 10 && (suffix.starts_with('e') || suffix.starts_with('E')))
    {
        return None;
    }
    u64::from_str_radix(&digits[..end], radix).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        tokenize(src)
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.clone())
            .collect()
    }

    #[test]
    fn idents_and_puncts() {
        let ts = tokenize("fn main() { x.unwrap(); }");
        assert_eq!(
            idents("fn main() { x.unwrap(); }"),
            vec!["fn", "main", "x", "unwrap"]
        );
        assert!(ts.tokens.iter().any(|t| t.text == "." && t.line == 1));
    }

    #[test]
    fn comments_are_side_tabled() {
        let ts = tokenize("let a = 1; // trailing\n/* block\nspans */ let b = 2;");
        assert_eq!(ts.comments.len(), 2);
        assert_eq!(ts.comments[0].text, " trailing");
        assert_eq!(ts.comments[0].line, 1);
        assert_eq!(ts.comments[1].line, 2);
        assert_eq!(ts.comments[1].end_line, 3);
        assert!(idents("let a = 1; // unwrap()")
            .iter()
            .all(|i| i != "unwrap"));
    }

    #[test]
    fn nested_block_comments() {
        let ts = tokenize("/* a /* b */ c */ fn f() {}");
        assert_eq!(ts.comments.len(), 1);
        assert_eq!(idents("/* a /* b */ c */ fn f() {}"), vec!["fn", "f"]);
    }

    #[test]
    fn strings_do_not_leak_tokens() {
        let ids = idents(r#"let s = "Instant::now() unwrap"; s.len();"#);
        assert_eq!(ids, vec!["let", "s", "s", "len"]);
        // etwlint: allow(vendored-dep-boundary): fixture input for the
        // tokenizer, not a real path reference.
        let ts = tokenize(r#"let s = "vendor/rand";"#);
        let strs: Vec<&Token> = ts
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Str)
            .collect();
        assert_eq!(strs.len(), 1);
        // etwlint: allow(vendored-dep-boundary): fixture expectation, as above
        assert_eq!(strs[0].text, "vendor/rand");
    }

    #[test]
    fn raw_and_byte_strings() {
        let ts = tokenize(r###"let a = r#"raw "quoted" body"#; let b = b"bytes";"###);
        let strs: Vec<String> = ts
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Str)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(
            strs,
            vec![r#"raw "quoted" body"#.to_string(), "bytes".into()]
        );
    }

    #[test]
    fn lifetimes_vs_chars() {
        let ts = tokenize("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes: Vec<&Token> = ts
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert!(lifetimes.iter().all(|t| t.text == "a"));
        let chars: Vec<&Token> = ts
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .collect();
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn hex_ranges_lex_as_two_numbers() {
        let ts = tokenize("rng.gen_range(0x40..0x7f)");
        let nums: Vec<String> = ts
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Num)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(nums, vec!["0x40", "0x7f"]);
        assert_eq!(int_value("0x40"), Some(0x40));
        assert_eq!(int_value("0x7f"), Some(0x7f));
    }

    #[test]
    fn floats_and_int_ranges() {
        let ts = tokenize("let a = 1_000.5; for i in 0..n {}");
        let nums: Vec<String> = ts
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Num)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(nums, vec!["1_000.5", "0"]);
        assert_eq!(int_value("1_000"), Some(1000));
        assert_eq!(int_value("0x7fu8"), Some(0x7f));
        assert_eq!(int_value("1_000.5"), None);
    }

    #[test]
    fn positions_are_one_based() {
        let ts = tokenize("a\n  b");
        assert_eq!((ts.tokens[0].line, ts.tokens[0].col), (1, 1));
        assert_eq!((ts.tokens[1].line, ts.tokens[1].col), (2, 3));
    }

    #[test]
    fn nested_generics_close_with_individual_angle_puncts() {
        // `>>` at the end of a nested generic must lex as two `>` puncts
        // (the parser's skip_generics counts depth one bracket at a
        // time), and a shift expression must produce the same tokens —
        // disambiguation is the parser's job, not the lexer's.
        let ts = tokenize("fn f(m: BTreeMap<u64, Vec<Option<u8>>>) -> u64 { 1u64 >> 2 }");
        let gts = ts
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Punct && t.text == ">")
            .count();
        assert_eq!(gts, 6, "three closers, one arrow half, two shift halves");
        assert!(ts
            .tokens
            .iter()
            .all(|t| t.kind != TokenKind::Punct || t.text.len() == 1));
    }

    #[test]
    fn multi_fence_raw_strings_keep_inner_fences() {
        let ts = tokenize(r####"let a = r##"one "# inner"##;"####);
        let strs: Vec<String> = ts
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Str)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(strs, vec![r##"one "# inner"##.to_string()]);
    }

    #[test]
    fn byte_chars_and_escaped_quotes() {
        let ts = tokenize(r#"let a = b'x'; let b = '\''; let s = "esc \" quote";"#);
        assert_eq!(
            ts.tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Char)
                .count(),
            2
        );
        let strs: Vec<String> = ts
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Str)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(strs, vec![r#"esc \" quote"#.to_string()]);
    }

    #[test]
    fn static_lifetime_is_not_a_char() {
        let ts = tokenize("fn f(x: &'static str) -> &'static str { x }");
        assert_eq!(
            ts.tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Lifetime && t.text == "static")
                .count(),
            2
        );
        assert!(ts.tokens.iter().all(|t| t.kind != TokenKind::Char));
    }

    #[test]
    fn comments_inside_macro_bodies_stay_side_tabled() {
        // An `allow` comment inside a macro invocation must land in the
        // comment table at its own line, where the engine's suppression
        // lookup finds it — macro bodies are not opaque to the lexer.
        let src = "write!(\n    out,\n    // etwlint: allow(taint): reviewed\n    \"{}\",\n    id\n)\n.unwrap();";
        let ts = tokenize(src);
        assert_eq!(ts.comments.len(), 1);
        assert_eq!(ts.comments[0].line, 3);
        assert!(ts.comments[0].text.contains("allow(taint)"));
        // The macro's tokens still lex (idents on both sides of it).
        assert!(idents(src).contains(&"write".to_string()));
        assert!(idents(src).contains(&"unwrap".to_string()));
    }

    #[test]
    fn cr_lf_line_endings_count_lines_once() {
        let ts = tokenize("a\r\nb\r\nc");
        let lines: Vec<usize> = ts.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 3]);
    }
}
