//! Source→sink taint analysis proving anonymisation soundness.
//!
//! The lattice is two-point (clean / tainted-by-raw-identifier) with
//! provenance chains for diagnostics. Taint enters at annotated
//! *sources* — `// etwlint: source(tag)` on a fn (its return value is
//! raw), a struct field (every read of that field is raw), or a type
//! (every value of that type is raw, matched on parameter type text
//! and struct-literal construction). Taint leaves only through
//! annotated *sanitizers* (`etwlint: sanitize(tag)`), whose results are
//! clean by fiat. Annotated *sinks* (`etwlint: sink(tag)`) are the
//! byte-emitting surfaces; any tainted argument reaching one is a
//! diagnostic carrying the full source→sink path.
//!
//! ## Propagation
//!
//! Intra-procedurally a monotone fixpoint runs over local bindings:
//! assignments, field reads, struct literals, pattern bindings from
//! tainted scrutinees (`if let` / `match` / `for`), macro arguments
//! (`write!`-family taints its destination), and calls. Loop bodies are
//! evaluated twice so loop-carried taint converges.
//!
//! Inter-procedurally each workspace fn gets a *summary* computed to
//! fixpoint over the cross-crate call graph: which parameters flow to
//! the return value, which `&mut` parameters get tainted, and which
//! parameters reach a sink (with the path). Calls resolve by qualified
//! path (`Type::fn`) when available, else by bare/method name across
//! the whole workspace — ambiguity unions the candidate summaries.
//! Unresolved calls (std / vendored) conservatively union argument
//! taint into the result, the receiver, and `&mut` arguments.
//!
//! ## Known over-approximations and cuts (see DESIGN.md §15)
//!
//! * Taint does not cross channel send/recv or thread boundaries — the
//!   dynamic sentinel canary test is the runtime complement.
//! * Values of annotated *types* are always raw: the scheme never
//!   re-uses `ClientId`/`FileId`/`Message` for anonymised data, so this
//!   is exact in practice.
//! * Struct literals whose tainted data lands in *annotated fields* do
//!   not taint the carrying value — the field annotation re-establishes
//!   taint at every read, which keeps raw-carrying carriers
//!   (`DecodedMsg`, checkpoints) precise.

use crate::engine::{AnnKind, FileContext, LintSink};
use crate::parser::{parse_file, Block, Expr, FnDef, ParsedFile, Stmt};
use crate::tokenizer::{Token, TokenKind};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::rc::Rc;

/// Rule name used in diagnostics and `allow(...)`.
pub const RULE: &str = "taint";

/// Maximum rendered path steps in one diagnostic.
const MAX_STEPS: usize = 12;

/// Methods that return size/shape information, never payload bytes.
const CLEAN_METHODS: &[&str] = &["len", "is_empty", "capacity", "count"];

/// Runs the workspace taint pass, reporting into `out`.
pub fn check(ctxs: &[FileContext], out: &mut LintSink) {
    let world = World::build(ctxs);
    world.run(out);
}

/// Files never analysed: tests construct raw sentinel ids on purpose.
fn exempt_file(path: &str) -> bool {
    path.starts_with("tests/")
        || path.contains("/tests/")
        || path.starts_with("benches/")
        || path.starts_with("crates/bench/")
}

// -- taint values -----------------------------------------------------------

struct ChainNode {
    step: String,
    prev: Option<Rc<ChainNode>>,
}

fn chain_push(prev: &Option<Rc<ChainNode>>, step: String) -> Option<Rc<ChainNode>> {
    Some(Rc::new(ChainNode {
        step,
        prev: prev.clone(),
    }))
}

fn chain_from_steps(steps: &[String]) -> Option<Rc<ChainNode>> {
    let mut cur = None;
    for s in steps {
        cur = chain_push(&cur, s.clone());
    }
    cur
}

fn chain_steps(chain: &Option<Rc<ChainNode>>) -> Vec<String> {
    let mut steps = Vec::new();
    let mut cur = chain.clone();
    while let Some(node) = cur {
        steps.push(node.step.clone());
        cur = node.prev.clone();
    }
    steps.reverse();
    if steps.len() > MAX_STEPS {
        let cut = steps.len() - MAX_STEPS;
        steps.drain(1..1 + cut);
    }
    steps
}

#[derive(Clone, Default)]
struct Taint {
    /// Bitmask of entry parameters this value depends on.
    params: u64,
    /// Concrete raw provenance, when taint originated inside the fn.
    chain: Option<Rc<ChainNode>>,
}

impl Taint {
    fn clean() -> Taint {
        Taint::default()
    }

    fn is_tainted(&self) -> bool {
        self.params != 0 || self.chain.is_some()
    }

    fn union(&mut self, other: &Taint) {
        self.params |= other.params;
        if self.chain.is_none() {
            self.chain = other.chain.clone();
        }
    }
}

// -- summaries --------------------------------------------------------------

#[derive(Clone, Debug, Default, PartialEq)]
struct Summary {
    /// Return value depends on these parameters.
    ret_params: u64,
    /// Return value is always raw (path steps to the source).
    ret_steps: Option<Vec<String>>,
    /// `&mut` param index → always tainted inside (steps).
    mut_always: Vec<(usize, Vec<String>)>,
    /// `&mut` param index → tainted when these params are.
    mut_from: Vec<(usize, u64)>,
    /// Param index reaches sink `tag` via steps.
    sink_params: Vec<(usize, String, Vec<String>)>,
}

impl Summary {
    /// Monotone merge; returns whether anything changed.
    fn absorb(&mut self, new: Summary) -> bool {
        let mut changed = false;
        if self.ret_params | new.ret_params != self.ret_params {
            self.ret_params |= new.ret_params;
            changed = true;
        }
        if self.ret_steps.is_none() && new.ret_steps.is_some() {
            self.ret_steps = new.ret_steps;
            changed = true;
        }
        for (idx, steps) in new.mut_always {
            if !self.mut_always.iter().any(|(i, _)| *i == idx) {
                self.mut_always.push((idx, steps));
                changed = true;
            }
        }
        for (idx, mask) in new.mut_from {
            match self.mut_from.iter_mut().find(|(i, _)| *i == idx) {
                Some((_, m)) => {
                    if *m | mask != *m {
                        *m |= mask;
                        changed = true;
                    }
                }
                None => {
                    self.mut_from.push((idx, mask));
                    changed = true;
                }
            }
        }
        for (idx, tag, steps) in new.sink_params {
            if !self
                .sink_params
                .iter()
                .any(|(i, t, _)| *i == idx && *t == tag)
            {
                self.sink_params.push((idx, tag, steps));
                changed = true;
            }
        }
        changed
    }
}

// -- the world --------------------------------------------------------------

/// One analysable fn: which file and which fn within it.
#[derive(Clone, Copy)]
struct Unit {
    file: usize,
    f: usize,
}

struct World<'a> {
    ctxs: &'a [FileContext],
    parsed: Vec<ParsedFile>,
    units: Vec<Unit>,
    /// Per-unit annotation, if any (first annotation wins).
    anns: Vec<Option<(AnnKind, String)>>,
    /// Units to skip entirely (tests, exempt files, annotated fns).
    skip: Vec<bool>,
    by_free: HashMap<String, Vec<usize>>,
    by_qual: HashMap<String, Vec<usize>>,
    by_method: HashMap<String, Vec<usize>>,
    /// Type/alias/impl names defined anywhere in the workspace.
    known_types: HashSet<String>,
    /// Struct name -> (file, index into that file's `types`).
    types_by_name: HashMap<String, (usize, usize)>,
    /// `type Alias = Target;` resolution, one step per entry.
    aliases: HashMap<String, String>,
    tainted_types: HashSet<String>,
    tainted_fields: HashSet<String>,
    summaries: std::cell::RefCell<Vec<Summary>>,
}

impl<'a> World<'a> {
    fn build(ctxs: &'a [FileContext]) -> World<'a> {
        let parsed: Vec<ParsedFile> = ctxs.iter().map(|c| parse_file(&c.tokens)).collect();
        let mut units = Vec::new();
        let mut anns: Vec<Option<(AnnKind, String)>> = Vec::new();
        let mut tainted_types = HashSet::new();
        let mut tainted_fields = HashSet::new();
        let mut by_free: HashMap<String, Vec<usize>> = HashMap::new();
        let mut by_qual: HashMap<String, Vec<usize>> = HashMap::new();
        let mut by_method: HashMap<String, Vec<usize>> = HashMap::new();
        let mut known_types: HashSet<String> = HashSet::new();
        let mut types_by_name: HashMap<String, (usize, usize)> = HashMap::new();
        let mut aliases: HashMap<String, String> = HashMap::new();
        for (fi, pf) in parsed.iter().enumerate() {
            for (ti, td) in pf.types.iter().enumerate() {
                known_types.insert(td.name.clone());
                types_by_name.entry(td.name.clone()).or_insert((fi, ti));
            }
            for f in &pf.fns {
                if let Some(q) = &f.qual {
                    known_types.insert(q.clone());
                }
            }
            for (alias, target) in &pf.aliases {
                known_types.insert(alias.clone());
                if let Some(first) = first_ident(target) {
                    aliases.entry(alias.clone()).or_insert(first);
                }
            }
        }

        for (fi, (ctx, pf)) in ctxs.iter().zip(&parsed).enumerate() {
            // Attachment candidates: (line, what).
            enum Target {
                Fn(usize),
                Type(usize),
                Field(usize, usize),
            }
            let mut cands: Vec<(usize, Target)> = Vec::new();
            for (i, f) in pf.fns.iter().enumerate() {
                cands.push((f.lead_line, Target::Fn(i)));
            }
            for (i, t) in pf.types.iter().enumerate() {
                cands.push((t.lead_line, Target::Type(i)));
                for (j, fld) in t.fields.iter().enumerate() {
                    cands.push((fld.line, Target::Field(i, j)));
                }
            }
            cands.sort_by_key(|(l, _)| *l);
            let mut fn_anns: HashMap<usize, (AnnKind, String)> = HashMap::new();
            for ann in &ctx.annotations {
                let target = cands
                    .iter()
                    .find(|(l, _)| *l >= ann.line && *l <= ann.applies_line + 4);
                match target {
                    Some((_, Target::Fn(i))) => {
                        fn_anns.entry(*i).or_insert((ann.kind, ann.tag.clone()));
                    }
                    Some((_, Target::Type(i))) if ann.kind == AnnKind::Source => {
                        tainted_types.insert(pf.types[*i].name.clone());
                    }
                    Some((_, Target::Field(i, j))) if ann.kind == AnnKind::Source => {
                        tainted_fields.insert(pf.types[*i].fields[*j].name.clone());
                    }
                    _ => {}
                }
            }
            for (i, f) in pf.fns.iter().enumerate() {
                let u = units.len();
                units.push(Unit { file: fi, f: i });
                anns.push(fn_anns.remove(&i));
                if f.qual.is_none() {
                    by_free.entry(f.name.clone()).or_default().push(u);
                }
                if let Some(q) = &f.qual {
                    by_qual
                        .entry(format!("{}::{}", q, f.name))
                        .or_default()
                        .push(u);
                }
                if f.params.first().is_some_and(|p| p.name == "self") {
                    by_method.entry(f.name.clone()).or_default().push(u);
                }
            }
        }
        let skip = units
            .iter()
            .zip(&anns)
            .map(|(u, ann)| {
                let ctx = &ctxs[u.file];
                let f = &parsed[u.file].fns[u.f];
                ann.is_some()
                    || exempt_file(&ctx.rel_path)
                    || ctx.in_test_code(f.line)
                    || f.body.is_none()
            })
            .collect();
        let n = units.len();
        World {
            ctxs,
            parsed,
            units,
            anns,
            skip,
            by_free,
            by_qual,
            by_method,
            known_types,
            types_by_name,
            aliases,
            tainted_types,
            tainted_fields,
            summaries: std::cell::RefCell::new(vec![Summary::default(); n]),
        }
    }

    fn fn_def(&self, u: usize) -> &FnDef {
        let unit = self.units[u];
        &self.parsed[unit.file].fns[unit.f]
    }

    fn ctx_of(&self, u: usize) -> &FileContext {
        &self.ctxs[self.units[u].file]
    }

    fn is_type_tainted(&self, ty: &str) -> bool {
        ty.split(|c: char| !c.is_alphanumeric() && c != '_')
            .any(|seg| self.tainted_types.contains(seg))
    }

    /// Follows `type Alias = Target` links (bounded, cycles break).
    fn canonical_type(&self, name: &str) -> String {
        let mut cur = name;
        for _ in 0..4 {
            match self.aliases.get(cur) {
                Some(next) if next != cur => cur = next,
                _ => break,
            }
        }
        cur.to_string()
    }

    /// Looks up `Type::name` under the type and its alias target.
    fn qual_lookup(&self, ty: &str, name: &str) -> Vec<usize> {
        if let Some(v) = self.by_qual.get(&format!("{ty}::{name}")) {
            return v.clone();
        }
        let canon = self.canonical_type(ty);
        if canon != ty {
            if let Some(v) = self.by_qual.get(&format!("{canon}::{name}")) {
                return v.clone();
            }
        }
        Vec::new()
    }

    /// Resolves a free/path call to candidate units. Qualified calls
    /// (`Type::f`, `Self::f`) resolve only through the named type — a
    /// miss means a std/extern type, never a bare-name fallback. Module
    /// paths and bare calls resolve over free fns by name.
    fn resolve_call(&self, segs: &[String], current_qual: Option<&str>) -> Vec<usize> {
        let Some(name) = segs.last() else {
            return Vec::new();
        };
        if segs.len() >= 2 {
            let pen = &segs[segs.len() - 2];
            if pen == "Self" {
                return match current_qual {
                    Some(q) => self.qual_lookup(q, name),
                    None => Vec::new(),
                };
            }
            if starts_uppercase(pen) {
                return self.qual_lookup(pen, name);
            }
            return self.by_free.get(name.as_str()).cloned().unwrap_or_default();
        }
        if starts_uppercase(name) {
            // Tuple-struct construction (`FileId(..)`) or a std type.
            return Vec::new();
        }
        self.by_free.get(name.as_str()).cloned().unwrap_or_default()
    }

    /// Resolves a method call. With a known receiver type, only that
    /// type's impls match (a miss is a std/extern method). Otherwise
    /// candidates are limited to same-file methods of that name.
    fn resolve_method(&self, name: &str, recv_ty: Option<&str>, file: usize) -> Vec<usize> {
        if let Some(ty) = recv_ty {
            return self.qual_lookup(ty, name);
        }
        self.by_method
            .get(name)
            .map(|v| {
                v.iter()
                    .copied()
                    .filter(|&u| self.units[u].file == file)
                    .collect()
            })
            .unwrap_or_default()
    }

    fn run(&self, out: &mut LintSink) {
        // Inter-procedural fixpoint over summaries.
        for _round in 0..12 {
            let mut changed = false;
            for u in 0..self.units.len() {
                if self.skip[u] {
                    continue;
                }
                let new = self.analyze(u, None, &mut HashSet::new());
                let mut sums = self.summaries.borrow_mut();
                if sums[u].absorb(new) {
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        // Final reporting pass.
        let mut dedup = HashSet::new();
        for u in 0..self.units.len() {
            if self.skip[u] {
                continue;
            }
            let _ = self.analyze(u, Some(out), &mut dedup);
        }
    }

    /// Analyzes one fn; returns its freshly computed summary. When
    /// `out` is given, sink reaches with concrete provenance become
    /// diagnostics.
    fn analyze(
        &self,
        u: usize,
        out: Option<&mut LintSink>,
        dedup: &mut HashSet<(String, usize, usize, String)>,
    ) -> Summary {
        let def = self.fn_def(u);
        let ctx = self.ctx_of(u);
        let mut env: HashMap<String, Taint> = HashMap::new();
        let mut tyenv: HashMap<String, String> = HashMap::new();
        if let Some(q) = &def.qual {
            tyenv.insert("self".into(), q.clone());
        }
        let mut param_index: HashMap<String, usize> = HashMap::new();
        for (i, p) in def.params.iter().enumerate() {
            let mut t = Taint {
                params: bit(i),
                chain: None,
            };
            let typed_raw = if p.name == "self" {
                def.qual.as_deref().is_some_and(|q| self.is_type_tainted(q))
            } else {
                self.is_type_tainted(&p.ty)
            };
            if typed_raw {
                t.chain = chain_push(
                    &None,
                    format!(
                        "raw-typed param `{}` of `{}` ({}:{})",
                        p.name, def.name, ctx.rel_path, def.line
                    ),
                );
            }
            env.insert(p.name.clone(), t);
            param_index.insert(p.name.clone(), i);
            if p.name != "self" {
                if let Some(w) = first_ident(&p.ty) {
                    if self.known_types.contains(&w) {
                        tyenv.insert(p.name.clone(), w);
                    }
                }
            }
        }
        let mut a = Analyzer {
            w: self,
            ctx,
            fname: &def.name,
            qual: def.qual.as_deref(),
            file: self.units[u].file,
            env,
            tyenv,
            ret: Taint::clean(),
            summary: Summary::default(),
            out,
            dedup,
        };
        if let Some(body) = &def.body {
            let tail = a.eval_block(body);
            if def.has_ret {
                a.ret.union(&tail);
            }
        }
        let mut summary = a.summary;
        summary.ret_params |= a.ret.params;
        if summary.ret_steps.is_none() && a.ret.chain.is_some() {
            summary.ret_steps = Some(chain_steps(&a.ret.chain));
        }
        // `&mut` parameter escape.
        for (i, p) in def.params.iter().enumerate() {
            if !p.by_mut_ref {
                continue;
            }
            if let Some(t) = a.env.get(&p.name) {
                let from = t.params & !bit(i);
                if from != 0 {
                    summary.mut_from.push((i, from));
                }
                if let Some(chain) = &t.chain {
                    summary
                        .mut_always
                        .push((i, chain_steps(&Some(chain.clone()))));
                }
            }
        }
        summary
    }
}

fn starts_uppercase(s: &str) -> bool {
    s.chars().next().is_some_and(|c| c.is_ascii_uppercase())
}

/// First identifier word of a type text, skipping reference/qualifier
/// noise — `&mut DatasetWriter<W>` -> `DatasetWriter`.
fn first_ident(ty: &str) -> Option<String> {
    ty.split(|c: char| !c.is_alphanumeric() && c != '_')
        .find(|w| {
            !w.is_empty()
                && !matches!(*w, "mut" | "dyn" | "impl" | "const" | "static" | "ref")
                && w.chars().next().is_some_and(|c| !c.is_ascii_digit())
        })
        .map(str::to_string)
}

fn bit(i: usize) -> u64 {
    if i < 64 {
        1u64 << i
    } else {
        0
    }
}

// -- intra-procedural evaluation --------------------------------------------

struct Analyzer<'w, 'o> {
    w: &'w World<'w>,
    ctx: &'w FileContext,
    fname: &'w str,
    /// Enclosing impl type of the analyzed fn, if any.
    qual: Option<&'w str>,
    /// Index of the file the analyzed fn lives in.
    file: usize,
    env: HashMap<String, Taint>,
    /// Known local types: binding name -> workspace type name.
    tyenv: HashMap<String, String>,
    ret: Taint,
    summary: Summary,
    out: Option<&'o mut LintSink>,
    dedup: &'o mut HashSet<(String, usize, usize, String)>,
}

impl<'w, 'o> Analyzer<'w, 'o> {
    fn eval_block(&mut self, block: &Block) -> Taint {
        for stmt in &block.stmts {
            match stmt {
                Stmt::Let { names, init } => {
                    let t = init.as_ref().map(|e| self.eval(e)).unwrap_or_default();
                    let ty = init.as_ref().and_then(|e| self.infer_type(e));
                    for n in names {
                        self.env.insert(n.clone(), t.clone());
                        match (&ty, names.len()) {
                            (Some(ty), 1) => {
                                self.tyenv.insert(n.clone(), ty.clone());
                            }
                            _ => {
                                self.tyenv.remove(n);
                            }
                        }
                    }
                }
                Stmt::Assign {
                    target,
                    value,
                    compound,
                } => {
                    let t = self.eval(value);
                    match place_of(target) {
                        Some(name) if matches!(target, Expr::Path { .. }) && !compound => {
                            // Strong update for plain `x = …`.
                            match self.infer_type(value) {
                                Some(ty) => {
                                    self.tyenv.insert(name.to_string(), ty);
                                }
                                None => {
                                    self.tyenv.remove(name);
                                }
                            }
                            self.env.insert(name.to_string(), t);
                        }
                        Some(name) => {
                            // Field/index/compound assignment: union.
                            self.taint_place(name, &t);
                        }
                        None => {
                            let _ = self.eval(target);
                        }
                    }
                }
                Stmt::Expr(e) => {
                    let _ = self.eval(e);
                }
                Stmt::Return(e) => {
                    let t = e.as_ref().map(|e| self.eval(e)).unwrap_or_default();
                    self.ret.union(&t);
                }
            }
        }
        block
            .tail
            .as_ref()
            .map(|e| self.eval(e))
            .unwrap_or_default()
    }

    fn taint_place(&mut self, name: &str, t: &Taint) {
        if t.is_tainted() {
            self.env.entry(name.to_string()).or_default().union(t);
        }
    }

    fn eval(&mut self, e: &Expr) -> Taint {
        match e {
            Expr::Lit => Taint::clean(),
            Expr::Path { segs, .. } => {
                if segs.len() == 1 {
                    self.env.get(&segs[0]).cloned().unwrap_or_default()
                } else {
                    Taint::clean()
                }
            }
            Expr::Field {
                base, name, line, ..
            } => {
                let mut t = self.eval(base);
                if self.w.tainted_fields.contains(name) {
                    t.union(&Taint {
                        params: 0,
                        chain: chain_push(
                            &None,
                            format!(
                                "read of raw field `.{}` ({}:{})",
                                name, self.ctx.rel_path, line
                            ),
                        ),
                    });
                }
                t
            }
            Expr::Ref { inner, .. } => self.eval(inner),
            Expr::Group(items) => {
                let mut t = Taint::clean();
                for i in items {
                    let it = self.eval(i);
                    t.union(&it);
                }
                t
            }
            Expr::Block(b) => self.eval_block(b),
            Expr::Struct {
                name, fields, rest, ..
            } => {
                let mut t = Taint::clean();
                for (fname, fe) in fields {
                    let ft = self.eval(fe);
                    // Annotated fields re-establish taint at read time;
                    // storing into them does not taint the carrier.
                    if !self.w.tainted_fields.contains(fname) {
                        t.union(&ft);
                    }
                }
                if let Some(r) = rest {
                    let rt = self.eval(r);
                    t.union(&rt);
                }
                if self.w.tainted_types.contains(name) {
                    t.union(&Taint {
                        params: 0,
                        chain: chain_push(&None, format!("construction of raw type `{}`", name)),
                    });
                }
                t
            }
            Expr::If {
                cond,
                bindings,
                then_blk,
                else_expr,
            } => {
                let ct = self.eval(cond);
                let saved = self.env.clone();
                for b in bindings {
                    self.env.insert(b.clone(), ct.clone());
                }
                let mut value = self.eval_block(then_blk);
                let then_env = std::mem::replace(&mut self.env, saved);
                if let Some(el) = else_expr {
                    let et = self.eval(el);
                    value.union(&et);
                }
                merge_env(&mut self.env, then_env);
                value
            }
            Expr::Match { scrutinee, arms } => {
                let st = self.eval(scrutinee);
                let entry = self.env.clone();
                let mut value = Taint::clean();
                let mut merged = self.env.clone();
                for (names, body) in arms {
                    self.env = entry.clone();
                    for n in names {
                        self.env.insert(n.clone(), st.clone());
                    }
                    let bt = self.eval(body);
                    value.union(&bt);
                    let arm_env = std::mem::take(&mut self.env);
                    merge_env(&mut merged, arm_env);
                }
                self.env = merged;
                value
            }
            Expr::Loop {
                source,
                bindings,
                body,
            } => {
                let st = source.as_ref().map(|s| self.eval(s)).unwrap_or_default();
                // Two passes pick up loop-carried taint.
                for _ in 0..2 {
                    for b in bindings {
                        self.env.insert(b.clone(), st.clone());
                    }
                    let _ = self.eval_block(body);
                }
                Taint::clean()
            }
            Expr::Closure { params, body } => {
                // Captures evaluate in the defining scope; params shadow.
                let shadowed: Vec<(String, Option<Taint>)> = params
                    .iter()
                    .map(|p| (p.clone(), self.env.insert(p.clone(), Taint::clean())))
                    .collect();
                let t = self.eval(body);
                for (p, old) in shadowed {
                    match old {
                        Some(v) => {
                            self.env.insert(p, v);
                        }
                        None => {
                            self.env.remove(&p);
                        }
                    }
                }
                t
            }
            Expr::Macro {
                name,
                args,
                line,
                col,
            } => {
                let taints: Vec<Taint> = args.iter().map(|a| self.eval(a)).collect();
                let mut t = Taint::clean();
                for a in &taints {
                    t.union(a);
                }
                let _ = (line, col);
                if (name == "write" || name == "writeln") && t.is_tainted() {
                    if let Some(dst) = args.first().and_then(place_of) {
                        let dst = dst.to_string();
                        self.taint_place(&dst, &t);
                    }
                }
                t
            }
            Expr::Call {
                segs,
                args,
                line,
                col,
            } => {
                let arg_taints: Vec<Taint> = args.iter().map(|a| self.eval(a)).collect();
                let cands = self.w.resolve_call(segs, self.qual);
                let callee = segs.join("::");
                let arg_refs: Vec<&Expr> = args.iter().collect();
                let mut t =
                    self.apply_call(&callee, &cands, &arg_refs, &arg_taints, false, *line, *col);
                // `FileId(..)`-style tuple-struct construction of a raw
                // type births a raw identifier.
                if cands.is_empty() && segs.len() == 1 && self.w.tainted_types.contains(&segs[0]) {
                    t.union(&Taint {
                        params: 0,
                        chain: chain_push(
                            &None,
                            format!(
                                "construction of raw type `{}` ({}:{})",
                                segs[0], self.ctx.rel_path, line
                            ),
                        ),
                    });
                }
                t
            }
            Expr::MethodCall {
                recv,
                name,
                args,
                line,
                col,
            } => {
                let recv_t = self.eval(recv);
                let arg_taints: Vec<Taint> = args.iter().map(|a| self.eval(a)).collect();
                if CLEAN_METHODS.contains(&name.as_str()) {
                    return Taint::clean();
                }
                let recv_ty = self.infer_type(recv);
                let cands = self.w.resolve_method(name, recv_ty.as_deref(), self.file);
                let mut slots: Vec<&Expr> = vec![recv];
                slots.extend(args.iter());
                let mut taints = vec![recv_t];
                taints.extend(arg_taints);
                self.apply_call(name, &cands, &slots, &taints, true, *line, *col)
            }
        }
    }

    /// Best-effort local type of an expression: enough to route method
    /// calls to the right impl. `None` means "unknown" (std types,
    /// generics), which resolves conservatively.
    fn infer_type(&self, e: &Expr) -> Option<String> {
        match e {
            Expr::Path { segs, .. } if segs.len() == 1 => self.tyenv.get(&segs[0]).cloned(),
            Expr::Ref { inner, .. } => self.infer_type(inner),
            Expr::Struct { name, .. } => Some(name.clone()),
            Expr::Call { segs, .. } => {
                if segs.len() >= 2 {
                    let pen = &segs[segs.len() - 2];
                    if pen == "Self" {
                        return self.qual.map(str::to_string);
                    }
                    if starts_uppercase(pen) && self.w.known_types.contains(pen) {
                        return Some(pen.clone());
                    }
                    None
                } else {
                    match segs.first() {
                        Some(s) if starts_uppercase(s) && self.w.known_types.contains(s) => {
                            Some(s.clone())
                        }
                        _ => None,
                    }
                }
            }
            Expr::MethodCall { recv, name, .. } if name == "clone" => self.infer_type(recv),
            Expr::Field { base, name, .. } => {
                let base_ty = self.infer_type(base)?;
                let canon = self.w.canonical_type(&base_ty);
                let (fi, ti) = *self.w.types_by_name.get(&canon)?;
                let fld = self.w.parsed[fi].types[ti]
                    .fields
                    .iter()
                    .find(|f| f.name == *name)?;
                let w = first_ident(&fld.ty)?;
                self.w.known_types.contains(&w).then_some(w)
            }
            Expr::Group(items) if items.len() == 1 => self.infer_type(&items[0]),
            _ => None,
        }
    }

    /// Shared call handling: `slots`/`taints` are positional (receiver
    /// first for method calls, matching parameter order with `self`).
    #[allow(clippy::too_many_arguments)]
    fn apply_call(
        &mut self,
        callee: &str,
        cands: &[usize],
        slots: &[&Expr],
        taints: &[Taint],
        is_method: bool,
        line: usize,
        col: usize,
    ) -> Taint {
        let anns: Vec<(AnnKind, String)> = cands
            .iter()
            .filter_map(|&u| self.w.anns[u].clone())
            .collect();
        // A sanitizer is a trusted boundary: its result is clean and it
        // never propagates taint onward.
        if anns.iter().any(|(k, _)| *k == AnnKind::Sanitize) {
            return Taint::clean();
        }
        if let Some((_, tag)) = anns.iter().find(|(k, _)| *k == AnnKind::Sink) {
            for (i, t) in taints.iter().enumerate() {
                if !t.is_tainted() {
                    continue;
                }
                let step = format!(
                    "argument {} of sink `{}` [{}] ({}:{})",
                    i, callee, tag, self.ctx.rel_path, line
                );
                if t.chain.is_some() {
                    let mut steps = chain_steps(&t.chain);
                    steps.push(step.clone());
                    self.report(line, col, tag, &steps);
                }
                for p in mask_bits(t.params) {
                    self.push_sink(p, tag, vec![step.clone()]);
                }
            }
            return Taint::clean();
        }
        if let Some((_, tag)) = anns.iter().find(|(k, _)| *k == AnnKind::Source) {
            return Taint {
                params: 0,
                chain: chain_push(
                    &None,
                    format!(
                        "call to source `{}` [{}] ({}:{})",
                        callee, tag, self.ctx.rel_path, line
                    ),
                ),
            };
        }
        if !cands.is_empty() {
            let mut result = Taint::clean();
            // Clone the summaries we need up front so the RefCell
            // borrow does not overlap recursive evaluation.
            let sums: Vec<Summary> = {
                let all = self.w.summaries.borrow();
                cands.iter().map(|&u| all[u].clone()).collect()
            };
            for s in &sums {
                for p in mask_bits(s.ret_params) {
                    if let Some(t) = taints.get(p) {
                        result.union(t);
                    }
                }
                if let Some(steps) = &s.ret_steps {
                    let mut steps = steps.clone();
                    steps.push(format!(
                        "returned by `{}` ({}:{})",
                        callee, self.ctx.rel_path, line
                    ));
                    result.union(&Taint {
                        params: 0,
                        chain: chain_from_steps(&steps),
                    });
                }
                for (idx, mask) in &s.mut_from {
                    let mut t = Taint::clean();
                    for p in mask_bits(*mask) {
                        if let Some(at) = taints.get(p) {
                            t.union(at);
                        }
                    }
                    if t.is_tainted() {
                        if let Some(place) = slots.get(*idx).and_then(|e| place_of(e)) {
                            let place = place.to_string();
                            self.taint_place(&place, &t);
                        }
                    }
                }
                for (idx, steps) in &s.mut_always {
                    if let Some(place) = slots.get(*idx).and_then(|e| place_of(e)) {
                        let mut steps = steps.clone();
                        steps.push(format!(
                            "written by `{}` into `{}` ({}:{})",
                            callee, place, self.ctx.rel_path, line
                        ));
                        let place = place.to_string();
                        let t = Taint {
                            params: 0,
                            chain: chain_from_steps(&steps),
                        };
                        self.taint_place(&place, &t);
                    }
                }
                for (p, tag, steps) in &s.sink_params {
                    let Some(t) = taints.get(*p) else { continue };
                    if !t.is_tainted() {
                        continue;
                    }
                    let via = format!("via `{}` ({}:{})", callee, self.ctx.rel_path, line);
                    if t.chain.is_some() {
                        let mut full = chain_steps(&t.chain);
                        full.push(via.clone());
                        full.extend(steps.iter().cloned());
                        self.report(line, col, tag, &full);
                    }
                    for q in mask_bits(t.params) {
                        let mut full = vec![via.clone()];
                        full.extend(steps.iter().cloned());
                        self.push_sink(q, tag, full);
                    }
                }
            }
            return result;
        }
        // Unresolved (std / vendored): conservative propagation.
        let mut t = Taint::clean();
        for at in taints {
            t.union(at);
        }
        if t.is_tainted() {
            // Taint the receiver (method calls only) and `&mut` args.
            for (i, slot) in slots.iter().enumerate() {
                let is_recv = is_method && i == 0;
                let is_mut_ref = matches!(slot, Expr::Ref { mutable: true, .. });
                if (is_recv || is_mut_ref) && slots.len() > 1 {
                    if let Some(place) = place_of(slot) {
                        let place = place.to_string();
                        self.taint_place(&place, &t);
                    }
                }
            }
        }
        t
    }

    fn push_sink(&mut self, param: usize, tag: &str, steps: Vec<String>) {
        if !self
            .summary
            .sink_params
            .iter()
            .any(|(p, t, _)| *p == param && t == tag)
        {
            self.summary
                .sink_params
                .push((param, tag.to_string(), steps));
        }
    }

    fn report(&mut self, line: usize, col: usize, tag: &str, steps: &[String]) {
        let Some(out) = self.out.as_deref_mut() else {
            return;
        };
        let message = format!(
            "raw identifier may reach `{}` sink (in `{}`): {}",
            tag,
            self.fname,
            steps.join(" -> ")
        );
        let key = (self.ctx.rel_path.clone(), line, col, message.clone());
        if !self.dedup.insert(key) {
            return;
        }
        let token = Token {
            kind: TokenKind::Ident,
            text: String::new(),
            line,
            col,
        };
        self.ctx.report(out, RULE, &token, message);
    }
}

fn merge_env(into: &mut HashMap<String, Taint>, from: HashMap<String, Taint>) {
    for (k, v) in from {
        into.entry(k).or_default().union(&v);
    }
}

fn mask_bits(mask: u64) -> impl Iterator<Item = usize> {
    (0..64).filter(move |i| mask & (1 << i) != 0)
}

/// The local variable a place expression roots in, if any.
fn place_of(e: &Expr) -> Option<&str> {
    match e {
        Expr::Path { segs, .. } if segs.len() == 1 && segs[0] != "self" => Some(&segs[0]),
        Expr::Path { segs, .. } if segs.len() == 1 => Some("self"),
        Expr::Ref { inner, .. } => place_of(inner),
        Expr::Field { base, .. } => place_of(base),
        Expr::Group(items) => items.first().and_then(place_of),
        _ => None,
    }
}

/// Sorted list of (sink tag) families the workspace declares — used by
/// `--list` style output and tests.
pub fn declared_sink_tags(ctxs: &[FileContext]) -> BTreeSet<String> {
    let mut tags = BTreeSet::new();
    for ctx in ctxs {
        for ann in &ctx.annotations {
            if ann.kind == AnnKind::Sink {
                tags.insert(ann.tag.clone());
            }
        }
    }
    tags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SourceFile;
    use crate::lint_files;

    fn file(rel: &str, text: &str) -> SourceFile {
        SourceFile {
            rel_path: rel.into(),
            text: text.into(),
        }
    }

    fn taint_diags(src: &str) -> Vec<String> {
        let report = lint_files(&[file("x.rs", src)]);
        report
            .diagnostics
            .iter()
            .filter(|d| d.rule == RULE)
            .map(|d| d.message.clone())
            .collect()
    }

    const PRELUDE: &str = "\
// etwlint: source(raw-id): fixture raw producer
fn raw_id() -> u32 { 42 }
// etwlint: sanitize(raw-id): fixture scheme
fn anonymize(_x: u32) -> u64 { 0 }
// etwlint: sink(xml): fixture emitter
fn emit(_b: u32) {}
";

    #[test]
    fn direct_leak_is_reported_with_path() {
        let diags = taint_diags(&format!(
            "{PRELUDE}fn leak() {{\n    let x = raw_id();\n    emit(x);\n}}\n"
        ));
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].contains("source `raw_id`"), "{}", diags[0]);
        assert!(diags[0].contains("sink `emit`"), "{}", diags[0]);
    }

    #[test]
    fn sanitized_flow_is_clean() {
        let diags = taint_diags(&format!(
            "{PRELUDE}fn ok() {{\n    let x = raw_id();\n    let a = anonymize(x);\n    emit(a as u32);\n}}\n"
        ));
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn interprocedural_leak_through_helper() {
        let diags = taint_diags(&format!(
            "{PRELUDE}fn helper(v: u32) {{\n    emit(v);\n}}\nfn leak() {{\n    helper(raw_id());\n}}\n"
        ));
        assert!(
            diags.iter().any(|d| d.contains("via `helper`")),
            "{diags:?}"
        );
    }

    #[test]
    fn mut_ref_propagation_and_field_sources() {
        let src = format!(
            "{PRELUDE}\
struct D {{\n    // etwlint: source(raw-id): fixture raw field\n    peer: u32,\n    ts: u64,\n}}\n\
fn collect(d: &D, out: &mut Vec<u32>) {{\n    out.push(d.peer);\n}}\n\
fn leak(d: &D) {{\n    let mut buf = Vec::new();\n    collect(d, &mut buf);\n    for v in buf {{ emit(v); }}\n}}\n\
fn clean(d: &D) {{\n    emit(d.ts as u32);\n}}\n"
        );
        let diags = taint_diags(&src);
        assert!(
            diags.iter().any(|d| d.contains("raw field `.peer`")),
            "{diags:?}"
        );
        assert!(
            !diags.iter().any(|d| d.contains("clean")),
            "ts must stay clean: {diags:?}"
        );
    }

    #[test]
    fn allow_suppresses() {
        let src = format!(
            "{PRELUDE}fn leak() {{\n    let x = raw_id();\n    // etwlint: allow(taint): fixture-reviewed exception\n    emit(x);\n}}\n"
        );
        let report = lint_files(&[file("x.rs", &src)]);
        assert!(report.diagnostics.iter().all(|d| d.rule != RULE));
        assert!(report.suppressed.iter().any(|d| d.rule == RULE));
    }

    #[test]
    fn typed_params_are_raw() {
        let src = "\
// etwlint: source(raw-id): fixture raw type
struct ClientId(u32);
// etwlint: sink(checkpoint): fixture emitter
fn write_bytes(_b: u32) {}
fn leak(id: ClientId) { write_bytes(id.0); }
";
        let diags = taint_diags(src);
        assert!(
            diags.iter().any(|d| d.contains("raw-typed param `id`")),
            "{diags:?}"
        );
    }

    #[test]
    fn test_code_is_exempt() {
        let src = format!(
            "{PRELUDE}#[cfg(test)]\nmod tests {{\n    fn t() {{\n        super::emit(super::raw_id());\n    }}\n}}\n"
        );
        assert!(taint_diags(&src).is_empty());
    }
}
