//! The rule catalogue. Each rule is token-driven (no string matching on
//! raw source, so occurrences inside string literals or comments never
//! fire) and either per-file (`check_file`) or workspace-wide
//! (`check_workspace`).

use crate::engine::{FileContext, LintSink};
use crate::tokenizer::{int_value, Token, TokenKind};
use std::collections::BTreeMap;

/// A lint rule. Implement whichever granularity fits; defaults no-op.
pub trait Rule {
    /// Stable kebab-case identifier used in diagnostics and `allow(...)`.
    fn name(&self) -> &'static str;
    /// One-line description for `--list`.
    fn description(&self) -> &'static str;
    /// Per-file pass.
    fn check_file(&self, _ctx: &FileContext, _out: &mut LintSink) {}
    /// Whole-workspace pass, run once over every file's context.
    fn check_workspace(&self, _ctxs: &[FileContext], _out: &mut LintSink) {}
}

/// The full rule set, in diagnostic-output order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(NoWallClock),
        Box::new(NoPanicHotPath),
        Box::new(NoAllocHotLoop),
        Box::new(NoUnboundedChannel),
        Box::new(AtomicsOrderingAudit),
        Box::new(OpcodeCoverage),
        Box::new(VendoredDepBoundary),
        Box::new(Taint),
    ]
}

// ---------------------------------------------------------------------------
// taint
// ---------------------------------------------------------------------------

/// Workspace-wide anonymisation-soundness dataflow: annotated raw-id
/// sources must pass through an annotated sanitizer before any annotated
/// byte-emitting sink. The heavy lifting lives in [`crate::taint`].
pub struct Taint;

impl Rule for Taint {
    fn name(&self) -> &'static str {
        crate::taint::RULE
    }
    fn description(&self) -> &'static str {
        "source→sink dataflow: raw clientIDs/fileIDs must pass an etw-anonymize sanitizer before any byte-emitting sink"
    }
    fn check_workspace(&self, ctxs: &[FileContext], out: &mut LintSink) {
        crate::taint::check(ctxs, out);
    }
}

fn is_ident(t: &Token, text: &str) -> bool {
    t.kind == TokenKind::Ident && t.text == text
}

fn is_punct(t: &Token, text: &str) -> bool {
    t.kind == TokenKind::Punct && t.text == text
}

// ---------------------------------------------------------------------------
// no-wall-clock
// ---------------------------------------------------------------------------

/// Bans `Instant::now()` and any `SystemTime` use outside the telemetry
/// and trace crates (which own the wall-clock/virtual-time boundary —
/// stage spans carry both clocks by design), benches, and tests.
/// Simulation and decode code must derive time from
/// `netsim::clock::VirtualTime` so runs stay deterministic and
/// replayable.
pub struct NoWallClock;

impl NoWallClock {
    fn exempt(path: &str) -> bool {
        path.starts_with("crates/telemetry/")
            || path.starts_with("crates/trace/")
            || path.starts_with("crates/bench/")
            || path.contains("/tests/")
            || path.starts_with("tests/")
            || path.starts_with("benches/")
    }
}

impl Rule for NoWallClock {
    fn name(&self) -> &'static str {
        "no-wall-clock"
    }
    fn description(&self) -> &'static str {
        "Instant::now()/SystemTime outside crates/telemetry and benches; use netsim::clock::VirtualTime"
    }
    fn check_file(&self, ctx: &FileContext, out: &mut LintSink) {
        if Self::exempt(&ctx.rel_path) {
            return;
        }
        let t = &ctx.tokens;
        for i in 0..t.len() {
            if ctx.in_test_code(t[i].line) {
                continue;
            }
            if is_ident(&t[i], "Instant")
                && i + 2 < t.len()
                && is_punct(&t[i + 1], ":")
                && is_punct(&t[i + 2], ":")
                && t.get(i + 3).is_some_and(|n| is_ident(n, "now"))
            {
                ctx.report(
                    out,
                    self.name(),
                    &t[i],
                    "wall-clock read (`Instant::now`) outside crates/telemetry; \
                     derive time from netsim::clock::VirtualTime"
                        .to_string(),
                );
            }
            if is_ident(&t[i], "SystemTime") {
                ctx.report(
                    out,
                    self.name(),
                    &t[i],
                    "`SystemTime` outside crates/telemetry; capture-machine code \
                     must be wall-clock free (netsim::clock::VirtualTime)"
                        .to_string(),
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// no-panic-hot-path
// ---------------------------------------------------------------------------

/// Files on the capture hot path where a panic means losing the tail of
/// a ten-week trace. `unwrap`/`expect` and panic-family macros need an
/// explicit justification (`// etwlint: allow(no-panic-hot-path): ...`)
/// or a typed-error refactor.
const HOT_PATH_FILES: &[&str] = &[
    "crates/core/src/pipeline.rs",
    "crates/core/src/campaign.rs",
    "crates/core/src/config.rs",
    "crates/edonkey/src/decoder.rs",
    "crates/faults/src/lib.rs",
    "crates/faults/src/sock.rs",
    "crates/netsim/src/capture.rs",
    "crates/server/src/net.rs",
    "crates/server/src/swarm.rs",
];

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

pub struct NoPanicHotPath;

impl Rule for NoPanicHotPath {
    fn name(&self) -> &'static str {
        "no-panic-hot-path"
    }
    fn description(&self) -> &'static str {
        "unwrap/expect/panic! in capture hot-path files (core pipeline/campaign/config, decoder, ring)"
    }
    fn check_file(&self, ctx: &FileContext, out: &mut LintSink) {
        if !HOT_PATH_FILES.contains(&ctx.rel_path.as_str()) {
            return;
        }
        let t = &ctx.tokens;
        for i in 0..t.len() {
            if ctx.in_test_code(t[i].line) {
                continue;
            }
            // `.unwrap` / `.expect` method calls (field accesses can't
            // collide: those identifiers aren't used as field names here).
            if t[i].kind == TokenKind::Ident
                && (t[i].text == "unwrap" || t[i].text == "expect")
                && i > 0
                && is_punct(&t[i - 1], ".")
                && t.get(i + 1).is_some_and(|n| is_punct(n, "("))
            {
                ctx.report(
                    out,
                    self.name(),
                    &t[i],
                    format!(
                        "`.{}()` on the capture hot path can abort a ten-week run; \
                         return a typed error or justify with an allow comment",
                        t[i].text
                    ),
                );
            }
            // panic-family macros.
            if t[i].kind == TokenKind::Ident
                && PANIC_MACROS.contains(&t[i].text.as_str())
                && t.get(i + 1).is_some_and(|n| is_punct(n, "!"))
            {
                ctx.report(
                    out,
                    self.name(),
                    &t[i],
                    format!("`{}!` on the capture hot path", t[i].text),
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// atomics-ordering-audit
// ---------------------------------------------------------------------------

/// Memory-ordering name tokens we audit. `Ordering::Relaxed` paths and
/// bare imported `Relaxed` both surface as one of these identifiers.
/// `std::cmp::Ordering` variants (Less/Equal/Greater) don't collide.
const ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Every memory-ordering argument must carry a nearby `// ordering:`
/// comment explaining why that ordering is sufficient; `SeqCst` is
/// flagged even when justified (it usually papers over an unclear
/// protocol) and needs a full `allow` to pass.
pub struct AtomicsOrderingAudit;

impl AtomicsOrderingAudit {
    /// Lines of comment lookback accepted for a justification.
    const LOOKBACK: usize = 3;
}

impl Rule for AtomicsOrderingAudit {
    fn name(&self) -> &'static str {
        "atomics-ordering-audit"
    }
    fn description(&self) -> &'static str {
        "every Ordering::* use needs an `// ordering:` justification comment; SeqCst suspicious by default"
    }
    fn check_file(&self, ctx: &FileContext, out: &mut LintSink) {
        let t = &ctx.tokens;
        for i in 0..t.len() {
            if t[i].kind != TokenKind::Ident || !ORDERINGS.contains(&t[i].text.as_str()) {
                continue;
            }
            if ctx.in_test_code(t[i].line) {
                continue;
            }
            // `use ... Ordering::{...}` import lines introduce the name,
            // they are not a use site to audit.
            if in_use_decl(t, i) {
                continue;
            }
            if t[i].text == "SeqCst" {
                ctx.report(
                    out,
                    self.name(),
                    &t[i],
                    "`SeqCst` is suspicious by default: name the acquire/release \
                     pairing you actually need, or allow with justification"
                        .to_string(),
                );
                continue;
            }
            if !ctx.has_comment_marker("ordering:", t[i].line, Self::LOOKBACK) {
                ctx.report(
                    out,
                    self.name(),
                    &t[i],
                    format!(
                        "`{}` without an `// ordering:` justification comment within \
                         {} lines",
                        t[i].text,
                        Self::LOOKBACK
                    ),
                );
            }
        }
    }
}

/// Walks back from token `i` to the start of its statement (`;`, `{`,
/// `}`) and reports whether the statement begins with `use` or `pub use`.
fn in_use_decl(t: &[Token], i: usize) -> bool {
    let mut j = i;
    while j > 0 {
        let p = &t[j - 1];
        if p.kind == TokenKind::Punct && (p.text == ";" || (p.text == "}" && !brace_in_use(t, j))) {
            break;
        }
        if is_ident(p, "use") {
            return true;
        }
        j -= 1;
    }
    false
}

/// A `}` directly before us may still be *inside* a `use a::{b, c}` group;
/// treat it as a statement boundary only when no `use` keyword precedes it
/// on the same brace nesting run. Cheap approximation: scan back up to 32
/// tokens for `use` before a `;`.
fn brace_in_use(t: &[Token], j: usize) -> bool {
    let lo = j.saturating_sub(32);
    for k in (lo..j).rev() {
        if is_ident(&t[k], "use") {
            return true;
        }
        if is_punct(&t[k], ";") {
            return false;
        }
    }
    false
}

// ---------------------------------------------------------------------------
// opcode-coverage
// ---------------------------------------------------------------------------

/// Cross-checks the protocol tables: every opcode constant declared in
/// `edonkey::messages::opcodes` must (a) be matched somewhere in the
/// decoder, (b) be used in messages.rs outside its own declaration block
/// (encode/dispatch side), and (c) stay disjoint from the corrupt
/// injector's unknown-opcode ranges, so fuzzed "unknown" opcodes can
/// never alias a real message type.
pub struct OpcodeCoverage;

const MESSAGES_RS: &str = "crates/edonkey/src/messages.rs";
const DECODER_RS: &str = "crates/edonkey/src/decoder.rs";
const CORRUPT_RS: &str = "crates/edonkey/src/corrupt.rs";

impl Rule for OpcodeCoverage {
    fn name(&self) -> &'static str {
        "opcode-coverage"
    }
    fn description(&self) -> &'static str {
        "every opcode in edonkey::messages::opcodes must be handled by the decoder and avoided by corrupt-injection ranges"
    }
    fn check_workspace(&self, ctxs: &[FileContext], out: &mut LintSink) {
        let Some(messages) = ctxs.iter().find(|c| c.rel_path == MESSAGES_RS) else {
            return; // not this workspace's layout; nothing to check
        };
        let Some((opcodes, block_span)) = parse_opcode_block(&messages.tokens) else {
            return;
        };

        let decoder = ctxs.iter().find(|c| c.rel_path == DECODER_RS);
        let corrupt_ranges = ctxs
            .iter()
            .find(|c| c.rel_path == CORRUPT_RS)
            .map(|c| hex_ranges(&c.tokens))
            .unwrap_or_default();

        for (name, value, decl_tok) in &opcodes {
            if let Some(dec) = decoder {
                let matched = dec
                    .tokens
                    .iter()
                    .any(|t| t.kind == TokenKind::Ident && t.text == *name);
                if !matched {
                    messages.report(
                        out,
                        self.name(),
                        decl_tok,
                        format!("opcode `{name}` (0x{value:02x}) is never matched in {DECODER_RS}"),
                    );
                }
            }
            let used_outside = messages.tokens.iter().any(|t| {
                t.kind == TokenKind::Ident
                    && t.text == *name
                    && !(block_span.0..=block_span.1).contains(&t.line)
            });
            if !used_outside {
                messages.report(
                    out,
                    self.name(),
                    decl_tok,
                    format!(
                        "opcode `{name}` (0x{value:02x}) is declared but never used \
                         outside the opcodes block in {MESSAGES_RS}"
                    ),
                );
            }
            for &(lo, hi) in &corrupt_ranges {
                if (lo..hi).contains(&u64::from(*value)) {
                    messages.report(
                        out,
                        self.name(),
                        decl_tok,
                        format!(
                            "opcode `{name}` (0x{value:02x}) falls inside the \
                             corrupt-injection \"unknown opcode\" range \
                             0x{lo:02x}..0x{hi:02x} in {CORRUPT_RS}; injected \
                             corruption would alias a real message"
                        ),
                    );
                }
            }
        }
    }
}

/// Parses `mod opcodes { pub const NAME: u8 = 0x..; ... }` out of the
/// messages token stream. Returns the constants plus the block's line
/// span.
#[allow(clippy::type_complexity)]
fn parse_opcode_block(t: &[Token]) -> Option<(Vec<(String, u8, Token)>, (usize, usize))> {
    let mut i = 0;
    let start = loop {
        if i + 2 >= t.len() {
            return None;
        }
        if is_ident(&t[i], "mod") && is_ident(&t[i + 1], "opcodes") && is_punct(&t[i + 2], "{") {
            break i + 2;
        }
        i += 1;
    };
    let mut depth = 0usize;
    let mut end = start;
    let mut consts = Vec::new();
    let mut k = start;
    while k < t.len() {
        if t[k].kind == TokenKind::Punct {
            if t[k].text == "{" {
                depth += 1;
            } else if t[k].text == "}" {
                depth -= 1;
                if depth == 0 {
                    end = k;
                    break;
                }
            }
        }
        // const NAME : u8 = <num>
        if is_ident(&t[k], "const")
            && k + 5 < t.len()
            && t[k + 1].kind == TokenKind::Ident
            && is_punct(&t[k + 2], ":")
            && is_ident(&t[k + 3], "u8")
            && is_punct(&t[k + 4], "=")
            && t[k + 5].kind == TokenKind::Num
        {
            if let Some(v) = int_value(&t[k + 5].text) {
                consts.push((t[k + 1].text.clone(), v as u8, t[k + 1].clone()));
            }
        }
        k += 1;
    }
    Some((consts, (t[start].line, t[end].line)))
}

/// Collects `0xNN..0xMM`-style numeric ranges (token pattern
/// `Num . . Num`, optionally `..=`) anywhere in a file. Only ranges with
/// *both* endpoints written in hex count: that is the repo convention
/// for opcode-space literals, and it keeps plain loop bounds (`0..200`)
/// from masquerading as injection ranges.
fn hex_ranges(t: &[Token]) -> Vec<(u64, u64)> {
    let is_hex = |tok: &Token| tok.text.starts_with("0x") || tok.text.starts_with("0X");
    let mut out = Vec::new();
    for i in 0..t.len() {
        if t[i].kind != TokenKind::Num || !is_hex(&t[i]) {
            continue;
        }
        let mut j = i + 1;
        if j + 1 < t.len() && is_punct(&t[j], ".") && is_punct(&t[j + 1], ".") {
            j += 2;
            let mut inclusive = false;
            if j < t.len() && is_punct(&t[j], "=") {
                inclusive = true;
                j += 1;
            }
            if j < t.len() && t[j].kind == TokenKind::Num && is_hex(&t[j]) {
                if let (Some(lo), Some(hi)) = (int_value(&t[i].text), int_value(&t[j].text)) {
                    out.push((lo, if inclusive { hi + 1 } else { hi }));
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// no-alloc-hot-loop
// ---------------------------------------------------------------------------

/// Files whose per-frame / per-record loops must stay allocation-free:
/// the decode workers and batched tail in the core pipeline, and the
/// zero-alloc XML formatter. `Vec::with_capacity` is deliberately *not*
/// flagged — it is the sanctioned pre-size idiom and the buffer pools
/// fall back to it on a pool miss.
const HOT_LOOP_FILES: &[&str] = &[
    "crates/core/src/pipeline.rs",
    "crates/core/src/source.rs",
    "crates/anonymize/src/shard.rs",
    "crates/edonkey/src/decoder.rs",
    "crates/server/src/net.rs",
    "crates/server/src/shard.rs",
    "crates/server/src/swarm.rs",
    "crates/trace/src/lib.rs",
    "crates/trace/src/ring.rs",
    "crates/workload/src/session.rs",
    "crates/xmlout/src/encode.rs",
    "crates/xmlout/src/escape.rs",
    "crates/xmlout/src/writer.rs",
];

/// `Type::new()`-style constructors that always allocate.
const ALLOC_CTORS: &[&str] = &["Vec", "String"];

/// `.method()` calls that clone into a fresh allocation.
const ALLOC_METHODS: &[&str] = &["to_string", "to_owned", "to_vec"];

/// Macros that allocate on every expansion.
const ALLOC_MACROS: &[&str] = &["format", "vec"];

/// Flags per-iteration allocations (`Vec::new`, `String::new`,
/// `format!`, `vec!`, `.to_string()`, `.to_owned()`, `.to_vec()`) inside
/// `for`/`while`/`loop` bodies in the capture hot-path files. The
/// batched tail's throughput contract is zero steady-state
/// allocations/record (`repro bench` measures it); the fix is a reused
/// buffer (`clear()` + extend) hoisted out of the loop, or an `allow`
/// naming the cold path it sits on.
pub struct NoAllocHotLoop;

impl Rule for NoAllocHotLoop {
    fn name(&self) -> &'static str {
        "no-alloc-hot-loop"
    }
    fn description(&self) -> &'static str {
        "Vec::new/format!/to_string inside per-frame loops in decode-worker and formatter files"
    }
    fn check_file(&self, ctx: &FileContext, out: &mut LintSink) {
        if !HOT_LOOP_FILES.contains(&ctx.rel_path.as_str()) {
            return;
        }
        let t = &ctx.tokens;
        let spans = loop_body_spans(t);
        if spans.is_empty() {
            return;
        }
        let in_loop = |i: usize| spans.iter().any(|&(a, b)| (a..=b).contains(&i));
        for i in 0..t.len() {
            if t[i].kind != TokenKind::Ident || !in_loop(i) || ctx.in_test_code(t[i].line) {
                continue;
            }
            // `Vec::new()` / `String::new()`.
            if ALLOC_CTORS.contains(&t[i].text.as_str())
                && i + 3 < t.len()
                && is_punct(&t[i + 1], ":")
                && is_punct(&t[i + 2], ":")
                && is_ident(&t[i + 3], "new")
            {
                ctx.report(
                    out,
                    self.name(),
                    &t[i],
                    format!(
                        "`{}::new()` inside a hot-path loop; hoist a reusable \
                         buffer out of the loop (`clear()` + extend)",
                        t[i].text
                    ),
                );
            }
            // `format!(...)` / `vec![...]`.
            if ALLOC_MACROS.contains(&t[i].text.as_str())
                && t.get(i + 1).is_some_and(|n| is_punct(n, "!"))
            {
                ctx.report(
                    out,
                    self.name(),
                    &t[i],
                    format!(
                        "`{}!` allocates on every iteration of a hot-path loop; \
                         render into a reused buffer instead",
                        t[i].text
                    ),
                );
            }
            // `.to_string()` / `.to_owned()` / `.to_vec()`.
            if ALLOC_METHODS.contains(&t[i].text.as_str())
                && i > 0
                && is_punct(&t[i - 1], ".")
                && t.get(i + 1).is_some_and(|n| is_punct(n, "("))
            {
                ctx.report(
                    out,
                    self.name(),
                    &t[i],
                    format!(
                        "`.{}()` clones into a fresh allocation inside a hot-path \
                         loop; borrow or reuse a hoisted buffer",
                        t[i].text
                    ),
                );
            }
        }
    }
}

/// Token-index spans (inclusive) of `for`/`while`/`loop` bodies,
/// including nested ones. Light-weight by design: the body is the first
/// `{` after the keyword, brace-matched to its close. A `for` keyword
/// only counts as a loop when an `in` sits between it and the body —
/// that screens out `impl Trait for Type { … }` blocks and `for<'a>`
/// higher-ranked bounds, whose token shape is otherwise identical.
fn loop_body_spans(t: &[Token]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    for i in 0..t.len() {
        if t[i].kind != TokenKind::Ident || !matches!(t[i].text.as_str(), "for" | "while" | "loop")
        {
            continue;
        }
        let mut j = i + 1;
        let mut saw_in = false;
        while j < t.len() && !is_punct(&t[j], "{") {
            if is_ident(&t[j], "in") {
                saw_in = true;
            }
            j += 1;
        }
        if j >= t.len() || (t[i].text == "for" && !saw_in) {
            continue;
        }
        let mut depth = 0usize;
        let mut k = j;
        while k < t.len() {
            if t[k].kind == TokenKind::Punct {
                if t[k].text == "{" {
                    depth += 1;
                } else if t[k].text == "}" {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
            }
            k += 1;
        }
        spans.push((j, k));
    }
    spans
}

// ---------------------------------------------------------------------------
// no-unbounded-channel
// ---------------------------------------------------------------------------

/// Files where every queue between pipeline stages must be a
/// `telemetry::channel::metered_bounded` channel: the shard fan-out made
/// channel topology load-bearing, and an unmetered queue is invisible to
/// the health monitor (no depth gauge, no stall accounting) while an
/// unbounded one turns backpressure into unbounded memory growth.
const CHANNEL_FILES: &[&str] = &[
    "crates/core/src/pipeline.rs",
    "crates/core/src/campaign.rs",
    "crates/core/src/source.rs",
    "crates/anonymize/src/shard.rs",
    "crates/server/src/shard.rs",
    "crates/trace/src/lib.rs",
    "crates/trace/src/ring.rs",
    "crates/trace/src/ops.rs",
    "crates/workload/src/session.rs",
];

/// Raw channel constructors. `metered_bounded` is a single identifier,
/// so the sanctioned wrapper never matches.
const CHANNEL_CTORS: &[&str] = &["bounded", "unbounded", "channel", "sync_channel"];

/// Flags raw channel construction (`bounded(..)`, `unbounded(..)`,
/// `mpsc::channel()`, `sync_channel(..)`) in pipeline/shard files.
/// Buffer-recycling pools are the accepted exception — they are bounded,
/// non-blocking by construction (`try_send`/`try_recv` only), and not
/// work queues — and each pool site carries an `allow` saying so.
pub struct NoUnboundedChannel;

impl Rule for NoUnboundedChannel {
    fn name(&self) -> &'static str {
        "no-unbounded-channel"
    }
    fn description(&self) -> &'static str {
        "raw bounded()/unbounded()/channel() construction in pipeline/shard files; use telemetry metered_bounded"
    }
    fn check_file(&self, ctx: &FileContext, out: &mut LintSink) {
        if !CHANNEL_FILES.contains(&ctx.rel_path.as_str()) {
            return;
        }
        let t = &ctx.tokens;
        for i in 0..t.len() {
            if t[i].kind != TokenKind::Ident
                || !CHANNEL_CTORS.contains(&t[i].text.as_str())
                || ctx.in_test_code(t[i].line)
            {
                continue;
            }
            // A call site: `ctor(` or turbofished `ctor::<T>(`.
            let called = t.get(i + 1).is_some_and(|n| is_punct(n, "("))
                || (i + 3 < t.len()
                    && is_punct(&t[i + 1], ":")
                    && is_punct(&t[i + 2], ":")
                    && is_punct(&t[i + 3], "<"));
            if !called {
                continue;
            }
            ctx.report(
                out,
                self.name(),
                &t[i],
                format!(
                    "raw `{}(..)` channel in a pipeline/shard file is invisible \
                     to the health monitor; use telemetry::channel::metered_bounded, \
                     or justify a non-blocking recycling pool with an allow comment",
                    t[i].text
                ),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// vendored-dep-boundary
// ---------------------------------------------------------------------------

/// The `vendor/` tree holds offline API-subset stand-ins that only
/// `Cargo.toml` path dependencies may reference. A `vendor/` path inside
/// Rust source (e.g. `#[path = "…/vendor/…"]`, `include!`, fs access)
/// couples code to the stand-in layout and breaks the swap-out story.
pub struct VendoredDepBoundary;

impl Rule for VendoredDepBoundary {
    fn name(&self) -> &'static str {
        "vendored-dep-boundary"
    }
    fn description(&self) -> &'static str {
        "no paths into the vendored stand-in tree in Rust source; only Cargo.toml may point there"
    }
    fn check_file(&self, ctx: &FileContext, out: &mut LintSink) {
        for tok in &ctx.tokens {
            if tok.kind == TokenKind::Str
                // etwlint: allow(vendored-dep-boundary): the rule's own needle
                && tok.text.contains("vendor/")
            {
                ctx.report(
                    out,
                    self.name(),
                    tok,
                    "string literal references a path into the vendored stand-in \
                     tree; those crates are reachable only through Cargo.toml \
                     path dependencies"
                        .to_string(),
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------

/// Convenience: map of rule name → description, for `--list`.
pub fn rule_catalogue() -> BTreeMap<&'static str, &'static str> {
    all_rules()
        .iter()
        .map(|r| (r.name(), r.description()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SourceFile;

    fn lint_one(path: &str, src: &str) -> LintSink {
        let ctx = FileContext::new(&SourceFile {
            rel_path: path.into(),
            text: src.into(),
        });
        let mut sink = LintSink::default();
        for rule in all_rules() {
            rule.check_file(&ctx, &mut sink);
            rule.check_workspace(std::slice::from_ref(&ctx), &mut sink);
        }
        sink
    }

    #[test]
    fn use_decl_is_not_a_use_site() {
        let sink = lint_one(
            "crates/x/src/lib.rs",
            "use std::sync::atomic::{AtomicU64, Ordering::Relaxed};\nfn f() {}",
        );
        assert!(sink.diagnostics.is_empty(), "{:?}", sink.diagnostics);
    }

    #[test]
    fn bare_relaxed_needs_justification() {
        let sink = lint_one(
            "crates/x/src/lib.rs",
            "use std::sync::atomic::Ordering::Relaxed;\nfn f(a: &AtomicU64) { a.fetch_add(1, Relaxed); }",
        );
        assert_eq!(sink.diagnostics.len(), 1);
        assert_eq!(sink.diagnostics[0].rule, "atomics-ordering-audit");
        assert_eq!(sink.diagnostics[0].line, 2);
    }

    #[test]
    fn loop_spans_skip_impl_for_and_hrtb() {
        let ctx = FileContext::new(&SourceFile {
            rel_path: "x.rs".into(),
            text: "impl Rule for NoWallClock { fn f(&self) { String::new(); } }\n\
                   fn g(h: impl for<'a> Fn(&'a str)) { String::new(); }\n\
                   fn real() { for x in 0..3 { let _ = x; } loop { break; } }"
                .into(),
        });
        let spans = loop_body_spans(&ctx.tokens);
        assert_eq!(spans.len(), 2, "{spans:?}");
        // Both detected bodies are on line 3.
        for (a, b) in spans {
            assert_eq!(ctx.tokens[a].line, 3);
            assert_eq!(ctx.tokens[b].line, 3);
        }
    }

    #[test]
    fn raw_channels_flagged_only_in_pipeline_files() {
        let src = "fn f() { let (tx, rx) = crossbeam::channel::bounded::<u8>(4); }";
        let sink = lint_one("crates/core/src/pipeline.rs", src);
        assert!(
            sink.diagnostics
                .iter()
                .any(|d| d.rule == "no-unbounded-channel"),
            "{:?}",
            sink.diagnostics
        );
        // Same construction outside the channel-topology files is fine.
        let sink = lint_one("crates/server/src/lib.rs", src);
        assert!(sink
            .diagnostics
            .iter()
            .all(|d| d.rule != "no-unbounded-channel"));
        // The sanctioned wrapper is a single identifier — never matches.
        let sink = lint_one(
            "crates/core/src/pipeline.rs",
            "fn f(r: &Registry) { let (tx, rx) = metered_bounded::<u8>(4, r, \"q\"); }",
        );
        assert!(sink
            .diagnostics
            .iter()
            .all(|d| d.rule != "no-unbounded-channel"));
        // A justified recycling pool is suppressed (and accounted).
        let sink = lint_one(
            "crates/core/src/pipeline.rs",
            "fn f() {\n    // etwlint: allow(no-unbounded-channel): recycling pool\n    \
             let (tx, rx) = crossbeam::channel::bounded::<u8>(4);\n}",
        );
        assert!(sink
            .diagnostics
            .iter()
            .all(|d| d.rule != "no-unbounded-channel"));
        assert!(sink
            .suppressed
            .iter()
            .any(|d| d.rule == "no-unbounded-channel"));
        // `mpsc::channel()` (unbounded) is flagged; a path segment named
        // `channel` is not.
        let sink = lint_one(
            "crates/core/src/pipeline.rs",
            "use telemetry::channel::metered_bounded;\nfn f() { let (tx, rx) = std::sync::mpsc::channel::<u8>(); }",
        );
        assert_eq!(
            sink.diagnostics
                .iter()
                .filter(|d| d.rule == "no-unbounded-channel")
                .count(),
            1
        );
    }

    #[test]
    fn hex_range_extraction() {
        let ctx = FileContext::new(&SourceFile {
            rel_path: "x.rs".into(),
            text: "let a = rng.gen_range(0x40..0x7f); let b = 0x10..=0x13; for _ in 0..200 {}"
                .into(),
        });
        assert_eq!(hex_ranges(&ctx.tokens), vec![(0x40, 0x7f), (0x10, 0x14)]);
    }
}
