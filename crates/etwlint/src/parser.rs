//! A lightweight Rust *outline* parser on top of the tokenizer — just
//! enough syntax for the taint pass: items (fns, impls, structs/enums,
//! traits, mods), fn signatures, and fn bodies as expression/statement
//! trees covering the subset of Rust this workspace actually uses.
//!
//! The parser is total and panic-free: anything it does not understand
//! degrades to an opaque expression that unions the taint of whatever
//! sub-expressions were recognised. Operator precedence is deliberately
//! ignored — for taint propagation `a + b` is the *union* of `a` and
//! `b`, so binary chains flatten into a single [`Expr::Group`].
//!
//! Guarantees relied on by `taint.rs`:
//!
//! * every parse function consumes at least one token on malformed
//!   input, so parsing terminates;
//! * `if let` / `while let` / `for` / `match` desugar their pattern
//!   bindings into explicit binding lists, so the taint pass never sees
//!   a pattern;
//! * macro invocations become [`Expr::Macro`] with each depth-0
//!   comma/semicolon chunk parsed as an expression where possible
//!   (falling back to bare identifier extraction for pattern chunks
//!   such as the second argument of `matches!`).

use crate::tokenizer::{Token, TokenKind};

/// One fn parameter: binding name(s) and the raw type text.
#[derive(Clone, Debug)]
pub struct Param {
    /// Primary binding name (`_` for wildcard / complex patterns the
    /// parser could not name; `self` for receivers).
    pub name: String,
    /// Type text with all tokens joined by single spaces (empty for
    /// bare `self` receivers).
    pub ty: String,
    /// Whether the parameter is a `&mut` reference (including
    /// `&mut self`).
    pub by_mut_ref: bool,
}

/// A parsed function with its body (if present).
#[derive(Debug)]
pub struct FnDef {
    /// Bare fn name.
    pub name: String,
    /// Enclosing `impl`/`trait` type name, if any.
    pub qual: Option<String>,
    /// Line of the first token of the item *including* attributes —
    /// annotation comments above attributes still attach.
    pub lead_line: usize,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// 1-based column of the `fn` keyword.
    pub col: usize,
    /// Parameters in order (receiver first when present).
    pub params: Vec<Param>,
    /// Whether the signature declares a return type.
    pub has_ret: bool,
    /// Body block; `None` for trait method declarations.
    pub body: Option<Block>,
}

/// A struct/enum field (or, for enums, a variant payload is ignored —
/// only named struct fields are recorded).
#[derive(Debug)]
pub struct FieldDef {
    /// Field name.
    pub name: String,
    /// 1-based line of the field name.
    pub line: usize,
    /// Declared type text (joined tokens).
    pub ty: String,
}

/// A struct or enum item — a target for type-level annotations.
#[derive(Debug)]
pub struct TypeDef {
    /// Type name.
    pub name: String,
    /// Line of the first token of the item including attributes.
    pub lead_line: usize,
    /// Line of the `struct`/`enum` keyword.
    pub line: usize,
    /// Named fields (structs only).
    pub fields: Vec<FieldDef>,
}

/// Everything the taint pass needs from one file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// All fns, including those nested in impls, traits and mods.
    pub fns: Vec<FnDef>,
    /// All structs/enums with their named fields.
    pub types: Vec<TypeDef>,
    /// `type Alias = Target;` items (including associated types), as
    /// `(alias, target-type text)` pairs.
    pub aliases: Vec<(String, String)>,
}

/// A `{ … }` body: statements plus an optional tail expression.
#[derive(Debug, Default)]
pub struct Block {
    /// Statements in order.
    pub stmts: Vec<Stmt>,
    /// Trailing expression (the block's value), if any.
    pub tail: Option<Box<Expr>>,
}

/// One statement.
#[derive(Debug)]
pub enum Stmt {
    /// `let <pat> = init;` — pattern flattened to its binding names.
    Let {
        /// Names bound by the pattern.
        names: Vec<String>,
        /// Initialiser (None for `let x;`).
        init: Option<Expr>,
    },
    /// `target = value;` or compound `target += value;`.
    Assign {
        /// Place expression being assigned.
        target: Expr,
        /// Value expression.
        value: Expr,
        /// Compound assignment (`+=` …) unions into the target instead
        /// of replacing it.
        compound: bool,
    },
    /// Bare expression statement.
    Expr(Expr),
    /// `return expr?;`
    Return(Option<Expr>),
}

/// One expression, reduced to what taint propagation distinguishes.
#[derive(Debug)]
pub enum Expr {
    /// Path: `x`, `a::b::C`, `self`. Single lowercase segments are local
    /// variables; everything else is treated as a constant (clean).
    Path {
        /// Path segments.
        segs: Vec<String>,
        /// Position of the first segment.
        line: usize,
        /// Column of the first segment.
        col: usize,
    },
    /// Field access `base.name` (tuple indices become the digit text).
    Field {
        /// Base expression.
        base: Box<Expr>,
        /// Field name.
        name: String,
        /// Line of the field name.
        line: usize,
        /// Column of the field name.
        col: usize,
    },
    /// Free/path call `a::b(args)`.
    Call {
        /// Full callee path segments.
        segs: Vec<String>,
        /// Arguments.
        args: Vec<Expr>,
        /// Call line.
        line: usize,
        /// Call column.
        col: usize,
    },
    /// Method call `recv.name(args)`.
    MethodCall {
        /// Receiver.
        recv: Box<Expr>,
        /// Method name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Line of the method name.
        line: usize,
        /// Column of the method name.
        col: usize,
    },
    /// Struct literal `Name { f: e, .. }`.
    Struct {
        /// Struct name (last path segment).
        name: String,
        /// Field initialisers (shorthand `f` becomes `f: f`).
        fields: Vec<(String, Expr)>,
        /// Functional-update base (`..base`).
        rest: Option<Box<Expr>>,
        /// Line of the struct name.
        line: usize,
    },
    /// Macro invocation `name!(…)` with best-effort parsed arguments.
    Macro {
        /// Macro name (last path segment).
        name: String,
        /// Depth-0 chunks parsed as expressions (or ident fallbacks).
        args: Vec<Expr>,
        /// Line of the macro name.
        line: usize,
        /// Column of the macro name.
        col: usize,
    },
    /// Taint union of sub-expressions: tuples, arrays, indexing, binary
    /// chains, casts, unrecognised forms.
    Group(Vec<Expr>),
    /// `&e` / `&mut e`.
    Ref {
        /// Referenced expression.
        inner: Box<Expr>,
        /// `&mut`?
        mutable: bool,
    },
    /// Block expression.
    Block(Block),
    /// `if cond { then } else { else }` (also desugared `if let`).
    If {
        /// Condition (ignored for value taint).
        cond: Box<Expr>,
        /// Names bound by an `if let` pattern from the condition value.
        bindings: Vec<String>,
        /// Then block.
        then_blk: Block,
        /// Else branch (block or chained if).
        else_expr: Option<Box<Expr>>,
    },
    /// `match scrutinee { arms }`.
    Match {
        /// Scrutinee.
        scrutinee: Box<Expr>,
        /// Arms: pattern binding names + body.
        arms: Vec<(Vec<String>, Expr)>,
    },
    /// `loop`/`while`/`for` body. `for` loops also carry the iterator
    /// expression and its bindings.
    Loop {
        /// Iterator/condition expression, if any.
        source: Option<Box<Expr>>,
        /// Names bound per iteration from `source`.
        bindings: Vec<String>,
        /// Loop body.
        body: Block,
    },
    /// Closure `|params| body` — taint of the closure value is the
    /// taint of its body (captures evaluated in the defining scope).
    Closure {
        /// Parameter names (bound clean).
        params: Vec<String>,
        /// Body expression.
        body: Box<Expr>,
    },
    /// Literal or other taint-free atom.
    Lit,
}

/// Parses one file's token stream into its outline.
pub fn parse_file(tokens: &[Token]) -> ParsedFile {
    let mut p = Parser { t: tokens, pos: 0 };
    let mut out = ParsedFile::default();
    p.items(&mut out, None, usize::MAX);
    out
}

struct Parser<'a> {
    t: &'a [Token],
    pos: usize,
}

const ITEM_KEYWORDS: &[&str] = &[
    "fn",
    "struct",
    "enum",
    "impl",
    "trait",
    "mod",
    "use",
    "const",
    "static",
    "type",
    "union",
    "extern",
    "macro_rules",
];

impl<'a> Parser<'a> {
    fn peek(&self, n: usize) -> Option<&Token> {
        self.t.get(self.pos + n)
    }

    fn cur(&self) -> Option<&Token> {
        self.peek(0)
    }

    fn bump(&mut self) {
        self.pos += 1;
    }

    fn at_punct(&self, s: &str) -> bool {
        matches!(self.cur(), Some(t) if t.kind == TokenKind::Punct && t.text == s)
    }

    fn at_ident(&self, s: &str) -> bool {
        matches!(self.cur(), Some(t) if t.kind == TokenKind::Ident && t.text == s)
    }

    fn punct_at(&self, n: usize, s: &str) -> bool {
        matches!(self.peek(n), Some(t) if t.kind == TokenKind::Punct && t.text == s)
    }

    fn eat_punct(&mut self, s: &str) -> bool {
        if self.at_punct(s) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_ident(&mut self, s: &str) -> bool {
        if self.at_ident(s) {
            self.bump();
            true
        } else {
            false
        }
    }

    /// Skips a balanced `#[...]` attribute; `pos` is at `#`.
    fn skip_attr(&mut self) {
        self.bump(); // `#`
        self.eat_punct("!");
        if !self.at_punct("[") {
            return;
        }
        self.skip_balanced("[", "]");
    }

    /// Skips from an opening delimiter through its matching close.
    fn skip_balanced(&mut self, open: &str, close: &str) {
        let mut depth = 0usize;
        while let Some(t) = self.cur() {
            if t.kind == TokenKind::Punct {
                if t.text == open {
                    depth += 1;
                } else if t.text == close {
                    depth -= 1;
                    if depth == 0 {
                        self.bump();
                        return;
                    }
                }
            }
            self.bump();
        }
    }

    /// Skips a generic parameter list starting at `<`.
    fn skip_generics(&mut self) {
        let mut depth = 0usize;
        while let Some(t) = self.cur() {
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    "<" => depth += 1,
                    ">" => {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            self.bump();
                            return;
                        }
                    }
                    // `->` inside `Fn(..) -> R` bounds: the `>` must not
                    // close the generic list.
                    "-" if self.punct_at(1, ">") => {
                        self.bump();
                    }
                    _ => {}
                }
            }
            self.bump();
        }
    }

    /// Skips type tokens until a depth-0 terminator from `stops`.
    fn skip_type(&mut self, stops: &[&str]) {
        let mut angle = 0usize;
        let mut paren = 0usize;
        while let Some(t) = self.cur() {
            if t.kind == TokenKind::Punct {
                let s = t.text.as_str();
                if angle == 0 && paren == 0 && stops.contains(&s) {
                    return;
                }
                match s {
                    "<" => angle += 1,
                    ">" => angle = angle.saturating_sub(1),
                    "-" if self.punct_at(1, ">") => {
                        self.bump(); // `-`; the `>` is consumed below
                    }
                    "(" | "[" => paren += 1,
                    ")" | "]" => {
                        if paren == 0 {
                            return; // closing an outer delimiter
                        }
                        paren -= 1;
                    }
                    _ => {}
                }
            }
            self.bump();
        }
    }

    /// Item scan. `qual` is the enclosing impl/trait type; parsing stops
    /// at `end_pos` or a depth-0 `}`.
    fn items(&mut self, out: &mut ParsedFile, qual: Option<&str>, end_pos: usize) {
        let mut lead: Option<usize> = None;
        while self.pos < end_pos && self.cur().is_some() {
            if self.at_punct("}") {
                self.bump();
                return;
            }
            if self.at_punct("#") {
                let line = self.cur().map(|t| t.line).unwrap_or(0);
                lead.get_or_insert(line);
                self.skip_attr();
                continue;
            }
            let t = match self.cur() {
                Some(t) => t.clone(),
                None => return,
            };
            if t.kind != TokenKind::Ident {
                lead = None;
                self.bump();
                continue;
            }
            match t.text.as_str() {
                "pub" => {
                    lead.get_or_insert(t.line);
                    self.bump();
                    // `pub(crate)` etc.
                    if self.at_punct("(") {
                        self.skip_balanced("(", ")");
                    }
                }
                "unsafe" | "async" | "default" => {
                    lead.get_or_insert(t.line);
                    self.bump();
                }
                "const" | "static" => {
                    // `const fn f` is a fn modifier; `const X: T = …;` an item.
                    if matches!(self.peek(1), Some(n) if n.kind == TokenKind::Ident && (n.text == "fn" || n.text == "unsafe"))
                    {
                        lead.get_or_insert(t.line);
                        self.bump();
                    } else {
                        self.skip_to_semi();
                        lead = None;
                    }
                }
                "fn" => {
                    let lead_line = lead.take().unwrap_or(t.line);
                    self.parse_fn(out, qual, lead_line);
                }
                "struct" | "enum" | "union" => {
                    let lead_line = lead.take().unwrap_or(t.line);
                    self.parse_type(out, lead_line);
                }
                "impl" => {
                    lead = None;
                    self.parse_impl(out);
                }
                "trait" => {
                    lead = None;
                    self.bump();
                    let name = self.take_ident().unwrap_or_default();
                    if self.at_punct("<") {
                        self.skip_generics();
                    }
                    // Supertraits / where-clause: skip to the body.
                    while self.cur().is_some() && !self.at_punct("{") && !self.at_punct(";") {
                        if self.at_punct("<") {
                            self.skip_generics();
                        } else {
                            self.bump();
                        }
                    }
                    if self.eat_punct("{") {
                        self.items(out, Some(&name), usize::MAX);
                    } else {
                        self.bump_or_end();
                    }
                }
                "mod" => {
                    lead = None;
                    self.bump();
                    self.take_ident();
                    if self.eat_punct("{") {
                        self.items(out, qual, usize::MAX);
                    } else {
                        self.eat_punct(";");
                    }
                }
                "type" => {
                    lead = None;
                    self.bump();
                    let alias = self.take_ident();
                    if self.at_punct("<") {
                        self.skip_generics();
                    }
                    if self.eat_punct("=") {
                        let start = self.pos;
                        self.skip_type(&[";"]);
                        if let Some(alias) = alias {
                            out.aliases
                                .push((alias, join_tokens(&self.t[start..self.pos])));
                        }
                    }
                    self.eat_punct(";");
                }
                "use" | "extern" | "macro_rules" => {
                    lead = None;
                    self.skip_to_semi_or_block();
                }
                _ => {
                    lead = None;
                    self.bump();
                }
            }
        }
    }

    fn bump_or_end(&mut self) {
        if self.cur().is_some() {
            self.bump();
        }
    }

    fn take_ident(&mut self) -> Option<String> {
        match self.cur() {
            Some(t) if t.kind == TokenKind::Ident => {
                let s = t.text.clone();
                self.bump();
                Some(s)
            }
            _ => None,
        }
    }

    fn skip_to_semi(&mut self) {
        let mut depth = 0usize;
        while let Some(t) = self.cur() {
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    "{" | "(" | "[" => depth += 1,
                    "}" | ")" | "]" => {
                        if depth == 0 {
                            return;
                        }
                        depth -= 1;
                    }
                    ";" if depth == 0 => {
                        self.bump();
                        return;
                    }
                    _ => {}
                }
            }
            self.bump();
        }
    }

    /// Skips to `;` or over one balanced `{ … }`, whichever comes first
    /// (for `macro_rules!` and `extern` blocks).
    fn skip_to_semi_or_block(&mut self) {
        while let Some(t) = self.cur() {
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    ";" => {
                        self.bump();
                        return;
                    }
                    "{" => {
                        self.skip_balanced("{", "}");
                        return;
                    }
                    "}" => return,
                    _ => {}
                }
            }
            self.bump();
        }
    }

    fn parse_impl(&mut self, out: &mut ParsedFile) {
        self.bump(); // `impl`
        if self.at_punct("<") {
            self.skip_generics();
        }
        // `impl Type` or `impl Trait for Type`: the impl type is the last
        // path segment before `{` / `where`, preferring the part after
        // `for`.
        let mut name = String::new();
        let mut after_for = false;
        while let Some(t) = self.cur() {
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    "{" => break,
                    "<" => {
                        self.skip_generics();
                        continue;
                    }
                    _ => {
                        self.bump();
                        continue;
                    }
                }
            }
            if t.text == "where" {
                // Skip the clause up to the body.
                while self.cur().is_some() && !self.at_punct("{") {
                    if self.at_punct("<") {
                        self.skip_generics();
                    } else {
                        self.bump();
                    }
                }
                break;
            }
            if t.text == "for" {
                after_for = true;
                name.clear();
                self.bump();
                continue;
            }
            let _ = after_for;
            name = t.text.clone();
            self.bump();
        }
        if self.eat_punct("{") {
            self.items(out, Some(&name), usize::MAX);
        }
    }

    fn parse_type(&mut self, out: &mut ParsedFile, lead_line: usize) {
        let kw = self.cur().cloned();
        self.bump();
        let name = self.take_ident().unwrap_or_default();
        let line = kw.map(|t| t.line).unwrap_or(0);
        if self.at_punct("<") {
            self.skip_generics();
        }
        // where-clause before the body.
        while self.cur().is_some()
            && !self.at_punct("{")
            && !self.at_punct("(")
            && !self.at_punct(";")
        {
            if self.at_punct("<") {
                self.skip_generics();
            } else {
                self.bump();
            }
        }
        let mut fields = Vec::new();
        if self.at_punct("(") {
            // Tuple struct: no named fields.
            self.skip_balanced("(", ")");
            self.eat_punct(";");
        } else if self.eat_punct("{") {
            // Named fields (or enum variants, whose payloads we skip).
            let mut depth = 0usize;
            while let Some(t) = self.cur() {
                if t.kind == TokenKind::Punct {
                    match t.text.as_str() {
                        "{" | "(" | "[" => {
                            depth += 1;
                            self.bump();
                            continue;
                        }
                        "}" | ")" | "]" => {
                            if depth == 0 {
                                self.bump();
                                break;
                            }
                            depth -= 1;
                            self.bump();
                            continue;
                        }
                        "#" if depth == 0 => {
                            self.skip_attr();
                            continue;
                        }
                        "<" => {
                            self.skip_generics();
                            continue;
                        }
                        _ => {
                            self.bump();
                            continue;
                        }
                    }
                }
                if depth == 0
                    && t.kind == TokenKind::Ident
                    && t.text != "pub"
                    && self.punct_at(1, ":")
                    && !self.punct_at(2, ":")
                {
                    let (fname, fline) = (t.text.clone(), t.line);
                    self.bump(); // name
                    self.bump(); // `:`
                    let start = self.pos;
                    self.skip_type(&[",", "}"]);
                    fields.push(FieldDef {
                        name: fname,
                        line: fline,
                        ty: join_tokens(&self.t[start..self.pos]),
                    });
                    self.eat_punct(",");
                    continue;
                }
                self.bump();
            }
        } else {
            self.eat_punct(";");
        }
        out.types.push(TypeDef {
            name,
            lead_line,
            line,
            fields,
        });
    }

    fn parse_fn(&mut self, out: &mut ParsedFile, qual: Option<&str>, lead_line: usize) {
        let kw = match self.cur() {
            Some(t) => t.clone(),
            None => return,
        };
        self.bump(); // `fn`
        let name = self.take_ident().unwrap_or_default();
        if self.at_punct("<") {
            self.skip_generics();
        }
        let mut params = Vec::new();
        if self.eat_punct("(") {
            while self.cur().is_some() && !self.at_punct(")") {
                let p = self.parse_param();
                params.push(p);
                if !self.eat_punct(",") {
                    break;
                }
            }
            self.eat_punct(")");
        }
        let mut has_ret = false;
        if self.at_punct("-") && self.punct_at(1, ">") {
            has_ret = true;
            self.bump();
            self.bump();
            self.skip_type(&["{", ";"]);
        }
        if self.at_ident("where") {
            while self.cur().is_some() && !self.at_punct("{") && !self.at_punct(";") {
                if self.at_punct("<") {
                    self.skip_generics();
                } else {
                    self.bump();
                }
            }
        }
        let body = if self.eat_punct("{") {
            Some(self.parse_block())
        } else {
            self.eat_punct(";");
            None
        };
        out.fns.push(FnDef {
            name,
            qual: qual.map(|s| s.to_string()),
            lead_line,
            line: kw.line,
            col: kw.col,
            params,
            has_ret,
            body,
        });
    }

    fn parse_param(&mut self) -> Param {
        // Attributes on params (rare).
        while self.at_punct("#") {
            self.skip_attr();
        }
        let mut by_mut_ref = false;
        if self.at_punct("&") {
            self.bump();
            if matches!(self.cur(), Some(t) if t.kind == TokenKind::Lifetime) {
                self.bump();
            }
            if self.at_ident("mut") {
                by_mut_ref = true;
                self.bump();
            }
            if self.at_ident("self") {
                self.bump();
                return Param {
                    name: "self".into(),
                    ty: String::new(),
                    by_mut_ref,
                };
            }
            // `&T`-typed param without a pattern? Only valid in trait
            // decls (`fn f(&self)` handled above); treat the rest as an
            // unnamed type and skip it.
            self.skip_type(&[",", ")"]);
            return Param {
                name: "_".into(),
                ty: String::new(),
                by_mut_ref,
            };
        }
        if self.at_ident("mut") {
            self.bump();
        }
        if self.at_ident("self") {
            self.bump();
            return Param {
                name: "self".into(),
                ty: String::new(),
                by_mut_ref: false,
            };
        }
        // Pattern params like `(a, b): (u32, u32)` — collect the names.
        let names = if self.at_punct("(") {
            let start = self.pos;
            self.skip_balanced("(", ")");
            collect_pattern_bindings(&self.t[start..self.pos])
        } else {
            match self.take_ident() {
                Some(n) => vec![n],
                None => {
                    self.bump_or_end();
                    Vec::new()
                }
            }
        };
        let mut ty = String::new();
        if self.eat_punct(":") {
            let start = self.pos;
            self.skip_type(&[",", ")"]);
            ty = join_tokens(&self.t[start..self.pos]);
        }
        let mut by_mut = false;
        // A `&mut T` type makes the param a mutable reference.
        let ty_trim = ty.trim_start();
        if let Some(rest) = ty_trim.strip_prefix('&') {
            let rest = rest.trim_start();
            let rest = rest.strip_prefix('\'').map_or(rest, |r| {
                r.split_once(' ').map(|(_, tail)| tail).unwrap_or("")
            });
            if rest.trim_start().starts_with("mut ") || rest.trim_start() == "mut" {
                by_mut = true;
            }
        }
        Param {
            name: names.into_iter().next().unwrap_or_else(|| "_".into()),
            ty,
            by_mut_ref: by_mut,
        }
    }

    // -- blocks & statements ------------------------------------------------

    /// Parses a block body; the opening `{` is already consumed.
    fn parse_block(&mut self) -> Block {
        let mut block = Block::default();
        loop {
            let before = self.pos;
            match self.cur() {
                None => break,
                Some(t) if t.kind == TokenKind::Punct && t.text == "}" => {
                    self.bump();
                    break;
                }
                Some(t) if t.kind == TokenKind::Punct && t.text == ";" => {
                    self.bump();
                    continue;
                }
                Some(t) if t.kind == TokenKind::Punct && t.text == "#" => {
                    self.skip_attr();
                    continue;
                }
                Some(t) if t.kind == TokenKind::Ident && t.text == "let" => {
                    self.parse_let(&mut block);
                }
                Some(t) if t.kind == TokenKind::Ident && t.text == "return" => {
                    self.bump();
                    let e = if self.at_punct(";") || self.at_punct("}") {
                        None
                    } else {
                        Some(self.parse_expr(false))
                    };
                    block.stmts.push(Stmt::Return(e));
                }
                Some(t)
                    if t.kind == TokenKind::Ident
                        && (t.text == "break" || t.text == "continue") =>
                {
                    self.bump();
                    if matches!(self.cur(), Some(t) if t.kind == TokenKind::Lifetime) {
                        self.bump();
                    }
                    if !self.at_punct(";") && !self.at_punct("}") {
                        let e = self.parse_expr(false);
                        block.stmts.push(Stmt::Expr(e));
                    }
                }
                Some(t)
                    if t.kind == TokenKind::Ident
                        && ITEM_KEYWORDS.contains(&t.text.as_str())
                        && t.text != "union" =>
                {
                    // Nested item inside a fn body: skip it whole. Its
                    // fns are rare enough to ignore for taint purposes.
                    self.skip_item_in_block();
                }
                _ => {
                    let e = self.parse_expr(false);
                    if self.at_punct("=") && !self.punct_at(1, "=") {
                        self.bump();
                        let v = self.parse_expr(false);
                        block.stmts.push(Stmt::Assign {
                            target: e,
                            value: v,
                            compound: false,
                        });
                    } else if self.is_compound_assign() {
                        self.bump(); // op
                        self.bump(); // `=`
                        let v = self.parse_expr(false);
                        block.stmts.push(Stmt::Assign {
                            target: e,
                            value: v,
                            compound: true,
                        });
                    } else if self.at_punct("}") {
                        self.bump();
                        block.tail = Some(Box::new(e));
                        break;
                    } else {
                        block.stmts.push(Stmt::Expr(e));
                    }
                }
            }
            if self.pos == before {
                self.bump_or_end(); // guarantee progress
            }
        }
        block
    }

    fn is_compound_assign(&self) -> bool {
        match self.cur() {
            Some(t)
                if t.kind == TokenKind::Punct
                    && matches!(
                        t.text.as_str(),
                        "+" | "-" | "*" | "/" | "%" | "^" | "&" | "|"
                    ) =>
            {
                self.punct_at(1, "=") && !self.punct_at(2, "=")
            }
            _ => false,
        }
    }

    fn skip_item_in_block(&mut self) {
        // Consume tokens up to `;` or a balanced `{…}` body.
        while let Some(t) = self.cur() {
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    ";" => {
                        self.bump();
                        return;
                    }
                    "{" => {
                        self.skip_balanced("{", "}");
                        return;
                    }
                    "}" => return,
                    "<" => {
                        self.skip_generics();
                        continue;
                    }
                    _ => {}
                }
            }
            self.bump();
        }
    }

    fn parse_let(&mut self, block: &mut Block) {
        self.bump(); // `let`
        let pat_start = self.pos;
        self.skip_pattern(&["=", ";", ":"]);
        let mut names = collect_pattern_bindings(&self.t[pat_start..self.pos]);
        if self.eat_punct(":") {
            self.skip_type(&["=", ";"]);
        }
        let init = if self.eat_punct("=") {
            Some(self.parse_expr(false))
        } else {
            None
        };
        // `let … else { … }` diverging block.
        if self.at_ident("else") {
            self.bump();
            if self.eat_punct("{") {
                let b = self.parse_block();
                block.stmts.push(Stmt::Expr(Expr::Block(b)));
            }
        }
        self.eat_punct(";");
        if names.is_empty() {
            names.push("_".into());
        }
        block.stmts.push(Stmt::Let { names, init });
    }

    /// Skips pattern tokens until a depth-0 terminator.
    fn skip_pattern(&mut self, stops: &[&str]) {
        let mut depth = 0usize;
        while let Some(t) = self.cur() {
            if t.kind == TokenKind::Punct {
                let s = t.text.as_str();
                if depth == 0 && stops.contains(&s) {
                    // `::` is not a stop even when `:` is.
                    if s == ":" && self.punct_at(1, ":") {
                        self.bump();
                        self.bump();
                        continue;
                    }
                    return;
                }
                match s {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => {
                        if depth == 0 {
                            return;
                        }
                        depth -= 1;
                    }
                    "<" => {
                        self.skip_generics();
                        continue;
                    }
                    _ => {}
                }
            } else if t.kind == TokenKind::Ident && depth == 0 && stops.contains(&t.text.as_str()) {
                return;
            }
            self.bump();
        }
    }

    // -- expressions --------------------------------------------------------

    /// Parses an expression. `no_struct` suppresses struct literals so
    /// `if x {` and `match x {` terminate at the block.
    fn parse_expr(&mut self, no_struct: bool) -> Expr {
        let mut operands = vec![self.parse_unary(no_struct)];
        loop {
            let before = self.pos;
            if self.at_ident("as") {
                self.bump();
                self.skip_type(&[
                    ",", ";", ")", "]", "}", "{", "=", "+", "-", "*", "/", "<", ">", "?", ".", "&",
                    "|",
                ]);
                continue;
            }
            if !self.eat_binop(no_struct) {
                break;
            }
            // Open-ended range (`a..`): no RHS follows.
            if self.expr_terminator(no_struct) {
                break;
            }
            operands.push(self.parse_unary(no_struct));
            if self.pos == before {
                self.bump_or_end();
                break;
            }
        }
        if operands.len() == 1 {
            operands.pop().unwrap()
        } else {
            Expr::Group(operands)
        }
    }

    fn expr_terminator(&self, no_struct: bool) -> bool {
        match self.cur() {
            None => true,
            Some(t) if t.kind == TokenKind::Punct => {
                matches!(t.text.as_str(), ";" | ")" | "]" | "}" | ",")
                    || (no_struct && t.text == "{")
            }
            _ => false,
        }
    }

    /// Consumes one binary operator if present.
    fn eat_binop(&mut self, _no_struct: bool) -> bool {
        let t = match self.cur() {
            Some(t) if t.kind == TokenKind::Punct => t,
            _ => return false,
        };
        match t.text.as_str() {
            "+" | "-" | "*" | "/" | "%" | "^" => {
                // Not compound assignment (handled by the caller).
                if self.punct_at(1, "=") && !self.punct_at(2, "=") {
                    return false;
                }
                self.bump();
                true
            }
            "&" | "|" => {
                if self.punct_at(1, "=") && !self.punct_at(2, "=") {
                    return false;
                }
                self.bump();
                // `&&` / `||` second char.
                let first = self.t[self.pos - 1].text.clone();
                if self.at_punct(&first) {
                    self.bump();
                }
                true
            }
            // Bare `=` is assignment, handled by the statement parser.
            "=" | "!" if self.punct_at(1, "=") => {
                self.bump();
                self.bump();
                true
            }
            "<" | ">" => {
                self.bump();
                // `<<`, `>>`, `<=`, `>=`.
                if self.at_punct(self.t[self.pos - 1].text.clone().as_str()) || self.at_punct("=") {
                    self.bump();
                }
                true
            }
            // Bare `.` is field access, handled in postfix.
            "." if self.punct_at(1, ".") => {
                self.bump();
                self.bump();
                self.eat_punct("=");
                true
            }
            _ => false,
        }
    }

    fn parse_unary(&mut self, no_struct: bool) -> Expr {
        match self.cur() {
            Some(t) if t.kind == TokenKind::Punct && t.text == "&" => {
                self.bump();
                // `&&x` double-reference.
                let double = self.eat_punct("&");
                let mutable = self.eat_ident("mut");
                let inner = self.parse_unary(no_struct);
                let e = Expr::Ref {
                    inner: Box::new(inner),
                    mutable,
                };
                if double {
                    Expr::Ref {
                        inner: Box::new(e),
                        mutable: false,
                    }
                } else {
                    e
                }
            }
            Some(t) if t.kind == TokenKind::Punct && matches!(t.text.as_str(), "*" | "!" | "-") => {
                self.bump();
                self.parse_unary(no_struct)
            }
            _ => self.parse_postfix(no_struct),
        }
    }

    fn parse_postfix(&mut self, no_struct: bool) -> Expr {
        let mut e = self.parse_primary(no_struct);
        loop {
            let before = self.pos;
            if self.at_punct(".") && !self.punct_at(1, ".") {
                // Field or method.
                let (line, col) = match self.peek(1) {
                    Some(t) => (t.line, t.col),
                    None => {
                        self.bump();
                        break;
                    }
                };
                match self.peek(1) {
                    Some(t) if t.kind == TokenKind::Ident => {
                        let name = t.text.clone();
                        self.bump(); // `.`
                        self.bump(); // name
                                     // Turbofish on methods: `.collect::<T>()`.
                        if self.at_punct(":") && self.punct_at(1, ":") {
                            self.bump();
                            self.bump();
                            if self.at_punct("<") {
                                self.skip_generics();
                            }
                        }
                        if self.at_punct("(") {
                            let args = self.parse_args();
                            e = Expr::MethodCall {
                                recv: Box::new(e),
                                name,
                                args,
                                line,
                                col,
                            };
                        } else {
                            e = Expr::Field {
                                base: Box::new(e),
                                name,
                                line,
                                col,
                            };
                        }
                    }
                    Some(t) if t.kind == TokenKind::Num => {
                        let name = t.text.clone();
                        self.bump();
                        self.bump();
                        e = Expr::Field {
                            base: Box::new(e),
                            name,
                            line,
                            col,
                        };
                    }
                    _ => {
                        self.bump();
                    }
                }
            } else if self.at_punct("(") {
                let args = self.parse_args();
                e = match e {
                    Expr::Path { segs, line, col } => Expr::Call {
                        segs,
                        args,
                        line,
                        col,
                    },
                    other => {
                        // Calling a non-path (closure variable, field):
                        // union callee and args.
                        let mut v = vec![other];
                        v.extend(args);
                        Expr::Group(v)
                    }
                };
            } else if self.at_punct("[") {
                self.bump();
                let idx = self.parse_expr(false);
                self.eat_punct("]");
                e = Expr::Group(vec![e, idx]);
            } else if self.at_punct("?") {
                self.bump();
            } else {
                break;
            }
            if self.pos == before {
                self.bump_or_end();
                break;
            }
        }
        e
    }

    /// Parses `( … , … )` argument lists; the cursor is at `(`.
    fn parse_args(&mut self) -> Vec<Expr> {
        self.bump(); // `(`
        let mut args = Vec::new();
        while self.cur().is_some() && !self.at_punct(")") {
            let before = self.pos;
            args.push(self.parse_expr(false));
            if !self.eat_punct(",") && !self.at_punct(")") && self.pos == before {
                self.bump_or_end();
            } else if !self.at_punct(")") {
                self.eat_punct(",");
            }
        }
        self.eat_punct(")");
        args
    }

    fn parse_primary(&mut self, no_struct: bool) -> Expr {
        let t = match self.cur() {
            Some(t) => t.clone(),
            None => return Expr::Lit,
        };
        match t.kind {
            TokenKind::Num | TokenKind::Str | TokenKind::Char | TokenKind::Lifetime => {
                self.bump();
                Expr::Lit
            }
            TokenKind::Punct => match t.text.as_str() {
                "(" => {
                    self.bump();
                    let mut items = Vec::new();
                    while self.cur().is_some() && !self.at_punct(")") {
                        let before = self.pos;
                        items.push(self.parse_expr(false));
                        self.eat_punct(",");
                        if self.pos == before {
                            self.bump_or_end();
                        }
                    }
                    self.eat_punct(")");
                    if items.len() == 1 {
                        items.pop().unwrap()
                    } else {
                        Expr::Group(items)
                    }
                }
                "[" => {
                    self.bump();
                    let mut items = Vec::new();
                    while self.cur().is_some() && !self.at_punct("]") {
                        let before = self.pos;
                        items.push(self.parse_expr(false));
                        if !self.eat_punct(",") {
                            self.eat_punct(";"); // `[x; n]` repeat
                        }
                        if self.pos == before {
                            self.bump_or_end();
                        }
                    }
                    self.eat_punct("]");
                    Expr::Group(items)
                }
                "{" => {
                    self.bump();
                    Expr::Block(self.parse_block())
                }
                "|" => self.parse_closure(),
                "." => {
                    // Leading range `..x` / `..=x`.
                    self.bump();
                    self.eat_punct(".");
                    self.eat_punct("=");
                    if self.expr_terminator(no_struct) {
                        Expr::Lit
                    } else {
                        self.parse_unary(no_struct)
                    }
                }
                _ => {
                    self.bump();
                    Expr::Lit
                }
            },
            TokenKind::Ident => match t.text.as_str() {
                "if" => self.parse_if(),
                "match" => self.parse_match(),
                "loop" => {
                    self.bump();
                    let body = if self.eat_punct("{") {
                        self.parse_block()
                    } else {
                        Block::default()
                    };
                    Expr::Loop {
                        source: None,
                        bindings: Vec::new(),
                        body,
                    }
                }
                "while" => {
                    self.bump();
                    let (cond, bindings) = if self.at_ident("let") {
                        self.bump();
                        let ps = self.pos;
                        self.skip_pattern(&["="]);
                        let names = collect_pattern_bindings(&self.t[ps..self.pos]);
                        self.eat_punct("=");
                        (self.parse_expr(true), names)
                    } else {
                        (self.parse_expr(true), Vec::new())
                    };
                    let body = if self.eat_punct("{") {
                        self.parse_block()
                    } else {
                        Block::default()
                    };
                    Expr::Loop {
                        source: Some(Box::new(cond)),
                        bindings,
                        body,
                    }
                }
                "for" => {
                    self.bump();
                    let ps = self.pos;
                    self.skip_pattern(&["in"]);
                    let bindings = collect_pattern_bindings(&self.t[ps..self.pos]);
                    self.eat_ident("in");
                    let iter = self.parse_expr(true);
                    let body = if self.eat_punct("{") {
                        self.parse_block()
                    } else {
                        Block::default()
                    };
                    Expr::Loop {
                        source: Some(Box::new(iter)),
                        bindings,
                        body,
                    }
                }
                "unsafe" => {
                    self.bump();
                    if self.eat_punct("{") {
                        Expr::Block(self.parse_block())
                    } else {
                        Expr::Lit
                    }
                }
                "move" => {
                    self.bump();
                    if self.at_punct("|") {
                        self.parse_closure()
                    } else {
                        self.parse_unary(no_struct)
                    }
                }
                "true" | "false" => {
                    self.bump();
                    Expr::Lit
                }
                _ => self.parse_path_expr(no_struct),
            },
        }
    }

    fn parse_closure(&mut self) -> Expr {
        self.bump(); // `|`
        let mut params = Vec::new();
        if self.at_punct("|") {
            self.bump(); // `||` empty params
        } else {
            while self.cur().is_some() && !self.at_punct("|") {
                let ps = self.pos;
                self.skip_pattern(&[":", ",", "|"]);
                params.extend(collect_pattern_bindings(&self.t[ps..self.pos]));
                if self.eat_punct(":") {
                    self.skip_type(&[",", "|"]);
                }
                if !self.eat_punct(",") {
                    break;
                }
            }
            self.eat_punct("|");
        }
        if self.at_punct("-") && self.punct_at(1, ">") {
            self.bump();
            self.bump();
            self.skip_type(&["{"]);
        }
        let body = self.parse_expr(false);
        Expr::Closure {
            params,
            body: Box::new(body),
        }
    }

    fn parse_if(&mut self) -> Expr {
        self.bump(); // `if`
        let (cond, bindings) = if self.at_ident("let") {
            self.bump();
            let ps = self.pos;
            self.skip_pattern(&["="]);
            let names = collect_pattern_bindings(&self.t[ps..self.pos]);
            self.eat_punct("=");
            (self.parse_expr(true), names)
        } else {
            (self.parse_expr(true), Vec::new())
        };
        let then_blk = if self.eat_punct("{") {
            self.parse_block()
        } else {
            Block::default()
        };
        let else_expr = if self.at_ident("else") {
            self.bump();
            if self.at_ident("if") {
                Some(Box::new(self.parse_if()))
            } else if self.eat_punct("{") {
                Some(Box::new(Expr::Block(self.parse_block())))
            } else {
                None
            }
        } else {
            None
        };
        Expr::If {
            cond: Box::new(cond),
            bindings,
            then_blk,
            else_expr,
        }
    }

    fn parse_match(&mut self) -> Expr {
        self.bump(); // `match`
        let scrutinee = self.parse_expr(true);
        let mut arms = Vec::new();
        if self.eat_punct("{") {
            loop {
                let before = self.pos;
                match self.cur() {
                    None => break,
                    Some(t) if t.kind == TokenKind::Punct && t.text == "}" => {
                        self.bump();
                        break;
                    }
                    Some(t) if t.kind == TokenKind::Punct && t.text == "#" => {
                        self.skip_attr();
                        continue;
                    }
                    _ => {}
                }
                let ps = self.pos;
                self.skip_pattern(&["=", "if"]);
                let mut names = collect_pattern_bindings(&self.t[ps..self.pos]);
                if self.at_ident("if") {
                    self.bump();
                    let _guard = self.parse_expr(true);
                    // Bindings from `if let` guards are rare; skip.
                }
                // `=>` arrow.
                if self.at_punct("=") && self.punct_at(1, ">") {
                    self.bump();
                    self.bump();
                } else if self.pos == before {
                    self.bump_or_end();
                    continue;
                }
                let body = self.parse_expr(false);
                self.eat_punct(",");
                names.retain(|n| n != "_");
                arms.push((names, body));
                if self.pos == before {
                    self.bump_or_end();
                }
            }
        }
        Expr::Match {
            scrutinee: Box::new(scrutinee),
            arms,
        }
    }

    fn parse_path_expr(&mut self, no_struct: bool) -> Expr {
        let first = match self.cur() {
            Some(t) => t.clone(),
            None => return Expr::Lit,
        };
        let (line, col) = (first.line, first.col);
        let mut segs = vec![first.text.clone()];
        self.bump();
        while self.at_punct(":") && self.punct_at(1, ":") {
            self.bump();
            self.bump();
            if self.at_punct("<") {
                self.skip_generics(); // turbofish
                continue;
            }
            match self.take_ident() {
                Some(s) => segs.push(s),
                None => break,
            }
        }
        // Macro invocation.
        if self.at_punct("!")
            && (self.punct_at(1, "(") || self.punct_at(1, "[") || self.punct_at(1, "{"))
        {
            self.bump(); // `!`
            let (open, close) = match self.cur().map(|t| t.text.as_str()) {
                Some("(") => ("(", ")"),
                Some("[") => ("[", "]"),
                _ => ("{", "}"),
            };
            let start = self.pos + 1;
            self.skip_balanced(open, close);
            let inner = &self.t[start..self.pos.saturating_sub(1).max(start)];
            let args = parse_macro_args(inner);
            return Expr::Macro {
                name: segs.pop().unwrap_or_default(),
                args,
                line,
                col,
            };
        }
        // Struct literal.
        if !no_struct && self.at_punct("{") && self.struct_literal_ahead() {
            self.bump(); // `{`
            let name = segs.last().cloned().unwrap_or_default();
            let mut fields = Vec::new();
            let mut rest = None;
            while self.cur().is_some() && !self.at_punct("}") {
                let before = self.pos;
                if self.at_punct(".") && self.punct_at(1, ".") {
                    self.bump();
                    self.bump();
                    rest = Some(Box::new(self.parse_expr(false)));
                    break;
                }
                let fname = self.take_ident().unwrap_or_default();
                if self.at_punct(":") && !self.punct_at(1, ":") {
                    self.bump();
                    let v = self.parse_expr(false);
                    fields.push((fname.clone(), v));
                } else {
                    // Shorthand `f` ⇒ `f: f`.
                    fields.push((
                        fname.clone(),
                        Expr::Path {
                            segs: vec![fname.clone()],
                            line,
                            col,
                        },
                    ));
                }
                self.eat_punct(",");
                if self.pos == before {
                    self.bump_or_end();
                }
            }
            self.eat_punct("}");
            return Expr::Struct {
                name,
                fields,
                rest,
                line,
            };
        }
        Expr::Path { segs, line, col }
    }

    /// After a path, does `{` begin a struct literal? (`Name { field: …`,
    /// `Name { field, …`, `Name { field }`, `Name { ..base }`, `Name {}`.)
    fn struct_literal_ahead(&self) -> bool {
        match self.peek(1) {
            Some(t) if t.kind == TokenKind::Ident => match self.peek(2) {
                Some(n) if n.kind == TokenKind::Punct => {
                    (n.text == ":" && !self.punct_at(3, ":")) || n.text == "," || n.text == "}"
                }
                _ => false,
            },
            Some(t) if t.kind == TokenKind::Punct && t.text == "." => self.punct_at(2, "."),
            Some(t) if t.kind == TokenKind::Punct && t.text == "}" => true,
            _ => false,
        }
    }
}

/// Splits a macro body at depth-0 `,`/`;` and parses each chunk as an
/// expression; chunks that are not expressions (patterns, format specs)
/// fall back to bare-identifier extraction.
fn parse_macro_args(tokens: &[Token]) -> Vec<Expr> {
    let mut chunks: Vec<&[Token]> = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, t) in tokens.iter().enumerate() {
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth = depth.saturating_sub(1),
                "," | ";" if depth == 0 => {
                    chunks.push(&tokens[start..i]);
                    start = i + 1;
                }
                _ => {}
            }
        }
    }
    if start < tokens.len() {
        chunks.push(&tokens[start..]);
    }
    let mut args = Vec::new();
    for chunk in chunks {
        if chunk.is_empty() {
            continue;
        }
        let mut sub = Parser { t: chunk, pos: 0 };
        let e = sub.parse_expr(false);
        if sub.pos >= chunk.len() {
            args.push(e);
        } else {
            // Not a plain expression (e.g. a `matches!` pattern): take
            // every identifier as a potential local reference.
            for t in chunk {
                if t.kind == TokenKind::Ident
                    && !matches!(t.text.as_str(), "mut" | "ref" | "move" | "_")
                {
                    args.push(Expr::Path {
                        segs: vec![t.text.clone()],
                        line: t.line,
                        col: t.col,
                    });
                }
            }
        }
    }
    args
}

/// Extracts binding names from a pattern token slice: identifiers that
/// are not path segments, struct-pattern field labels, enum/struct
/// names, keywords, or uppercase constants.
pub fn collect_pattern_bindings(tokens: &[Token]) -> Vec<String> {
    let mut names = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.kind != TokenKind::Ident {
            i += 1;
            continue;
        }
        let text = t.text.as_str();
        if matches!(text, "ref" | "mut" | "box" | "_" | "in" | "if" | "let") {
            i += 1;
            continue;
        }
        let next = tokens.get(i + 1);
        let next_is =
            |s: &str| matches!(next, Some(n) if n.kind == TokenKind::Punct && n.text == s);
        // Path segment (`a::b`), tuple-struct (`Some(`), struct pattern
        // (`Point {`).
        if next_is(":") {
            if matches!(tokens.get(i + 2), Some(n) if n.kind == TokenKind::Punct && n.text == ":") {
                // `::` — skip the whole path.
                i += 2;
                continue;
            }
            // Struct-pattern field label `f: pat` — the binding is the
            // pattern on the right.
            i += 2;
            continue;
        }
        if next_is("(") || next_is("{") {
            i += 1;
            continue;
        }
        // Uppercase idents are unit variants or constants.
        if text.chars().next().is_some_and(|c| c.is_uppercase()) {
            i += 1;
            continue;
        }
        if !names.iter().any(|n| n == text) {
            names.push(text.to_string());
        }
        i += 1;
    }
    names
}

fn join_tokens(tokens: &[Token]) -> String {
    let mut s = String::new();
    for t in tokens {
        if !s.is_empty() {
            s.push(' ');
        }
        s.push_str(&t.text);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::tokenize;

    fn parse(src: &str) -> ParsedFile {
        parse_file(&tokenize(src).tokens)
    }

    #[test]
    fn fn_signatures_and_impls() {
        let p = parse(
            "impl Foo {\n    pub fn bar(&mut self, x: u32, msg: &Message) -> u64 { x as u64 }\n}\nfn free(a: ClientId) {}\n",
        );
        assert_eq!(p.fns.len(), 2);
        let bar = &p.fns[0];
        assert_eq!(bar.name, "bar");
        assert_eq!(bar.qual.as_deref(), Some("Foo"));
        assert_eq!(bar.params.len(), 3);
        assert_eq!(bar.params[0].name, "self");
        assert!(bar.params[0].by_mut_ref);
        assert_eq!(bar.params[2].ty, "& Message");
        assert!(bar.has_ret);
        let free = &p.fns[1];
        assert_eq!(free.qual, None);
        assert_eq!(free.params[0].ty, "ClientId");
    }

    #[test]
    fn struct_fields_and_lead_lines() {
        let p =
            parse("#[derive(Debug)]\npub struct S {\n    pub peer: ClientId,\n    n: usize,\n}\n");
        assert_eq!(p.types.len(), 1);
        assert_eq!(p.types[0].name, "S");
        assert_eq!(p.types[0].lead_line, 1);
        let names: Vec<&str> = p.types[0].fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["peer", "n"]);
    }

    #[test]
    fn body_trees_see_calls_and_bindings() {
        let p = parse(
            "fn f(d: D) -> u64 {\n    let x = d.peer;\n    let y = anonymize(x);\n    for (i, v) in xs.iter().enumerate() { sink(v); }\n    y\n}\n",
        );
        let body = p.fns[0].body.as_ref().unwrap();
        assert!(matches!(&body.stmts[0], Stmt::Let { names, .. } if names == &["x"]));
        match &body.stmts[2] {
            Stmt::Expr(Expr::Loop { bindings, .. }) => {
                assert_eq!(bindings, &["i", "v"]);
            }
            other => panic!("expected loop, got {other:?}"),
        }
        assert!(matches!(body.tail.as_deref(), Some(Expr::Path { segs, .. }) if segs == &["y"]));
    }

    #[test]
    fn match_and_if_let_bindings() {
        let p = parse(
            "fn f(m: M) {\n    if let Some(v) = m.get() { use_it(v); }\n    match m { M::A { id } => h(id), M::B(x) => h(x), _ => {} }\n}\n",
        );
        let body = p.fns[0].body.as_ref().unwrap();
        match &body.stmts[0] {
            Stmt::Expr(Expr::If { bindings, .. }) => assert_eq!(bindings, &["v"]),
            other => panic!("expected if-let, got {other:?}"),
        }
        match body.tail.as_deref() {
            Some(Expr::Match { arms, .. }) => {
                assert_eq!(arms.len(), 3);
                assert_eq!(arms[0].0, vec!["id"]);
                assert_eq!(arms[1].0, vec!["x"]);
            }
            other => panic!("expected match, got {other:?}"),
        }
    }

    #[test]
    fn struct_literals_vs_blocks() {
        let p = parse(
            "fn f() {\n    let s = Point { x: 1, y: k };\n    if cond { body(); }\n    let t = Other { k, ..base };\n}\n",
        );
        let body = p.fns[0].body.as_ref().unwrap();
        match &body.stmts[0] {
            Stmt::Let {
                init: Some(Expr::Struct { name, fields, .. }),
                ..
            } => {
                assert_eq!(name, "Point");
                assert_eq!(fields.len(), 2);
            }
            other => panic!("expected struct literal, got {other:?}"),
        }
        assert!(matches!(&body.stmts[1], Stmt::Expr(Expr::If { .. })));
        match &body.stmts[2] {
            Stmt::Let {
                init: Some(Expr::Struct { fields, rest, .. }),
                ..
            } => {
                assert_eq!(fields[0].0, "k");
                assert!(rest.is_some());
            }
            other => panic!("expected functional update, got {other:?}"),
        }
    }

    #[test]
    fn macros_parse_expression_chunks() {
        let p = parse(
            "fn f(out: &mut String, id: u32) {\n    writeln!(out, \"{} {}\", i, seal(k, id));\n}\n",
        );
        let body = p.fns[0].body.as_ref().unwrap();
        match &body.stmts[0] {
            Stmt::Expr(Expr::Macro { name, args, .. }) => {
                assert_eq!(name, "writeln");
                assert!(args.len() >= 3);
                assert!(args
                    .iter()
                    .any(|a| matches!(a, Expr::Call { segs, .. } if segs == &["seal"])));
            }
            other => panic!("expected macro, got {other:?}"),
        }
    }

    #[test]
    fn shifts_generics_and_ranges_do_not_confuse() {
        let p = parse(
            "fn f(n: u64) -> u64 {\n    let a: Vec<Vec<u8>> = Vec::new();\n    let b = n << 2 >> 1;\n    for i in 0..n { g(i); }\n    b\n}\n",
        );
        let body = p.fns[0].body.as_ref().unwrap();
        assert_eq!(body.stmts.len(), 3);
        assert!(body.tail.is_some());
    }

    #[test]
    fn closures_and_method_chains() {
        let p = parse("fn f(v: Vec<u32>) -> Vec<u32> {\n    v.iter().map(|x| x + 1).collect::<Vec<u32>>()\n}\n");
        let body = p.fns[0].body.as_ref().unwrap();
        match body.tail.as_deref() {
            Some(Expr::MethodCall { name, .. }) => assert_eq!(name, "collect"),
            other => panic!("expected method chain, got {other:?}"),
        }
    }

    #[test]
    fn malformed_input_terminates() {
        // Unbalanced and nonsense input must not hang or panic.
        let _ = parse("fn f( { let = = ) } match { => }");
        let _ = parse("impl < fn fn fn");
        let _ = parse("fn g() { a.b.(c } ");
    }
}
