//! Stable machine-readable lint output: a versioned JSON schema and a
//! SARIF 2.1.0 emitter, so CI can archive and annotate findings.
//!
//! Both formats are hand-rolled (the workspace vendors no serde) and
//! deterministic: diagnostics arrive pre-sorted from
//! [`crate::lint_files`], and rule metadata is emitted in catalogue
//! order. The JSON schema is versioned via the `schema` field
//! (`etwlint-report/1`); breaking changes bump the suffix. Golden-file
//! tests in `tests/format_golden.rs` pin both formats.

use crate::engine::{json_escape, Diagnostic};
use crate::rules::rule_catalogue;
use crate::LintReport;

/// Identifier of the current JSON report schema.
pub const JSON_SCHEMA: &str = "etwlint-report/1";

/// SARIF version emitted by [`render_sarif`].
pub const SARIF_VERSION: &str = "2.1.0";

/// Renders the versioned JSON report (schema `etwlint-report/1`).
pub fn render_json_versioned(report: &LintReport) -> String {
    let mut out = String::from("{\"schema\":\"");
    out.push_str(JSON_SCHEMA);
    out.push_str("\",\"files_scanned\":");
    out.push_str(&report.files_scanned.to_string());
    out.push_str(",\"clean\":");
    out.push_str(if report.is_clean() { "true" } else { "false" });
    out.push_str(",\"diagnostics\":[");
    push_diags(&mut out, &report.diagnostics);
    out.push_str("],\"suppressed\":[");
    push_diags(&mut out, &report.suppressed);
    out.push_str("]}");
    out
}

fn push_diags(out: &mut String, diags: &[Diagnostic]) {
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&d.render_json());
    }
}

/// Renders the report as a SARIF 2.1.0 log with one run. Suppressed
/// findings are included with an `inSource` suppression so viewers can
/// distinguish reviewed exceptions from clean code.
pub fn render_sarif(report: &LintReport) -> String {
    let mut out = String::from(
        "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\"version\":\"",
    );
    out.push_str(SARIF_VERSION);
    out.push_str("\",\"runs\":[{\"tool\":{\"driver\":{\"name\":\"etwlint\",\"rules\":[");
    for (i, (name, desc)) in rule_catalogue().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"id\":\"");
        out.push_str(&json_escape(name));
        out.push_str("\",\"shortDescription\":{\"text\":\"");
        out.push_str(&json_escape(desc));
        out.push_str("\"}}");
    }
    out.push_str("]}},\"results\":[");
    let mut first = true;
    for d in &report.diagnostics {
        push_sarif_result(&mut out, d, false, &mut first);
    }
    for d in &report.suppressed {
        push_sarif_result(&mut out, d, true, &mut first);
    }
    out.push_str("]}]}");
    out
}

fn push_sarif_result(out: &mut String, d: &Diagnostic, suppressed: bool, first: &mut bool) {
    if !*first {
        out.push(',');
    }
    *first = false;
    out.push_str("{\"ruleId\":\"");
    out.push_str(&json_escape(d.rule));
    out.push_str("\",\"level\":\"error\",\"message\":{\"text\":\"");
    out.push_str(&json_escape(&d.message));
    out.push_str("\"},\"locations\":[{\"physicalLocation\":{\"artifactLocation\":{\"uri\":\"");
    out.push_str(&json_escape(&d.path));
    out.push_str("\"},\"region\":{\"startLine\":");
    out.push_str(&d.line.to_string());
    out.push_str(",\"startColumn\":");
    out.push_str(&d.col.to_string());
    out.push_str("}}}]");
    if suppressed {
        out.push_str(",\"suppressions\":[{\"kind\":\"inSource\"}]");
    }
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SourceFile;
    use crate::lint_files;

    #[test]
    fn json_report_is_versioned() {
        let report = lint_files(&[SourceFile {
            rel_path: "ok.rs".into(),
            text: "fn f() {}\n".into(),
        }]);
        let json = render_json_versioned(&report);
        assert!(json.starts_with("{\"schema\":\"etwlint-report/1\""));
        assert!(json.contains("\"clean\":true"));
    }

    #[test]
    fn sarif_carries_rule_metadata_and_locations() {
        let report = lint_files(&[SourceFile {
            rel_path: "crates/core/src/pipeline.rs".into(),
            text: "fn f() { let t = SystemTime::now(); }\n".into(),
        }]);
        let sarif = render_sarif(&report);
        assert!(sarif.contains("\"version\":\"2.1.0\""));
        assert!(sarif.contains("\"id\":\"no-wall-clock\""));
        assert!(sarif.contains("\"uri\":\"crates/core/src/pipeline.rs\""));
        assert!(sarif.contains("\"startLine\":1"));
    }
}
