//! Fixture tests: for every rule, a known-bad snippet must fire with the
//! right rule/line, and the same snippet with an inline
//! `// etwlint: allow(...)` must be suppressed.

use etwlint::{lint_files, Diagnostic, SourceFile};

fn file(path: &str, text: &str) -> SourceFile {
    SourceFile {
        rel_path: path.to_string(),
        text: text.to_string(),
    }
}

fn only(diags: &[Diagnostic], rule: &str) -> Vec<(usize, usize)> {
    diags
        .iter()
        .filter(|d| d.rule == rule)
        .map(|d| (d.line, d.col))
        .collect()
}

// ---------------------------------------------------------------------------
// no-wall-clock
// ---------------------------------------------------------------------------

#[test]
fn no_wall_clock_fires_on_instant_now_and_system_time() {
    let report = lint_files(&[file(
        "crates/netsim/src/foo.rs",
        "use std::time::Instant;\n\
         fn f() { let t = Instant::now(); }\n\
         fn g() -> std::time::SystemTime { SystemTime::now() }\n",
    )]);
    let hits = only(&report.diagnostics, "no-wall-clock");
    assert_eq!(hits.len(), 3, "{:?}", report.diagnostics);
    assert_eq!(hits[0], (2, 18), "Instant::now span");
    assert!(hits.iter().any(|&(l, _)| l == 3), "SystemTime flagged");
}

#[test]
fn no_wall_clock_exempts_telemetry_bench_and_tests() {
    let src = "fn f() { let t = Instant::now(); }";
    for path in [
        "crates/telemetry/src/lib.rs",
        "crates/bench/src/lib.rs",
        "crates/core/tests/integration.rs",
        "tests/figures.rs",
    ] {
        let report = lint_files(&[file(path, src)]);
        assert!(report.diagnostics.is_empty(), "{path} should be exempt");
    }
    // ...and #[cfg(test)] modules inside covered files.
    let report = lint_files(&[file(
        "crates/netsim/src/foo.rs",
        "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { Instant::now(); }\n}\n",
    )]);
    assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
}

#[test]
fn no_wall_clock_ignores_strings_and_comments() {
    let report = lint_files(&[file(
        "crates/netsim/src/foo.rs",
        "// Instant::now() would be wrong here\nfn f() { let s = \"Instant::now SystemTime\"; }\n",
    )]);
    assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
}

#[test]
fn no_wall_clock_allow_suppresses() {
    let report = lint_files(&[file(
        "crates/netsim/src/foo.rs",
        "// etwlint: allow(no-wall-clock): operator-facing progress timer\n\
         fn f() { let t = Instant::now(); }\n",
    )]);
    assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
    assert_eq!(report.suppressed.len(), 1);
    assert_eq!(report.suppressed[0].rule, "no-wall-clock");
}

// ---------------------------------------------------------------------------
// no-panic-hot-path
// ---------------------------------------------------------------------------

#[test]
fn no_panic_hot_path_fires_in_hot_files_only() {
    let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n\
               fn g(x: Option<u8>) -> u8 { x.expect(\"set\") }\n\
               fn h() { panic!(\"boom\"); }\n\
               fn i() { unreachable!(); }\n";
    let report = lint_files(&[file("crates/core/src/pipeline.rs", src)]);
    let hits = only(&report.diagnostics, "no-panic-hot-path");
    assert_eq!(hits.len(), 4, "{:?}", report.diagnostics);
    assert_eq!(hits[0].0, 1);
    assert_eq!(hits[3].0, 4);

    // Same source off the hot path: clean.
    let report = lint_files(&[file("crates/probe/src/prober.rs", src)]);
    assert!(only(&report.diagnostics, "no-panic-hot-path").is_empty());
}

#[test]
fn no_panic_hot_path_skips_tests_and_allows() {
    let report = lint_files(&[file(
        "crates/core/src/campaign.rs",
        "#[cfg(test)]\nmod tests {\n    fn t(x: Option<u8>) { x.unwrap(); }\n}\n",
    )]);
    assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);

    let report = lint_files(&[file(
        "crates/core/src/campaign.rs",
        "fn f(x: Option<u8>) -> u8 {\n\
         \x20   // etwlint: allow(no-panic-hot-path): checked two lines up\n\
         \x20   x.unwrap()\n\
         }\n",
    )]);
    assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
    assert_eq!(report.suppressed.len(), 1);
}

#[test]
fn no_panic_hot_path_ignores_non_call_idents() {
    // `unwrap` as a plain ident (not `.unwrap(`) must not fire.
    let report = lint_files(&[file(
        "crates/core/src/config.rs",
        "fn unwrap_config() {}\nfn f() { unwrap_config(); }\n",
    )]);
    assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
}

// ---------------------------------------------------------------------------
// no-alloc-hot-loop
// ---------------------------------------------------------------------------

#[test]
fn no_alloc_hot_loop_fires_in_loops_in_hot_files_only() {
    let src = "fn f(names: &[&str]) {\n\
               \x20   for n in names {\n\
               \x20       let owned = n.to_string();\n\
               \x20       let mut v: Vec<u8> = Vec::new();\n\
               \x20       let s = format!(\"{owned}\");\n\
               \x20       v.extend(s.bytes());\n\
               \x20   }\n\
               \x20   let fine = String::new(); // outside any loop\n\
               }\n";
    let report = lint_files(&[file("crates/xmlout/src/encode.rs", src)]);
    let hits = only(&report.diagnostics, "no-alloc-hot-loop");
    assert_eq!(hits.len(), 3, "{:?}", report.diagnostics);
    assert_eq!(hits[0].0, 3, "to_string flagged");
    assert_eq!(hits[1].0, 4, "Vec::new flagged");
    assert_eq!(hits[2].0, 5, "format! flagged");

    // Same source off the hot list: clean.
    let report = lint_files(&[file("crates/analysis/src/figures.rs", src)]);
    assert!(only(&report.diagnostics, "no-alloc-hot-loop").is_empty());
}

#[test]
fn no_alloc_hot_loop_handles_while_loop_and_nesting() {
    let report = lint_files(&[file(
        "crates/core/src/pipeline.rs",
        "fn f(n: u32) {\n\
         \x20   while n > 0 {\n\
         \x20       if n == 1 { let v = vec![0u8; 4]; drop(v); }\n\
         \x20   }\n\
         \x20   loop {\n\
         \x20       let b = [1u8].to_vec();\n\
         \x20       drop(b);\n\
         \x20   }\n\
         }\n",
    )]);
    let hits = only(&report.diagnostics, "no-alloc-hot-loop");
    assert_eq!(hits.len(), 2, "{:?}", report.diagnostics);
    assert_eq!(hits[0].0, 3, "vec! inside nested if inside while");
    assert_eq!(hits[1].0, 6, "to_vec inside loop");
}

#[test]
fn no_alloc_hot_loop_ignores_impl_for_with_capacity_and_tests() {
    // `impl … for …` blocks and `Vec::with_capacity` (the sanctioned
    // pre-size / pool-miss idiom) must not fire.
    let report = lint_files(&[file(
        "crates/xmlout/src/writer.rs",
        "impl Encoder for Fast { fn go(&self) { let s = String::new(); drop(s); } }\n\
         fn pool(n: usize) { for _ in 0..n { let v: Vec<u8> = Vec::with_capacity(64); drop(v); } }\n\
         #[cfg(test)]\n\
         mod tests {\n\
         \x20   fn t() { for i in 0..3 { let _ = i.to_string(); } }\n\
         }\n",
    )]);
    assert!(
        only(&report.diagnostics, "no-alloc-hot-loop").is_empty(),
        "{:?}",
        report.diagnostics
    );
}

#[test]
fn no_alloc_hot_loop_allow_suppresses() {
    let report = lint_files(&[file(
        "crates/xmlout/src/escape.rs",
        "fn f(xs: &[&str]) {\n\
         \x20   for x in xs {\n\
         \x20       // etwlint: allow(no-alloc-hot-loop): cold error path\n\
         \x20       let e = x.to_owned();\n\
         \x20       drop(e);\n\
         \x20   }\n\
         }\n",
    )]);
    assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
    assert_eq!(report.suppressed.len(), 1);
    assert_eq!(report.suppressed[0].rule, "no-alloc-hot-loop");
}

// ---------------------------------------------------------------------------
// atomics-ordering-audit
// ---------------------------------------------------------------------------

#[test]
fn ordering_audit_requires_justification() {
    let report = lint_files(&[file(
        "crates/x/src/lib.rs",
        "use std::sync::atomic::{AtomicU64, Ordering};\n\
         fn f(a: &AtomicU64) { a.fetch_add(1, Ordering::Relaxed); }\n",
    )]);
    let hits = only(&report.diagnostics, "atomics-ordering-audit");
    assert_eq!(hits.len(), 1, "{:?}", report.diagnostics);
    assert_eq!(hits[0].0, 2);
}

#[test]
fn ordering_audit_accepts_nearby_justification() {
    let report = lint_files(&[file(
        "crates/x/src/lib.rs",
        "use std::sync::atomic::{AtomicU64, Ordering};\n\
         // ordering: independent counter, read only at snapshot time\n\
         fn f(a: &AtomicU64) {\n\
         \x20   a.fetch_add(1, Ordering::Relaxed);\n\
         }\n",
    )]);
    assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
}

#[test]
fn ordering_audit_flags_seqcst_even_with_justification() {
    let report = lint_files(&[file(
        "crates/x/src/lib.rs",
        "use std::sync::atomic::{AtomicU64, Ordering};\n\
         // ordering: belt and braces\n\
         fn f(a: &AtomicU64) { a.fetch_add(1, Ordering::SeqCst); }\n",
    )]);
    let hits = only(&report.diagnostics, "atomics-ordering-audit");
    assert_eq!(
        hits.len(),
        1,
        "SeqCst must stay flagged: {:?}",
        report.diagnostics
    );

    // Only a full allow clears it.
    let report = lint_files(&[file(
        "crates/x/src/lib.rs",
        "use std::sync::atomic::{AtomicU64, Ordering};\n\
         // etwlint: allow(atomics-ordering-audit): total order required for test fixture\n\
         fn f(a: &AtomicU64) { a.fetch_add(1, Ordering::SeqCst); }\n",
    )]);
    assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
    assert_eq!(report.suppressed.len(), 1);
}

#[test]
fn ordering_audit_ignores_imports_and_cmp_ordering() {
    let report = lint_files(&[file(
        "crates/x/src/lib.rs",
        "use std::sync::atomic::Ordering::{Relaxed, SeqCst};\n\
         pub use std::sync::atomic::Ordering::Acquire;\n\
         use std::cmp::Ordering;\n\
         fn f(o: Ordering) -> bool { o == Ordering::Less }\n",
    )]);
    assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
}

// ---------------------------------------------------------------------------
// opcode-coverage
// ---------------------------------------------------------------------------

fn messages_src(extra_const: &str, dispatch_extra: &str) -> String {
    format!(
        "pub mod opcodes {{\n\
         \x20   pub const STATUS_REQ: u8 = 0x96;\n\
         \x20   pub const SEARCH_REQ: u8 = 0x98;\n\
         {extra_const}\
         }}\n\
         use opcodes::*;\n\
         pub fn opcode(m: u8) -> u8 {{\n\
         \x20   match m {{ STATUS_REQ => STATUS_REQ, SEARCH_REQ => SEARCH_REQ, x => x }}\n\
         }}\n\
         {dispatch_extra}",
    )
}

const DECODER_OK: &str = "use super::messages::opcodes::*;\n\
    pub fn validate(op: u8) -> bool { matches!(op, STATUS_REQ | SEARCH_REQ) }\n";

#[test]
fn opcode_coverage_clean_when_tables_agree() {
    let report = lint_files(&[
        file("crates/edonkey/src/messages.rs", &messages_src("", "")),
        file("crates/edonkey/src/decoder.rs", DECODER_OK),
        file(
            "crates/edonkey/src/corrupt.rs",
            "pub fn unknown(r: u8) -> u8 { 0x40 + (r % 0x3f) }\nconst RANGE: std::ops::Range<u8> = 0x40..0x7f;\n",
        ),
    ]);
    assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
}

#[test]
fn opcode_coverage_flags_opcode_missing_from_decoder() {
    let report = lint_files(&[
        file(
            "crates/edonkey/src/messages.rs",
            &messages_src(
                "    pub const OFFER_FILES: u8 = 0x15;\n",
                "pub fn encode_offer() -> u8 { OFFER_FILES }\n",
            ),
        ),
        file("crates/edonkey/src/decoder.rs", DECODER_OK),
    ]);
    let hits: Vec<&etwlint::Diagnostic> = report
        .diagnostics
        .iter()
        .filter(|d| d.rule == "opcode-coverage")
        .collect();
    assert_eq!(hits.len(), 1, "{:?}", report.diagnostics);
    assert!(hits[0].message.contains("OFFER_FILES"));
    assert!(hits[0].message.contains("never matched"));
    assert_eq!(hits[0].path, "crates/edonkey/src/messages.rs");
    assert_eq!(hits[0].line, 4, "anchored at the const declaration");
}

#[test]
fn opcode_coverage_flags_opcode_unused_outside_block() {
    let report = lint_files(&[
        file(
            "crates/edonkey/src/messages.rs",
            &messages_src("    pub const GHOST: u8 = 0xa9;\n", ""),
        ),
        file(
            "crates/edonkey/src/decoder.rs",
            "use super::messages::opcodes::*;\n\
             pub fn validate(op: u8) -> bool { matches!(op, STATUS_REQ | SEARCH_REQ | GHOST) }\n",
        ),
    ]);
    let hits: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.rule == "opcode-coverage")
        .collect();
    assert_eq!(hits.len(), 1, "{:?}", report.diagnostics);
    assert!(hits[0].message.contains("never used"));
}

#[test]
fn opcode_coverage_flags_overlap_with_corrupt_range() {
    let report = lint_files(&[
        file(
            "crates/edonkey/src/messages.rs",
            &messages_src(
                "    pub const COLLIDER: u8 = 0x45;\n",
                "pub fn enc() -> u8 { COLLIDER }\n",
            ),
        ),
        file(
            "crates/edonkey/src/decoder.rs",
            "use super::messages::opcodes::*;\n\
             pub fn validate(op: u8) -> bool { matches!(op, STATUS_REQ | SEARCH_REQ | COLLIDER) }\n",
        ),
        file(
            "crates/edonkey/src/corrupt.rs",
            "pub fn unknown() -> std::ops::Range<u8> { 0x40..0x7f }\n",
        ),
    ]);
    let hits: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.rule == "opcode-coverage")
        .collect();
    assert_eq!(hits.len(), 1, "{:?}", report.diagnostics);
    assert!(
        hits[0].message.contains("corrupt-injection"),
        "{}",
        hits[0].message
    );
}

#[test]
fn opcode_coverage_allow_suppresses_at_declaration() {
    let report = lint_files(&[
        file(
            "crates/edonkey/src/messages.rs",
            &messages_src(
                "    // etwlint: allow(opcode-coverage): reserved, decoder support next PR\n\
                 \x20   pub const RESERVED: u8 = 0xa9;\n",
                "pub fn enc() -> u8 { RESERVED }\n",
            ),
        ),
        file("crates/edonkey/src/decoder.rs", DECODER_OK),
    ]);
    assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
    assert_eq!(report.suppressed.len(), 1);
}

// ---------------------------------------------------------------------------
// vendored-dep-boundary
// ---------------------------------------------------------------------------

#[test]
fn vendored_dep_boundary_fires_on_path_literal() {
    let report = lint_files(&[file(
        "crates/x/src/lib.rs",
        // etwlint: allow(vendored-dep-boundary): fixture for the rule under test
        "#[path = \"../../../vendor/rand/src/lib.rs\"]\nmod rand_inline;\n",
    )]);
    let hits = only(&report.diagnostics, "vendored-dep-boundary");
    assert_eq!(hits.len(), 1, "{:?}", report.diagnostics);
    assert_eq!(hits[0].0, 1);
}

#[test]
fn vendored_dep_boundary_allow_suppresses() {
    let report = lint_files(&[file(
        "crates/x/src/lib.rs",
        // etwlint: allow(vendored-dep-boundary): fixture for the rule under test
        "// etwlint: allow(vendored-dep-boundary): doc string, not an import\n\
         const NOTE: &str = \"see vendor/rand for the stand-in\";\n",
    )]);
    assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
    assert_eq!(report.suppressed.len(), 1);
}

// ---------------------------------------------------------------------------
// report plumbing
// ---------------------------------------------------------------------------

#[test]
fn diagnostics_are_sorted_and_json_renders() {
    let report = lint_files(&[
        file("crates/netsim/src/b.rs", "fn f() { Instant::now(); }\n"),
        file(
            "crates/netsim/src/a.rs",
            "fn f() { Instant::now(); }\nfn g() { Instant::now(); }\n",
        ),
    ]);
    let paths: Vec<&str> = report.diagnostics.iter().map(|d| d.path.as_str()).collect();
    assert_eq!(
        paths,
        vec![
            "crates/netsim/src/a.rs",
            "crates/netsim/src/a.rs",
            "crates/netsim/src/b.rs"
        ]
    );
    let json = report.render_json();
    assert!(json.starts_with("{\"files_scanned\":2,"));
    assert!(json.contains("\"rule\":\"no-wall-clock\""));
}
