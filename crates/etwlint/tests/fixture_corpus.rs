//! On-disk corpus of known-bad snippets under `tests/fixtures/`: one
//! file per rule plus one per taint sink family. Each fixture is linted
//! under a *virtual* path (rules are path-scoped; the corpus itself is
//! excluded from workspace scans) and must produce exactly the expected
//! diagnostic — rule, file, line, and message content.

use etwlint::{lint_files, Diagnostic, SourceFile};
use std::fs;
use std::path::Path;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

/// Lints one fixture under the virtual path its target rule scans.
fn lint_fixture(name: &str, virtual_path: &str) -> Vec<Diagnostic> {
    lint_files(&[SourceFile {
        rel_path: virtual_path.to_string(),
        text: fixture(name),
    }])
    .diagnostics
}

struct Case {
    fixture: &'static str,
    virtual_path: &'static str,
    rule: &'static str,
    line: usize,
    needle: &'static str,
}

/// One known-bad fixture per single-file rule. `line` pins the anchor;
/// `needle` pins the message.
const RULE_CASES: &[Case] = &[
    Case {
        fixture: "no_wall_clock.rs",
        virtual_path: "crates/netsim/src/fixture.rs",
        rule: "no-wall-clock",
        line: 5,
        needle: "Instant::now",
    },
    Case {
        fixture: "no_panic_hot_path.rs",
        virtual_path: "crates/core/src/pipeline.rs",
        rule: "no-panic-hot-path",
        line: 5,
        needle: "unwrap",
    },
    Case {
        fixture: "no_alloc_hot_loop.rs",
        virtual_path: "crates/xmlout/src/encode.rs",
        rule: "no-alloc-hot-loop",
        line: 6,
        needle: "to_string",
    },
    Case {
        fixture: "no_unbounded_channel.rs",
        virtual_path: "crates/core/src/pipeline.rs",
        rule: "no-unbounded-channel",
        line: 5,
        needle: "unbounded",
    },
    Case {
        fixture: "atomics_ordering_audit.rs",
        virtual_path: "crates/core/src/lib.rs",
        rule: "atomics-ordering-audit",
        line: 7,
        needle: "ordering",
    },
    Case {
        fixture: "vendored_dep_boundary.rs",
        virtual_path: "crates/core/src/lib.rs",
        rule: "vendored-dep-boundary",
        line: 4,
        needle: "vendored stand-in",
    },
];

#[test]
fn every_rule_fixture_fires_exactly_once_at_the_expected_line() {
    for case in RULE_CASES {
        let diags = lint_fixture(case.fixture, case.virtual_path);
        let hits: Vec<&Diagnostic> = diags.iter().filter(|d| d.rule == case.rule).collect();
        assert_eq!(
            hits.len(),
            1,
            "{}: expected exactly one `{}` diagnostic, got {:?}",
            case.fixture,
            case.rule,
            diags
        );
        let d = hits[0];
        assert_eq!(d.path, case.virtual_path, "{}", case.fixture);
        assert_eq!(
            d.line, case.line,
            "{}: anchored at the wrong line: {d:?}",
            case.fixture
        );
        assert!(
            d.message.contains(case.needle),
            "{}: message {:?} lacks {:?}",
            case.fixture,
            d.message,
            case.needle
        );
    }
}

#[test]
fn opcode_coverage_fixture_flags_the_unmatched_opcode() {
    let report = lint_files(&[
        SourceFile {
            rel_path: "crates/edonkey/src/messages.rs".into(),
            text: fixture("opcode_coverage/messages.rs"),
        },
        SourceFile {
            rel_path: "crates/edonkey/src/decoder.rs".into(),
            text: fixture("opcode_coverage/decoder.rs"),
        },
    ]);
    let hits: Vec<&Diagnostic> = report
        .diagnostics
        .iter()
        .filter(|d| d.rule == "opcode-coverage")
        .collect();
    assert_eq!(hits.len(), 1, "{:?}", report.diagnostics);
    assert_eq!(hits[0].path, "crates/edonkey/src/messages.rs");
    assert_eq!(hits[0].line, 4, "anchored at the const declaration");
    assert!(
        hits[0].message.contains("OFFER_FILES"),
        "{}",
        hits[0].message
    );
    assert!(
        hits[0].message.contains("never matched"),
        "{}",
        hits[0].message
    );
}

struct TaintCase {
    fixture: &'static str,
    tag: &'static str,
    source_fn: &'static str,
    sink_fn: &'static str,
}

/// One known-bad fixture per sink family the workspace declares. Each
/// diagnostic must carry the full source → sink path.
const TAINT_CASES: &[TaintCase] = &[
    TaintCase {
        fixture: "taint_xml.rs",
        tag: "xml",
        source_fn: "raw_client_id",
        sink_fn: "write_xml_field",
    },
    TaintCase {
        fixture: "taint_checkpoint.rs",
        tag: "checkpoint",
        source_fn: "appearance_order",
        sink_fn: "write_sidecar",
    },
    TaintCase {
        fixture: "taint_trace.rs",
        tag: "trace",
        source_fn: "raw_peer",
        sink_fn: "write_payload",
    },
    TaintCase {
        fixture: "taint_telemetry.rs",
        tag: "telemetry",
        source_fn: "raw_file_prefix",
        sink_fn: "render_metric",
    },
    TaintCase {
        fixture: "taint_ops_http.rs",
        tag: "ops-http",
        source_fn: "raw_client_id",
        sink_fn: "respond",
    },
    TaintCase {
        fixture: "taint_net.rs",
        tag: "net",
        source_fn: "raw_client_id",
        sink_fn: "send_datagram",
    },
];

#[test]
fn every_taint_sink_family_fixture_reports_the_full_path() {
    for case in TAINT_CASES {
        let diags = lint_fixture(case.fixture, "crates/fixture/src/lib.rs");
        let hits: Vec<&Diagnostic> = diags.iter().filter(|d| d.rule == "taint").collect();
        assert!(
            !hits.is_empty(),
            "{}: expected a taint diagnostic, got {diags:?}",
            case.fixture
        );
        let d = hits[0];
        assert!(
            d.message.contains(&format!("`{}` sink", case.tag)),
            "{}: message {:?} lacks the `{}` tag",
            case.fixture,
            d.message,
            case.tag
        );
        assert!(
            d.message.contains(&format!("source `{}`", case.source_fn)),
            "{}: path start missing from {:?}",
            case.fixture,
            d.message
        );
        assert!(
            d.message.contains(&format!("sink `{}`", case.sink_fn)),
            "{}: path end missing from {:?}",
            case.fixture,
            d.message
        );
    }
}

#[test]
fn interprocedural_fixture_names_the_intermediate_hop() {
    let diags = lint_fixture("taint_ops_http.rs", "crates/fixture/src/lib.rs");
    assert!(
        diags
            .iter()
            .any(|d| d.rule == "taint" && d.message.contains("via `render_row`")),
        "the ops-http fixture leaks through `render_row`; the path must say so: {diags:?}"
    );
}

#[test]
fn corpus_is_invisible_to_the_workspace_scan() {
    // The corpus lives inside the workspace but must never reach the
    // self-scan: every fixture violates a rule by design.
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = etwlint::find_workspace_root(here).expect("workspace root above etwlint");
    let files = etwlint::collect_sources(&root).expect("workspace scan");
    assert!(
        files
            .iter()
            .all(|f| !f.rel_path.contains("tests/fixtures/")),
        "fixture corpus leaked into the workspace scan"
    );
}
