//! Self-test: the workspace must lint clean. This is the same check the
//! ci.sh stage performs, kept as a test so `cargo test` alone catches a
//! new violation, and so every `// etwlint: allow` in tree is forced to
//! survive review here.

use std::path::Path;

#[test]
fn workspace_has_zero_unsuppressed_diagnostics() {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = etwlint::find_workspace_root(here).expect("workspace root above etwlint");
    let report = etwlint::lint_workspace(&root).expect("workspace scan");
    assert!(
        report.files_scanned > 30,
        "scan looks truncated: only {} files",
        report.files_scanned
    );
    assert!(
        report.diagnostics.is_empty(),
        "workspace must lint clean; fix or justify:\n{}",
        report
            .diagnostics
            .iter()
            .map(|d| d.render())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn workspace_opcode_tables_present() {
    // Guard against the opcode-coverage rule silently no-opping because a
    // file moved: the real messages/decoder/corrupt sources must all be in
    // the scan set.
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = etwlint::find_workspace_root(here).expect("workspace root above etwlint");
    let files = etwlint::collect_sources(&root).expect("workspace scan");
    for needed in [
        "crates/edonkey/src/messages.rs",
        "crates/edonkey/src/decoder.rs",
        "crates/edonkey/src/corrupt.rs",
    ] {
        assert!(
            files.iter().any(|f| f.rel_path == needed),
            "{needed} missing from scan — opcode-coverage would no-op"
        );
    }
}
