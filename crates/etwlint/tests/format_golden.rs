//! Golden-file tests pinning the machine-readable output formats: the
//! versioned JSON report (`etwlint-report/1`) and the SARIF 2.1.0 log.
//! Any byte-level drift in either format is a schema change and must be
//! deliberate: regenerate with `UPDATE_GOLDEN=1 cargo test -p etwlint
//! --test format_golden` and review the diff.

use etwlint::output::{render_json_versioned, render_sarif};
use etwlint::{lint_files, LintReport, SourceFile};
use std::fs;
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// A small deterministic report: one taint leak (from the fixture
/// corpus), one wall-clock hit, and one reviewed suppression.
fn sample_report() -> LintReport {
    let taint = fs::read_to_string(
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/taint_xml.rs"),
    )
    .expect("taint fixture");
    lint_files(&[
        SourceFile {
            rel_path: "crates/fixture/src/lib.rs".into(),
            text: taint,
        },
        SourceFile {
            rel_path: "crates/netsim/src/clock.rs".into(),
            text: "fn bad() { let t = Instant::now(); }\n\
                   // etwlint: allow(no-wall-clock): reviewed fixture exception\n\
                   fn excused() { let t = Instant::now(); }\n"
                .into(),
        },
    ])
}

fn check(name: &str, rendered: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        fs::write(&path, rendered).expect("write golden");
        return;
    }
    let golden = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{}: {e}; run with UPDATE_GOLDEN=1 once", path.display()));
    assert_eq!(
        rendered,
        golden.trim_end_matches('\n'),
        "{name} drifted from its golden file; if the schema change is \
         deliberate, regenerate with UPDATE_GOLDEN=1 and review the diff"
    );
}

#[test]
fn json_report_matches_golden() {
    check("report.json", &render_json_versioned(&sample_report()));
}

#[test]
fn sarif_log_matches_golden() {
    check("report.sarif", &render_sarif(&sample_report()));
}

#[test]
fn sample_report_exercises_all_sections() {
    // Guard the goldens against silently pinning an empty report.
    let report = sample_report();
    assert!(!report.diagnostics.is_empty(), "no diagnostics in sample");
    assert!(!report.suppressed.is_empty(), "no suppressions in sample");
    assert!(report.diagnostics.iter().any(|d| d.rule == "taint"));
}
