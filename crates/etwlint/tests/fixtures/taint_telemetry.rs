//! Known-bad: a raw identifier is exported as a metric value on the
//! Prometheus surface.

// etwlint: source(raw-id): fixture raw producer
fn raw_file_prefix() -> u32 {
    3
}

// etwlint: sink(telemetry): fixture metrics renderer
fn render_metric(_value: u32) {}

fn export() {
    let prefix = raw_file_prefix();
    render_metric(prefix);
}
