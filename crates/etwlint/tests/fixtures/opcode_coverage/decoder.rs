use super::messages::opcodes::*;
pub fn validate(op: u8) -> bool {
    matches!(op, STATUS_REQ | SEARCH_REQ)
}
