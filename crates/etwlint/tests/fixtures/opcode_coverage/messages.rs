pub mod opcodes {
    pub const STATUS_REQ: u8 = 0x96;
    pub const SEARCH_REQ: u8 = 0x98;
    pub const OFFER_FILES: u8 = 0x15;
}
use opcodes::*;
pub fn opcode(m: u8) -> u8 {
    match m {
        STATUS_REQ => STATUS_REQ,
        SEARCH_REQ => SEARCH_REQ,
        x => x,
    }
}
pub fn encode_offer() -> u8 {
    OFFER_FILES
}
