//! Known-bad: a raw clientID flows into the XML dataset sink without
//! passing the anonymiser.

// etwlint: source(raw-id): fixture raw producer
fn raw_client_id() -> u32 {
    42
}

// etwlint: sink(xml): fixture dataset emitter
fn write_xml_field(_field: u32) {}

fn leak() {
    let id = raw_client_id();
    write_xml_field(id);
}
