//! Known-bad: a raw identifier lands in a flight-recorder dump payload.

// etwlint: source(raw-id): fixture raw producer
fn raw_peer() -> u32 {
    9
}

// etwlint: sink(trace): fixture dump payload writer
fn write_payload(_word: u32) {}

fn record() {
    let peer = raw_peer();
    write_payload(peer);
}
