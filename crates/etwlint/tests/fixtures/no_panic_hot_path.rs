//! Known-bad: panics on the capture hot path instead of shedding the
//! frame and counting it.

fn first_byte(frame: &[u8]) -> u8 {
    *frame.first().unwrap()
}
