//! Known-bad: reads the wall clock in capture code. The capture machine
//! is a deterministic function of its seed; wall time breaks replay.

fn elapsed_us() -> u64 {
    let t0 = Instant::now();
    t0.elapsed().as_micros() as u64
}
