//! Known-bad: an atomic access with no `// ordering:` justification
//! comment nearby.

use std::sync::atomic::{AtomicU64, Ordering};

fn bump(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::Relaxed);
}
