//! Known-bad: Rust source reaching into the vendored stand-in tree.
//! Only Cargo.toml path dependencies may point there.

const STAND_IN: &str = "vendor/rand/src/lib.rs";
