//! Known-bad: a raw identifier is served on the ops HTTP surface
//! through an interprocedural hop.

// etwlint: source(raw-id): fixture raw producer
fn raw_client_id() -> u32 {
    11
}

// etwlint: sink(ops-http): fixture HTTP responder
fn respond(_body: u32) {}

fn render_row(id: u32) {
    respond(id);
}

fn serve() {
    render_row(raw_client_id());
}
