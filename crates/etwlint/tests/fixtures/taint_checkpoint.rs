//! Known-bad: a raw appearance-order table reaches the checkpoint
//! sidecar bytes without the sealing layer.

// etwlint: source(raw-id): fixture raw order table
fn appearance_order() -> u32 {
    7
}

// etwlint: sink(checkpoint): fixture sidecar writer
fn write_sidecar(_line: u32) {}

fn persist() {
    let order = appearance_order();
    write_sidecar(order);
}
