//! Known-bad: a raw identifier flows onto the wire without passing the
//! encode chokepoint (`wire_encode` in `server::net` is the only
//! sanctioned path to the socket).

// etwlint: source(raw-id): fixture raw producer
fn raw_client_id() -> u32 {
    7
}

// etwlint: sink(net): fixture socket send
fn send_datagram(_word: u32) {}

fn answer() {
    let cid = raw_client_id();
    send_datagram(cid);
}
