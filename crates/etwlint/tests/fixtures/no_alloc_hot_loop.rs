//! Known-bad: allocates per record inside a formatter loop; the encoder
//! is required to reuse its buffers in steady state.

fn render(names: &[&str]) {
    for name in names {
        let owned = name.to_string();
        drop(owned);
    }
}
