//! Known-bad: a raw unbounded channel between pipeline stages — no
//! depth gauge, no stall accounting, unbounded memory under backlog.

fn plumb() {
    let (tx, rx) = crossbeam::channel::unbounded::<u64>();
    drop((tx, rx));
}
