//! Property-based tests for the network substrate: framing round-trips,
//! fragmentation identity, capture conservation, pcap stream integrity.

use bytes::Bytes;
use etw_netsim::capture::CaptureBuffer;
use etw_netsim::clock::VirtualTime;
use etw_netsim::frag::{fragment, Reassembler};
use etw_netsim::packet::{internet_checksum, Ipv4Packet, UdpDatagram, PROTO_UDP};
use etw_netsim::pcap::{PcapReader, PcapWriter};
use proptest::prelude::*;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn arb_ipv4_packet() -> impl Strategy<Value = Ipv4Packet> {
    (
        any::<u32>(),
        any::<u32>(),
        any::<u16>(),
        any::<u8>(),
        prop::collection::vec(any::<u8>(), 0..2000),
    )
        .prop_map(|(src, dst, ident, ttl, payload)| Ipv4Packet {
            src,
            dst,
            ident,
            more_fragments: false,
            frag_offset: 0,
            ttl,
            protocol: PROTO_UDP,
            payload: Bytes::from(payload),
        })
}

proptest! {
    /// IPv4 serialisation round-trips and the checksum always verifies.
    #[test]
    fn ipv4_round_trip(pkt in arb_ipv4_packet()) {
        let raw = pkt.to_bytes();
        let parsed = Ipv4Packet::parse(&raw).expect("parse");
        prop_assert_eq!(parsed, pkt);
        // RFC 1071: checksum over a header containing its own checksum is 0.
        prop_assert_eq!(internet_checksum(&raw[..20]), 0);
    }

    /// Single-bit corruption in the IPv4 header is always detected (the
    /// internet checksum catches all 1-bit errors).
    #[test]
    fn ipv4_header_bitflip_detected(pkt in arb_ipv4_packet(),
                                    byte in 0usize..20, bit in 0u8..8) {
        let mut raw = pkt.to_bytes();
        raw[byte] ^= 1 << bit;
        let out = Ipv4Packet::parse(&raw);
        // Either rejected outright, or (if the flip hit version/IHL and
        // produced a different but self-consistent framing) not equal to
        // the original — it must never parse back identical.
        if let Ok(p) = out {
            prop_assert_ne!(p, pkt);
        }
    }

    /// UDP datagrams survive the full stack: UDP → IP → bytes → IP → UDP.
    #[test]
    fn udp_stack_round_trip(
        src_ip in any::<u32>(), dst_ip in any::<u32>(),
        src_port in any::<u16>(), dst_port in any::<u16>(),
        payload in prop::collection::vec(any::<u8>(), 0..1400),
    ) {
        let udp = UdpDatagram {
            src_ip, dst_ip, src_port, dst_port,
            payload: Bytes::from(payload),
        };
        let ip = Ipv4Packet {
            src: src_ip, dst: dst_ip, ident: 1,
            more_fragments: false, frag_offset: 0,
            ttl: 64, protocol: PROTO_UDP,
            payload: Bytes::from(udp.to_bytes()),
        };
        let parsed_ip = Ipv4Packet::parse(&ip.to_bytes()).expect("ip");
        let got = UdpDatagram::parse(&parsed_ip).expect("udp");
        prop_assert_eq!(got, udp);
    }

    /// Fragmentation + reassembly is the identity for any payload and any
    /// delivery order.
    #[test]
    fn fragment_reassemble_identity(
        payload in prop::collection::vec(any::<u8>(), 1..12_000),
        mtu in 576usize..1500,
        order_seed in any::<u64>(),
    ) {
        let pkt = Ipv4Packet {
            src: 1, dst: 2, ident: 99,
            more_fragments: false, frag_offset: 0,
            ttl: 64, protocol: PROTO_UDP,
            payload: Bytes::from(payload),
        };
        let mut frags = fragment(&pkt, mtu);
        let mut rng = rand::rngs::StdRng::seed_from_u64(order_seed);
        frags.shuffle(&mut rng);
        let mut reasm = Reassembler::with_default_timeout();
        let mut done = None;
        for f in frags {
            if let Some(d) = reasm.push(VirtualTime::ZERO, f) {
                prop_assert!(done.is_none(), "double completion");
                done = Some(d);
            }
        }
        let d = done.expect("reassembled");
        prop_assert_eq!(d.payload, pkt.payload);
        prop_assert_eq!(reasm.pending(), 0);
    }

    /// Fragments are each wire-legal: they fit the MTU and non-last
    /// fragments carry 8-byte-aligned payloads.
    #[test]
    fn fragments_are_wire_legal(
        len in 1usize..10_000,
        mtu in 576usize..1500,
    ) {
        let pkt = Ipv4Packet {
            src: 1, dst: 2, ident: 0,
            more_fragments: false, frag_offset: 0,
            ttl: 64, protocol: PROTO_UDP,
            payload: Bytes::from(vec![0xaa; len]),
        };
        let frags = fragment(&pkt, mtu);
        let n = frags.len();
        let mut covered = 0usize;
        for (i, f) in frags.iter().enumerate() {
            prop_assert!(f.payload.len() + 20 <= mtu);
            if i + 1 != n {
                prop_assert_eq!(f.payload.len() % 8, 0);
                prop_assert!(f.more_fragments);
            } else {
                prop_assert!(!f.more_fragments || n == 1);
            }
            prop_assert_eq!(f.frag_offset as usize * 8, covered);
            covered += f.payload.len();
        }
        prop_assert_eq!(covered, len);
    }

    /// Capture conservation: offered = captured + lost, under any load.
    #[test]
    fn capture_conservation(
        capacity in 1u64..5_000,
        drain in 1.0f64..50_000.0,
        loads in prop::collection::vec(0u64..5_000, 1..60),
    ) {
        let mut buf = CaptureBuffer::new(capacity, drain);
        let mut offered = 0u64;
        for (s, &n) in loads.iter().enumerate() {
            offered += n;
            buf.offer_batch(VirtualTime::from_secs(s as u64), n);
        }
        prop_assert_eq!(buf.captured() + buf.lost(), offered);
        prop_assert!(buf.occupancy() <= capacity as f64);
    }

    /// pcap write → read returns exactly the frames written (modulo
    /// snaplen truncation, which is reflected in orig_len).
    #[test]
    fn pcap_round_trip(
        frames in prop::collection::vec(
            (any::<u32>(), prop::collection::vec(any::<u8>(), 0..300)), 0..30),
        snaplen in 1u32..400,
    ) {
        let mut w = PcapWriter::new(snaplen);
        for (ts, frame) in &frames {
            w.write(VirtualTime(*ts as u64), frame);
        }
        let bytes = w.into_bytes();
        let recs: Vec<_> = PcapReader::new(&bytes)
            .unwrap()
            .collect::<Result<_, _>>()
            .unwrap();
        prop_assert_eq!(recs.len(), frames.len());
        for (rec, (ts, frame)) in recs.iter().zip(&frames) {
            prop_assert_eq!(rec.ts, VirtualTime(*ts as u64));
            prop_assert_eq!(rec.orig_len as usize, frame.len());
            let keep = (snaplen as usize).min(frame.len());
            prop_assert_eq!(&rec.data[..], &frame[..keep]);
        }
    }
}
