//! Byte-accurate Ethernet / IPv4 / UDP packet model.
//!
//! The capture in the paper operates at the Ethernet level via libpcap and
//! must be decoded up through IP and UDP before the eDonkey payload is
//! reachable (§2.2–2.3). This module provides the same layering for the
//! simulation: real header layouts, real checksums, real parsing errors.

use bytes::Bytes;

/// IPv4 protocol number for UDP.
pub const PROTO_UDP: u8 = 17;
/// IPv4 protocol number for TCP (present in traffic, ignored by the
/// decoder just as the paper restricts itself to UDP).
pub const PROTO_TCP: u8 = 6;
/// EtherType for IPv4.
pub const ETHERTYPE_IPV4: u16 = 0x0800;
/// Ethernet header length (no VLAN tags in our model).
pub const ETH_HEADER_LEN: usize = 14;
/// Minimal IPv4 header length (no options in our model).
pub const IPV4_HEADER_LEN: usize = 20;
/// UDP header length.
pub const UDP_HEADER_LEN: usize = 8;

/// Errors from parsing raw frames.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ParseError {
    /// Frame shorter than the header being parsed.
    Short,
    /// EtherType is not IPv4.
    NotIpv4,
    /// IP version field is not 4 or header length invalid.
    BadIpHeader,
    /// IPv4 header checksum mismatch.
    BadIpChecksum,
    /// Total-length field disagrees with the actual buffer.
    BadLength,
    /// IP protocol is not UDP.
    NotUdp,
    /// UDP length field inconsistent.
    BadUdpLength,
}

/// An Ethernet frame (addresses + ethertype + payload).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EthernetFrame {
    /// Destination MAC.
    pub dst: [u8; 6],
    /// Source MAC.
    pub src: [u8; 6],
    /// EtherType.
    pub ethertype: u16,
    /// Layer-3 payload.
    pub payload: Bytes,
}

impl EthernetFrame {
    /// Wraps an IPv4 payload in a frame with fixed simulation MACs.
    pub fn ipv4(payload: Bytes) -> Self {
        EthernetFrame {
            dst: [0x02, 0, 0, 0, 0, 0x01],
            src: [0x02, 0, 0, 0, 0, 0x02],
            ethertype: ETHERTYPE_IPV4,
            payload,
        }
    }

    /// Serialises the frame.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(ETH_HEADER_LEN + self.payload.len());
        out.extend_from_slice(&self.dst);
        out.extend_from_slice(&self.src);
        out.extend_from_slice(&self.ethertype.to_be_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Parses a frame.
    pub fn parse(buf: &[u8]) -> Result<Self, ParseError> {
        if buf.len() < ETH_HEADER_LEN {
            return Err(ParseError::Short);
        }
        let mut dst = [0u8; 6];
        let mut src = [0u8; 6];
        dst.copy_from_slice(&buf[0..6]);
        src.copy_from_slice(&buf[6..12]);
        let ethertype = u16::from_be_bytes([buf[12], buf[13]]);
        Ok(EthernetFrame {
            dst,
            src,
            ethertype,
            payload: Bytes::copy_from_slice(&buf[ETH_HEADER_LEN..]),
        })
    }
}

/// An IPv4 packet (fixed 20-byte header, no options).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Ipv4Packet {
    /// Source address (big-endian octets as u32).
    pub src: u32,
    /// Destination address.
    pub dst: u32,
    /// Identification field (shared by all fragments of a datagram).
    pub ident: u16,
    /// "More fragments" flag.
    pub more_fragments: bool,
    /// Fragment offset in 8-byte units.
    pub frag_offset: u16,
    /// Time to live.
    pub ttl: u8,
    /// Payload protocol.
    pub protocol: u8,
    /// Layer-4 payload (or fragment thereof).
    pub payload: Bytes,
}

/// RFC 1071 internet checksum over `data` (with optional initial sum).
pub fn internet_checksum(data: &[u8]) -> u16 {
    let mut sum = 0u32;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

impl Ipv4Packet {
    /// Serialises header + payload, computing the header checksum.
    pub fn to_bytes(&self) -> Vec<u8> {
        let total_len = IPV4_HEADER_LEN + self.payload.len();
        debug_assert!(total_len <= u16::MAX as usize);
        let mut h = [0u8; IPV4_HEADER_LEN];
        h[0] = 0x45; // version 4, ihl 5
        h[1] = 0; // tos
        h[2..4].copy_from_slice(&(total_len as u16).to_be_bytes());
        h[4..6].copy_from_slice(&self.ident.to_be_bytes());
        let flags_frag = ((self.more_fragments as u16) << 13) | (self.frag_offset & 0x1fff);
        h[6..8].copy_from_slice(&flags_frag.to_be_bytes());
        h[8] = self.ttl;
        h[9] = self.protocol;
        // checksum zero for computation
        h[12..16].copy_from_slice(&self.src.to_be_bytes());
        h[16..20].copy_from_slice(&self.dst.to_be_bytes());
        let csum = internet_checksum(&h);
        h[10..12].copy_from_slice(&csum.to_be_bytes());
        let mut out = Vec::with_capacity(total_len);
        out.extend_from_slice(&h);
        out.extend_from_slice(&self.payload);
        out
    }

    /// Parses and verifies a packet.
    pub fn parse(buf: &[u8]) -> Result<Self, ParseError> {
        if buf.len() < IPV4_HEADER_LEN {
            return Err(ParseError::Short);
        }
        if buf[0] >> 4 != 4 {
            return Err(ParseError::BadIpHeader);
        }
        let ihl = (buf[0] & 0x0f) as usize * 4;
        if ihl < IPV4_HEADER_LEN || buf.len() < ihl {
            return Err(ParseError::BadIpHeader);
        }
        if internet_checksum(&buf[..ihl]) != 0 {
            return Err(ParseError::BadIpChecksum);
        }
        let total_len = u16::from_be_bytes([buf[2], buf[3]]) as usize;
        if total_len < ihl || total_len > buf.len() {
            return Err(ParseError::BadLength);
        }
        let flags_frag = u16::from_be_bytes([buf[6], buf[7]]);
        Ok(Ipv4Packet {
            src: u32::from_be_bytes([buf[12], buf[13], buf[14], buf[15]]),
            dst: u32::from_be_bytes([buf[16], buf[17], buf[18], buf[19]]),
            ident: u16::from_be_bytes([buf[4], buf[5]]),
            more_fragments: flags_frag & 0x2000 != 0,
            frag_offset: flags_frag & 0x1fff,
            ttl: buf[8],
            protocol: buf[9],
            payload: Bytes::copy_from_slice(&buf[ihl..total_len]),
        })
    }

    /// True when this packet is a fragment (either more to come, or a
    /// non-zero offset).
    pub fn is_fragment(&self) -> bool {
        self.more_fragments || self.frag_offset != 0
    }
}

/// A UDP datagram with its addressing 4-tuple.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct UdpDatagram {
    /// Source IPv4 address.
    pub src_ip: u32,
    /// Destination IPv4 address.
    pub dst_ip: u32,
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Application payload.
    pub payload: Bytes,
}

impl UdpDatagram {
    /// Serialises header + payload with the RFC 768 pseudo-header
    /// checksum.
    pub fn to_bytes(&self) -> Vec<u8> {
        let udp_len = UDP_HEADER_LEN + self.payload.len();
        debug_assert!(udp_len <= u16::MAX as usize);
        let mut out = Vec::with_capacity(udp_len);
        out.extend_from_slice(&self.src_port.to_be_bytes());
        out.extend_from_slice(&self.dst_port.to_be_bytes());
        out.extend_from_slice(&(udp_len as u16).to_be_bytes());
        out.extend_from_slice(&[0, 0]); // checksum placeholder
        out.extend_from_slice(&self.payload);
        let csum = self.checksum(&out);
        // RFC 768: transmitted-zero checksum means "not computed"; an
        // actual zero is sent as 0xffff.
        let csum = if csum == 0 { 0xffff } else { csum };
        out[6..8].copy_from_slice(&csum.to_be_bytes());
        out
    }

    fn checksum(&self, udp_bytes: &[u8]) -> u16 {
        let mut pseudo = Vec::with_capacity(12 + udp_bytes.len() + 1);
        pseudo.extend_from_slice(&self.src_ip.to_be_bytes());
        pseudo.extend_from_slice(&self.dst_ip.to_be_bytes());
        pseudo.push(0);
        pseudo.push(PROTO_UDP);
        pseudo.extend_from_slice(&(udp_bytes.len() as u16).to_be_bytes());
        pseudo.extend_from_slice(udp_bytes);
        internet_checksum(&pseudo)
    }

    /// Parses a UDP datagram out of a reassembled IPv4 payload.
    pub fn parse(ip: &Ipv4Packet) -> Result<Self, ParseError> {
        if ip.protocol != PROTO_UDP {
            return Err(ParseError::NotUdp);
        }
        let buf = &ip.payload;
        if buf.len() < UDP_HEADER_LEN {
            return Err(ParseError::Short);
        }
        let udp_len = u16::from_be_bytes([buf[4], buf[5]]) as usize;
        if udp_len < UDP_HEADER_LEN || udp_len > buf.len() {
            return Err(ParseError::BadUdpLength);
        }
        Ok(UdpDatagram {
            src_ip: ip.src,
            dst_ip: ip.dst,
            src_port: u16::from_be_bytes([buf[0], buf[1]]),
            dst_port: u16::from_be_bytes([buf[2], buf[3]]),
            payload: ip.payload.slice(UDP_HEADER_LEN..udp_len),
        })
    }

    /// Verifies the checksum of serialised UDP bytes against this
    /// datagram's pseudo-header (test/diagnostic helper).
    pub fn verify_checksum(&self, udp_bytes: &[u8]) -> bool {
        self.checksum(udp_bytes) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_udp() -> UdpDatagram {
        UdpDatagram {
            src_ip: u32::from_be_bytes([192, 168, 1, 10]),
            dst_ip: u32::from_be_bytes([82, 5, 5, 5]),
            src_port: 4672,
            dst_port: 4665,
            payload: Bytes::from_static(b"\xE3\x96\x01\x02\x03\x04"),
        }
    }

    #[test]
    fn rfc1071_checksum_known_vector() {
        // Classic example from RFC 1071 discussions:
        // words 0x0001 0xf203 0xf4f5 0xf6f7 → checksum 0x220d.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(internet_checksum(&data), 0x220d);
    }

    #[test]
    fn checksum_of_zero_buffer() {
        assert_eq!(internet_checksum(&[]), 0xffff);
    }

    #[test]
    fn odd_length_checksum_pads_with_zero() {
        let even = internet_checksum(&[0xab, 0x00]);
        let odd = internet_checksum(&[0xab]);
        assert_eq!(even, odd);
    }

    #[test]
    fn udp_round_trip_via_ip() {
        let udp = sample_udp();
        let ip = Ipv4Packet {
            src: udp.src_ip,
            dst: udp.dst_ip,
            ident: 42,
            more_fragments: false,
            frag_offset: 0,
            ttl: 64,
            protocol: PROTO_UDP,
            payload: Bytes::from(udp.to_bytes()),
        };
        let raw = ip.to_bytes();
        let parsed_ip = Ipv4Packet::parse(&raw).unwrap();
        assert_eq!(parsed_ip, ip);
        let parsed_udp = UdpDatagram::parse(&parsed_ip).unwrap();
        assert_eq!(parsed_udp, udp);
    }

    #[test]
    fn udp_checksum_verifies() {
        let udp = sample_udp();
        let raw = udp.to_bytes();
        assert!(udp.verify_checksum(&raw));
        let mut bad = raw.clone();
        bad[9] ^= 0xff;
        assert!(!udp.verify_checksum(&bad));
    }

    #[test]
    fn ip_checksum_detects_corruption() {
        let ip = Ipv4Packet {
            src: 1,
            dst: 2,
            ident: 7,
            more_fragments: false,
            frag_offset: 0,
            ttl: 64,
            protocol: PROTO_UDP,
            payload: Bytes::from_static(b"hello"),
        };
        let mut raw = ip.to_bytes();
        raw[8] = raw[8].wrapping_add(1); // ttl flip
        assert_eq!(Ipv4Packet::parse(&raw), Err(ParseError::BadIpChecksum));
    }

    #[test]
    fn ethernet_round_trip() {
        let f = EthernetFrame::ipv4(Bytes::from_static(b"ip-bytes"));
        let raw = f.to_bytes();
        assert_eq!(EthernetFrame::parse(&raw).unwrap(), f);
    }

    #[test]
    fn short_buffers_rejected() {
        assert_eq!(EthernetFrame::parse(&[0; 5]), Err(ParseError::Short));
        assert_eq!(Ipv4Packet::parse(&[0x45; 10]), Err(ParseError::Short));
    }

    #[test]
    fn non_ipv4_version_rejected() {
        let mut raw = Ipv4Packet {
            src: 1,
            dst: 2,
            ident: 0,
            more_fragments: false,
            frag_offset: 0,
            ttl: 1,
            protocol: PROTO_UDP,
            payload: Bytes::new(),
        }
        .to_bytes();
        raw[0] = 0x65; // version 6
        assert_eq!(Ipv4Packet::parse(&raw), Err(ParseError::BadIpHeader));
    }

    #[test]
    fn fragment_flags_round_trip() {
        let ip = Ipv4Packet {
            src: 1,
            dst: 2,
            ident: 9,
            more_fragments: true,
            frag_offset: 185, // 1480/8
            ttl: 64,
            protocol: PROTO_UDP,
            payload: Bytes::from_static(&[0u8; 16]),
        };
        let parsed = Ipv4Packet::parse(&ip.to_bytes()).unwrap();
        assert!(parsed.is_fragment());
        assert!(parsed.more_fragments);
        assert_eq!(parsed.frag_offset, 185);
    }

    #[test]
    fn tcp_payload_not_parsed_as_udp() {
        let ip = Ipv4Packet {
            src: 1,
            dst: 2,
            ident: 0,
            more_fragments: false,
            frag_offset: 0,
            ttl: 64,
            protocol: PROTO_TCP,
            payload: Bytes::from_static(&[0u8; 20]),
        };
        assert_eq!(UdpDatagram::parse(&ip), Err(ParseError::NotUdp));
    }

    #[test]
    fn udp_length_field_validated() {
        let udp = sample_udp();
        let mut raw = udp.to_bytes();
        raw[4..6].copy_from_slice(&1u16.to_be_bytes()); // impossible length
        let ip = Ipv4Packet {
            src: udp.src_ip,
            dst: udp.dst_ip,
            ident: 0,
            more_fragments: false,
            frag_offset: 0,
            ttl: 64,
            protocol: PROTO_UDP,
            payload: Bytes::from(raw),
        };
        assert_eq!(UdpDatagram::parse(&ip), Err(ParseError::BadUdpLength));
    }

    #[test]
    fn total_length_shorter_than_buffer_truncates_payload() {
        // Ethernet padding: IP total_len < frame payload length is legal;
        // the parser must honour total_len.
        let ip = Ipv4Packet {
            src: 1,
            dst: 2,
            ident: 0,
            more_fragments: false,
            frag_offset: 0,
            ttl: 64,
            protocol: PROTO_UDP,
            payload: Bytes::from_static(b"abc"),
        };
        let mut raw = ip.to_bytes();
        raw.extend_from_slice(&[0u8; 7]); // ethernet pad bytes
        let parsed = Ipv4Packet::parse(&raw).unwrap();
        assert_eq!(&parsed.payload[..], b"abc");
    }
}
