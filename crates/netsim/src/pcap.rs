//! pcap file framing (the on-disk format of the paper's first stage).
//!
//! The capture machine receives "a copy of the traffic" and stores it in
//! libpcap's classic format before decoding (paper Fig. 1: "PCAP capture →
//! PCAP decoding and formatting"). We implement the original pcap file
//! layout — magic `0xa1b2c3d4`, version 2.4, ethernet link type — so the
//! simulated capture stream is byte-compatible with the real ecosystem.

use crate::clock::VirtualTime;

/// pcap magic number (microsecond timestamps, native byte order; we write
/// little-endian, the common case the paper's x86 capture machine wrote).
pub const MAGIC: u32 = 0xa1b2_c3d4;
/// Link type: Ethernet.
pub const LINKTYPE_ETHERNET: u32 = 1;
/// Global header length.
pub const GLOBAL_HEADER_LEN: usize = 24;
/// Per-record header length.
pub const RECORD_HEADER_LEN: usize = 16;

/// Errors when reading a pcap stream.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PcapError {
    /// Stream shorter than a header.
    Short,
    /// Magic number unrecognised.
    BadMagic(u32),
    /// Record claims more captured bytes than remain.
    TruncatedRecord,
    /// caplen exceeds the file's snaplen or the original length.
    InvalidCaplen,
}

/// One captured record: a timestamp and the (possibly snaplen-truncated)
/// frame bytes, plus the original on-the-wire length.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PcapRecord {
    /// Capture timestamp.
    pub ts: VirtualTime,
    /// Original frame length on the wire.
    pub orig_len: u32,
    /// Captured bytes (`len <= orig_len`, truncated to snaplen).
    pub data: Vec<u8>,
}

/// Streaming pcap writer.
pub struct PcapWriter {
    buf: Vec<u8>,
    snaplen: u32,
    records: u64,
}

impl PcapWriter {
    /// Starts a stream with the given snaplen (65535 captures everything).
    pub fn new(snaplen: u32) -> Self {
        let mut buf = Vec::with_capacity(4096);
        buf.extend_from_slice(&MAGIC.to_le_bytes());
        buf.extend_from_slice(&2u16.to_le_bytes()); // version major
        buf.extend_from_slice(&4u16.to_le_bytes()); // version minor
        buf.extend_from_slice(&0i32.to_le_bytes()); // thiszone
        buf.extend_from_slice(&0u32.to_le_bytes()); // sigfigs
        buf.extend_from_slice(&snaplen.to_le_bytes());
        buf.extend_from_slice(&LINKTYPE_ETHERNET.to_le_bytes());
        PcapWriter {
            buf,
            snaplen,
            records: 0,
        }
    }

    /// Appends one frame, truncating to snaplen.
    pub fn write(&mut self, ts: VirtualTime, frame: &[u8]) {
        let caplen = (frame.len() as u32).min(self.snaplen);
        self.buf
            .extend_from_slice(&(ts.as_secs() as u32).to_le_bytes());
        self.buf
            .extend_from_slice(&ts.subsec_micros().to_le_bytes());
        self.buf.extend_from_slice(&caplen.to_le_bytes());
        self.buf
            .extend_from_slice(&(frame.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(&frame[..caplen as usize]);
        self.records += 1;
    }

    /// Records written so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Finishes and returns the stream bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Pull reader over a pcap byte stream.
pub struct PcapReader<'a> {
    buf: &'a [u8],
    pos: usize,
    snaplen: u32,
}

impl<'a> PcapReader<'a> {
    /// Validates the global header and positions at the first record.
    pub fn new(buf: &'a [u8]) -> Result<Self, PcapError> {
        if buf.len() < GLOBAL_HEADER_LEN {
            return Err(PcapError::Short);
        }
        let magic = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]);
        if magic != MAGIC {
            return Err(PcapError::BadMagic(magic));
        }
        let snaplen = u32::from_le_bytes([buf[16], buf[17], buf[18], buf[19]]);
        Ok(PcapReader {
            buf,
            pos: GLOBAL_HEADER_LEN,
            snaplen,
        })
    }

    /// The stream's snaplen.
    pub fn snaplen(&self) -> u32 {
        self.snaplen
    }

    /// Reads the next record, or `Ok(None)` at a clean end of stream.
    pub fn next_record(&mut self) -> Result<Option<PcapRecord>, PcapError> {
        if self.pos == self.buf.len() {
            return Ok(None);
        }
        if self.buf.len() - self.pos < RECORD_HEADER_LEN {
            return Err(PcapError::Short);
        }
        let h = &self.buf[self.pos..self.pos + RECORD_HEADER_LEN];
        let ts_sec = u32::from_le_bytes([h[0], h[1], h[2], h[3]]) as u64;
        let ts_usec = u32::from_le_bytes([h[4], h[5], h[6], h[7]]) as u64;
        let caplen = u32::from_le_bytes([h[8], h[9], h[10], h[11]]);
        let orig_len = u32::from_le_bytes([h[12], h[13], h[14], h[15]]);
        if caplen > self.snaplen || caplen > orig_len {
            return Err(PcapError::InvalidCaplen);
        }
        let start = self.pos + RECORD_HEADER_LEN;
        let end = start + caplen as usize;
        if end > self.buf.len() {
            return Err(PcapError::TruncatedRecord);
        }
        self.pos = end;
        Ok(Some(PcapRecord {
            ts: VirtualTime(ts_sec * 1_000_000 + ts_usec),
            orig_len,
            data: self.buf[start..end].to_vec(),
        }))
    }
}

impl<'a> Iterator for PcapReader<'a> {
    type Item = Result<PcapRecord, PcapError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_record().transpose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_round_trip() {
        let mut w = PcapWriter::new(65_535);
        w.write(VirtualTime(1_000_123), b"frame-one");
        w.write(VirtualTime(2_500_000), b"frame-two-longer");
        assert_eq!(w.records(), 2);
        let bytes = w.into_bytes();
        let mut r = PcapReader::new(&bytes).unwrap();
        let a = r.next_record().unwrap().unwrap();
        assert_eq!(a.ts, VirtualTime(1_000_123));
        assert_eq!(a.data, b"frame-one");
        assert_eq!(a.orig_len, 9);
        let b = r.next_record().unwrap().unwrap();
        assert_eq!(b.data, b"frame-two-longer");
        assert!(r.next_record().unwrap().is_none());
    }

    #[test]
    fn snaplen_truncates_but_keeps_orig_len() {
        let mut w = PcapWriter::new(4);
        w.write(VirtualTime::ZERO, b"0123456789");
        let bytes = w.into_bytes();
        let mut r = PcapReader::new(&bytes).unwrap();
        assert_eq!(r.snaplen(), 4);
        let rec = r.next_record().unwrap().unwrap();
        assert_eq!(rec.data, b"0123");
        assert_eq!(rec.orig_len, 10);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = PcapWriter::new(100).into_bytes();
        bytes[0] ^= 0xff;
        match PcapReader::new(&bytes) {
            Err(PcapError::BadMagic(_)) => {}
            Err(other) => panic!("wrong error: {other:?}"),
            Ok(_) => panic!("bad magic accepted"),
        }
    }

    #[test]
    fn truncated_stream_detected() {
        let mut w = PcapWriter::new(100);
        w.write(VirtualTime::ZERO, b"abcdef");
        let bytes = w.into_bytes();
        // Cut inside the record data.
        let cut = &bytes[..bytes.len() - 3];
        let mut r = PcapReader::new(cut).unwrap();
        assert_eq!(r.next_record(), Err(PcapError::TruncatedRecord));
    }

    #[test]
    fn header_too_short() {
        assert_eq!(PcapReader::new(&[0u8; 10]).err(), Some(PcapError::Short));
    }

    #[test]
    fn iterator_interface() {
        let mut w = PcapWriter::new(65_535);
        for i in 0..5u8 {
            w.write(VirtualTime::from_secs(i as u64), &[i; 3]);
        }
        let bytes = w.into_bytes();
        let recs: Vec<_> = PcapReader::new(&bytes)
            .unwrap()
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(recs.len(), 5);
        assert_eq!(recs[4].data, vec![4; 3]);
    }

    #[test]
    fn caplen_exceeding_snaplen_rejected() {
        // Hand-craft a record whose caplen lies about the snaplen.
        let mut w = PcapWriter::new(8);
        w.write(VirtualTime::ZERO, b"x");
        let mut bytes = w.into_bytes();
        // caplen field of record 0 is at GLOBAL_HEADER_LEN + 8.
        let off = GLOBAL_HEADER_LEN + 8;
        bytes[off..off + 4].copy_from_slice(&100u32.to_le_bytes());
        let mut r = PcapReader::new(&bytes).unwrap();
        assert_eq!(r.next_record(), Err(PcapError::InvalidCaplen));
    }
}
