//! IPv4 fragmentation and reassembly.
//!
//! The paper's capture saw 2 981 fragmented UDP packets among 14 G (§2.3);
//! rare, but the decoding software must handle them, so the simulation
//! generates and reassembles real fragments. Reassembly follows the
//! classical hole-filling model keyed by (src, dst, ident, protocol), with
//! a timeout that discards stale partial datagrams (fragment loss).

use crate::clock::{Duration, VirtualTime};
use crate::packet::Ipv4Packet;
use bytes::Bytes;
use std::collections::HashMap;

/// Fragments `packet` into IPv4 fragments no larger than `mtu` bytes of
/// total packet size (header + payload). Returns the packet unchanged if
/// it fits. Panics if `mtu` cannot carry the 20-byte header plus one
/// 8-byte payload unit.
pub fn fragment(packet: &Ipv4Packet, mtu: usize) -> Vec<Ipv4Packet> {
    let max_payload = mtu
        .checked_sub(crate::packet::IPV4_HEADER_LEN)
        .expect("mtu below IPv4 header size");
    assert!(max_payload >= 8, "mtu too small to fragment");
    if packet.payload.len() <= max_payload {
        return vec![packet.clone()];
    }
    // Fragment payload sizes must be multiples of 8 except the last.
    let unit = max_payload / 8 * 8;
    let mut out = Vec::with_capacity(packet.payload.len() / unit + 1);
    let mut offset = 0usize;
    while offset < packet.payload.len() {
        let end = (offset + unit).min(packet.payload.len());
        let last = end == packet.payload.len();
        out.push(Ipv4Packet {
            src: packet.src,
            dst: packet.dst,
            ident: packet.ident,
            more_fragments: !last,
            frag_offset: (offset / 8) as u16,
            ttl: packet.ttl,
            protocol: packet.protocol,
            payload: packet.payload.slice(offset..end),
        });
        offset = end;
    }
    out
}

/// Key identifying the datagram a fragment belongs to.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct FragKey {
    src: u32,
    dst: u32,
    ident: u16,
    protocol: u8,
}

struct Partial {
    /// Received (offset_bytes, payload) pieces, unordered.
    pieces: Vec<(usize, Bytes)>,
    /// Total length once the last fragment is seen.
    total: Option<usize>,
    /// Arrival time of the first fragment (for timeout).
    first_seen: VirtualTime,
}

impl Partial {
    fn bytes_present(&self) -> usize {
        self.pieces.iter().map(|(_, b)| b.len()).sum()
    }

    /// Completed iff the total is known and the pieces tile [0, total)
    /// exactly (duplicates rejected on insert).
    fn try_assemble(&mut self) -> Option<Bytes> {
        let total = self.total?;
        if self.bytes_present() != total {
            return None;
        }
        self.pieces.sort_by_key(|(off, _)| *off);
        let mut expect = 0usize;
        for (off, b) in &self.pieces {
            if *off != expect {
                return None; // overlapping or hole despite matching sum
            }
            expect += b.len();
        }
        let mut buf = Vec::with_capacity(total);
        for (_, b) in &self.pieces {
            buf.extend_from_slice(b);
        }
        Some(Bytes::from(buf))
    }
}

/// Counters kept by the reassembler.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct ReassemblyStats {
    /// Packets that were not fragments and passed straight through.
    pub whole: u64,
    /// Fragments received.
    pub fragments: u64,
    /// Datagrams successfully reassembled from fragments.
    pub reassembled: u64,
    /// Partial datagrams dropped on timeout.
    pub timed_out: u64,
    /// Duplicate fragments discarded.
    pub duplicates: u64,
}

/// Hole-filling IPv4 reassembler with timeout.
pub struct Reassembler {
    partials: HashMap<FragKey, Partial>,
    timeout: Duration,
    stats: ReassemblyStats,
}

impl Reassembler {
    /// Creates a reassembler that abandons partial datagrams older than
    /// `timeout`.
    pub fn new(timeout: Duration) -> Self {
        Reassembler {
            partials: HashMap::new(),
            timeout,
            stats: ReassemblyStats::default(),
        }
    }

    /// Standard 30-second reassembly timeout.
    pub fn with_default_timeout() -> Self {
        Self::new(Duration::from_secs(30))
    }

    /// Offers a packet; returns a complete IPv4 packet (with reassembled
    /// payload) when one becomes available.
    pub fn push(&mut self, now: VirtualTime, packet: Ipv4Packet) -> Option<Ipv4Packet> {
        self.expire(now);
        if !packet.is_fragment() {
            self.stats.whole += 1;
            return Some(packet);
        }
        self.stats.fragments += 1;
        let key = FragKey {
            src: packet.src,
            dst: packet.dst,
            ident: packet.ident,
            protocol: packet.protocol,
        };
        let entry = self.partials.entry(key).or_insert_with(|| Partial {
            pieces: Vec::new(),
            total: None,
            first_seen: now,
        });
        let off = packet.frag_offset as usize * 8;
        if entry.pieces.iter().any(|(o, _)| *o == off) {
            self.stats.duplicates += 1;
            return None;
        }
        if !packet.more_fragments {
            entry.total = Some(off + packet.payload.len());
        }
        entry.pieces.push((off, packet.payload.clone()));
        if let Some(payload) = entry.try_assemble() {
            self.partials.remove(&key);
            self.stats.reassembled += 1;
            return Some(Ipv4Packet {
                src: packet.src,
                dst: packet.dst,
                ident: packet.ident,
                more_fragments: false,
                frag_offset: 0,
                ttl: packet.ttl,
                protocol: packet.protocol,
                payload,
            });
        }
        None
    }

    /// Drops partial datagrams older than the timeout.
    pub fn expire(&mut self, now: VirtualTime) {
        let timeout = self.timeout;
        let before = self.partials.len();
        self.partials.retain(|_, p| (now - p.first_seen) < timeout);
        self.stats.timed_out += (before - self.partials.len()) as u64;
    }

    /// Partial datagrams currently pending.
    pub fn pending(&self) -> usize {
        self.partials.len()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ReassemblyStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PROTO_UDP;

    fn big_packet(len: usize) -> Ipv4Packet {
        let payload: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
        Ipv4Packet {
            src: 10,
            dst: 20,
            ident: 777,
            more_fragments: false,
            frag_offset: 0,
            ttl: 64,
            protocol: PROTO_UDP,
            payload: Bytes::from(payload),
        }
    }

    #[test]
    fn small_packet_not_fragmented() {
        let p = big_packet(100);
        let frags = fragment(&p, 1500);
        assert_eq!(frags.len(), 1);
        assert_eq!(frags[0], p);
    }

    #[test]
    fn fragments_cover_payload_exactly() {
        let p = big_packet(4000);
        let frags = fragment(&p, 1500);
        assert!(frags.len() >= 3);
        let mut total = 0;
        for (i, f) in frags.iter().enumerate() {
            assert_eq!(f.ident, p.ident);
            assert_eq!(f.more_fragments, i != frags.len() - 1);
            assert_eq!(f.frag_offset as usize * 8, total);
            // Non-last fragments are multiples of 8.
            if i != frags.len() - 1 {
                assert_eq!(f.payload.len() % 8, 0);
            }
            assert!(f.payload.len() + crate::packet::IPV4_HEADER_LEN <= 1500);
            total += f.payload.len();
        }
        assert_eq!(total, 4000);
    }

    #[test]
    fn in_order_reassembly() {
        let p = big_packet(5000);
        let frags = fragment(&p, 1500);
        let mut r = Reassembler::with_default_timeout();
        let mut result = None;
        for f in frags {
            if let Some(done) = r.push(VirtualTime::ZERO, f) {
                assert!(result.is_none());
                result = Some(done);
            }
        }
        let done = result.expect("reassembled");
        assert_eq!(done.payload, p.payload);
        assert!(!done.is_fragment());
        assert_eq!(r.stats().reassembled, 1);
        assert_eq!(r.pending(), 0);
    }

    #[test]
    fn out_of_order_reassembly() {
        let p = big_packet(5000);
        let mut frags = fragment(&p, 1500);
        frags.reverse();
        let mut r = Reassembler::with_default_timeout();
        let mut result = None;
        for f in frags {
            if let Some(done) = r.push(VirtualTime::ZERO, f) {
                result = Some(done);
            }
        }
        assert_eq!(result.expect("reassembled").payload, p.payload);
    }

    #[test]
    fn duplicate_fragments_ignored() {
        let p = big_packet(3000);
        let frags = fragment(&p, 1500);
        let mut r = Reassembler::with_default_timeout();
        assert!(r.push(VirtualTime::ZERO, frags[0].clone()).is_none());
        assert!(r.push(VirtualTime::ZERO, frags[0].clone()).is_none());
        assert_eq!(r.stats().duplicates, 1);
        let done = frags[1..]
            .iter()
            .filter_map(|f| r.push(VirtualTime::ZERO, f.clone()))
            .next();
        assert_eq!(done.expect("reassembled").payload, p.payload);
    }

    #[test]
    fn missing_fragment_times_out() {
        let p = big_packet(5000);
        let frags = fragment(&p, 1500);
        let mut r = Reassembler::new(Duration::from_secs(30));
        // Drop the second fragment.
        for (i, f) in frags.iter().enumerate() {
            if i == 1 {
                continue;
            }
            assert!(r.push(VirtualTime::ZERO, f.clone()).is_none());
        }
        assert_eq!(r.pending(), 1);
        r.expire(VirtualTime::from_secs(31));
        assert_eq!(r.pending(), 0);
        assert_eq!(r.stats().timed_out, 1);
    }

    #[test]
    fn interleaved_datagrams_keyed_separately() {
        let mut a = big_packet(3000);
        a.ident = 1;
        let mut b = big_packet(3000);
        b.ident = 2;
        let fa = fragment(&a, 1500);
        let fb = fragment(&b, 1500);
        let mut r = Reassembler::with_default_timeout();
        let mut done = Vec::new();
        for f in fa.iter().chain(fb.iter()).cloned() {
            if let Some(d) = r.push(VirtualTime::ZERO, f) {
                done.push(d);
            }
        }
        assert_eq!(done.len(), 2);
        assert_eq!(r.stats().reassembled, 2);
    }

    #[test]
    fn whole_packets_pass_through_and_counted() {
        let mut r = Reassembler::with_default_timeout();
        let p = big_packet(100);
        assert_eq!(r.push(VirtualTime::ZERO, p.clone()), Some(p));
        assert_eq!(r.stats().whole, 1);
    }

    #[test]
    fn fragment_round_trip_through_wire_format() {
        // Fragments survive serialisation: fragment → bytes → parse →
        // reassemble.
        let p = big_packet(4000);
        let mut r = Reassembler::with_default_timeout();
        let mut out = None;
        for f in fragment(&p, 1500) {
            let raw = f.to_bytes();
            let parsed = Ipv4Packet::parse(&raw).unwrap();
            if let Some(d) = r.push(VirtualTime::ZERO, parsed) {
                out = Some(d);
            }
        }
        assert_eq!(out.unwrap().payload, p.payload);
    }
}
