//! Virtual time for the simulated capture.
//!
//! The paper's dataset replaces absolute timestamps with "the time elapsed
//! since the beginning of the capture" (§2.4). The simulation adopts that
//! convention from the start: all timestamps are [`VirtualTime`] offsets
//! from the capture origin, with microsecond resolution (the resolution of
//! a pcap record header).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Microseconds elapsed since the beginning of the capture.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Debug)]
pub struct VirtualTime(pub u64);

/// A span of virtual time, in microseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Debug)]
pub struct Duration(pub u64);

impl VirtualTime {
    /// The capture origin.
    pub const ZERO: VirtualTime = VirtualTime(0);

    /// Builds from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        VirtualTime(s * 1_000_000)
    }

    /// Whole seconds since origin (floor).
    pub fn as_secs(&self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since origin as a float.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Microsecond remainder within the current second.
    pub fn subsec_micros(&self) -> u32 {
        (self.0 % 1_000_000) as u32
    }

    /// Weeks since origin as a float (the x-axis of the paper's Fig. 2).
    pub fn as_weeks_f64(&self) -> f64 {
        self.as_secs_f64() / Duration::WEEK.as_secs_f64()
    }
}

impl Duration {
    /// One second.
    pub const SECOND: Duration = Duration(1_000_000);
    /// One minute.
    pub const MINUTE: Duration = Duration(60 * 1_000_000);
    /// One hour.
    pub const HOUR: Duration = Duration(3_600 * 1_000_000);
    /// One day.
    pub const DAY: Duration = Duration(86_400 * 1_000_000);
    /// One week.
    pub const WEEK: Duration = Duration(7 * 86_400 * 1_000_000);

    /// Builds from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        Duration(s * 1_000_000)
    }

    /// Builds from fractional seconds (saturating at zero).
    pub fn from_secs_f64(s: f64) -> Self {
        Duration((s.max(0.0) * 1e6) as u64)
    }

    /// Whole seconds (floor).
    pub fn as_secs(&self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds as a float.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Scales the span by `k` (used by campaign scaling).
    pub fn scale(&self, k: f64) -> Duration {
        Duration((self.0 as f64 * k) as u64)
    }
}

impl Add<Duration> for VirtualTime {
    type Output = VirtualTime;
    fn add(self, rhs: Duration) -> VirtualTime {
        VirtualTime(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for VirtualTime {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<VirtualTime> for VirtualTime {
    type Output = Duration;
    fn sub(self, rhs: VirtualTime) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<Duration> for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl fmt::Display for VirtualTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{:06}s", self.as_secs(), self.subsec_micros())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        let t = VirtualTime::from_secs(90) + Duration(500_000);
        assert_eq!(t.as_secs(), 90);
        assert_eq!(t.subsec_micros(), 500_000);
        assert!((t.as_secs_f64() - 90.5).abs() < 1e-9);
    }

    #[test]
    fn week_axis() {
        let t = VirtualTime::ZERO + Duration::WEEK + Duration::WEEK;
        assert!((t.as_weeks_f64() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn subtraction_saturates() {
        let a = VirtualTime::from_secs(1);
        let b = VirtualTime::from_secs(5);
        assert_eq!(b - a, Duration::from_secs(4));
        assert_eq!(a - b, Duration(0));
    }

    #[test]
    fn display_format() {
        let t = VirtualTime(1_230_045);
        assert_eq!(format!("{t}"), "1.230045s");
    }

    #[test]
    fn duration_scaling() {
        assert_eq!(
            Duration::from_secs(100).scale(0.25),
            Duration::from_secs(25)
        );
        assert_eq!(Duration::from_secs_f64(1.5), Duration(1_500_000));
        assert_eq!(Duration::from_secs_f64(-1.0), Duration(0));
    }
}
