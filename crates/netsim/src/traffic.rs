//! Offered-traffic model for the capture link.
//!
//! The paper's server saw ≈31.5 G ethernet packets in ten weeks — an
//! average of ≈5 200 packets/s — with "traffic peaks" occasionally
//! overflowing the libpcap kernel buffer (§2.2, Fig. 2). The model here
//! reproduces that regime: a diurnal/weekly base rate modulated by rare
//! flash bursts, sampled as a Poisson process.

use crate::clock::VirtualTime;
use rand::distributions::Distribution;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::f64::consts::TAU;

/// A flash-crowd burst: a short multiplicative spike in the offered rate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Burst {
    /// Burst start.
    pub start_sec: u64,
    /// Burst length in seconds.
    pub duration_sec: u64,
    /// Multiplier applied to the base rate during the burst.
    pub amplitude: f64,
}

/// Deterministic offered-rate model.
///
/// `rate(t) = base · diurnal(t) · weekly(t) · burst(t)` where diurnal is a
/// day-period sinusoid, weekly dips at the week boundary (weekend shape),
/// and burst is 1.0 outside bursts.
#[derive(Clone, Debug)]
pub struct RateModel {
    /// Mean packets per second.
    pub base_pps: f64,
    /// Diurnal modulation depth in [0, 1).
    pub diurnal_depth: f64,
    /// Weekly modulation depth in [0, 1).
    pub weekly_depth: f64,
    /// Flash bursts, sorted by start time.
    bursts: Vec<Burst>,
}

impl RateModel {
    /// Builds a model with `n_bursts` random bursts over `horizon_sec`,
    /// deterministic in `seed`.
    pub fn new(
        base_pps: f64,
        diurnal_depth: f64,
        weekly_depth: f64,
        horizon_sec: u64,
        n_bursts: usize,
        seed: u64,
    ) -> Self {
        assert!(base_pps > 0.0);
        assert!((0.0..1.0).contains(&diurnal_depth));
        assert!((0.0..1.0).contains(&weekly_depth));
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7261_7465); // "rate"
        let mut bursts: Vec<Burst> = (0..n_bursts)
            .map(|_| {
                // Pareto-ish amplitudes: mostly mild (2-4x), with a heavy
                // tail up to ~11x. Only the tail exceeds a well-provisioned
                // capture drain, which is what makes losses rare (Fig. 2).
                let u: f64 = rng.gen_range(0.1..1.0);
                Burst {
                    start_sec: rng.gen_range(0..horizon_sec.max(1)),
                    duration_sec: rng.gen_range(5..90),
                    amplitude: 1.5 + 1.0 / u,
                }
            })
            .collect();
        bursts.sort_by_key(|b| b.start_sec);
        RateModel {
            base_pps,
            diurnal_depth,
            weekly_depth,
            bursts,
        }
    }

    /// A calm model with no bursts (baseline for capture ablations).
    pub fn calm(base_pps: f64) -> Self {
        RateModel {
            base_pps,
            diurnal_depth: 0.0,
            weekly_depth: 0.0,
            bursts: Vec::new(),
        }
    }

    /// Offered rate in packets/second at time `t`.
    pub fn rate_at(&self, t: VirtualTime) -> f64 {
        let secs = t.as_secs_f64();
        let day_phase = secs / 86_400.0;
        // Peak in the evening (phase shift), trough in the early morning.
        let diurnal = 1.0 + self.diurnal_depth * (TAU * (day_phase - 0.33)).sin();
        let week_phase = secs / (7.0 * 86_400.0);
        let weekly = 1.0 + self.weekly_depth * (TAU * week_phase).sin();
        let burst = self.burst_multiplier(t.as_secs());
        self.base_pps * diurnal * weekly * burst
    }

    fn burst_multiplier(&self, sec: u64) -> f64 {
        // Bursts are few; linear scan over those that could cover `sec`.
        for b in &self.bursts {
            if b.start_sec > sec {
                break;
            }
            if sec < b.start_sec + b.duration_sec {
                return b.amplitude;
            }
        }
        1.0
    }

    /// The bursts of this model (for tests and reporting).
    pub fn bursts(&self) -> &[Burst] {
        &self.bursts
    }

    /// Replaces the burst schedule (sorted by start time internally).
    /// Used by experiments that need hand-placed bursts.
    pub fn set_bursts(&mut self, mut bursts: Vec<Burst>) {
        bursts.sort_by_key(|b| b.start_sec);
        self.bursts = bursts;
    }

    /// Samples the number of packet arrivals in the one-second interval
    /// starting at `t`.
    pub fn sample_arrivals<R: Rng + ?Sized>(&self, t: VirtualTime, rng: &mut R) -> u64 {
        poisson(self.rate_at(t), rng)
    }
}

/// Samples a Poisson variate with mean `lambda`.
///
/// Knuth's product method below λ=30; Gaussian approximation above (the
/// rates involved here are thousands per second, where the approximation
/// error is far below the model's own uncertainty).
pub fn poisson<R: Rng + ?Sized>(lambda: f64, rng: &mut R) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.gen::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
        }
    } else {
        let g = normal(rng);
        let v = lambda + lambda.sqrt() * g;
        v.max(0.0).round() as u64
    }
}

/// Standard normal via Box–Muller.
fn normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (TAU * u2).cos()
}

/// An exponential inter-arrival sampler (for event-driven generators).
#[derive(Clone, Copy, Debug)]
pub struct Exponential {
    /// Rate parameter (events per second).
    pub rate: f64,
}

impl Distribution<f64> for Exponential {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        -u.ln() / self.rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calm_model_is_flat() {
        let m = RateModel::calm(1000.0);
        for s in [0u64, 3600, 86_400, 604_800] {
            assert!((m.rate_at(VirtualTime::from_secs(s)) - 1000.0).abs() < 1e-9);
        }
    }

    #[test]
    fn diurnal_modulation_oscillates() {
        let m = RateModel {
            base_pps: 1000.0,
            diurnal_depth: 0.5,
            weekly_depth: 0.0,
            bursts: Vec::new(),
        };
        let rates: Vec<f64> = (0..24)
            .map(|h| m.rate_at(VirtualTime::from_secs(h * 3600)))
            .collect();
        let max = rates.iter().cloned().fold(f64::MIN, f64::max);
        let min = rates.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max > 1400.0, "max {max}");
        assert!(min < 600.0, "min {min}");
        // Same hour next day gives the same rate (periodicity).
        let r0 = m.rate_at(VirtualTime::from_secs(7 * 3600));
        let r1 = m.rate_at(VirtualTime::from_secs(86_400 + 7 * 3600));
        assert!((r0 - r1).abs() < 1e-6);
    }

    #[test]
    fn bursts_multiply_rate() {
        let mut m = RateModel::calm(100.0);
        m.bursts = vec![Burst {
            start_sec: 50,
            duration_sec: 10,
            amplitude: 8.0,
        }];
        assert!((m.rate_at(VirtualTime::from_secs(49)) - 100.0).abs() < 1e-9);
        assert!((m.rate_at(VirtualTime::from_secs(55)) - 800.0).abs() < 1e-9);
        assert!((m.rate_at(VirtualTime::from_secs(60)) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn model_is_deterministic_in_seed() {
        let a = RateModel::new(5000.0, 0.4, 0.1, 6_048_000, 40, 9);
        let b = RateModel::new(5000.0, 0.4, 0.1, 6_048_000, 40, 9);
        assert_eq!(a.bursts(), b.bursts());
    }

    #[test]
    fn poisson_mean_close_to_lambda() {
        let mut rng = StdRng::seed_from_u64(5);
        for lambda in [0.5f64, 5.0, 50.0, 5000.0] {
            let n = 3000;
            let total: u64 = (0..n).map(|_| poisson(lambda, &mut rng)).sum();
            let mean = total as f64 / n as f64;
            let tol = 4.0 * (lambda / n as f64).sqrt() + 0.05;
            assert!(
                (mean - lambda).abs() < tol.max(lambda * 0.05),
                "lambda {lambda}: mean {mean}"
            );
        }
    }

    #[test]
    fn poisson_zero_lambda() {
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(poisson(0.0, &mut rng), 0);
        assert_eq!(poisson(-3.0, &mut rng), 0);
    }

    #[test]
    fn exponential_mean() {
        let mut rng = StdRng::seed_from_u64(11);
        let d = Exponential { rate: 4.0 };
        let n = 20_000;
        let total: f64 = (0..n).map(|_| d.sample(&mut rng)).sum();
        let mean = total / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn sampled_arrivals_track_rate() {
        let m = RateModel::calm(2000.0);
        let mut rng = StdRng::seed_from_u64(3);
        let total: u64 = (0..200)
            .map(|s| m.sample_arrivals(VirtualTime::from_secs(s), &mut rng))
            .sum();
        let mean = total as f64 / 200.0;
        assert!((mean - 2000.0).abs() < 60.0, "mean {mean}");
    }
}
