//! The libpcap-style lossy capture model (paper §2.2, Fig. 2).
//!
//! > "libpcap uses a buffer where the kernel stores captured packets. In
//! > case of traffic peaks, this buffer may be unsufficient and get full
//! > of packets, while some others still arrive. The kernel cannot store
//! > these new packets in the buffer, and some are thus lost. The number
//! > of lost packets is stored in a kernel structure."
//!
//! [`CaptureBuffer`] models exactly that mechanism: a finite ring drained
//! by the capture process at a bounded service rate. Packets arriving
//! while the ring is full are counted as lost (the kernel `ps_drop`
//! counter) and never reach the decoder. [`LossRecorder`] aggregates
//! losses per second — the series plotted in Fig. 2 — and the cumulative
//! total shown in the figure's inset.

use crate::clock::VirtualTime;
use etw_telemetry::{Counter, Histogram, Registry};

/// Live metric handles for a [`CaptureBuffer`], attached via
/// [`CaptureBuffer::attach_telemetry`]. Keeps the machine-health view
/// of the ring: totals, occupancy samples, and the length of each
/// consecutive-loss run (the paper's loss bursts in Fig. 2 overflow the
/// ring in bursts, not as a uniform trickle).
#[derive(Clone, Debug)]
struct RingTelemetry {
    offered: Counter,
    captured: Counter,
    lost: Counter,
    /// Ring occupancy in packets, sampled once per virtual second.
    occupancy: Histogram,
    /// Length of each completed run of consecutive drops.
    drop_bursts: Histogram,
    /// Drops since the last accepted packet (current run length).
    burst: u64,
}

impl RingTelemetry {
    fn new(registry: &Registry) -> RingTelemetry {
        RingTelemetry {
            offered: registry.counter("ring.offered_total"),
            captured: registry.counter("ring.captured_total"),
            lost: registry.counter("ring.lost_total"),
            occupancy: registry.histogram("ring.occupancy_pkts"),
            drop_bursts: registry.histogram("ring.drop_burst_pkts"),
            burst: 0,
        }
    }

    #[inline]
    fn on_offer(&mut self, accepted: bool) {
        self.offered.inc();
        if accepted {
            self.captured.inc();
            if self.burst > 0 {
                self.drop_bursts.record(self.burst);
                self.burst = 0;
            }
        } else {
            self.lost.inc();
            self.burst += 1;
        }
    }

    fn flush_burst(&mut self) {
        if self.burst > 0 {
            self.drop_bursts.record(self.burst);
            self.burst = 0;
        }
    }
}

/// Finite kernel capture ring drained at a bounded rate.
///
/// Occupancy is tracked fluidly: between arrivals the consumer removes
/// `drain_pps` packets per second; each arrival then either occupies one
/// slot or is dropped. This is the standard fluid approximation of the
/// M/D/1/K loss queue and matches the burst-loss phenomenology of the
/// paper: zero loss at average load, bursts overflowing the ring.
#[derive(Clone, Debug)]
pub struct CaptureBuffer {
    /// Ring capacity in packets.
    capacity: u64,
    /// Service (drain) rate in packets/second.
    drain_pps: f64,
    /// Fractional occupancy.
    occupancy: f64,
    /// Time of the last event.
    last: VirtualTime,
    /// Packets accepted.
    captured: u64,
    /// Packets dropped (kernel loss counter).
    lost: u64,
    /// Optional live metrics.
    telemetry: Option<RingTelemetry>,
}

impl CaptureBuffer {
    /// Creates a buffer of `capacity` packets drained at `drain_pps`.
    pub fn new(capacity: u64, drain_pps: f64) -> Self {
        assert!(capacity > 0);
        assert!(drain_pps > 0.0);
        CaptureBuffer {
            capacity,
            drain_pps,
            occupancy: 0.0,
            last: VirtualTime::ZERO,
            captured: 0,
            lost: 0,
            telemetry: None,
        }
    }

    /// Mirrors the ring's activity into `registry` (metrics
    /// `ring.offered_total`, `ring.captured_total`, `ring.lost_total`,
    /// `ring.occupancy_pkts`, `ring.drop_burst_pkts`). A disabled
    /// registry attaches no-op handles.
    pub fn attach_telemetry(&mut self, registry: &Registry) {
        self.telemetry = Some(RingTelemetry::new(registry));
    }

    /// Offers one packet at time `now`; returns `true` if captured,
    /// `false` if it was lost to a full ring. `now` must be monotonically
    /// non-decreasing.
    pub fn offer(&mut self, now: VirtualTime) -> bool {
        self.advance(now);
        let accepted = if self.occupancy + 1.0 > self.capacity as f64 {
            self.lost += 1;
            false
        } else {
            self.occupancy += 1.0;
            self.captured += 1;
            true
        };
        if let Some(t) = &mut self.telemetry {
            t.on_offer(accepted);
        }
        accepted
    }

    /// Samples current occupancy into the attached telemetry (call once
    /// per virtual second; a tick-rate signal, not per-packet). Also
    /// closes out a loss burst still in progress, so burst lengths are
    /// bounded by observation granularity rather than left dangling.
    pub fn sample_telemetry(&mut self) {
        let occupancy = self.occupancy as u64;
        if let Some(t) = &mut self.telemetry {
            t.occupancy.record(occupancy);
            t.flush_burst();
        }
    }

    /// Offers `n` packets spread uniformly over the second starting at
    /// `now`; returns how many were captured. This is the batch form used
    /// by the per-second campaign loop: it integrates drain between
    /// arrivals rather than treating the batch as simultaneous.
    pub fn offer_batch(&mut self, now: VirtualTime, n: u64) -> u64 {
        if n == 0 {
            self.advance(now);
            return 0;
        }
        let step = 1_000_000 / n; // microseconds between arrivals
        let mut captured = 0;
        for i in 0..n {
            let t = VirtualTime(now.0 + i * step);
            if self.offer(t) {
                captured += 1;
            }
        }
        captured
    }

    fn advance(&mut self, now: VirtualTime) {
        let dt = (now - self.last).as_secs_f64();
        self.last = VirtualTime(now.0.max(self.last.0));
        self.occupancy = (self.occupancy - dt * self.drain_pps).max(0.0);
    }

    /// Packets captured so far.
    pub fn captured(&self) -> u64 {
        self.captured
    }

    /// Packets lost so far (the kernel loss counter the paper read).
    pub fn lost(&self) -> u64 {
        self.lost
    }

    /// Current ring occupancy in packets.
    pub fn occupancy(&self) -> f64 {
        self.occupancy
    }

    /// Ring capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }
}

/// Per-second loss series plus cumulative counter (Fig. 2 and its inset).
#[derive(Clone, Debug, Default)]
pub struct LossRecorder {
    /// `(second, packets_lost_in_that_second)`, seconds with zero loss are
    /// omitted (the series is overwhelmingly zero, as in the paper).
    pub losses_per_sec: Vec<(u64, u64)>,
    last_total: u64,
}

impl LossRecorder {
    /// Fresh recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the buffer state at the end of second `sec`.
    pub fn tick(&mut self, sec: u64, buffer: &CaptureBuffer) {
        let total = buffer.lost();
        let delta = total - self.last_total;
        if delta > 0 {
            self.losses_per_sec.push((sec, delta));
        }
        self.last_total = total;
    }

    /// Total packets lost.
    pub fn total(&self) -> u64 {
        self.losses_per_sec.iter().map(|(_, n)| n).sum()
    }

    /// Cumulative loss curve: `(second, cumulative_losses)` at every
    /// second where a loss occurred (step function, as in Fig. 2's inset).
    pub fn cumulative(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::with_capacity(self.losses_per_sec.len());
        let mut acc = 0;
        for &(s, n) in &self.losses_per_sec {
            acc += n;
            out.push((s, acc));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_loss_below_capacity() {
        // 100 pps offered into a drain of 1000 pps: never any loss.
        let mut buf = CaptureBuffer::new(1000, 1000.0);
        for s in 0..100u64 {
            buf.offer_batch(VirtualTime::from_secs(s), 100);
        }
        assert_eq!(buf.lost(), 0);
        assert_eq!(buf.captured(), 100 * 100);
    }

    #[test]
    fn sustained_overload_loses_excess() {
        // 2000 pps offered, drain 1000 pps, ring 500: after the ring
        // fills, about half of each second's packets must be lost.
        let mut buf = CaptureBuffer::new(500, 1000.0);
        for s in 0..20u64 {
            buf.offer_batch(VirtualTime::from_secs(s), 2000);
        }
        let lost = buf.lost();
        let expected = 20 * 1000 - 500; // excess minus initial ring fill
        let err = (lost as i64 - expected as i64).abs();
        assert!(err < 200, "lost {lost}, expected ≈{expected}");
    }

    #[test]
    fn burst_then_recovery() {
        let mut buf = CaptureBuffer::new(100, 1000.0);
        // One overwhelming burst…
        buf.offer_batch(VirtualTime::from_secs(0), 5000);
        let lost_in_burst = buf.lost();
        assert!(lost_in_burst > 3000, "burst lost {lost_in_burst}");
        // …then calm traffic loses nothing once the ring drains.
        for s in 1..10u64 {
            buf.offer_batch(VirtualTime::from_secs(s), 100);
        }
        assert_eq!(buf.lost(), lost_in_burst);
    }

    #[test]
    fn conservation_captured_plus_lost() {
        let mut buf = CaptureBuffer::new(64, 500.0);
        let mut offered = 0u64;
        for s in 0..50u64 {
            let n = if s % 10 == 0 { 3000 } else { 200 };
            offered += n;
            buf.offer_batch(VirtualTime::from_secs(s), n);
        }
        assert_eq!(buf.captured() + buf.lost(), offered);
    }

    #[test]
    fn recorder_builds_sparse_series() {
        let mut buf = CaptureBuffer::new(10, 100.0);
        let mut rec = LossRecorder::new();
        for s in 0..30u64 {
            let n = if s == 5 || s == 20 { 1000 } else { 10 };
            buf.offer_batch(VirtualTime::from_secs(s), n);
            rec.tick(s, &buf);
        }
        // Loss happens during each burst second, and may spill into the
        // following second while the ring is still draining.
        let loss_secs: Vec<u64> = rec.losses_per_sec.iter().map(|(s, _)| *s).collect();
        assert!(loss_secs.contains(&5), "seconds with loss: {loss_secs:?}");
        assert!(loss_secs.contains(&20), "seconds with loss: {loss_secs:?}");
        assert!(
            loss_secs.iter().all(|&s| [5, 6, 20, 21].contains(&s)),
            "unexpected loss seconds: {loss_secs:?}"
        );
        assert_eq!(rec.total(), buf.lost());
        let cum = rec.cumulative();
        assert_eq!(cum.last().unwrap().1, rec.total());
        assert!(cum.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    #[test]
    fn telemetry_mirrors_ring_activity() {
        let reg = Registry::new();
        let mut buf = CaptureBuffer::new(10, 100.0);
        buf.attach_telemetry(&reg);
        buf.offer_batch(VirtualTime::from_secs(0), 1000);
        buf.sample_telemetry();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("ring.offered_total"), 1000);
        assert_eq!(snap.counter("ring.captured_total"), buf.captured());
        assert_eq!(snap.counter("ring.lost_total"), buf.lost());
        assert!(buf.lost() > 0, "test needs overload");
        assert_eq!(snap.histogram("ring.occupancy_pkts").unwrap().count, 1);
        // Every lost packet belongs to exactly one recorded burst.
        let bursts = snap.histogram("ring.drop_burst_pkts").unwrap();
        assert!(bursts.count >= 1);
        assert_eq!(bursts.sum, buf.lost());
    }

    #[test]
    fn occupancy_drains_over_time() {
        let mut buf = CaptureBuffer::new(1000, 100.0);
        buf.offer_batch(VirtualTime::ZERO, 50);
        assert!(buf.occupancy() > 0.0);
        // offering at t=10s with zero packets just advances the clock
        buf.offer_batch(VirtualTime::from_secs(10), 0);
        assert_eq!(buf.occupancy(), 0.0);
    }

    #[test]
    fn loss_rate_is_tiny_at_paper_like_parameters() {
        // Paper regime: mean load far below drain, so only the tail of
        // the burst distribution overflows the ring. The paper lost
        // 250 266 of 31.5e9 packets (ratio ≈ 8e-6); here the horizon is
        // short so bursts are proportionally more frequent, but the ratio
        // must stay far below 1 % while remaining non-zero (losses DO
        // happen — Fig. 2 is not empty).
        use crate::traffic::{Burst, RateModel};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut model = RateModel::calm(2000.0);
        // One tail burst that exceeds the 10k pps drain, two mild ones
        // that do not.
        let bursts = vec![
            Burst {
                start_sec: 3_000,
                duration_sec: 20,
                amplitude: 3.0,
            },
            Burst {
                start_sec: 9_000,
                duration_sec: 15,
                amplitude: 9.0,
            },
            Burst {
                start_sec: 15_000,
                duration_sec: 30,
                amplitude: 2.5,
            },
        ];
        model.set_bursts(bursts);
        let mut buf = CaptureBuffer::new(4096, 10_000.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut offered = 0u64;
        for s in 0..20_000u64 {
            let t = VirtualTime::from_secs(s);
            let n = model.sample_arrivals(t, &mut rng);
            offered += n;
            buf.offer_batch(t, n);
        }
        let ratio = buf.lost() as f64 / offered as f64;
        assert!(ratio > 0.0, "expected some loss");
        assert!(ratio < 0.01, "loss ratio {ratio}");
    }
}
