//! TCP segment model (paper §2.2 and conclusion).
//!
//! About half of the captured traffic was TCP; the paper restricts its
//! dataset to UDP because "packet losses … make tcp flows reconstruction
//! very difficult, as packets are missing inside flows", noting that
//! "even without packet losses, tcp conversation reconstruction is not
//! an easy task, as the server receives about 5000 syn packets per
//! minute" (footnote 2). The conclusion lists TCP measurement as the
//! first extension.
//!
//! This module provides the byte-accurate TCP segment layer;
//! [`crate::flows`] builds the flow reconstructor on top and quantifies
//! the paper's difficulty claim.

use crate::packet::internet_checksum;
use bytes::Bytes;

/// TCP header length without options.
pub const TCP_HEADER_LEN: usize = 20;

/// TCP flag bits.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct TcpFlags {
    /// Synchronise sequence numbers (connection open).
    pub syn: bool,
    /// Acknowledgement field significant.
    pub ack: bool,
    /// No more data from sender (connection close).
    pub fin: bool,
    /// Reset the connection.
    pub rst: bool,
    /// Push function.
    pub psh: bool,
}

impl TcpFlags {
    fn to_byte(self) -> u8 {
        (self.fin as u8)
            | (self.syn as u8) << 1
            | (self.rst as u8) << 2
            | (self.psh as u8) << 3
            | (self.ack as u8) << 4
    }

    fn from_byte(b: u8) -> Self {
        TcpFlags {
            fin: b & 0x01 != 0,
            syn: b & 0x02 != 0,
            rst: b & 0x04 != 0,
            psh: b & 0x08 != 0,
            ack: b & 0x10 != 0,
        }
    }
}

/// A TCP segment with its addressing context (needed for the checksum
/// pseudo-header).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TcpSegment {
    /// Source IPv4 address.
    pub src_ip: u32,
    /// Destination IPv4 address.
    pub dst_ip: u32,
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number of the first payload byte.
    pub seq: u32,
    /// Acknowledgement number.
    pub ack: u32,
    /// Flags.
    pub flags: TcpFlags,
    /// Receive window.
    pub window: u16,
    /// Payload bytes.
    pub payload: Bytes,
}

/// TCP parse failures.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TcpError {
    /// Buffer shorter than the TCP header.
    Short,
    /// Data-offset field smaller than 5 words or past the buffer.
    BadDataOffset,
    /// Checksum mismatch.
    BadChecksum,
}

impl TcpSegment {
    /// Serialises header + payload with the RFC 793 checksum.
    pub fn to_bytes(&self) -> Vec<u8> {
        let len = TCP_HEADER_LEN + self.payload.len();
        let mut out = Vec::with_capacity(len);
        out.extend_from_slice(&self.src_port.to_be_bytes());
        out.extend_from_slice(&self.dst_port.to_be_bytes());
        out.extend_from_slice(&self.seq.to_be_bytes());
        out.extend_from_slice(&self.ack.to_be_bytes());
        out.push(5 << 4); // data offset 5 words, no options
        out.push(self.flags.to_byte());
        out.extend_from_slice(&self.window.to_be_bytes());
        out.extend_from_slice(&[0, 0]); // checksum placeholder
        out.extend_from_slice(&[0, 0]); // urgent pointer
        out.extend_from_slice(&self.payload);
        let csum = self.checksum(&out);
        out[16..18].copy_from_slice(&csum.to_be_bytes());
        out
    }

    fn checksum(&self, tcp_bytes: &[u8]) -> u16 {
        let mut pseudo = Vec::with_capacity(12 + tcp_bytes.len() + 1);
        pseudo.extend_from_slice(&self.src_ip.to_be_bytes());
        pseudo.extend_from_slice(&self.dst_ip.to_be_bytes());
        pseudo.push(0);
        pseudo.push(crate::packet::PROTO_TCP);
        pseudo.extend_from_slice(&(tcp_bytes.len() as u16).to_be_bytes());
        pseudo.extend_from_slice(tcp_bytes);
        internet_checksum(&pseudo)
    }

    /// Parses a segment out of an IP payload, verifying the checksum.
    pub fn parse(src_ip: u32, dst_ip: u32, buf: &[u8]) -> Result<Self, TcpError> {
        if buf.len() < TCP_HEADER_LEN {
            return Err(TcpError::Short);
        }
        let data_offset = (buf[12] >> 4) as usize * 4;
        if data_offset < TCP_HEADER_LEN || data_offset > buf.len() {
            return Err(TcpError::BadDataOffset);
        }
        let seg = TcpSegment {
            src_ip,
            dst_ip,
            src_port: u16::from_be_bytes([buf[0], buf[1]]),
            dst_port: u16::from_be_bytes([buf[2], buf[3]]),
            seq: u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]),
            ack: u32::from_be_bytes([buf[8], buf[9], buf[10], buf[11]]),
            flags: TcpFlags::from_byte(buf[13]),
            window: u16::from_be_bytes([buf[14], buf[15]]),
            payload: Bytes::copy_from_slice(&buf[data_offset..]),
        };
        if seg.checksum(buf) != 0 {
            return Err(TcpError::BadChecksum);
        }
        Ok(seg)
    }

    /// Sequence space consumed by this segment (SYN and FIN each count
    /// as one virtual byte, per RFC 793).
    pub fn seq_len(&self) -> u32 {
        self.payload.len() as u32 + self.flags.syn as u32 + self.flags.fin as u32
    }
}

/// Segments a byte stream into TCP segments of at most `mss` payload
/// bytes, starting at sequence number `isn + 1` (after the SYN).
pub fn segmentize(
    src_ip: u32,
    dst_ip: u32,
    src_port: u16,
    dst_port: u16,
    isn: u32,
    data: &[u8],
    mss: usize,
) -> Vec<TcpSegment> {
    assert!(mss > 0);
    let mut out = Vec::with_capacity(data.len() / mss + 2);
    // SYN
    out.push(TcpSegment {
        src_ip,
        dst_ip,
        src_port,
        dst_port,
        seq: isn,
        ack: 0,
        flags: TcpFlags {
            syn: true,
            ..TcpFlags::default()
        },
        window: 65_535,
        payload: Bytes::new(),
    });
    let mut seq = isn.wrapping_add(1);
    for chunk in data.chunks(mss) {
        out.push(TcpSegment {
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            seq,
            ack: 0,
            flags: TcpFlags {
                ack: true,
                psh: chunk.len() < mss,
                ..TcpFlags::default()
            },
            window: 65_535,
            payload: Bytes::copy_from_slice(chunk),
        });
        seq = seq.wrapping_add(chunk.len() as u32);
    }
    // FIN
    out.push(TcpSegment {
        src_ip,
        dst_ip,
        src_port,
        dst_port,
        seq,
        ack: 0,
        flags: TcpFlags {
            fin: true,
            ack: true,
            ..TcpFlags::default()
        },
        window: 65_535,
        payload: Bytes::new(),
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TcpSegment {
        TcpSegment {
            src_ip: 0x0a00_0001,
            dst_ip: 0x5216_0a01,
            src_port: 50_123,
            dst_port: 4661,
            seq: 0xdead_0000,
            ack: 0x0000_beef,
            flags: TcpFlags {
                ack: true,
                psh: true,
                ..TcpFlags::default()
            },
            window: 8_192,
            payload: Bytes::from_static(b"\xE3 some edonkey tcp payload"),
        }
    }

    #[test]
    fn round_trip() {
        let seg = sample();
        let raw = seg.to_bytes();
        let parsed = TcpSegment::parse(seg.src_ip, seg.dst_ip, &raw).unwrap();
        assert_eq!(parsed, seg);
    }

    #[test]
    fn checksum_detects_corruption() {
        let seg = sample();
        let mut raw = seg.to_bytes();
        raw[25] ^= 0x40; // flip a payload bit
        assert_eq!(
            TcpSegment::parse(seg.src_ip, seg.dst_ip, &raw),
            Err(TcpError::BadChecksum)
        );
    }

    #[test]
    fn wrong_pseudo_header_fails_checksum() {
        // Same bytes, different claimed source IP: checksum must fail
        // (the pseudo-header binds the segment to its addressing).
        let seg = sample();
        let raw = seg.to_bytes();
        assert_eq!(
            TcpSegment::parse(seg.src_ip + 1, seg.dst_ip, &raw),
            Err(TcpError::BadChecksum)
        );
    }

    #[test]
    fn short_and_bad_offset() {
        assert_eq!(TcpSegment::parse(1, 2, &[0u8; 10]), Err(TcpError::Short));
        let seg = sample();
        let mut raw = seg.to_bytes();
        raw[12] = 3 << 4; // offset below minimum
        assert_eq!(
            TcpSegment::parse(seg.src_ip, seg.dst_ip, &raw),
            Err(TcpError::BadDataOffset)
        );
    }

    #[test]
    fn flags_round_trip() {
        for bits in 0..32u8 {
            let f = TcpFlags::from_byte(bits);
            assert_eq!(f.to_byte(), bits & 0x1f);
        }
    }

    #[test]
    fn segmentize_covers_data() {
        let data: Vec<u8> = (0..5000u32).map(|i| (i % 251) as u8).collect();
        let segs = segmentize(1, 2, 1000, 4661, 7777, &data, 1460);
        assert!(segs[0].flags.syn);
        assert!(segs.last().unwrap().flags.fin);
        let total: usize = segs.iter().map(|s| s.payload.len()).sum();
        assert_eq!(total, data.len());
        // Sequence numbers tile the stream contiguously after the SYN.
        let mut expect = 7777u32.wrapping_add(1);
        for s in &segs[1..segs.len() - 1] {
            assert_eq!(s.seq, expect);
            expect = expect.wrapping_add(s.payload.len() as u32);
        }
        assert_eq!(segs.last().unwrap().seq, expect);
    }

    #[test]
    fn seq_len_counts_syn_fin() {
        let segs = segmentize(1, 2, 1, 2, 0, b"abc", 10);
        assert_eq!(segs[0].seq_len(), 1); // SYN
        assert_eq!(segs[1].seq_len(), 3); // data
        assert_eq!(segs[2].seq_len(), 1); // FIN
    }
}
