//! # etw-netsim — network substrate for the eDonkey capture reproduction
//!
//! The paper's measurement (§2.2) sits on a stack we cannot rent in 2026:
//! a production eDonkey server's ethernet link, mirrored through libpcap
//! into a capture machine. This crate rebuilds that stack as a simulator:
//!
//! * [`clock`] — virtual time (microsecond resolution, relative to the
//!   capture origin, the paper's own timestamp convention);
//! * [`packet`] — byte-accurate Ethernet/IPv4/UDP framing with RFC 1071
//!   checksums;
//! * [`frag`] — IPv4 fragmentation and hole-filling reassembly (the
//!   capture saw 2 981 fragments; the decoder must cope);
//! * [`traffic`] — offered-load model: diurnal/weekly modulation plus
//!   flash bursts, sampled as a Poisson process;
//! * [`capture`] — the finite libpcap kernel ring with its loss counter,
//!   the mechanism behind the paper's Fig. 2;
//! * [`pcap`] — classic pcap file framing for the captured stream;
//! * [`tcp`] / [`flows`] — the TCP layer and flow reconstruction the
//!   paper names as its first extension (and the loss-sensitivity that
//!   made it restrict itself to UDP).
//!
//! ## Example: a datagram's journey through the capture stack
//!
//! ```
//! use bytes::Bytes;
//! use etw_netsim::packet::{Ipv4Packet, UdpDatagram, PROTO_UDP};
//! use etw_netsim::frag::{fragment, Reassembler};
//! use etw_netsim::clock::VirtualTime;
//!
//! let udp = UdpDatagram {
//!     src_ip: 0x0a00_0001, dst_ip: 0x0a00_0002,
//!     src_port: 4672, dst_port: 4665,
//!     payload: Bytes::from(vec![0xE3; 3000]),
//! };
//! let ip = Ipv4Packet {
//!     src: udp.src_ip, dst: udp.dst_ip, ident: 1,
//!     more_fragments: false, frag_offset: 0, ttl: 64,
//!     protocol: PROTO_UDP, payload: Bytes::from(udp.to_bytes()),
//! };
//! let mut reasm = Reassembler::with_default_timeout();
//! let mut whole = None;
//! for f in fragment(&ip, 1500) {
//!     whole = reasm.push(VirtualTime::ZERO, f).or(whole);
//! }
//! let got = UdpDatagram::parse(&whole.unwrap()).unwrap();
//! assert_eq!(got, udp);
//! ```

#![warn(missing_docs)]

pub mod capture;
pub mod clock;
pub mod flows;
pub mod frag;
pub mod packet;
pub mod pcap;
pub mod tcp;
pub mod traffic;

pub use capture::{CaptureBuffer, LossRecorder};
pub use clock::{Duration, VirtualTime};
pub use flows::{FlowOutcome, FlowReassembler, FlowStats};
pub use frag::{fragment, Reassembler, ReassemblyStats};
pub use packet::{EthernetFrame, Ipv4Packet, ParseError, UdpDatagram};
pub use pcap::{PcapReader, PcapRecord, PcapWriter};
pub use tcp::{TcpFlags, TcpSegment};
pub use traffic::RateModel;
