//! TCP flow reconstruction — the extension the paper names first in its
//! conclusion, and the reason it could not be done then (§2.2 footnote
//! 2): capture losses leave holes inside flows, and the server's ~5 000
//! SYN/minute means enormous connection-tracking state.
//!
//! [`FlowReassembler`] tracks one direction of each connection (keyed by
//! the 4-tuple), orders segments by sequence number, fills holes as
//! retransmissions^W later segments arrive, and reports per-flow
//! outcomes. The `loss_vs_reconstruction` test quantifies the paper's
//! claim: even sub-percent segment loss leaves a large fraction of flows
//! unrecoverable without retransmission capture.

use crate::tcp::TcpSegment;
use etw_telemetry::{Counter, Gauge, Registry};
use std::collections::HashMap;

/// Connection key: one direction of a TCP conversation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct FlowKey {
    /// Source address.
    pub src_ip: u32,
    /// Destination address.
    pub dst_ip: u32,
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
}

impl FlowKey {
    /// Key of a segment's direction.
    pub fn of(seg: &TcpSegment) -> Self {
        FlowKey {
            src_ip: seg.src_ip,
            dst_ip: seg.dst_ip,
            src_port: seg.src_port,
            dst_port: seg.dst_port,
        }
    }
}

/// State of one tracked flow direction.
#[derive(Debug)]
struct Flow {
    /// Initial sequence number (from the SYN).
    isn: u32,
    /// Received `(offset, payload)` pieces, keyed by stream offset.
    pieces: Vec<(u32, bytes::Bytes)>,
    /// Stream length once FIN is seen (offset of the FIN).
    fin_offset: Option<u32>,
    /// Observed a SYN for this key.
    syn_seen: bool,
}

/// Outcome of a completed (FIN-seen) flow.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FlowOutcome {
    /// All bytes present: the payload stream.
    Complete(Vec<u8>),
    /// FIN seen but bytes missing (capture loss). The recovered pieces
    /// are returned (sorted by stream offset) so a resynchronising
    /// application decoder can still salvage the frames between the
    /// holes — the capability the paper lacked.
    Incomplete {
        /// Bytes missing from the stream.
        missing_bytes: u64,
        /// Bytes recovered.
        present_bytes: u64,
        /// `(stream_offset, payload)` pieces, sorted by offset.
        pieces: Vec<(u32, bytes::Bytes)>,
    },
}

/// Counters for the reconstruction run.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct FlowStats {
    /// SYN segments seen (the paper's 5 000/min pressure gauge).
    pub syns: u64,
    /// Data segments accepted.
    pub data_segments: u64,
    /// Segments for which no SYN was ever seen (mid-flow capture start
    /// or lost SYN) — dropped, as the stream offset is unknown.
    pub orphan_segments: u64,
    /// Flows completed with all bytes present.
    pub complete_flows: u64,
    /// Flows completed with holes.
    pub incomplete_flows: u64,
}

/// Live metrics for flow reconstruction (`tcp.flows.*` namespace);
/// no-ops until [`FlowReassembler::attach_telemetry`].
#[derive(Clone, Default)]
struct FlowTelemetry {
    /// `tcp.flows.syns_total`
    syns: Counter,
    /// `tcp.flows.data_segments_total`
    data_segments: Counter,
    /// `tcp.flows.orphan_segments_total`
    orphan_segments: Counter,
    /// `tcp.flows.complete_total`
    complete: Counter,
    /// `tcp.flows.incomplete_total`
    incomplete: Counter,
    /// `tcp.flows.tracked` — connection-table size (footnote 2's state
    /// pressure), sampled after every segment.
    tracked: Gauge,
}

/// One-directional TCP flow reassembler.
#[derive(Default)]
pub struct FlowReassembler {
    flows: HashMap<FlowKey, Flow>,
    stats: FlowStats,
    telemetry: FlowTelemetry,
}

impl FlowReassembler {
    /// Fresh reassembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Flows currently being tracked (the state-size problem footnote 2
    /// alludes to).
    pub fn tracked_flows(&self) -> usize {
        self.flows.len()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> FlowStats {
        self.stats
    }

    /// Mirrors reconstruction outcomes into `registry` under
    /// `tcp.flows.{syns,data_segments,orphan_segments,complete,incomplete}_total`
    /// plus the `tcp.flows.tracked` connection-table gauge.
    pub fn attach_telemetry(&mut self, registry: &Registry) {
        self.telemetry = FlowTelemetry {
            syns: registry.counter("tcp.flows.syns_total"),
            data_segments: registry.counter("tcp.flows.data_segments_total"),
            orphan_segments: registry.counter("tcp.flows.orphan_segments_total"),
            complete: registry.counter("tcp.flows.complete_total"),
            incomplete: registry.counter("tcp.flows.incomplete_total"),
            tracked: registry.gauge("tcp.flows.tracked"),
        };
    }

    /// Offers a captured segment; returns the flow outcome when its FIN
    /// arrives and the flow can be finalised.
    pub fn push(&mut self, seg: &TcpSegment) -> Option<FlowOutcome> {
        let out = self.push_inner(seg);
        self.telemetry.tracked.set(self.flows.len() as i64);
        out
    }

    fn push_inner(&mut self, seg: &TcpSegment) -> Option<FlowOutcome> {
        let key = FlowKey::of(seg);
        if seg.flags.syn {
            self.stats.syns += 1;
            self.telemetry.syns.inc();
            self.flows.insert(
                key,
                Flow {
                    isn: seg.seq,
                    pieces: Vec::new(),
                    fin_offset: None,
                    syn_seen: true,
                },
            );
            return None;
        }
        let Some(flow) = self.flows.get_mut(&key) else {
            // No SYN seen: without the ISN the stream offset of this
            // payload is unknowable — exactly why lost packets "make tcp
            // flows reconstruction very difficult".
            self.stats.orphan_segments += 1;
            self.telemetry.orphan_segments.inc();
            return None;
        };
        let offset = seg.seq.wrapping_sub(flow.isn).wrapping_sub(1); // data starts after SYN
        if !seg.payload.is_empty() {
            self.stats.data_segments += 1;
            self.telemetry.data_segments.inc();
            // Ignore exact duplicates (retransmissions).
            if !flow.pieces.iter().any(|(o, _)| *o == offset) {
                flow.pieces.push((offset, seg.payload.clone()));
            }
        }
        if seg.flags.fin {
            flow.fin_offset = Some(offset.wrapping_add(seg.payload.len() as u32));
        }
        if flow.fin_offset.is_some() {
            let flow = self.flows.remove(&key).expect("present");
            return Some(self.finalize(flow));
        }
        None
    }

    fn finalize(&mut self, mut flow: Flow) -> FlowOutcome {
        debug_assert!(flow.syn_seen);
        let total = flow.fin_offset.expect("finalise requires FIN") as u64;
        flow.pieces.sort_by_key(|(o, _)| *o);
        let mut present = 0u64;
        let mut contiguous = true;
        let mut expect = 0u64;
        for (o, b) in &flow.pieces {
            if *o as u64 != expect {
                contiguous = false;
            }
            expect = *o as u64 + b.len() as u64;
            present += b.len() as u64;
        }
        if contiguous && expect == total {
            self.stats.complete_flows += 1;
            self.telemetry.complete.inc();
            let mut out = Vec::with_capacity(total as usize);
            for (_, b) in &flow.pieces {
                out.extend_from_slice(b);
            }
            FlowOutcome::Complete(out)
        } else {
            self.stats.incomplete_flows += 1;
            self.telemetry.incomplete.inc();
            FlowOutcome::Incomplete {
                missing_bytes: total.saturating_sub(present),
                present_bytes: present,
                pieces: flow.pieces,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tcp::segmentize;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn stream_data(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i % 239) as u8).collect()
    }

    #[test]
    fn lossless_flow_reconstructs() {
        let data = stream_data(10_000);
        let segs = segmentize(1, 2, 1000, 4661, 42, &data, 1460);
        let mut r = FlowReassembler::new();
        let mut outcome = None;
        for s in &segs {
            if let Some(o) = r.push(s) {
                outcome = Some(o);
            }
        }
        assert_eq!(outcome, Some(FlowOutcome::Complete(data)));
        assert_eq!(r.stats().complete_flows, 1);
        assert_eq!(r.tracked_flows(), 0);
    }

    #[test]
    fn out_of_order_flow_reconstructs() {
        let data = stream_data(8_000);
        let mut segs = segmentize(1, 2, 1000, 4661, 7, &data, 1000);
        // Shuffle the data segments (keep SYN first and FIN last —
        // reordering across those is rarer and handled by orphan logic).
        let n = segs.len();
        segs[1..n - 1].reverse();
        let mut r = FlowReassembler::new();
        let mut outcome = None;
        for s in &segs {
            if let Some(o) = r.push(s) {
                outcome = Some(o);
            }
        }
        assert_eq!(outcome, Some(FlowOutcome::Complete(data)));
    }

    #[test]
    fn lost_data_segment_leaves_hole() {
        let data = stream_data(6_000);
        let segs = segmentize(1, 2, 1000, 4661, 7, &data, 1000);
        let mut r = FlowReassembler::new();
        let mut outcome = None;
        for (i, s) in segs.iter().enumerate() {
            if i == 3 {
                continue; // capture lost this one
            }
            if let Some(o) = r.push(s) {
                outcome = Some(o);
            }
        }
        match outcome {
            Some(FlowOutcome::Incomplete {
                missing_bytes,
                present_bytes,
                pieces,
            }) => {
                assert_eq!(missing_bytes, 1000);
                assert_eq!(present_bytes, 5000);
                // Pieces are offset-sorted and skip exactly the hole.
                assert_eq!(pieces.len(), 5);
                assert!(pieces.windows(2).all(|w| w[0].0 < w[1].0));
                let offsets: Vec<u32> = pieces.iter().map(|(o, _)| *o).collect();
                assert!(!offsets.contains(&2000), "hole piece present");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn lost_syn_orphans_the_whole_flow() {
        let data = stream_data(3_000);
        let segs = segmentize(1, 2, 1000, 4661, 7, &data, 1000);
        let mut r = FlowReassembler::new();
        for s in &segs[1..] {
            assert!(r.push(s).is_none());
        }
        assert_eq!(r.stats().orphan_segments as usize, segs.len() - 1);
        assert_eq!(r.stats().complete_flows, 0);
    }

    #[test]
    fn duplicate_segments_ignored() {
        let data = stream_data(2_000);
        let segs = segmentize(1, 2, 1000, 4661, 7, &data, 1000);
        let mut r = FlowReassembler::new();
        let mut outcome = None;
        for s in &segs {
            r.push(s);
            if let Some(o) = r.push(s) {
                // pushing the FIN twice: second one orphans (flow gone)
                outcome.get_or_insert(o);
            }
        }
        // First pass already finalised the flow.
        assert_eq!(r.stats().complete_flows, 1);
        let _ = outcome;
    }

    #[test]
    fn interleaved_flows_tracked_separately() {
        let a = segmentize(1, 2, 1000, 4661, 10, &stream_data(3_000), 700);
        let b = segmentize(3, 2, 2000, 4661, 90, &stream_data(4_000), 700);
        let mut r = FlowReassembler::new();
        let mut complete = 0;
        for (x, y) in a.iter().zip(b.iter()) {
            if r.push(x).is_some() {
                complete += 1;
            }
            if r.push(y).is_some() {
                complete += 1;
            }
        }
        for s in &b[a.len().min(b.len())..] {
            if r.push(s).is_some() {
                complete += 1;
            }
        }
        assert_eq!(complete, 2);
        assert_eq!(r.stats().syns, 2);
    }

    #[test]
    fn telemetry_counters_mirror_stats() {
        let registry = etw_telemetry::Registry::new();
        let mut r = FlowReassembler::new();
        r.attach_telemetry(&registry);
        let a = segmentize(1, 2, 1000, 4661, 10, &stream_data(3_000), 700);
        let b = segmentize(3, 2, 2000, 4661, 90, &stream_data(4_000), 700);
        for s in a.iter().chain(&b) {
            r.push(s);
        }
        // One lossy flow (SYN dropped → orphans, FIN kept) and one holey
        // flow (data segment dropped → incomplete).
        let c = segmentize(5, 2, 3000, 4661, 33, &stream_data(2_000), 700);
        for s in &c[1..] {
            r.push(s);
        }
        let d = segmentize(7, 2, 4000, 4661, 55, &stream_data(2_000), 700);
        for (i, s) in d.iter().enumerate() {
            if i != 2 {
                r.push(s);
            }
        }
        let stats = r.stats();
        let snap = registry.snapshot();
        assert!(stats.orphan_segments > 0 && stats.incomplete_flows > 0);
        assert_eq!(snap.counter("tcp.flows.syns_total"), stats.syns);
        assert_eq!(
            snap.counter("tcp.flows.data_segments_total"),
            stats.data_segments
        );
        assert_eq!(
            snap.counter("tcp.flows.orphan_segments_total"),
            stats.orphan_segments
        );
        assert_eq!(
            snap.counter("tcp.flows.complete_total"),
            stats.complete_flows
        );
        assert_eq!(
            snap.counter("tcp.flows.incomplete_total"),
            stats.incomplete_flows
        );
        assert_eq!(
            snap.gauges.get("tcp.flows.tracked").copied(),
            Some(r.tracked_flows() as i64)
        );
    }

    /// The paper's quantitative point: tiny segment-loss rates destroy a
    /// large fraction of flows (a flow survives only if *every* one of
    /// its segments survived).
    #[test]
    fn loss_vs_reconstruction_fraction() {
        let mut rng = StdRng::seed_from_u64(99);
        let per_flow_segments = 24; // ~32 KB flows at 1460 MSS
        let n_flows = 400;
        for (loss, expect_complete_below) in [(0.001, 1.0), (0.01, 0.9), (0.05, 0.45)] {
            let mut r = FlowReassembler::new();
            let mut finished = 0u32;
            for f in 0..n_flows {
                let data = stream_data(per_flow_segments * 1460);
                let segs = segmentize(f, 2, 1000 + (f % 50_000) as u16, 4661, f * 77, &data, 1460);
                for s in &segs {
                    if rng.gen_bool(loss) {
                        continue; // capture dropped it
                    }
                    if r.push(s).is_some() {
                        finished += 1;
                    }
                }
            }
            let s = r.stats();
            let complete_fraction = s.complete_flows as f64 / n_flows as f64;
            assert!(
                complete_fraction <= expect_complete_below,
                "loss {loss}: complete fraction {complete_fraction}"
            );
            // Flows whose FIN survived were all finalised one way or the
            // other.
            assert_eq!(finished as u64, s.complete_flows + s.incomplete_flows);
        }
    }
}
