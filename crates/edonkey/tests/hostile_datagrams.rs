//! Codec hardening corpus: the serving loop feeds every received
//! datagram — truncated, garbage, oversized, bit-flipped — straight into
//! the two-step decoder, so the decoder must classify *anything* without
//! panicking, and its counters must tile: every pushed datagram lands in
//! exactly one of {decoded, structurally invalid, decode failed, not
//! eDonkey}.

use etw_edonkey::datagram::MAX_DATAGRAM;
use etw_edonkey::decoder::{DecodeOutcome, Decoder};
use etw_edonkey::ids::{ClientId, FileId};
use etw_edonkey::messages::{opcodes, FileEntry, Message, ServerAddr, Source, PROTO_EDONKEY};
use etw_edonkey::search::SearchExpr;
use etw_edonkey::tags::{special, Tag, TagList};
use proptest::prelude::*;

fn sample_messages() -> Vec<Message> {
    vec![
        Message::StatusRequest { challenge: 7 },
        Message::StatusResponse {
            challenge: 7,
            users: 1_000_000,
            files: 90_000_000,
        },
        Message::ServerDescRequest,
        Message::ServerDescResponse {
            name: "ten weeks".into(),
            description: "directory server".into(),
        },
        Message::GetServerList,
        Message::ServerList {
            servers: vec![ServerAddr {
                ip: 0x5000_0001,
                port: 4661,
            }],
        },
        Message::SearchRequest {
            expr: SearchExpr::and(SearchExpr::keyword("live"), SearchExpr::keyword("1997")),
        },
        Message::SearchResponse {
            results: vec![FileEntry {
                file_id: FileId([3; 16]),
                client_id: ClientId(42),
                port: 4662,
                tags: TagList(vec![
                    Tag::str(special::FILENAME, "x.mp3"),
                    Tag::u32(special::FILESIZE, 1000),
                ]),
            }],
        },
        Message::GetSources {
            file_ids: vec![FileId([1; 16]), FileId([2; 16])],
        },
        Message::FoundSources {
            file_id: FileId([1; 16]),
            sources: vec![Source {
                client_id: ClientId(9),
                port: 4662,
            }],
        },
        Message::OfferFiles { files: vec![] },
    ]
}

/// Every outcome is one of the four classes, and the counters tile the
/// handled total — the invariant `server.net.malformed_total` relies on:
/// the server's malformed ledger is exactly `handled - decoded` for the
/// eDonkey-marked traffic plus the not-eDonkey and oversize buckets.
fn classify_and_check(d: &mut Decoder, buf: &[u8]) {
    let before = d.stats();
    let outcome = d.push(buf);
    let after = d.stats();
    assert_eq!(after.handled, before.handled + 1);
    let delta = (
        after.decoded - before.decoded,
        after.structurally_invalid - before.structurally_invalid,
        after.decode_failed - before.decode_failed,
        after.not_edonkey - before.not_edonkey,
    );
    let expect = match outcome {
        DecodeOutcome::Ok(_) => (1, 0, 0, 0),
        DecodeOutcome::StructurallyInvalid(_) => (0, 1, 0, 0),
        DecodeOutcome::DecodeFailed(_) => (0, 0, 1, 0),
        DecodeOutcome::NotEdonkey => (0, 0, 0, 1),
    };
    assert_eq!(delta, expect, "counters must tile for {buf:?}");
}

proptest! {
    /// Arbitrary bytes never panic the decoder and always land in
    /// exactly one accounting bucket.
    #[test]
    fn garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let mut d = Decoder::new();
        classify_and_check(&mut d, &bytes);
    }

    /// Arbitrary bytes behind a valid marker and a valid opcode — the
    /// adversarial shape: looks like eDonkey, body is noise.
    #[test]
    fn marked_garbage_never_panics(
        op_index in 0usize..11,
        body in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        let ops = [
            opcodes::STATUS_REQ, opcodes::STATUS_RES, opcodes::SEARCH_REQ,
            opcodes::SEARCH_RES, opcodes::GET_SOURCES, opcodes::FOUND_SOURCES,
            opcodes::GET_SERVER_LIST, opcodes::SERVER_LIST, opcodes::SERVER_DESC_REQ,
            opcodes::SERVER_DESC_RES, opcodes::OFFER_FILES,
        ];
        let mut buf = vec![PROTO_EDONKEY, ops[op_index]];
        buf.extend_from_slice(&body);
        let mut d = Decoder::new();
        classify_and_check(&mut d, &buf);
    }

    /// Every truncation of every valid message is classified, never
    /// decoded into something longer than what arrived, never a panic.
    #[test]
    fn truncations_never_panic(msg_index in 0usize..11, cut in 0usize..200) {
        let msgs = sample_messages();
        let full = msgs[msg_index].encode();
        let keep = cut.min(full.len());
        let mut d = Decoder::new();
        classify_and_check(&mut d, &full[..keep]);
    }

    /// Single-byte corruption of valid messages.
    #[test]
    fn bitflips_never_panic(msg_index in 0usize..11, pos in 0usize..200, flip in 1u8..=255) {
        let msgs = sample_messages();
        let mut buf = msgs[msg_index].encode();
        let len = buf.len();
        buf[pos % len] ^= flip;
        let mut d = Decoder::new();
        classify_and_check(&mut d, &buf);
    }
}

#[test]
fn maximum_size_datagrams_are_classified_not_crashed() {
    // Full-size datagrams at the server's acceptance ceiling and at
    // UDP's own ceiling: count-prefixed opcodes with absurd declared
    // counts must be rejected structurally, not by allocation.
    let mut d = Decoder::new();

    let mut huge = vec![PROTO_EDONKEY, opcodes::SEARCH_RES];
    huge.extend_from_slice(&u32::MAX.to_le_bytes());
    huge.resize(MAX_DATAGRAM, 0xAA);
    assert!(matches!(
        d.push(&huge),
        DecodeOutcome::StructurallyInvalid(_)
    ));

    let mut offer = vec![PROTO_EDONKEY, opcodes::OFFER_FILES];
    offer.extend_from_slice(&0x00FF_FFFF_u32.to_le_bytes());
    offer.resize(65507, 0x55);
    assert!(matches!(
        d.push(&offer),
        DecodeOutcome::StructurallyInvalid(_)
    ));

    // A GetSources body that is all fileIDs, at the ceiling: a valid
    // (if greedy) message — must decode, not panic.
    let ids = (MAX_DATAGRAM - 2) / 16;
    let mut sources = vec![PROTO_EDONKEY, opcodes::GET_SOURCES];
    sources.resize(2 + ids * 16, 0x11);
    match d.push(&sources) {
        DecodeOutcome::Ok(Message::GetSources { file_ids }) => assert_eq!(file_ids.len(), ids),
        other => panic!("expected GetSources, got {other:?}"),
    }

    let s = d.stats();
    assert_eq!(s.handled, 3);
    assert_eq!(s.decoded, 1);
    assert_eq!(s.structurally_invalid, 2);
}

#[test]
fn empty_and_one_byte_datagrams() {
    let mut d = Decoder::new();
    assert!(matches!(d.push(&[]), DecodeOutcome::StructurallyInvalid(_)));
    assert!(matches!(
        d.push(&[PROTO_EDONKEY]),
        DecodeOutcome::StructurallyInvalid(_)
    ));
    assert!(matches!(d.push(&[0x00]), DecodeOutcome::NotEdonkey));
    let s = d.stats();
    assert_eq!(s.structurally_invalid, 2);
    assert_eq!(s.not_edonkey, 1);
}
