//! Property-based tests for the eDonkey codec: every message the encoder
//! can produce must decode back to itself, and the decoder must never
//! panic on arbitrary bytes.

use etw_edonkey::decoder::{validate, DecodeOutcome, Decoder};
use etw_edonkey::ids::{ClientId, FileId};
use etw_edonkey::messages::{FileEntry, Message, ServerAddr, Source};
use etw_edonkey::search::{BoolOp, NumCmp, SearchExpr};
use etw_edonkey::tags::{Tag, TagList, TagName, TagValue};
use proptest::prelude::*;

fn arb_file_id() -> impl Strategy<Value = FileId> {
    any::<[u8; 16]>().prop_map(FileId)
}

fn arb_client_id() -> impl Strategy<Value = ClientId> {
    any::<u32>().prop_map(ClientId)
}

fn arb_tag_name() -> impl Strategy<Value = TagName> {
    prop_oneof![
        any::<u8>().prop_map(TagName::Special),
        "[a-z]{2,12}".prop_map(TagName::Named),
    ]
}

fn arb_tag() -> impl Strategy<Value = Tag> {
    (
        arb_tag_name(),
        prop_oneof![
            "[ -~]{0,40}".prop_map(TagValue::Str),
            any::<u32>().prop_map(TagValue::U32),
        ],
    )
        .prop_map(|(name, value)| Tag { name, value })
}

fn arb_tag_list() -> impl Strategy<Value = TagList> {
    prop::collection::vec(arb_tag(), 0..6).prop_map(TagList)
}

fn arb_entry() -> impl Strategy<Value = FileEntry> {
    (arb_file_id(), arb_client_id(), any::<u16>(), arb_tag_list()).prop_map(
        |(file_id, client_id, port, tags)| FileEntry {
            file_id,
            client_id,
            port,
            tags,
        },
    )
}

fn arb_expr() -> impl Strategy<Value = SearchExpr> {
    let leaf = prop_oneof![
        "[a-z0-9 ]{1,20}".prop_map(SearchExpr::Keyword),
        ("[ -~]{0,16}", arb_tag_name())
            .prop_map(|(value, name)| SearchExpr::MetaStr { name, value }),
        (
            any::<u32>(),
            arb_tag_name(),
            prop_oneof![Just(NumCmp::Min), Just(NumCmp::Max)]
        )
            .prop_map(|(value, name, cmp)| SearchExpr::MetaNum { name, cmp, value }),
    ];
    leaf.prop_recursive(4, 24, 2, |inner| {
        (
            prop_oneof![Just(BoolOp::And), Just(BoolOp::Or), Just(BoolOp::AndNot)],
            inner.clone(),
            inner,
        )
            .prop_map(|(op, left, right)| SearchExpr::Bool {
                op,
                left: Box::new(left),
                right: Box::new(right),
            })
    })
}

fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        any::<u32>().prop_map(|challenge| Message::StatusRequest { challenge }),
        (any::<u32>(), any::<u32>(), any::<u32>()).prop_map(|(challenge, users, files)| {
            Message::StatusResponse {
                challenge,
                users,
                files,
            }
        }),
        Just(Message::ServerDescRequest),
        ("[ -~]{0,30}", "[ -~]{0,60}")
            .prop_map(|(name, description)| { Message::ServerDescResponse { name, description } }),
        Just(Message::GetServerList),
        prop::collection::vec(
            (any::<u32>(), any::<u16>()).prop_map(|(ip, port)| ServerAddr { ip, port }),
            0..20
        )
        .prop_map(|servers| Message::ServerList { servers }),
        arb_expr().prop_map(|expr| Message::SearchRequest { expr }),
        prop::collection::vec(arb_entry(), 0..5)
            .prop_map(|results| Message::SearchResponse { results }),
        prop::collection::vec(arb_file_id(), 1..10)
            .prop_map(|file_ids| Message::GetSources { file_ids }),
        (
            arb_file_id(),
            prop::collection::vec(
                (arb_client_id(), any::<u16>())
                    .prop_map(|(client_id, port)| Source { client_id, port }),
                0..30
            )
        )
            .prop_map(|(file_id, sources)| Message::FoundSources { file_id, sources }),
        prop::collection::vec(arb_entry(), 0..5).prop_map(|files| Message::OfferFiles { files }),
    ]
}

proptest! {
    /// Encode → decode is the identity on all representable messages.
    #[test]
    fn round_trip(msg in arb_message()) {
        let buf = msg.encode();
        let got = Message::decode(&buf).expect("decode of encoder output");
        prop_assert_eq!(got, msg);
    }

    /// Structural validation accepts everything the encoder emits.
    #[test]
    fn validation_accepts_encoded(msg in arb_message()) {
        prop_assert!(validate(&msg.encode()).is_ok());
    }

    /// The two-step decoder classifies arbitrary bytes without panicking,
    /// and its counters always balance.
    #[test]
    fn decoder_total_function(data in prop::collection::vec(any::<u8>(), 0..200)) {
        let mut d = Decoder::new();
        let _ = d.push(&data);
        let s = d.stats();
        prop_assert_eq!(
            s.handled,
            s.decoded + s.structurally_invalid + s.decode_failed + s.not_edonkey
        );
    }

    /// Any prefix truncation of a valid message is rejected — with one
    /// protocol-faithful exception: GetSources carries no count field (its
    /// fileID list length is implied by the datagram length), so cutting
    /// it at a 16-byte boundary yields a valid, shorter GetSources. For
    /// every other message the formats are explicitly sized and truncation
    /// must error.
    #[test]
    fn truncation_always_detected(msg in arb_message(), frac in 0.0f64..1.0) {
        prop_assume!(!matches!(msg, Message::GetSources { .. }));
        let buf = msg.encode();
        if buf.len() > 2 {
            let cut = 2 + ((buf.len() - 2) as f64 * frac) as usize;
            if cut < buf.len() {
                prop_assert!(Message::decode(&buf[..cut]).is_err());
            }
        }
    }

    /// The GetSources exception, pinned down: truncation at a 16-byte
    /// boundary decodes to the prefix of the fileID list; anywhere else it
    /// errors.
    #[test]
    fn get_sources_truncation(ids in prop::collection::vec(arb_file_id(), 2..8),
                              cut in 1usize..100) {
        let n = ids.len();
        let msg = Message::GetSources { file_ids: ids.clone() };
        let buf = msg.encode();
        let cut = 2 + (cut % (buf.len() - 3));
        let body = cut - 2;
        let out = Message::decode(&buf[..cut]);
        if body.is_multiple_of(16) && body > 0 {
            let k = body / 16;
            prop_assert!(k < n);
            match out {
                Ok(Message::GetSources { file_ids }) => {
                    prop_assert_eq!(file_ids, ids[..k].to_vec());
                }
                other => return Err(TestCaseError::fail(format!("{other:?}"))),
            }
        } else {
            prop_assert!(out.is_err());
        }
    }

    /// Flipping the protocol marker is always classified NotEdonkey.
    #[test]
    fn marker_flip_detected(msg in arb_message(), marker in 0u8..=255) {
        prop_assume!(marker != 0xE3);
        let mut buf = msg.encode();
        buf[0] = marker;
        let mut d = Decoder::new();
        prop_assert!(matches!(d.push(&buf), DecodeOutcome::NotEdonkey));
    }

    /// Search expressions round-trip independently (deeper trees than the
    /// whole-message generator uses).
    #[test]
    fn expr_round_trip(expr in arb_expr()) {
        use etw_edonkey::wire::{Reader, Writer};
        let mut w = Writer::new();
        expr.encode(&mut w);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        let got = SearchExpr::decode(&mut r).expect("decode");
        r.expect_end().expect("fully consumed");
        prop_assert_eq!(got, expr);
    }

    /// MD4 incremental equals one-shot for arbitrary data and chunking.
    #[test]
    fn md4_incremental(data in prop::collection::vec(any::<u8>(), 0..300),
                       chunk in 1usize..64) {
        use etw_edonkey::md4::{md4, Md4};
        let mut h = Md4::new();
        for piece in data.chunks(chunk) {
            h.update(piece);
        }
        prop_assert_eq!(h.finalize(), md4(&data));
    }
}
