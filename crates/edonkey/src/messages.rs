//! eDonkey UDP message set.
//!
//! The paper (§2.1) groups messages into four families; every family is
//! represented here:
//!
//! * **management** — server status / description / server-list exchange;
//! * **file searches** — metadata search requests and the server's answers
//!   (fileID + name, size and other tags per result);
//! * **source searches** — "who provides fileID X?" and the answers
//!   (lists of clientID/port pairs);
//! * **announcements** — clients publishing the list of files they offer.
//!
//! Wire format: every UDP datagram starts with the eDonkey protocol marker
//! `0xE3` followed by an opcode byte and the opcode-specific payload.
//! Multi-byte integers are little-endian (see [`crate::wire`]).
//!
//! Opcodes follow the historical eMule/eDonkey UDP numbering where one
//! exists (`0x96..0x9B`, `0xA0..0xA3`); the publish ("offer files")
//! message, which the real network sends over TCP, is carried here under
//! its TCP opcode `0x15` — the dataset treats all dialogs uniformly and
//! DESIGN.md §5 records this substitution.

use crate::error::{DecodeError, Result};
use crate::ids::{ClientId, FileId};
use crate::search::SearchExpr;
use crate::tags::TagList;
use crate::wire::{Reader, Writer};

/// eDonkey protocol marker: first byte of every message.
pub const PROTO_EDONKEY: u8 = 0xE3;

/// Opcode bytes.
pub mod opcodes {
    /// Client → server: global status request.
    pub const STATUS_REQ: u8 = 0x96;
    /// Server → client: status answer (user/file counts).
    pub const STATUS_RES: u8 = 0x97;
    /// Client → server: metadata search.
    pub const SEARCH_REQ: u8 = 0x98;
    /// Server → client: search results.
    pub const SEARCH_RES: u8 = 0x99;
    /// Client → server: source request for fileIDs.
    pub const GET_SOURCES: u8 = 0x9A;
    /// Server → client: sources for one fileID.
    pub const FOUND_SOURCES: u8 = 0x9B;
    /// Client → server: ask for the server's server list.
    pub const GET_SERVER_LIST: u8 = 0xA0;
    /// Server → client: list of (ip, port) of other servers.
    pub const SERVER_LIST: u8 = 0xA1;
    /// Client → server: ask for name/description.
    pub const SERVER_DESC_REQ: u8 = 0xA2;
    /// Server → client: name/description.
    pub const SERVER_DESC_RES: u8 = 0xA3;
    /// Client → server: publish the files this client provides.
    pub const OFFER_FILES: u8 = 0x15;
}

/// A published or returned file entry: fileID plus the providing client
/// and the metadata tags.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FileEntry {
    /// File identifier.
    pub file_id: FileId,
    /// Providing client (the announcer for publishes, the provider for
    /// search results).
    pub client_id: ClientId,
    /// Client TCP port.
    pub port: u16,
    /// Metadata tags (name, size, type, ...).
    pub tags: TagList,
}

impl FileEntry {
    fn encode(&self, w: &mut Writer) {
        w.bytes(self.file_id.as_bytes());
        w.u32(self.client_id.raw());
        w.u16(self.port);
        self.tags.encode(w);
    }

    fn decode(r: &mut Reader) -> Result<Self> {
        Ok(FileEntry {
            file_id: FileId(r.hash16()?),
            client_id: ClientId(r.u32()?),
            port: r.u16()?,
            tags: TagList::decode(r)?,
        })
    }
}

/// A source for a file: the providing client and its TCP port.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Source {
    /// Provider's clientID.
    pub client_id: ClientId,
    /// Provider's TCP port.
    pub port: u16,
}

/// An (ip, port) pair in a server list.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ServerAddr {
    /// Server IPv4 address (big-endian octets packed as u32).
    pub ip: u32,
    /// Server UDP port.
    pub port: u16,
}

/// Any eDonkey UDP message.
///
/// Messages carry raw clientIDs/fileIDs in their payload fields, so the
/// whole type is treated as raw by the anonymisation-soundness lint.
// etwlint: source(raw-id): message payloads embed raw clientIDs/fileIDs
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Message {
    // ---- management ----
    /// Client asks for server status; `challenge` is echoed back.
    StatusRequest {
        /// Echo token.
        challenge: u32,
    },
    /// Server status answer.
    StatusResponse {
        /// Echoed token.
        challenge: u32,
        /// Users currently connected.
        users: u32,
        /// Files currently indexed.
        files: u32,
    },
    /// Client asks for the server's description.
    ServerDescRequest,
    /// Server description answer.
    ServerDescResponse {
        /// Server name.
        name: String,
        /// Free-form description.
        description: String,
    },
    /// Client asks for the list of other servers.
    GetServerList,
    /// Server list answer.
    ServerList {
        /// Known servers.
        servers: Vec<ServerAddr>,
    },

    // ---- file searches ----
    /// Metadata search.
    SearchRequest {
        /// Search expression tree.
        expr: SearchExpr,
    },
    /// Search results.
    SearchResponse {
        /// Matching files (with provider and tags).
        results: Vec<FileEntry>,
    },

    // ---- source searches ----
    /// Ask for providers of the given fileIDs.
    GetSources {
        /// Wanted fileIDs (count implied by datagram length).
        file_ids: Vec<FileId>,
    },
    /// Providers of one fileID.
    FoundSources {
        /// The fileID the sources are for.
        file_id: FileId,
        /// Known providers.
        sources: Vec<Source>,
    },

    // ---- announcements ----
    /// Client publishes the files it provides.
    OfferFiles {
        /// Announced files.
        files: Vec<FileEntry>,
    },
}

impl Message {
    /// The opcode this message is carried under.
    pub fn opcode(&self) -> u8 {
        use opcodes::*;
        match self {
            Message::StatusRequest { .. } => STATUS_REQ,
            Message::StatusResponse { .. } => STATUS_RES,
            Message::SearchRequest { .. } => SEARCH_REQ,
            Message::SearchResponse { .. } => SEARCH_RES,
            Message::GetSources { .. } => GET_SOURCES,
            Message::FoundSources { .. } => FOUND_SOURCES,
            Message::GetServerList => GET_SERVER_LIST,
            Message::ServerList { .. } => SERVER_LIST,
            Message::ServerDescRequest => SERVER_DESC_REQ,
            Message::ServerDescResponse { .. } => SERVER_DESC_RES,
            Message::OfferFiles { .. } => OFFER_FILES,
        }
    }

    /// True for messages sent by clients, false for server answers. This
    /// is the query/answer split the dataset records (paper §2.5: "queries
    /// from clients and answers to these queries from the server").
    pub fn is_client_to_server(&self) -> bool {
        matches!(
            self,
            Message::StatusRequest { .. }
                | Message::SearchRequest { .. }
                | Message::GetSources { .. }
                | Message::GetServerList
                | Message::ServerDescRequest
                | Message::OfferFiles { .. }
        )
    }

    /// The paper's four message families (§2.1); used by summary
    /// statistics.
    pub fn family(&self) -> Family {
        match self {
            Message::StatusRequest { .. }
            | Message::StatusResponse { .. }
            | Message::ServerDescRequest
            | Message::ServerDescResponse { .. }
            | Message::GetServerList
            | Message::ServerList { .. } => Family::Management,
            Message::SearchRequest { .. } | Message::SearchResponse { .. } => Family::FileSearch,
            Message::GetSources { .. } | Message::FoundSources { .. } => Family::SourceSearch,
            Message::OfferFiles { .. } => Family::Announcement,
        }
    }

    /// Serialises the full datagram payload (marker + opcode + body).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(64);
        w.u8(PROTO_EDONKEY);
        w.u8(self.opcode());
        self.encode_body(&mut w);
        w.into_bytes()
    }

    /// Serialises into a caller-owned buffer, reusing its allocation.
    /// `out` is cleared first; afterwards it holds exactly what
    /// [`Self::encode`] would have returned.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let mut w = Writer::from_vec(std::mem::take(out));
        w.u8(PROTO_EDONKEY);
        w.u8(self.opcode());
        self.encode_body(&mut w);
        *out = w.into_bytes();
    }

    fn encode_body(&self, w: &mut Writer) {
        match self {
            Message::StatusRequest { challenge } => w.u32(*challenge),
            Message::StatusResponse {
                challenge,
                users,
                files,
            } => {
                w.u32(*challenge);
                w.u32(*users);
                w.u32(*files);
            }
            Message::ServerDescRequest | Message::GetServerList => {}
            Message::ServerDescResponse { name, description } => {
                w.str16(name);
                w.str16(description);
            }
            Message::ServerList { servers } => {
                w.u8(servers.len() as u8);
                for s in servers {
                    w.u32(s.ip);
                    w.u16(s.port);
                }
            }
            Message::SearchRequest { expr } => expr.encode(w),
            Message::SearchResponse { results } => {
                w.u32(results.len() as u32);
                for e in results {
                    e.encode(w);
                }
            }
            Message::GetSources { file_ids } => {
                for id in file_ids {
                    w.bytes(id.as_bytes());
                }
            }
            Message::FoundSources { file_id, sources } => {
                w.bytes(file_id.as_bytes());
                w.u8(sources.len() as u8);
                for s in sources {
                    w.u32(s.client_id.raw());
                    w.u16(s.port);
                }
            }
            Message::OfferFiles { files } => {
                w.u32(files.len() as u32);
                for f in files {
                    f.encode(w);
                }
            }
        }
    }

    /// Parses a full datagram payload. This is the *effective decoding*
    /// step of the paper's two-step decoder; callers wanting the combined
    /// validation + accounting path should use [`crate::decoder::Decoder`].
    pub fn decode(buf: &[u8]) -> Result<Message> {
        if buf.is_empty() {
            return Err(DecodeError::Empty);
        }
        if buf[0] != PROTO_EDONKEY {
            return Err(DecodeError::NotEdonkey(buf[0]));
        }
        let mut r = Reader::new(&buf[1..]);
        let op = r.u8()?;
        let msg = Self::decode_body(op, &mut r)?;
        r.expect_end()?;
        Ok(msg)
    }

    fn decode_body(op: u8, r: &mut Reader) -> Result<Message> {
        use opcodes::*;
        Ok(match op {
            STATUS_REQ => Message::StatusRequest {
                challenge: r.u32()?,
            },
            STATUS_RES => Message::StatusResponse {
                challenge: r.u32()?,
                users: r.u32()?,
                files: r.u32()?,
            },
            SERVER_DESC_REQ => Message::ServerDescRequest,
            SERVER_DESC_RES => Message::ServerDescResponse {
                name: r.str16()?.to_owned(),
                description: r.str16()?.to_owned(),
            },
            GET_SERVER_LIST => Message::GetServerList,
            SERVER_LIST => {
                let n = r.u8()? as usize;
                if n * 6 != r.remaining() {
                    return Err(DecodeError::Malformed("server list length mismatch"));
                }
                let mut servers = Vec::with_capacity(n);
                for _ in 0..n {
                    servers.push(ServerAddr {
                        ip: r.u32()?,
                        port: r.u16()?,
                    });
                }
                Message::ServerList { servers }
            }
            SEARCH_REQ => Message::SearchRequest {
                expr: SearchExpr::decode(r)?,
            },
            SEARCH_RES => {
                let n = r.u32()? as usize;
                // Each result is at least 16+4+2+4 = 26 bytes.
                if n.saturating_mul(26) > r.remaining() {
                    return Err(DecodeError::Malformed("result count exceeds payload"));
                }
                let mut results = Vec::with_capacity(n);
                for _ in 0..n {
                    results.push(FileEntry::decode(r)?);
                }
                Message::SearchResponse { results }
            }
            GET_SOURCES => {
                if r.remaining() == 0 {
                    return Err(DecodeError::Malformed("empty GetSources"));
                }
                if !r.remaining().is_multiple_of(16) {
                    return Err(DecodeError::Malformed("GetSources not multiple of 16"));
                }
                let n = r.remaining() / 16;
                let mut file_ids = Vec::with_capacity(n);
                for _ in 0..n {
                    file_ids.push(FileId(r.hash16()?));
                }
                Message::GetSources { file_ids }
            }
            FOUND_SOURCES => {
                let file_id = FileId(r.hash16()?);
                let n = r.u8()? as usize;
                if n * 6 != r.remaining() {
                    return Err(DecodeError::Malformed("source list length mismatch"));
                }
                let mut sources = Vec::with_capacity(n);
                for _ in 0..n {
                    sources.push(Source {
                        client_id: ClientId(r.u32()?),
                        port: r.u16()?,
                    });
                }
                Message::FoundSources { file_id, sources }
            }
            OFFER_FILES => {
                let n = r.u32()? as usize;
                if n.saturating_mul(26) > r.remaining() {
                    return Err(DecodeError::Malformed("file count exceeds payload"));
                }
                let mut files = Vec::with_capacity(n);
                for _ in 0..n {
                    files.push(FileEntry::decode(r)?);
                }
                Message::OfferFiles { files }
            }
            other => return Err(DecodeError::UnknownOpcode(other)),
        })
    }
}

/// The four message families of paper §2.1.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Family {
    /// Server management (status, description, server lists).
    Management,
    /// Metadata searches and their answers.
    FileSearch,
    /// Source searches and their answers.
    SourceSearch,
    /// Client file announcements.
    Announcement,
}

impl Family {
    /// All families, for iteration in summaries.
    pub const ALL: [Family; 4] = [
        Family::Management,
        Family::FileSearch,
        Family::SourceSearch,
        Family::Announcement,
    ];

    /// Stable lowercase label (used in reports and XML).
    pub fn label(&self) -> &'static str {
        match self {
            Family::Management => "management",
            Family::FileSearch => "file_search",
            Family::SourceSearch => "source_search",
            Family::Announcement => "announcement",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tags::{special, Tag};

    fn sample_entry(seed: u8) -> FileEntry {
        FileEntry {
            file_id: FileId([seed; 16]),
            client_id: ClientId::from_ipv4([82, 1, 2, seed]),
            port: 4662,
            tags: TagList(vec![
                Tag::str(special::FILENAME, format!("file-{seed}.mp3")),
                Tag::u32(special::FILESIZE, 3_500_000 + seed as u32),
            ]),
        }
    }

    fn round_trip(m: &Message) -> Message {
        let buf = m.encode();
        Message::decode(&buf).expect("decode")
    }

    #[test]
    fn status_round_trip() {
        let m = Message::StatusRequest { challenge: 0x55aa };
        assert_eq!(round_trip(&m), m);
        let m = Message::StatusResponse {
            challenge: 0x55aa,
            users: 1_234_567,
            files: 89_000_000,
        };
        assert_eq!(round_trip(&m), m);
    }

    #[test]
    fn desc_round_trip() {
        assert_eq!(
            round_trip(&Message::ServerDescRequest),
            Message::ServerDescRequest
        );
        let m = Message::ServerDescResponse {
            name: "BigServer".into(),
            description: "a large eDonkey index".into(),
        };
        assert_eq!(round_trip(&m), m);
    }

    #[test]
    fn server_list_round_trip() {
        assert_eq!(round_trip(&Message::GetServerList), Message::GetServerList);
        let m = Message::ServerList {
            servers: vec![
                ServerAddr { ip: 1, port: 4661 },
                ServerAddr { ip: 2, port: 4665 },
            ],
        };
        assert_eq!(round_trip(&m), m);
    }

    #[test]
    fn search_round_trip() {
        let m = Message::SearchRequest {
            expr: SearchExpr::and(SearchExpr::keyword("concert"), SearchExpr::keyword("2004")),
        };
        assert_eq!(round_trip(&m), m);
        let m = Message::SearchResponse {
            results: vec![sample_entry(1), sample_entry(2)],
        };
        assert_eq!(round_trip(&m), m);
    }

    #[test]
    fn sources_round_trip() {
        let m = Message::GetSources {
            file_ids: vec![FileId([1; 16]), FileId([2; 16]), FileId([3; 16])],
        };
        assert_eq!(round_trip(&m), m);
        let m = Message::FoundSources {
            file_id: FileId([9; 16]),
            sources: vec![
                Source {
                    client_id: ClientId::from_ipv4([10, 0, 0, 1]),
                    port: 4662,
                },
                Source {
                    client_id: ClientId::low(77),
                    port: 4672,
                },
            ],
        };
        assert_eq!(round_trip(&m), m);
    }

    #[test]
    fn offer_round_trip() {
        let m = Message::OfferFiles {
            files: (0..5).map(sample_entry).collect(),
        };
        assert_eq!(round_trip(&m), m);
    }

    #[test]
    fn wrong_protocol_marker() {
        let mut buf = Message::GetServerList.encode();
        buf[0] = 0xC5; // eMule extension marker, not plain eDonkey
        assert!(matches!(
            Message::decode(&buf),
            Err(DecodeError::NotEdonkey(0xC5))
        ));
    }

    #[test]
    fn empty_datagram() {
        assert!(matches!(Message::decode(&[]), Err(DecodeError::Empty)));
    }

    #[test]
    fn unknown_opcode() {
        let buf = [PROTO_EDONKEY, 0x42];
        assert!(matches!(
            Message::decode(&buf),
            Err(DecodeError::UnknownOpcode(0x42))
        ));
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut buf = Message::StatusRequest { challenge: 1 }.encode();
        buf.push(0);
        assert!(matches!(
            Message::decode(&buf),
            Err(DecodeError::TrailingBytes(1))
        ));
    }

    #[test]
    fn get_sources_must_be_multiple_of_16() {
        let mut buf = vec![PROTO_EDONKEY, opcodes::GET_SOURCES];
        buf.extend_from_slice(&[0u8; 17]);
        assert!(matches!(
            Message::decode(&buf),
            Err(DecodeError::Malformed(_))
        ));
    }

    #[test]
    fn empty_get_sources_rejected() {
        let buf = vec![PROTO_EDONKEY, opcodes::GET_SOURCES];
        assert!(Message::decode(&buf).is_err());
    }

    #[test]
    fn family_classification() {
        assert_eq!(
            Message::StatusRequest { challenge: 0 }.family(),
            Family::Management
        );
        assert_eq!(
            Message::SearchRequest {
                expr: SearchExpr::keyword("x")
            }
            .family(),
            Family::FileSearch
        );
        assert_eq!(
            Message::GetSources {
                file_ids: vec![FileId([0; 16])]
            }
            .family(),
            Family::SourceSearch
        );
        assert_eq!(
            Message::OfferFiles { files: vec![] }.family(),
            Family::Announcement
        );
    }

    #[test]
    fn direction_classification() {
        assert!(Message::GetServerList.is_client_to_server());
        assert!(!Message::ServerList { servers: vec![] }.is_client_to_server());
        assert!(Message::OfferFiles { files: vec![] }.is_client_to_server());
        assert!(!Message::FoundSources {
            file_id: FileId([0; 16]),
            sources: vec![]
        }
        .is_client_to_server());
    }

    #[test]
    fn truncation_anywhere_fails() {
        let m = Message::SearchResponse {
            results: vec![sample_entry(3)],
        };
        let buf = m.encode();
        for cut in 1..buf.len() {
            assert!(Message::decode(&buf[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn absurd_counts_do_not_allocate() {
        // SEARCH_RES claiming u32::MAX results with a tiny payload.
        let mut buf = vec![PROTO_EDONKEY, opcodes::SEARCH_RES];
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            Message::decode(&buf),
            Err(DecodeError::Malformed(_))
        ));
    }
}
