//! # etw-edonkey — the eDonkey wire protocol
//!
//! Protocol substrate for the reproduction of *"Ten weeks in the life of
//! an eDonkey server"* (Aidouni, Latapy, Magnien — arXiv:0809.3415).
//!
//! eDonkey is a semi-distributed peer-to-peer file-exchange system built
//! around directory servers that index files and users (paper §2.1). This
//! crate provides everything needed to speak — and, crucially for the
//! paper, to *decode captured* — eDonkey UDP traffic:
//!
//! * [`md4`] — the MD4 digest that defines fileIDs (RFC 1320, from
//!   scratch, fully test-vectored);
//! * [`ids`] — [`ids::FileId`] and [`ids::ClientId`]
//!   with the high-ID/low-ID distinction;
//! * [`tags`] — the typed metadata tag system (filename, filesize, ...);
//! * [`search`] — boolean search-expression trees and their prefix
//!   encoding;
//! * [`messages`] — the four message families (management, file search,
//!   source search, announcements) and their binary codec;
//! * [`decoder`] — the paper's two-step decoder (structural validation,
//!   then effective decoding) with the accounting used in §2.3;
//! * [`corrupt`] — failure injection modelling the malformed traffic real
//!   clients emit;
//! * [`stream`] — TCP stream framing with resynchronisation (the layer
//!   the paper's proposed TCP measurement extension needs);
//! * [`session`] — the TCP login handshake with the server-side
//!   high-ID/low-ID assignment rule of §2.1.
//!
//! ## Example
//!
//! ```
//! use etw_edonkey::messages::Message;
//! use etw_edonkey::search::SearchExpr;
//! use etw_edonkey::decoder::{Decoder, DecodeOutcome};
//!
//! // A client asks the server for files matching two keywords…
//! let query = Message::SearchRequest {
//!     expr: SearchExpr::and(
//!         SearchExpr::keyword("live"),
//!         SearchExpr::keyword("1997"),
//!     ),
//! };
//! let datagram = query.encode();
//!
//! // …and the capture machine decodes what it sniffed.
//! let mut decoder = Decoder::new();
//! match decoder.push(&datagram) {
//!     DecodeOutcome::Ok(msg) => assert_eq!(msg, query),
//!     other => panic!("{other:?}"),
//! }
//! assert_eq!(decoder.stats().decoded, 1);
//! ```

#![warn(missing_docs)]

pub mod corrupt;
pub mod datagram;
pub mod decoder;
pub mod error;
pub mod ids;
pub mod md4;
pub mod messages;
pub mod search;
pub mod session;
pub mod stream;
pub mod tags;
pub mod wire;

pub use decoder::{DecodeOutcome, Decoder, DecoderStats};
pub use error::DecodeError;
pub use ids::{ClientId, ClientIdKind, FileId};
pub use messages::{Family, FileEntry, Message, ServerAddr, Source};
pub use search::SearchExpr;
pub use session::{IdAssigner, SessionMessage};
pub use stream::{encode_stream, StreamDecoder, StreamStats};
pub use tags::{Tag, TagList, TagName, TagValue};
