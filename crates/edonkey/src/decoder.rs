//! The paper's two-step message decoder (§2.3).
//!
//! > "Our decoder operates in two steps: a structural validation of
//! > messages (based on their expected length, for example), then, if
//! > successful, an attempt at effective decoding."
//!
//! [`Decoder`] implements exactly that: [`validate`] performs cheap
//! shape checks (marker byte, opcode known, declared lengths consistent
//! with the datagram length) without building any owned values; decoding
//! proper then materialises a [`Message`]. The decoder keeps the running
//! counters needed to reproduce the paper's reported statistics: among
//! 949 873 704 handled messages, 0.68 % were not decoded, and 78 % of
//! those were structurally incorrect.

use crate::error::DecodeError;
use crate::messages::{opcodes, Message, PROTO_EDONKEY};
use crate::wire::Reader;

/// Result of pushing one datagram through the two-step decoder.
#[derive(Clone, Debug)]
pub enum DecodeOutcome {
    /// Fully decoded.
    Ok(Message),
    /// Rejected by the structural validation step.
    StructurallyInvalid(DecodeError),
    /// Passed validation but failed effective decoding (e.g. bad UTF-8 in
    /// a string field, unknown tag type).
    DecodeFailed(DecodeError),
    /// Not eDonkey traffic at all (other application on the same port,
    /// or noise).
    NotEdonkey,
}

/// Cheap structural validation: is this shaped like an eDonkey message?
///
/// The checks are deliberately the kind that only look at lengths and
/// discriminator bytes — the fast early-reject the paper's real-time
/// constraint requires. It must never allocate.
pub fn validate(buf: &[u8]) -> Result<(), DecodeError> {
    if buf.is_empty() {
        return Err(DecodeError::Empty);
    }
    if buf[0] != PROTO_EDONKEY {
        return Err(DecodeError::NotEdonkey(buf[0]));
    }
    if buf.len() < 2 {
        return Err(DecodeError::Truncated {
            wanted: 2,
            available: buf.len(),
        });
    }
    let op = buf[1];
    let body = &buf[2..];
    use opcodes::*;
    match op {
        STATUS_REQ => expect_len(body, 4),
        STATUS_RES => expect_len(body, 12),
        SERVER_DESC_REQ | GET_SERVER_LIST => expect_len(body, 0),
        SERVER_DESC_RES => {
            // Two length-prefixed strings must tile the body exactly.
            let mut r = Reader::new(body);
            let n1 = r.u16()? as usize;
            r.take(n1)?;
            let n2 = r.u16()? as usize;
            r.take(n2)?;
            r.expect_end()
        }
        SERVER_LIST => {
            let mut r = Reader::new(body);
            let n = r.u8()? as usize;
            if r.remaining() == n * 6 {
                Ok(())
            } else {
                Err(DecodeError::Malformed("server list length mismatch"))
            }
        }
        SEARCH_REQ => {
            if body.is_empty() {
                Err(DecodeError::Truncated {
                    wanted: 1,
                    available: 0,
                })
            } else {
                Ok(())
            }
        }
        SEARCH_RES | OFFER_FILES => {
            let mut r = Reader::new(body);
            let n = r.u32()? as usize;
            if n.saturating_mul(26) > r.remaining() {
                Err(DecodeError::Malformed("entry count exceeds payload"))
            } else {
                Ok(())
            }
        }
        GET_SOURCES => {
            if body.is_empty() {
                Err(DecodeError::Malformed("empty GetSources"))
            } else if !body.len().is_multiple_of(16) {
                Err(DecodeError::Malformed("GetSources not multiple of 16"))
            } else {
                Ok(())
            }
        }
        FOUND_SOURCES => {
            let mut r = Reader::new(body);
            r.take(16)?;
            let n = r.u8()? as usize;
            if r.remaining() == n * 6 {
                Ok(())
            } else {
                Err(DecodeError::Malformed("source list length mismatch"))
            }
        }
        other => Err(DecodeError::UnknownOpcode(other)),
    }
}

fn expect_len(body: &[u8], want: usize) -> Result<(), DecodeError> {
    if body.len() == want {
        Ok(())
    } else if body.len() < want {
        Err(DecodeError::Truncated {
            wanted: want,
            available: body.len(),
        })
    } else {
        Err(DecodeError::TrailingBytes(body.len() - want))
    }
}

/// Running counters matching the paper's §2.3 accounting.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct DecoderStats {
    /// Datagrams handed to the decoder.
    pub handled: u64,
    /// Fully decoded messages.
    pub decoded: u64,
    /// Rejected by structural validation.
    pub structurally_invalid: u64,
    /// Passed validation, failed effective decoding.
    pub decode_failed: u64,
    /// Not eDonkey traffic.
    pub not_edonkey: u64,
}

impl DecoderStats {
    /// Fraction of handled eDonkey messages that were not decoded
    /// (paper: 0.68 %). Non-eDonkey datagrams are excluded, as they are
    /// not "eDonkey messages" in the paper's denominator.
    pub fn undecoded_fraction(&self) -> f64 {
        let ed = self.handled - self.not_edonkey;
        if ed == 0 {
            return 0.0;
        }
        (self.structurally_invalid + self.decode_failed) as f64 / ed as f64
    }

    /// Among undecoded messages, the fraction that were structurally
    /// incorrect (paper: 78 %).
    pub fn structural_fraction_of_undecoded(&self) -> f64 {
        let undecoded = self.structurally_invalid + self.decode_failed;
        if undecoded == 0 {
            return 0.0;
        }
        self.structurally_invalid as f64 / undecoded as f64
    }

    /// Merges counters from another decoder (used when decoding is
    /// sharded across worker threads).
    pub fn merge(&mut self, other: &DecoderStats) {
        self.handled += other.handled;
        self.decoded += other.decoded;
        self.structurally_invalid += other.structurally_invalid;
        self.decode_failed += other.decode_failed;
        self.not_edonkey += other.not_edonkey;
    }
}

/// Stateful two-step decoder with accounting.
#[derive(Default, Clone)]
pub struct Decoder {
    stats: DecoderStats,
}

impl Decoder {
    /// Fresh decoder with zeroed counters.
    pub fn new() -> Self {
        Decoder::default()
    }

    /// Pushes one UDP payload through validation then decoding.
    // etwlint: source(raw-id): decoded messages carry raw wire identifiers
    pub fn push(&mut self, buf: &[u8]) -> DecodeOutcome {
        self.stats.handled += 1;
        if let Some(&first) = buf.first() {
            if first != PROTO_EDONKEY {
                self.stats.not_edonkey += 1;
                return DecodeOutcome::NotEdonkey;
            }
        } else {
            self.stats.structurally_invalid += 1;
            return DecodeOutcome::StructurallyInvalid(DecodeError::Empty);
        }
        if let Err(e) = validate(buf) {
            self.stats.structurally_invalid += 1;
            return DecodeOutcome::StructurallyInvalid(e);
        }
        match Message::decode(buf) {
            Ok(m) => {
                self.stats.decoded += 1;
                DecodeOutcome::Ok(m)
            }
            Err(e) => {
                self.stats.decode_failed += 1;
                DecodeOutcome::DecodeFailed(e)
            }
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> DecoderStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ClientId, FileId};
    use crate::messages::{FileEntry, Source};
    use crate::search::SearchExpr;
    use crate::tags::{special, Tag, TagList};

    fn all_message_samples() -> Vec<Message> {
        vec![
            Message::StatusRequest { challenge: 7 },
            Message::StatusResponse {
                challenge: 7,
                users: 10,
                files: 20,
            },
            Message::ServerDescRequest,
            Message::ServerDescResponse {
                name: "s".into(),
                description: "d".into(),
            },
            Message::GetServerList,
            Message::ServerList { servers: vec![] },
            Message::SearchRequest {
                expr: SearchExpr::keyword("x"),
            },
            Message::SearchResponse {
                results: vec![FileEntry {
                    file_id: FileId([1; 16]),
                    client_id: ClientId(0x5000_0001),
                    port: 4662,
                    tags: TagList(vec![Tag::str(special::FILENAME, "f")]),
                }],
            },
            Message::GetSources {
                file_ids: vec![FileId([2; 16])],
            },
            Message::FoundSources {
                file_id: FileId([2; 16]),
                sources: vec![Source {
                    client_id: ClientId(0x5000_0002),
                    port: 4662,
                }],
            },
            Message::OfferFiles { files: vec![] },
        ]
    }

    #[test]
    fn validation_accepts_every_valid_message() {
        for m in all_message_samples() {
            let buf = m.encode();
            validate(&buf).unwrap_or_else(|e| panic!("{m:?}: {e}"));
        }
    }

    #[test]
    fn decoder_counts_ok_messages() {
        let mut d = Decoder::new();
        for m in all_message_samples() {
            match d.push(&m.encode()) {
                DecodeOutcome::Ok(got) => assert_eq!(got, m),
                other => panic!("expected Ok, got {other:?}"),
            }
        }
        let s = d.stats();
        assert_eq!(s.handled, 11);
        assert_eq!(s.decoded, 11);
        assert_eq!(s.undecoded_fraction(), 0.0);
    }

    #[test]
    fn decoder_classifies_non_edonkey() {
        let mut d = Decoder::new();
        assert!(matches!(d.push(&[0x17, 1, 2]), DecodeOutcome::NotEdonkey));
        assert_eq!(d.stats().not_edonkey, 1);
    }

    #[test]
    fn decoder_classifies_structural_garbage() {
        let mut d = Decoder::new();
        // Truncated status request.
        let outcome = d.push(&[PROTO_EDONKEY, opcodes::STATUS_REQ, 1, 2]);
        assert!(matches!(outcome, DecodeOutcome::StructurallyInvalid(_)));
        // Empty datagram.
        assert!(matches!(
            d.push(&[]),
            DecodeOutcome::StructurallyInvalid(DecodeError::Empty)
        ));
        assert_eq!(d.stats().structurally_invalid, 2);
    }

    #[test]
    fn decoder_classifies_effective_decode_failure() {
        // A SEARCH_REQ whose body is not a valid expression passes the
        // (length-only) structural check but fails decoding.
        let mut d = Decoder::new();
        let buf = [PROTO_EDONKEY, opcodes::SEARCH_REQ, 0x7f];
        assert!(matches!(d.push(&buf), DecodeOutcome::DecodeFailed(_)));
        let s = d.stats();
        assert_eq!(s.decode_failed, 1);
        assert_eq!(s.structural_fraction_of_undecoded(), 0.0);
    }

    #[test]
    fn stats_fractions_match_paper_shape() {
        // Synthetic mix: 1000 good, 5 structural, 2 decode-fail → 0.7 %
        // undecoded, ~71 % structural — same order as the paper's 0.68 %
        // and 78 %.
        let good = Message::StatusRequest { challenge: 1 }.encode();
        let structural = vec![PROTO_EDONKEY, opcodes::STATUS_REQ, 0]; // short
        let decode_fail = vec![PROTO_EDONKEY, opcodes::SEARCH_REQ, 0x7f];
        let mut d = Decoder::new();
        for _ in 0..1000 {
            d.push(&good);
        }
        for _ in 0..5 {
            d.push(&structural);
        }
        for _ in 0..2 {
            d.push(&decode_fail);
        }
        let s = d.stats();
        assert!((s.undecoded_fraction() - 7.0 / 1007.0).abs() < 1e-12);
        assert!((s.structural_fraction_of_undecoded() - 5.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = DecoderStats {
            handled: 10,
            decoded: 9,
            structurally_invalid: 1,
            decode_failed: 0,
            not_edonkey: 0,
        };
        let b = DecoderStats {
            handled: 5,
            decoded: 4,
            structurally_invalid: 0,
            decode_failed: 1,
            not_edonkey: 0,
        };
        a.merge(&b);
        assert_eq!(a.handled, 15);
        assert_eq!(a.decoded, 13);
        assert_eq!(a.structurally_invalid, 1);
        assert_eq!(a.decode_failed, 1);
    }

    #[test]
    fn validation_is_length_exact_for_fixed_messages() {
        // One byte too many on a fixed-size message must be caught by
        // validation, not by decode.
        let mut buf = Message::StatusRequest { challenge: 1 }.encode();
        buf.push(0xff);
        assert!(matches!(validate(&buf), Err(DecodeError::TrailingBytes(1))));
    }
}
