//! MD4 message digest (RFC 1320), implemented from scratch.
//!
//! eDonkey identifies every file by the MD4 hash of its content (the
//! *fileID*, §2.1 of the paper). The network being simulated here never
//! hashes real file bytes, but fileIDs must still *be* MD4 digests so that
//! (a) they are uniformly distributed over the 128-bit space — the property
//! the paper's bucketed anonymisation arrays rely on — and (b) forged
//! (non-MD4) IDs injected by polluters are distinguishable in exactly the
//! way the paper observed (low-entropy prefixes).
//!
//! The implementation is the straightforward three-round compression
//! function over 512-bit blocks with Merkle–Damgård length padding. It is
//! validated against every test vector in RFC 1320 appendix A.5.

/// Digest size in bytes.
pub const DIGEST_LEN: usize = 16;

/// Block size in bytes.
const BLOCK_LEN: usize = 64;

/// Incremental MD4 hasher.
///
/// ```
/// use etw_edonkey::md4::Md4;
/// let mut h = Md4::new();
/// h.update(b"abc");
/// assert_eq!(hex(&h.finalize()), "a448017aaf21d8525fc10ae87aa6729d");
/// fn hex(d: &[u8; 16]) -> String {
///     d.iter().map(|b| format!("{b:02x}")).collect()
/// }
/// ```
#[derive(Clone)]
pub struct Md4 {
    state: [u32; 4],
    /// Total message length in bytes (mod 2^64).
    len: u64,
    buf: [u8; BLOCK_LEN],
    buf_len: usize,
}

impl Default for Md4 {
    fn default() -> Self {
        Self::new()
    }
}

impl Md4 {
    /// Creates a hasher in the RFC 1320 initial state.
    pub fn new() -> Self {
        Md4 {
            state: [0x6745_2301, 0xefcd_ab89, 0x98ba_dcfe, 0x1032_5476],
            len: 0,
            buf: [0u8; BLOCK_LEN],
            buf_len: 0,
        }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.buf_len > 0 {
            let take = (BLOCK_LEN - self.buf_len).min(rest.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len == BLOCK_LEN {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while rest.len() >= BLOCK_LEN {
            let (block, tail) = rest.split_at(BLOCK_LEN);
            let mut b = [0u8; BLOCK_LEN];
            b.copy_from_slice(block);
            self.compress(&b);
            rest = tail;
        }
        if !rest.is_empty() {
            self.buf[..rest.len()].copy_from_slice(rest);
            self.buf_len = rest.len();
        }
    }

    /// Applies padding and returns the 128-bit digest.
    pub fn finalize(mut self) -> [u8; DIGEST_LEN] {
        let bit_len = self.len.wrapping_mul(8);
        // One 0x80 byte, then zeros until 8 bytes remain in the block.
        self.update(&[0x80]);
        while self.buf_len != BLOCK_LEN - 8 {
            self.update(&[0]);
        }
        // Padding must not count toward the message length; undo it.
        self.len = 0;
        self.update(&bit_len.to_le_bytes());
        debug_assert_eq!(self.buf_len, 0);
        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; BLOCK_LEN]) {
        #[inline(always)]
        fn f(x: u32, y: u32, z: u32) -> u32 {
            (x & y) | (!x & z)
        }
        #[inline(always)]
        fn g(x: u32, y: u32, z: u32) -> u32 {
            (x & y) | (x & z) | (y & z)
        }
        #[inline(always)]
        fn h(x: u32, y: u32, z: u32) -> u32 {
            x ^ y ^ z
        }

        let mut m = [0u32; 16];
        for (i, w) in m.iter_mut().enumerate() {
            *w = u32::from_le_bytes([
                block[i * 4],
                block[i * 4 + 1],
                block[i * 4 + 2],
                block[i * 4 + 3],
            ]);
        }

        let [mut a, mut b, mut c, mut d] = self.state;

        // Round 1.
        const S1: [u32; 4] = [3, 7, 11, 19];
        for i in 0..16 {
            let tmp = a
                .wrapping_add(f(b, c, d))
                .wrapping_add(m[i])
                .rotate_left(S1[i % 4]);
            (a, b, c, d) = (d, tmp, b, c);
        }

        // Round 2.
        const S2: [u32; 4] = [3, 5, 9, 13];
        const K2: u32 = 0x5a82_7999;
        for i in 0..16 {
            let idx = (i % 4) * 4 + i / 4;
            let tmp = a
                .wrapping_add(g(b, c, d))
                .wrapping_add(m[idx])
                .wrapping_add(K2)
                .rotate_left(S2[i % 4]);
            (a, b, c, d) = (d, tmp, b, c);
        }

        // Round 3.
        const S3: [u32; 4] = [3, 9, 11, 15];
        const K3: u32 = 0x6ed9_eba1;
        const IDX3: [usize; 16] = [0, 8, 4, 12, 2, 10, 6, 14, 1, 9, 5, 13, 3, 11, 7, 15];
        for i in 0..16 {
            let tmp = a
                .wrapping_add(h(b, c, d))
                .wrapping_add(m[IDX3[i]])
                .wrapping_add(K3)
                .rotate_left(S3[i % 4]);
            (a, b, c, d) = (d, tmp, b, c);
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
    }
}

/// One-shot convenience wrapper around [`Md4`].
pub fn md4(data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut h = Md4::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn rfc1320_vectors() {
        let cases: &[(&[u8], &str)] = &[
            (b"", "31d6cfe0d16ae931b73c59d7e0c089c0"),
            (b"a", "bde52cb31de33e46245e05fbdbd6fb24"),
            (b"abc", "a448017aaf21d8525fc10ae87aa6729d"),
            (b"message digest", "d9130a8164549fe818874806e1c7014b"),
            (
                b"abcdefghijklmnopqrstuvwxyz",
                "d79e1c308aa5bbcdeea8ed63df412da9",
            ),
            (
                b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
                "043f8582f241db351ce627e153e7f0e4",
            ),
            (
                b"12345678901234567890123456789012345678901234567890123456789012345678901234567890",
                "e33b4ddc9c38f2199c3e7b164fcc0536",
            ),
        ];
        for (input, want) in cases {
            assert_eq!(hex(&md4(input)), *want, "input {:?}", input);
        }
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0u32..1000).map(|i| (i % 251) as u8).collect();
        let whole = md4(&data);
        // Feed in awkward chunk sizes that straddle block boundaries.
        for chunk in [1usize, 3, 63, 64, 65, 127, 500] {
            let mut h = Md4::new();
            for piece in data.chunks(chunk) {
                h.update(piece);
            }
            assert_eq!(h.finalize(), whole, "chunk size {chunk}");
        }
    }

    #[test]
    fn empty_updates_are_noops() {
        let mut h = Md4::new();
        h.update(b"");
        h.update(b"abc");
        h.update(b"");
        assert_eq!(hex(&h.finalize()), "a448017aaf21d8525fc10ae87aa6729d");
    }

    #[test]
    fn length_padding_boundaries() {
        // Messages of length 55, 56, 63, 64 exercise the padding corner
        // cases (55: pad fits in one block; 56: forces an extra block).
        for n in [55usize, 56, 63, 64, 119, 120] {
            let data = vec![0xabu8; n];
            let d1 = md4(&data);
            let mut h = Md4::new();
            h.update(&data[..n / 2]);
            h.update(&data[n / 2..]);
            assert_eq!(h.finalize(), d1, "length {n}");
        }
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        // Not a collision test, just a sanity check that the compression
        // function actually mixes.
        let a = md4(b"file-1");
        let b = md4(b"file-2");
        assert_ne!(a, b);
    }
}
