//! The UDP datagram boundary: size limits and a reusable encode buffer.
//!
//! Everything else in this crate works on byte slices; this module pins
//! down what a *datagram* is allowed to look like when the protocol
//! meets a real socket. The paper's capture machine saw arbitrary UDP
//! traffic on the server port — other applications, scans, corrupted
//! frames — so the serving loop treats every datagram as hostile until
//! the two-step decoder says otherwise, and anything larger than
//! [`MAX_DATAGRAM`] is rejected before the decoder even runs.

use crate::messages::Message;

/// Hard ceiling on an accepted eDonkey UDP datagram, in bytes.
///
/// Real eDonkey UDP messages are small (requests tens of bytes, the
/// largest answers a few KB); genuine traffic never approaches this.
/// Anything bigger is either another protocol or an attempt to make the
/// server buffer garbage, and is counted as malformed (oversize) without
/// being decoded.
pub const MAX_DATAGRAM: usize = 4096;

/// Receive-buffer size for the serving socket: large enough that the
/// kernel never truncates a datagram we would want to classify (UDP's
/// own maximum payload), so "oversized" is our policy decision, not an
/// artifact of a short `recv`.
pub const RECV_BUF: usize = 65536;

/// A reusable encode buffer for the serving hot path: one allocation,
/// reused for every answer datagram.
#[derive(Default)]
pub struct DatagramBuf {
    buf: Vec<u8>,
}

impl DatagramBuf {
    /// An empty buffer (allocates lazily on first encode).
    pub fn new() -> Self {
        DatagramBuf::default()
    }

    /// Encodes `msg` into the reused buffer and returns the wire bytes.
    pub fn encode(&mut self, msg: &Message) -> &[u8] {
        msg.encode_into(&mut self.buf);
        &self.buf
    }

    /// The bytes of the most recent encode.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::Message;

    #[test]
    fn encode_matches_message_encode_and_reuses_allocation() {
        let mut b = DatagramBuf::new();
        let m1 = Message::StatusRequest { challenge: 77 };
        let m2 = Message::GetServerList;
        assert_eq!(b.encode(&m1), m1.encode().as_slice());
        let cap = b.buf.capacity();
        assert_eq!(b.encode(&m2), m2.encode().as_slice());
        assert!(b.buf.capacity() >= 2);
        assert_eq!(
            b.buf.capacity(),
            cap,
            "no reallocation for a smaller message"
        );
    }

    #[test]
    fn honest_answers_fit_the_ceiling() {
        // The largest answer the engine can produce: a full SearchResponse
        // at the default 30-result cap stays well under MAX_DATAGRAM.
        use crate::ids::{ClientId, FileId};
        use crate::messages::FileEntry;
        use crate::tags::{special, Tag, TagList};
        let results = (0..30u8)
            .map(|i| FileEntry {
                file_id: FileId([i; 16]),
                client_id: ClientId(i as u32 + 1),
                port: 4662,
                tags: TagList(vec![
                    Tag::str(special::FILENAME, "a reasonably long shared file name.mp3"),
                    Tag::u32(special::FILESIZE, 700_000_000),
                    Tag::str(special::FILETYPE, "Audio"),
                    Tag::u32(special::SOURCES, 250),
                ]),
            })
            .collect();
        let m = Message::SearchResponse { results };
        assert!(m.encode().len() < MAX_DATAGRAM);
    }
}
