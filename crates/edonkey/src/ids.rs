//! Identifiers used by the eDonkey protocol (paper §2.1).
//!
//! * **fileID** — the 128-bit MD4 hash of the file content; the key under
//!   which servers index files and clients request sources.
//! * **clientID** — a 32-bit value identifying a client at a server. If the
//!   client is directly reachable (not NATed/firewalled) the clientID *is*
//!   its IPv4 address ("high ID"); otherwise the server assigns an opaque
//!   24-bit number ("low ID").

use crate::md4::md4;
use std::fmt;

/// Boundary between low IDs and high IDs. Real eDonkey servers hand out low
/// IDs strictly below `0x0100_0000`; anything at or above that value is an
/// IPv4 address in host byte order.
pub const LOW_ID_LIMIT: u32 = 0x0100_0000;

/// A 128-bit eDonkey file identifier (MD4 digest of the file content).
///
/// Values of this type are *raw* identifiers: the published dataset may
/// only ever contain the anonymised appearance-order index, never these
/// bytes (paper §2.3).
// etwlint: source(raw-id): every FileId value is a raw identifier
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub [u8; 16]);

impl FileId {
    /// Builds the fileID of a file whose full content is `content`.
    pub fn of_content(content: &[u8]) -> Self {
        FileId(md4(content))
    }

    /// Builds a *legitimate-looking* fileID from an abstract file identity
    /// (used by the synthetic workload: we never materialise file bytes,
    /// but hashing the identity keeps the ID uniform over the MD4 space,
    /// which is what the paper's bucketing scheme assumes).
    pub fn of_identity(identity: u64) -> Self {
        let mut buf = [0u8; 12];
        buf[..8].copy_from_slice(&identity.to_le_bytes());
        buf[8..].copy_from_slice(b"file");
        FileId(md4(&buf))
    }

    /// Builds a *forged* fileID of the kind the paper detected (§2.4): a
    /// non-hash value with a low-entropy prefix. The paper found that the
    /// first two bytes of a majority of polluted IDs decoded to bucket
    /// indices 0 and 256, i.e. prefixes `00 00` and `01 00` (little-endian
    /// index = `b0 as u16 | (b1 as u16) << 8`... the exact encoding is the
    /// anonymiser's business; what matters is the prefix is constant).
    pub fn forged(counter: u64, prefix: [u8; 2]) -> Self {
        // Forged IDs fix their *prefix* only; the remaining bytes vary
        // per polluted file (different decoys), here via splitmix64.
        let mut b = [0u8; 16];
        b[0] = prefix[0];
        b[1] = prefix[1];
        let mut x = counter.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut fill = [0u8; 14];
        for chunk in fill.chunks_mut(8) {
            x ^= x >> 30;
            x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
            x ^= x >> 27;
            x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
            x ^= x >> 31;
            let bytes = x.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        b[2..16].copy_from_slice(&fill);
        FileId(b)
    }

    /// Byte accessor used by the anonymiser's bucket selectors.
    #[inline]
    pub fn byte(&self, i: usize) -> u8 {
        self.0[i]
    }

    /// Raw bytes.
    #[inline]
    pub fn as_bytes(&self) -> &[u8; 16] {
        &self.0
    }
}

impl fmt::Debug for FileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FileId(")?;
        for b in &self.0 {
            write!(f, "{b:02x}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for FileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.0 {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

/// A 32-bit eDonkey client identifier.
///
/// The numeric value is kept as-is on the wire; [`ClientId::kind`] exposes
/// the high/low distinction.
///
/// Values of this type are *raw* identifiers (high IDs are literal IPv4
/// addresses) and must pass the anonymiser before reaching any output.
// etwlint: source(raw-id): every ClientId value is a raw identifier
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClientId(pub u32);

/// Whether a [`ClientId`] encodes a reachable IPv4 address or a
/// server-assigned opaque number.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ClientIdKind {
    /// Directly reachable client: the ID is its IPv4 address.
    High,
    /// NATed/firewalled client: 24-bit server-assigned number.
    Low,
}

impl ClientId {
    /// Builds a high ID from IPv4 octets.
    pub fn from_ipv4(octets: [u8; 4]) -> Self {
        ClientId(u32::from_be_bytes(octets))
    }

    /// Builds a low ID; panics if `n` exceeds the 24-bit low-ID space.
    pub fn low(n: u32) -> Self {
        assert!(n < LOW_ID_LIMIT, "low ID out of range: {n:#x}");
        ClientId(n)
    }

    /// High or low?
    pub fn kind(&self) -> ClientIdKind {
        if self.0 >= LOW_ID_LIMIT {
            ClientIdKind::High
        } else {
            ClientIdKind::Low
        }
    }

    /// IPv4 octets if this is a high ID.
    pub fn ipv4(&self) -> Option<[u8; 4]> {
        match self.kind() {
            ClientIdKind::High => Some(self.0.to_be_bytes()),
            ClientIdKind::Low => None,
        }
    }

    /// Raw 32-bit value (the anonymiser's direct-array index).
    #[inline]
    pub fn raw(&self) -> u32 {
        self.0
    }
}

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind() {
            ClientIdKind::High => {
                let o = self.0.to_be_bytes();
                write!(f, "{}.{}.{}.{}", o[0], o[1], o[2], o[3])
            }
            ClientIdKind::Low => write!(f, "low:{}", self.0),
        }
    }
}

impl fmt::Debug for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ClientId({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn high_low_boundary() {
        assert_eq!(ClientId(LOW_ID_LIMIT - 1).kind(), ClientIdKind::Low);
        assert_eq!(ClientId(LOW_ID_LIMIT).kind(), ClientIdKind::High);
        assert_eq!(ClientId(u32::MAX).kind(), ClientIdKind::High);
        assert_eq!(ClientId(0).kind(), ClientIdKind::Low);
    }

    #[test]
    fn ipv4_round_trip() {
        let id = ClientId::from_ipv4([82, 15, 200, 3]);
        assert_eq!(id.kind(), ClientIdKind::High);
        assert_eq!(id.ipv4(), Some([82, 15, 200, 3]));
        assert_eq!(format!("{id}"), "82.15.200.3");
    }

    #[test]
    fn low_id_has_no_ip() {
        let id = ClientId::low(42);
        assert_eq!(id.ipv4(), None);
        assert_eq!(format!("{id}"), "low:42");
    }

    #[test]
    #[should_panic(expected = "low ID out of range")]
    fn low_id_range_checked() {
        let _ = ClientId::low(LOW_ID_LIMIT);
    }

    #[test]
    fn identity_file_ids_are_uniformish() {
        // The first byte of identity-derived fileIDs should spread across
        // the byte space (MD4 uniformity) — this is what the bucketed
        // anonymiser relies on.
        let mut seen = [false; 256];
        for i in 0..2000u64 {
            seen[FileId::of_identity(i).byte(0) as usize] = true;
        }
        let covered = seen.iter().filter(|&&s| s).count();
        assert!(covered > 230, "only {covered}/256 first-byte values seen");
    }

    #[test]
    fn forged_file_ids_share_prefix() {
        for c in 0..100u64 {
            let id = FileId::forged(c, [0x00, 0x00]);
            assert_eq!((id.byte(0), id.byte(1)), (0, 0));
        }
        // Distinct counters still give distinct IDs.
        assert_ne!(FileId::forged(1, [0, 0]), FileId::forged(2, [0, 0]));
    }

    #[test]
    fn file_id_display_is_hex() {
        let id = FileId([0xab; 16]);
        assert_eq!(format!("{id}"), "ab".repeat(16));
    }
}
