//! eDonkey TCP stream framing.
//!
//! Over TCP, eDonkey messages are length-prefixed:
//!
//! ```text
//! frame := marker:u8 (0xE3) | len:u32 LE | opcode:u8 | body
//!          (len counts opcode + body)
//! ```
//!
//! The paper captured TCP but could not decode it ("packet losses …
//! make tcp flows reconstruction very difficult", §2.2); its conclusion
//! names TCP measurement as the first extension. This module provides
//! the framing layer that extension needs: [`encode_stream`] for the
//! sending side and the incremental [`StreamDecoder`] for reconstructed
//! flows — including resynchronisation after stream damage, which is
//! what a capture with holes requires.

use crate::error::DecodeError;
use crate::messages::{Message, PROTO_EDONKEY};
use etw_telemetry::{Counter, Registry};

/// Serialises messages into a TCP stream.
pub fn encode_stream(msgs: &[Message]) -> Vec<u8> {
    let mut out = Vec::new();
    for m in msgs {
        let datagram = m.encode(); // marker + opcode + body
        out.push(PROTO_EDONKEY);
        out.extend_from_slice(&((datagram.len() - 1) as u32).to_le_bytes());
        out.extend_from_slice(&datagram[1..]);
    }
    out
}

/// Outcome counters for a stream decode.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct StreamStats {
    /// Messages decoded.
    pub decoded: u64,
    /// Frames skipped because their payload failed message decoding.
    pub bad_frames: u64,
    /// Bytes skipped while hunting for a frame boundary (after damage).
    pub skipped_bytes: u64,
}

/// Live metrics for stream decoding (`tcp.stream.*` namespace); no-ops
/// until [`StreamDecoder::attach_telemetry`].
#[derive(Clone, Default)]
struct StreamTelemetry {
    /// `tcp.stream.decoded_total`
    decoded: Counter,
    /// `tcp.stream.bad_frames_total`
    bad_frames: Counter,
    /// `tcp.stream.skipped_bytes_total`
    skipped_bytes: Counter,
}

/// Incremental TCP stream decoder with resynchronisation.
#[derive(Default)]
pub struct StreamDecoder {
    buf: Vec<u8>,
    stats: StreamStats,
    telemetry: StreamTelemetry,
}

/// Upper bound on a plausible frame length; anything larger is treated
/// as stream damage and triggers resynchronisation (real eDonkey TCP
/// messages are well below this).
pub const MAX_FRAME_LEN: u32 = 1 << 20;

impl StreamDecoder {
    /// Fresh decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> StreamStats {
        self.stats
    }

    /// Mirrors decode outcomes into `registry` under
    /// `tcp.stream.decoded_total`, `tcp.stream.bad_frames_total` and
    /// `tcp.stream.skipped_bytes_total`. Decoders for many flows can
    /// share one registry: the counters aggregate across them.
    pub fn attach_telemetry(&mut self, registry: &Registry) {
        self.telemetry = StreamTelemetry {
            decoded: registry.counter("tcp.stream.decoded_total"),
            bad_frames: registry.counter("tcp.stream.bad_frames_total"),
            skipped_bytes: registry.counter("tcp.stream.skipped_bytes_total"),
        };
    }

    /// Bytes buffered awaiting a complete frame.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len()
    }

    /// Feeds stream bytes; returns the messages completed by them.
    pub fn push(&mut self, bytes: &[u8]) -> Vec<Message> {
        self.buf.extend_from_slice(bytes);
        let mut out = Vec::new();
        loop {
            // Resynchronise: hunt for the protocol marker.
            let start = match self.buf.iter().position(|&b| b == PROTO_EDONKEY) {
                Some(p) => p,
                None => {
                    self.stats.skipped_bytes += self.buf.len() as u64;
                    self.telemetry.skipped_bytes.add(self.buf.len() as u64);
                    self.buf.clear();
                    return out;
                }
            };
            if start > 0 {
                self.stats.skipped_bytes += start as u64;
                self.telemetry.skipped_bytes.add(start as u64);
                self.buf.drain(..start);
            }
            if self.buf.len() < 5 {
                return out; // need marker + len
            }
            let len = u32::from_le_bytes([self.buf[1], self.buf[2], self.buf[3], self.buf[4]]);
            if len == 0 || len > MAX_FRAME_LEN {
                // Implausible length: this 0xE3 was payload, not a
                // frame boundary. Skip it and resync.
                self.stats.skipped_bytes += 1;
                self.telemetry.skipped_bytes.inc();
                self.buf.drain(..1);
                continue;
            }
            let total = 5 + len as usize;
            if self.buf.len() < total {
                return out; // incomplete frame
            }
            // Reconstitute the datagram form (marker + opcode + body)
            // and decode with the normal message decoder.
            let mut datagram = Vec::with_capacity(1 + len as usize);
            datagram.push(PROTO_EDONKEY);
            datagram.extend_from_slice(&self.buf[5..total]);
            match Message::decode(&datagram) {
                Ok(m) => {
                    self.stats.decoded += 1;
                    self.telemetry.decoded.inc();
                    self.buf.drain(..total);
                    out.push(m);
                }
                Err(DecodeError::UnknownOpcode(_)) | Err(_) => {
                    // Frame-shaped but not decodable: most likely a
                    // false boundary inside damaged data. Skip the
                    // marker byte and resync.
                    self.stats.bad_frames += 1;
                    self.stats.skipped_bytes += 1;
                    self.telemetry.bad_frames.inc();
                    self.telemetry.skipped_bytes.inc();
                    self.buf.drain(..1);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::FileId;
    use crate::search::SearchExpr;

    fn sample_messages() -> Vec<Message> {
        vec![
            Message::StatusRequest { challenge: 1 },
            Message::SearchRequest {
                expr: SearchExpr::and(SearchExpr::keyword("aa"), SearchExpr::keyword("bb")),
            },
            Message::GetSources {
                file_ids: vec![FileId([7; 16]), FileId([8; 16])],
            },
            Message::GetServerList,
        ]
    }

    #[test]
    fn whole_stream_round_trip() {
        let msgs = sample_messages();
        let stream = encode_stream(&msgs);
        let mut d = StreamDecoder::new();
        let got = d.push(&stream);
        assert_eq!(got, msgs);
        assert_eq!(d.stats().decoded, 4);
        assert_eq!(d.stats().skipped_bytes, 0);
        assert_eq!(d.pending_bytes(), 0);
    }

    #[test]
    fn byte_at_a_time_round_trip() {
        let msgs = sample_messages();
        let stream = encode_stream(&msgs);
        let mut d = StreamDecoder::new();
        let mut got = Vec::new();
        for b in stream {
            got.extend(d.push(&[b]));
        }
        assert_eq!(got, msgs);
    }

    #[test]
    fn resync_after_leading_garbage() {
        let msgs = sample_messages();
        let mut stream = vec![0x11, 0x22, 0x33];
        stream.extend(encode_stream(&msgs));
        let mut d = StreamDecoder::new();
        let got = d.push(&stream);
        assert_eq!(got, msgs);
        assert!(d.stats().skipped_bytes >= 3);
    }

    #[test]
    fn hole_in_stream_loses_bounded_messages() {
        let msgs = sample_messages();
        let stream = encode_stream(&msgs);
        // Cut 10 bytes out of the middle (a lost TCP segment's worth,
        // scaled down).
        let mut damaged = stream.clone();
        damaged.drain(8..18);
        let mut d = StreamDecoder::new();
        let got = d.push(&damaged);
        // The damaged frame is lost, later frames are recovered.
        assert!(got.len() >= msgs.len() - 2, "recovered {}", got.len());
        assert!(got.contains(&msgs[3]));
    }

    #[test]
    fn marker_bytes_inside_payloads_do_not_confuse() {
        // A message whose body contains 0xE3 bytes.
        let msgs = vec![Message::GetSources {
            file_ids: vec![FileId([0xE3; 16])],
        }];
        let stream = encode_stream(&msgs);
        let mut d = StreamDecoder::new();
        assert_eq!(d.push(&stream), msgs);
    }

    #[test]
    fn implausible_length_resyncs() {
        let mut stream = vec![PROTO_EDONKEY, 0xff, 0xff, 0xff, 0xff]; // 4 GB frame
        stream.extend(encode_stream(&[Message::GetServerList]));
        let mut d = StreamDecoder::new();
        let got = d.push(&stream);
        assert_eq!(got, vec![Message::GetServerList]);
    }

    #[test]
    fn empty_push() {
        let mut d = StreamDecoder::new();
        assert!(d.push(&[]).is_empty());
    }

    #[test]
    fn telemetry_counters_mirror_stats() {
        let registry = Registry::new();
        let msgs = sample_messages();
        // Two damaged streams through two decoders sharing the registry:
        // counters must aggregate to the sum of both stats snapshots.
        let mut totals = StreamStats::default();
        for cut in [8usize, 20] {
            let mut stream = vec![0x01, 0x02]; // leading garbage
            stream.extend(encode_stream(&msgs));
            stream.drain(cut..cut + 6);
            let mut d = StreamDecoder::new();
            d.attach_telemetry(&registry);
            d.push(&stream);
            let s = d.stats();
            totals.decoded += s.decoded;
            totals.bad_frames += s.bad_frames;
            totals.skipped_bytes += s.skipped_bytes;
        }
        let snap = registry.snapshot();
        assert!(totals.decoded > 0 && totals.skipped_bytes > 0);
        assert_eq!(snap.counter("tcp.stream.decoded_total"), totals.decoded);
        assert_eq!(
            snap.counter("tcp.stream.bad_frames_total"),
            totals.bad_frames
        );
        assert_eq!(
            snap.counter("tcp.stream.skipped_bytes_total"),
            totals.skipped_bytes
        );
    }
}
