//! The eDonkey *tag* system: typed, named metadata attached to files and
//! search results (paper §2.1 — files "are characterised by at least two
//! metadata: name and size").
//!
//! A tag is a `(name, value)` pair. Names are either a single well-known
//! byte (the compact form every client uses for standard metadata) or a
//! free-form string. Values are strings or 32-bit integers — the two types
//! the directory-server protocol actually exchanges.
//!
//! Wire format (little-endian throughout, as in the real protocol):
//!
//! ```text
//! tag      := type:u8 name value
//! type     := 0x02 (string) | 0x03 (u32)
//! name     := namelen:u16 namebytes        (namelen == 1 => special byte)
//! value    := len:u16 bytes                (string)
//!           | v:u32                        (integer)
//! ```

use crate::error::{DecodeError, Result};
use crate::wire::{Reader, Writer};
use std::fmt;

/// Well-known single-byte tag names (subset used by directory servers).
pub mod special {
    /// File name (string).
    pub const FILENAME: u8 = 0x01;
    /// File size in bytes (u32).
    pub const FILESIZE: u8 = 0x02;
    /// File type, e.g. "Audio" (string).
    pub const FILETYPE: u8 = 0x03;
    /// File format / extension (string).
    pub const FILEFORMAT: u8 = 0x04;
    /// Version (u32).
    pub const VERSION: u8 = 0x11;
    /// Server port (u32).
    pub const PORT: u8 = 0x0f;
    /// Number of sources the server knows for a result (u32).
    pub const SOURCES: u8 = 0x15;
    /// Number of complete sources (u32).
    pub const COMPLETE_SOURCES: u8 = 0x30;
    /// Media length in seconds (u32).
    pub const MEDIA_LENGTH: u8 = 0xd3;
    /// Media bitrate (u32).
    pub const MEDIA_BITRATE: u8 = 0xd4;
}

/// Tag value type discriminators on the wire.
const TAGTYPE_STRING: u8 = 0x02;
const TAGTYPE_U32: u8 = 0x03;

/// A tag name: one well-known byte, or a free-form string.
///
/// Note the protocol-inherited ambiguity: on the wire a name of length 1
/// *is* the compact special form, so a `Named` name of a single byte
/// decodes back as `Special`. Free-form names must therefore be at least
/// two bytes; [`Tag::named`] enforces this.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum TagName {
    /// Compact single-byte name from [`special`].
    Special(u8),
    /// Arbitrary string name (two bytes or more).
    Named(String),
}

impl TagName {
    fn encode(&self, w: &mut Writer) {
        match self {
            TagName::Special(b) => {
                w.u16(1);
                w.u8(*b);
            }
            TagName::Named(s) => {
                w.u16(s.len() as u16);
                w.bytes(s.as_bytes());
            }
        }
    }

    fn decode(r: &mut Reader) -> Result<Self> {
        let len = r.u16()? as usize;
        if len == 0 {
            return Err(DecodeError::Malformed("empty tag name"));
        }
        if len == 1 {
            Ok(TagName::Special(r.u8()?))
        } else {
            let bytes = r.take(len)?;
            let s = std::str::from_utf8(bytes)
                .map_err(|_| DecodeError::Malformed("tag name not utf-8"))?;
            Ok(TagName::Named(s.to_owned()))
        }
    }

    /// The name's fixed rendering, when it has one: every well-known
    /// special byte maps to a static string identical to its [`Display`]
    /// output. `None` for unknown special bytes and arbitrary named tags
    /// (those need the formatting machinery); hot paths rendering tag
    /// names at volume use this to skip `fmt` entirely.
    pub fn static_name(&self) -> Option<&'static str> {
        match self {
            TagName::Special(b) => match *b {
                special::FILENAME => Some("filename"),
                special::FILESIZE => Some("filesize"),
                special::FILETYPE => Some("filetype"),
                special::FILEFORMAT => Some("fileformat"),
                special::SOURCES => Some("sources"),
                special::COMPLETE_SOURCES => Some("complete_sources"),
                special::MEDIA_LENGTH => Some("media_length"),
                special::MEDIA_BITRATE => Some("media_bitrate"),
                special::VERSION => Some("version"),
                special::PORT => Some("port"),
                _ => None,
            },
            TagName::Named(_) => None,
        }
    }
}

impl fmt::Display for TagName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TagName::Special(b) => match *b {
                special::FILENAME => write!(f, "filename"),
                special::FILESIZE => write!(f, "filesize"),
                special::FILETYPE => write!(f, "filetype"),
                special::FILEFORMAT => write!(f, "fileformat"),
                special::SOURCES => write!(f, "sources"),
                special::COMPLETE_SOURCES => write!(f, "complete_sources"),
                special::MEDIA_LENGTH => write!(f, "media_length"),
                special::MEDIA_BITRATE => write!(f, "media_bitrate"),
                special::VERSION => write!(f, "version"),
                special::PORT => write!(f, "port"),
                other => write!(f, "special:{other:#04x}"),
            },
            TagName::Named(s) => write!(f, "{s}"),
        }
    }
}

/// A tag value.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum TagValue {
    /// UTF-8 string value.
    Str(String),
    /// 32-bit unsigned integer value.
    U32(u32),
}

/// A complete metadata tag.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Tag {
    /// Tag name.
    pub name: TagName,
    /// Tag value.
    pub value: TagValue,
}

impl Tag {
    /// Convenience constructor: string tag with a special name.
    pub fn str(name: u8, value: impl Into<String>) -> Self {
        Tag {
            name: TagName::Special(name),
            value: TagValue::Str(value.into()),
        }
    }

    /// Convenience constructor: integer tag with a special name.
    pub fn u32(name: u8, value: u32) -> Self {
        Tag {
            name: TagName::Special(name),
            value: TagValue::U32(value),
        }
    }

    /// Convenience constructor: string tag with a free-form name.
    ///
    /// Panics if `name` is shorter than two bytes (single-byte names are
    /// reserved for the compact [`special`] form; see [`TagName`]).
    pub fn named(name: impl Into<String>, value: impl Into<String>) -> Self {
        let name = name.into();
        assert!(
            name.len() >= 2,
            "free-form tag names must be >= 2 bytes (got {name:?})"
        );
        Tag {
            name: TagName::Named(name),
            value: TagValue::Str(value.into()),
        }
    }

    /// Serialises this tag.
    pub fn encode(&self, w: &mut Writer) {
        match &self.value {
            TagValue::Str(s) => {
                w.u8(TAGTYPE_STRING);
                self.name.encode(w);
                w.u16(s.len() as u16);
                w.bytes(s.as_bytes());
            }
            TagValue::U32(v) => {
                w.u8(TAGTYPE_U32);
                self.name.encode(w);
                w.u32(*v);
            }
        }
    }

    /// Parses one tag from `r`.
    pub fn decode(r: &mut Reader) -> Result<Self> {
        let ty = r.u8()?;
        let name = TagName::decode(r)?;
        let value = match ty {
            TAGTYPE_STRING => {
                let len = r.u16()? as usize;
                let bytes = r.take(len)?;
                let s = std::str::from_utf8(bytes)
                    .map_err(|_| DecodeError::Malformed("tag string not utf-8"))?;
                TagValue::Str(s.to_owned())
            }
            TAGTYPE_U32 => TagValue::U32(r.u32()?),
            other => return Err(DecodeError::UnknownTagType(other)),
        };
        Ok(Tag { name, value })
    }
}

/// A list of tags as carried by file entries; helpers for the fields every
/// file must have (paper §2.1: name and size at minimum).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct TagList(pub Vec<Tag>);

impl TagList {
    /// Serialises as `count:u32` followed by the tags.
    pub fn encode(&self, w: &mut Writer) {
        w.u32(self.0.len() as u32);
        for t in &self.0 {
            t.encode(w);
        }
    }

    /// Parses a `count:u32`-prefixed tag list, rejecting absurd counts
    /// before allocating (structural-validation friendliness).
    pub fn decode(r: &mut Reader) -> Result<Self> {
        let n = r.u32()? as usize;
        // Each tag occupies at least 6 bytes on the wire; a count that
        // cannot fit in the remaining payload is malformed, not an OOM.
        if n.saturating_mul(6) > r.remaining() {
            return Err(DecodeError::Malformed("tag count exceeds payload"));
        }
        let mut tags = Vec::with_capacity(n);
        for _ in 0..n {
            tags.push(Tag::decode(r)?);
        }
        Ok(TagList(tags))
    }

    /// Looks up a tag by special name.
    pub fn get(&self, name: u8) -> Option<&TagValue> {
        self.0.iter().find_map(|t| match &t.name {
            TagName::Special(b) if *b == name => Some(&t.value),
            _ => None,
        })
    }

    /// File name, if present.
    pub fn filename(&self) -> Option<&str> {
        match self.get(special::FILENAME) {
            Some(TagValue::Str(s)) => Some(s),
            _ => None,
        }
    }

    /// File size in bytes, if present.
    pub fn filesize(&self) -> Option<u32> {
        match self.get(special::FILESIZE) {
            Some(TagValue::U32(v)) => Some(*v),
            _ => None,
        }
    }

    /// File type string, if present.
    pub fn filetype(&self) -> Option<&str> {
        match self.get(special::FILETYPE) {
            Some(TagValue::Str(s)) => Some(s),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(tag: &Tag) -> Tag {
        let mut w = Writer::new();
        tag.encode(&mut w);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        let got = Tag::decode(&mut r).expect("decode");
        assert_eq!(r.remaining(), 0, "trailing bytes after tag");
        got
    }

    #[test]
    fn string_tag_round_trip() {
        let t = Tag::str(special::FILENAME, "some file (2004).avi");
        assert_eq!(round_trip(&t), t);
    }

    #[test]
    fn u32_tag_round_trip() {
        let t = Tag::u32(special::FILESIZE, 734_003_200);
        assert_eq!(round_trip(&t), t);
    }

    #[test]
    fn named_tag_round_trip() {
        let t = Tag::named("codec", "xvid");
        assert_eq!(round_trip(&t), t);
    }

    #[test]
    fn unknown_tag_type_rejected() {
        let mut w = Writer::new();
        w.u8(0x99); // bogus type
        w.u16(1);
        w.u8(special::FILENAME);
        let buf = w.into_bytes();
        let err = Tag::decode(&mut Reader::new(&buf)).unwrap_err();
        assert!(matches!(err, DecodeError::UnknownTagType(0x99)));
    }

    #[test]
    fn empty_name_rejected() {
        let mut w = Writer::new();
        w.u8(TAGTYPE_U32);
        w.u16(0); // empty name
        w.u32(5);
        let err = Tag::decode(&mut Reader::new(&w.into_bytes())).unwrap_err();
        assert!(matches!(err, DecodeError::Malformed(_)));
    }

    #[test]
    fn truncated_tag_rejected() {
        let t = Tag::str(special::FILENAME, "abcdef");
        let mut w = Writer::new();
        t.encode(&mut w);
        let buf = w.into_bytes();
        for cut in 0..buf.len() {
            let err = Tag::decode(&mut Reader::new(&buf[..cut]));
            assert!(err.is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn taglist_lookup() {
        let tl = TagList(vec![
            Tag::str(special::FILENAME, "track.mp3"),
            Tag::u32(special::FILESIZE, 4_321_000),
            Tag::str(special::FILETYPE, "Audio"),
            Tag::u32(special::SOURCES, 12),
        ]);
        assert_eq!(tl.filename(), Some("track.mp3"));
        assert_eq!(tl.filesize(), Some(4_321_000));
        assert_eq!(tl.filetype(), Some("Audio"));
        assert!(tl.get(special::MEDIA_BITRATE).is_none());
    }

    #[test]
    fn taglist_round_trip() {
        let tl = TagList(vec![
            Tag::str(special::FILENAME, "a"),
            Tag::u32(special::FILESIZE, 1),
            Tag::named("xx", "y"),
        ]);
        let mut w = Writer::new();
        tl.encode(&mut w);
        let buf = w.into_bytes();
        let got = TagList::decode(&mut Reader::new(&buf)).unwrap();
        assert_eq!(got, tl);
    }

    #[test]
    fn absurd_tag_count_rejected_without_alloc() {
        let mut w = Writer::new();
        w.u32(u32::MAX); // claims 4G tags in an empty payload
        let err = TagList::decode(&mut Reader::new(&w.into_bytes())).unwrap_err();
        assert!(matches!(err, DecodeError::Malformed(_)));
    }

    #[test]
    fn wrong_typed_lookup_is_none() {
        // A string stored under FILESIZE must not be returned by the u32
        // accessor.
        let tl = TagList(vec![Tag::str(special::FILESIZE, "oops")]);
        assert_eq!(tl.filesize(), None);
    }
}
