//! Failure injection: controlled corruption of encoded messages.
//!
//! The captured traffic in the paper came from "many poorly reliable
//! clients of different kinds (and versions), with their own
//! interpretation of the protocol" (§2.3) — i.e. a small but steady stream
//! of malformed datagrams. The workload generator uses this module to
//! inject exactly that, and the test suite uses it to drive the decoder's
//! error taxonomy.

use rand::Rng;

/// Kinds of corruption observed in the wild and modelled here.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Corruption {
    /// Datagram cut short (lost tail, broken sender).
    Truncate,
    /// Extra trailing bytes (sender padding bugs).
    PadTail,
    /// Opcode byte replaced with an unassigned value (version skew:
    /// messages from newer/unknown client software).
    UnknownOpcode,
    /// A length field inflated so declared sizes exceed the datagram.
    InflateLength,
    /// Random byte flipped somewhere in the body.
    FlipByte,
}

impl Corruption {
    /// All corruption kinds.
    pub const ALL: [Corruption; 5] = [
        Corruption::Truncate,
        Corruption::PadTail,
        Corruption::UnknownOpcode,
        Corruption::InflateLength,
        Corruption::FlipByte,
    ];

    /// Corruptions guaranteed to be caught by *structural* validation
    /// (for building traffic with a target structural/effective mix, per
    /// the paper's 78 % figure).
    pub const STRUCTURAL: [Corruption; 3] = [
        Corruption::Truncate,
        Corruption::PadTail,
        Corruption::InflateLength,
    ];
}

/// Applies `kind` to an encoded message in place (may also shrink/grow it).
/// Returns `false` if the buffer was too small to corrupt meaningfully
/// (callers should then skip injection for this datagram).
pub fn corrupt<R: Rng + ?Sized>(buf: &mut Vec<u8>, kind: Corruption, rng: &mut R) -> bool {
    match kind {
        Corruption::Truncate => {
            if buf.len() < 3 {
                return false;
            }
            let keep = rng.gen_range(2..buf.len());
            buf.truncate(keep);
            true
        }
        Corruption::PadTail => {
            let extra = rng.gen_range(1..=8);
            for _ in 0..extra {
                buf.push(rng.gen());
            }
            true
        }
        Corruption::UnknownOpcode => {
            if buf.len() < 2 {
                return false;
            }
            // 0x40..0x7f is unassigned in our opcode map.
            buf[1] = rng.gen_range(0x40..0x7f);
            true
        }
        Corruption::InflateLength => {
            // Overwrite the 4 bytes after the opcode with a huge count.
            // For count-prefixed messages this makes the declared size
            // exceed the payload; for others it is equivalent to FlipByte.
            if buf.len() < 6 {
                return false;
            }
            buf[2..6].copy_from_slice(&u32::MAX.to_le_bytes());
            true
        }
        Corruption::FlipByte => {
            if buf.len() < 3 {
                return false;
            }
            let i = rng.gen_range(2..buf.len());
            buf[i] ^= 1u8 << rng.gen_range(0..8);
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decoder::{DecodeOutcome, Decoder};
    use crate::messages::Message;
    use crate::search::SearchExpr;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample() -> Vec<u8> {
        Message::SearchRequest {
            expr: SearchExpr::and(
                SearchExpr::keyword("some keyword"),
                SearchExpr::keyword("other"),
            ),
        }
        .encode()
    }

    #[test]
    fn structural_corruptions_are_rejected_structurally() {
        let mut rng = StdRng::seed_from_u64(42);
        for kind in Corruption::STRUCTURAL {
            for _ in 0..50 {
                let mut buf = sample();
                if !corrupt(&mut buf, kind, &mut rng) {
                    continue;
                }
                let mut d = Decoder::new();
                match d.push(&buf) {
                    DecodeOutcome::StructurallyInvalid(_) => {}
                    // Truncation can cut inside the expression where only
                    // effective decoding notices; padding a SEARCH_REQ is
                    // likewise only caught at decode time since its
                    // structural check is presence-only. Both are still
                    // rejections.
                    DecodeOutcome::DecodeFailed(_) => {}
                    other => panic!("{kind:?} produced {other:?}"),
                }
            }
        }
    }

    #[test]
    fn unknown_opcode_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut buf = sample();
        assert!(corrupt(&mut buf, Corruption::UnknownOpcode, &mut rng));
        let mut d = Decoder::new();
        assert!(matches!(
            d.push(&buf),
            DecodeOutcome::StructurallyInvalid(_)
        ));
    }

    #[test]
    fn corruption_never_panics_decoder() {
        // Fuzz-ish: every corruption kind applied repeatedly must always
        // yield a classified outcome, never a panic.
        let mut rng = StdRng::seed_from_u64(7);
        let mut d = Decoder::new();
        for kind in Corruption::ALL {
            for _ in 0..200 {
                let mut buf = sample();
                corrupt(&mut buf, kind, &mut rng);
                let _ = d.push(&buf);
            }
        }
        assert_eq!(d.stats().handled, 5 * 200);
    }

    #[test]
    fn tiny_buffers_report_uncorruptible() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut b = vec![0xE3];
        assert!(!corrupt(&mut b, Corruption::Truncate, &mut rng));
        assert!(!corrupt(&mut b, Corruption::UnknownOpcode, &mut rng));
        assert!(!corrupt(&mut b, Corruption::FlipByte, &mut rng));
    }
}
