//! eDonkey search expressions (paper §2.1: "file searches based on
//! metadata like filename, size or filetype").
//!
//! A search request carries a boolean expression tree over keywords and
//! metadata constraints, in the prefix encoding used by the real protocol:
//!
//! ```text
//! expr := 0x00 op:u8 expr expr          boolean node (op: 0=AND 1=OR 2=NOT)
//!       | 0x01 str16                    keyword
//!       | 0x02 str16 name16             metadata string match (value, name)
//!       | 0x03 value:u32 cmp:u8 name16  numeric constraint (cmp: 1=min 2=max)
//! name16 := namelen:u16 namebytes (1-byte names are the special tag names)
//! ```

use crate::error::{DecodeError, Result};
use crate::tags::TagName;
use crate::wire::{Reader, Writer};
use std::fmt;

/// Boolean connective of a [`SearchExpr::Bool`] node.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BoolOp {
    /// Both operands must match.
    And,
    /// Either operand may match.
    Or,
    /// Left operand must match, right must not ("AND NOT").
    AndNot,
}

impl BoolOp {
    fn to_wire(self) -> u8 {
        match self {
            BoolOp::And => 0,
            BoolOp::Or => 1,
            BoolOp::AndNot => 2,
        }
    }

    fn from_wire(b: u8) -> Result<Self> {
        match b {
            0 => Ok(BoolOp::And),
            1 => Ok(BoolOp::Or),
            2 => Ok(BoolOp::AndNot),
            _ => Err(DecodeError::Malformed("unknown boolean operator")),
        }
    }
}

/// Direction of a numeric constraint.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NumCmp {
    /// Field must be at least the given value.
    Min,
    /// Field must be at most the given value.
    Max,
}

impl NumCmp {
    fn to_wire(self) -> u8 {
        match self {
            NumCmp::Min => 1,
            NumCmp::Max => 2,
        }
    }

    fn from_wire(b: u8) -> Result<Self> {
        match b {
            1 => Ok(NumCmp::Min),
            2 => Ok(NumCmp::Max),
            _ => Err(DecodeError::Malformed("unknown numeric comparator")),
        }
    }
}

/// A search expression tree.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SearchExpr {
    /// Boolean combination of two sub-expressions.
    Bool {
        /// Connective.
        op: BoolOp,
        /// Left operand.
        left: Box<SearchExpr>,
        /// Right operand.
        right: Box<SearchExpr>,
    },
    /// Free-text keyword matched against file names.
    Keyword(String),
    /// Metadata string equality, e.g. filetype == "Audio".
    MetaStr {
        /// Tag to compare.
        name: TagName,
        /// Required value.
        value: String,
    },
    /// Numeric bound, e.g. filesize >= 100 MB.
    MetaNum {
        /// Tag to compare.
        name: TagName,
        /// Comparison direction.
        cmp: NumCmp,
        /// Bound value.
        value: u32,
    },
}

/// Maximum tree depth the decoder accepts. Real clients never nest deeply;
/// a depth bound turns attacker-controlled recursion into a decode error.
pub const MAX_DEPTH: usize = 32;

impl SearchExpr {
    /// Convenience: `a AND b`.
    pub fn and(left: SearchExpr, right: SearchExpr) -> Self {
        SearchExpr::Bool {
            op: BoolOp::And,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// Convenience: `a OR b`.
    pub fn or(left: SearchExpr, right: SearchExpr) -> Self {
        SearchExpr::Bool {
            op: BoolOp::Or,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// Convenience: keyword node.
    pub fn keyword(s: impl Into<String>) -> Self {
        SearchExpr::Keyword(s.into())
    }

    /// Collects every keyword in the tree (used by the server's index and
    /// by the anonymiser, which hashes search strings).
    pub fn keywords(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_keywords(&mut out);
        out
    }

    fn collect_keywords<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            SearchExpr::Bool { left, right, .. } => {
                left.collect_keywords(out);
                right.collect_keywords(out);
            }
            SearchExpr::Keyword(k) => out.push(k),
            SearchExpr::MetaStr { .. } | SearchExpr::MetaNum { .. } => {}
        }
    }

    /// Serialises the tree in prefix order.
    pub fn encode(&self, w: &mut Writer) {
        match self {
            SearchExpr::Bool { op, left, right } => {
                w.u8(0x00);
                w.u8(op.to_wire());
                left.encode(w);
                right.encode(w);
            }
            SearchExpr::Keyword(s) => {
                w.u8(0x01);
                w.str16(s);
            }
            SearchExpr::MetaStr { name, value } => {
                w.u8(0x02);
                w.str16(value);
                encode_name(name, w);
            }
            SearchExpr::MetaNum { name, cmp, value } => {
                w.u8(0x03);
                w.u32(*value);
                w.u8(cmp.to_wire());
                encode_name(name, w);
            }
        }
    }

    /// Parses a prefix-encoded tree.
    pub fn decode(r: &mut Reader) -> Result<Self> {
        Self::decode_depth(r, 0)
    }

    fn decode_depth(r: &mut Reader, depth: usize) -> Result<Self> {
        if depth > MAX_DEPTH {
            return Err(DecodeError::Malformed("search expression too deep"));
        }
        match r.u8()? {
            0x00 => {
                let op = BoolOp::from_wire(r.u8()?)?;
                let left = Self::decode_depth(r, depth + 1)?;
                let right = Self::decode_depth(r, depth + 1)?;
                Ok(SearchExpr::Bool {
                    op,
                    left: Box::new(left),
                    right: Box::new(right),
                })
            }
            0x01 => Ok(SearchExpr::Keyword(r.str16()?.to_owned())),
            0x02 => {
                let value = r.str16()?.to_owned();
                let name = decode_name(r)?;
                Ok(SearchExpr::MetaStr { name, value })
            }
            0x03 => {
                let value = r.u32()?;
                let cmp = NumCmp::from_wire(r.u8()?)?;
                let name = decode_name(r)?;
                Ok(SearchExpr::MetaNum { name, cmp, value })
            }
            other => Err(DecodeError::UnknownSearchNode(other)),
        }
    }
}

fn encode_name(name: &TagName, w: &mut Writer) {
    match name {
        TagName::Special(b) => {
            w.u16(1);
            w.u8(*b);
        }
        TagName::Named(s) => w.str16(s),
    }
}

fn decode_name(r: &mut Reader) -> Result<TagName> {
    let len = r.u16()? as usize;
    if len == 0 {
        return Err(DecodeError::Malformed("empty constraint name"));
    }
    if len == 1 {
        Ok(TagName::Special(r.u8()?))
    } else {
        let bytes = r.take(len)?;
        let s = std::str::from_utf8(bytes)
            .map_err(|_| DecodeError::Malformed("constraint name not utf-8"))?;
        Ok(TagName::Named(s.to_owned()))
    }
}

impl fmt::Display for SearchExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SearchExpr::Bool { op, left, right } => {
                let sym = match op {
                    BoolOp::And => "AND",
                    BoolOp::Or => "OR",
                    BoolOp::AndNot => "AND-NOT",
                };
                write!(f, "({left} {sym} {right})")
            }
            SearchExpr::Keyword(k) => write!(f, "\"{k}\""),
            SearchExpr::MetaStr { name, value } => write!(f, "{name}=\"{value}\""),
            SearchExpr::MetaNum { name, cmp, value } => {
                let sym = match cmp {
                    NumCmp::Min => ">=",
                    NumCmp::Max => "<=",
                };
                write!(f, "{name}{sym}{value}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tags::special;

    fn round_trip(e: &SearchExpr) -> SearchExpr {
        let mut w = Writer::new();
        e.encode(&mut w);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        let got = SearchExpr::decode(&mut r).unwrap();
        r.expect_end().unwrap();
        got
    }

    #[test]
    fn keyword_round_trip() {
        let e = SearchExpr::keyword("madonna");
        assert_eq!(round_trip(&e), e);
    }

    #[test]
    fn compound_round_trip() {
        let e = SearchExpr::and(
            SearchExpr::or(SearchExpr::keyword("live"), SearchExpr::keyword("album")),
            SearchExpr::MetaNum {
                name: TagName::Special(special::FILESIZE),
                cmp: NumCmp::Min,
                value: 1_000_000,
            },
        );
        assert_eq!(round_trip(&e), e);
    }

    #[test]
    fn meta_str_round_trip() {
        let e = SearchExpr::MetaStr {
            name: TagName::Special(special::FILETYPE),
            value: "Audio".into(),
        };
        assert_eq!(round_trip(&e), e);
    }

    #[test]
    fn named_constraint_round_trip() {
        let e = SearchExpr::MetaNum {
            name: TagName::Named("bitrate".into()),
            cmp: NumCmp::Max,
            value: 320,
        };
        assert_eq!(round_trip(&e), e);
    }

    #[test]
    fn keywords_collected_in_order() {
        let e = SearchExpr::and(
            SearchExpr::keyword("a"),
            SearchExpr::or(SearchExpr::keyword("b"), SearchExpr::keyword("c")),
        );
        assert_eq!(e.keywords(), vec!["a", "b", "c"]);
    }

    #[test]
    fn depth_bound_enforced() {
        // Hand-encode a pathological left-spine deeper than MAX_DEPTH.
        let mut w = Writer::new();
        for _ in 0..(MAX_DEPTH + 2) {
            w.u8(0x00); // bool node
            w.u8(0); // AND
        }
        w.u8(0x01);
        w.str16("x");
        let buf = w.into_bytes();
        let err = SearchExpr::decode(&mut Reader::new(&buf)).unwrap_err();
        assert!(matches!(err, DecodeError::Malformed(_)));
    }

    #[test]
    fn unknown_node_discriminator() {
        let err = SearchExpr::decode(&mut Reader::new(&[0x7f])).unwrap_err();
        assert!(matches!(err, DecodeError::UnknownSearchNode(0x7f)));
    }

    #[test]
    fn truncated_tree_fails_cleanly() {
        let e = SearchExpr::and(SearchExpr::keyword("aa"), SearchExpr::keyword("bb"));
        let mut w = Writer::new();
        e.encode(&mut w);
        let buf = w.into_bytes();
        for cut in 0..buf.len() {
            assert!(
                SearchExpr::decode(&mut Reader::new(&buf[..cut])).is_err(),
                "cut {cut}"
            );
        }
    }

    #[test]
    fn display_renders_tree() {
        let e = SearchExpr::and(SearchExpr::keyword("x"), SearchExpr::keyword("y"));
        assert_eq!(format!("{e}"), "(\"x\" AND \"y\")");
    }
}
