//! eDonkey TCP session messages (the connection-oriented half of the
//! protocol).
//!
//! The paper's capture was ~half TCP (§2.2) — the connection-oriented
//! side of eDonkey, where clients *log in* to the server and receive
//! their clientID (the high-ID/low-ID assignment of §2.1: "a 24 bits
//! number" for clients that are not directly reachable). This module
//! implements that handshake's messages and the server-side ID
//! assignment rule, so the TCP measurement extension has real content to
//! decode:
//!
//! ```text
//! client → LoginRequest { user_hash, claimed port, tags (name, version) }
//! server → IdChange { assigned clientID }          (high if reachable)
//! server → ServerMessage { greeting text }
//! ```
//!
//! Wire format reuses the [`crate::wire`] primitives, with the TCP
//! opcodes of the historical protocol (login 0x01, server message 0x38,
//! id change 0x40).

use crate::error::{DecodeError, Result};
use crate::ids::{ClientId, LOW_ID_LIMIT};
use crate::tags::TagList;
use crate::wire::{Reader, Writer};

/// TCP session opcodes.
pub mod opcodes {
    /// Client → server login.
    pub const LOGIN_REQUEST: u8 = 0x01;
    /// Server → client free-text message.
    pub const SERVER_MESSAGE: u8 = 0x38;
    /// Server → client clientID assignment.
    pub const ID_CHANGE: u8 = 0x40;
}

/// A TCP session message.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SessionMessage {
    /// The login a client sends on connect.
    LoginRequest {
        /// The client's self-chosen 128-bit user hash (identity across
        /// sessions; *not* the clientID).
        user_hash: [u8; 16],
        /// The clientID the client claims (0 on first connect).
        client_id: ClientId,
        /// The TCP port the client listens on.
        port: u16,
        /// Metadata tags (client name, version).
        tags: TagList,
    },
    /// Free-text message from the server (greetings, warnings).
    ServerMessage {
        /// The text.
        text: String,
    },
    /// The server's clientID assignment.
    IdChange {
        /// Assigned clientID (the IP for reachable clients, a 24-bit
        /// low ID otherwise).
        new_id: ClientId,
    },
}

impl SessionMessage {
    /// Opcode byte.
    pub fn opcode(&self) -> u8 {
        match self {
            SessionMessage::LoginRequest { .. } => opcodes::LOGIN_REQUEST,
            SessionMessage::ServerMessage { .. } => opcodes::SERVER_MESSAGE,
            SessionMessage::IdChange { .. } => opcodes::ID_CHANGE,
        }
    }

    /// Serialises marker + opcode + body (datagram form; use
    /// [`crate::stream`]-style framing for the TCP stream itself).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(48);
        w.u8(crate::messages::PROTO_EDONKEY);
        w.u8(self.opcode());
        match self {
            SessionMessage::LoginRequest {
                user_hash,
                client_id,
                port,
                tags,
            } => {
                w.bytes(user_hash);
                w.u32(client_id.raw());
                w.u16(*port);
                tags.encode(&mut w);
            }
            SessionMessage::ServerMessage { text } => {
                w.str16(text);
            }
            SessionMessage::IdChange { new_id } => {
                w.u32(new_id.raw());
            }
        }
        w.into_bytes()
    }

    /// Parses a session message.
    pub fn decode(buf: &[u8]) -> Result<SessionMessage> {
        if buf.is_empty() {
            return Err(DecodeError::Empty);
        }
        if buf[0] != crate::messages::PROTO_EDONKEY {
            return Err(DecodeError::NotEdonkey(buf[0]));
        }
        let mut r = Reader::new(&buf[1..]);
        let op = r.u8()?;
        let msg = match op {
            opcodes::LOGIN_REQUEST => SessionMessage::LoginRequest {
                user_hash: r.hash16()?,
                client_id: ClientId(r.u32()?),
                port: r.u16()?,
                tags: TagList::decode(&mut r)?,
            },
            opcodes::SERVER_MESSAGE => SessionMessage::ServerMessage {
                text: r.str16()?.to_owned(),
            },
            opcodes::ID_CHANGE => SessionMessage::IdChange {
                new_id: ClientId(r.u32()?),
            },
            other => return Err(DecodeError::UnknownOpcode(other)),
        };
        r.expect_end()?;
        Ok(msg)
    }
}

/// Server-side clientID assignment (§2.1): directly reachable clients
/// get their IP as clientID (high ID); NATed/firewalled clients get the
/// next 24-bit low ID.
pub struct IdAssigner {
    next_low: u32,
}

impl Default for IdAssigner {
    fn default() -> Self {
        // Real servers start low IDs at 1 (0 is reserved).
        IdAssigner { next_low: 1 }
    }
}

impl IdAssigner {
    /// Fresh assigner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Assigns a clientID for a connecting client with source address
    /// `ip`, `reachable` iff the server could connect back to it.
    pub fn assign(&mut self, ip: u32, reachable: bool) -> ClientId {
        if reachable && ip >= LOW_ID_LIMIT {
            ClientId(ip)
        } else {
            let id = self.next_low;
            self.next_low += 1;
            assert!(
                self.next_low < LOW_ID_LIMIT,
                "low-ID space exhausted (16M concurrent NATed clients)"
            );
            ClientId::low(id)
        }
    }

    /// Low IDs handed out so far.
    pub fn low_ids_assigned(&self) -> u32 {
        self.next_low - 1
    }
}

/// The server's side of a login handshake: assign an ID and greet.
pub fn handshake_response(
    assigner: &mut IdAssigner,
    source_ip: u32,
    reachable: bool,
    greeting: &str,
) -> Vec<SessionMessage> {
    vec![
        SessionMessage::IdChange {
            new_id: assigner.assign(source_ip, reachable),
        },
        SessionMessage::ServerMessage {
            text: greeting.to_owned(),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ClientIdKind;
    use crate::tags::{special, Tag};

    fn sample_login() -> SessionMessage {
        SessionMessage::LoginRequest {
            user_hash: [7; 16],
            client_id: ClientId(0),
            port: 4662,
            tags: TagList(vec![
                Tag::str(special::FILENAME, "a user name"), // name tag id reused
                Tag::u32(special::VERSION, 60),
            ]),
        }
    }

    #[test]
    fn round_trips() {
        for msg in [
            sample_login(),
            SessionMessage::ServerMessage {
                text: "welcome to the simulated donkey".into(),
            },
            SessionMessage::IdChange {
                new_id: ClientId(0x5216_0a02),
            },
        ] {
            let buf = msg.encode();
            assert_eq!(SessionMessage::decode(&buf).unwrap(), msg);
        }
    }

    #[test]
    fn truncation_detected() {
        let buf = sample_login().encode();
        for cut in 1..buf.len() {
            assert!(SessionMessage::decode(&buf[..cut]).is_err(), "cut {cut}");
        }
        let mut padded = buf.clone();
        padded.push(0);
        assert!(matches!(
            SessionMessage::decode(&padded),
            Err(DecodeError::TrailingBytes(1))
        ));
    }

    #[test]
    fn unknown_opcode() {
        let buf = [crate::messages::PROTO_EDONKEY, 0x77];
        assert!(matches!(
            SessionMessage::decode(&buf),
            Err(DecodeError::UnknownOpcode(0x77))
        ));
    }

    #[test]
    fn id_assignment_rules() {
        let mut a = IdAssigner::new();
        // Reachable public client: IP becomes the ID.
        let ip = u32::from_be_bytes([82, 10, 20, 30]);
        let id = a.assign(ip, true);
        assert_eq!(id.raw(), ip);
        assert_eq!(id.kind(), ClientIdKind::High);
        // Unreachable client: sequential low ID.
        let id1 = a.assign(u32::from_be_bytes([82, 10, 20, 31]), false);
        let id2 = a.assign(u32::from_be_bytes([82, 10, 20, 32]), false);
        assert_eq!(id1, ClientId::low(1));
        assert_eq!(id2, ClientId::low(2));
        assert_eq!(a.low_ids_assigned(), 2);
        // A client whose IP is itself in the low range (cannot be used
        // as a high ID) gets a low ID even if reachable.
        let id3 = a.assign(100, true);
        assert_eq!(id3.kind(), ClientIdKind::Low);
    }

    #[test]
    fn handshake_shape() {
        let mut a = IdAssigner::new();
        let msgs = handshake_response(&mut a, u32::from_be_bytes([82, 1, 1, 1]), true, "hi");
        assert_eq!(msgs.len(), 2);
        assert!(matches!(msgs[0], SessionMessage::IdChange { .. }));
        assert!(matches!(msgs[1], SessionMessage::ServerMessage { .. }));
    }
}
