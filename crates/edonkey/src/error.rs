//! Decoder error taxonomy.
//!
//! The paper's decoder statistics (§2.3) distinguish messages that fail
//! *structural* validation (78 % of the undecodable 0.68 %) from messages
//! that pass it but still cannot be decoded. The error type keeps enough
//! information to reproduce that accounting (see [`crate::decoder`]).

use std::fmt;

/// Why a byte buffer could not be decoded as an eDonkey message.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DecodeError {
    /// Buffer shorter than a field required.
    Truncated {
        /// Bytes the field needed.
        wanted: usize,
        /// Bytes that were left.
        available: usize,
    },
    /// First byte is not the eDonkey protocol marker (0xE3).
    NotEdonkey(u8),
    /// Message is empty (no protocol byte at all).
    Empty,
    /// Opcode byte does not name a known message.
    UnknownOpcode(u8),
    /// A tag carried an unknown value-type discriminator.
    UnknownTagType(u8),
    /// A search expression used an unknown node discriminator.
    UnknownSearchNode(u8),
    /// Structurally well-formed but semantically nonsensical content.
    Malformed(&'static str),
    /// Payload had bytes left over after the message was fully parsed.
    TrailingBytes(usize),
}

impl DecodeError {
    /// True when the failure is *structural*: the byte stream does not
    /// even have the shape of a message (truncation, wrong lengths,
    /// trailing garbage). The paper reports that 78 % of its undecodable
    /// messages were of this kind.
    pub fn is_structural(&self) -> bool {
        matches!(
            self,
            DecodeError::Truncated { .. }
                | DecodeError::Empty
                | DecodeError::TrailingBytes(_)
                | DecodeError::Malformed(_)
        )
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated { wanted, available } => {
                write!(f, "truncated: wanted {wanted} bytes, {available} left")
            }
            DecodeError::NotEdonkey(b) => write!(f, "not an eDonkey message (proto {b:#04x})"),
            DecodeError::Empty => write!(f, "empty message"),
            DecodeError::UnknownOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            DecodeError::UnknownTagType(t) => write!(f, "unknown tag type {t:#04x}"),
            DecodeError::UnknownSearchNode(n) => write!(f, "unknown search node {n:#04x}"),
            DecodeError::Malformed(why) => write!(f, "malformed: {why}"),
            DecodeError::TrailingBytes(n) => write!(f, "{n} trailing bytes"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Decoder result alias.
pub type Result<T> = std::result::Result<T, DecodeError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structural_classification() {
        assert!(DecodeError::Truncated {
            wanted: 4,
            available: 0
        }
        .is_structural());
        assert!(DecodeError::Empty.is_structural());
        assert!(DecodeError::TrailingBytes(3).is_structural());
        assert!(DecodeError::Malformed("x").is_structural());
        assert!(!DecodeError::UnknownOpcode(0x42).is_structural());
        assert!(!DecodeError::UnknownTagType(9).is_structural());
        assert!(!DecodeError::NotEdonkey(0x17).is_structural());
    }

    #[test]
    fn display_is_informative() {
        let e = DecodeError::Truncated {
            wanted: 16,
            available: 3,
        };
        assert!(e.to_string().contains("16"));
        assert!(e.to_string().contains("3"));
    }
}
