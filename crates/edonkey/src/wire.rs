//! Little-endian wire primitives shared by the codec.
//!
//! `Reader` is a non-consuming cursor over a byte slice; every accessor
//! returns [`DecodeError::Truncated`] instead of panicking, so the decoder
//! can classify short messages as structurally invalid (paper §2.3: the
//! decoder first performs "a structural validation of messages, based on
//! their expected length").

use crate::error::{DecodeError, Result};

/// Cursor over a received byte slice.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps `buf` with the cursor at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Current cursor offset from the start of the buffer.
    #[inline]
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Consumes exactly `n` bytes.
    #[inline]
    pub fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(DecodeError::Truncated {
                wanted: n,
                available: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    #[inline]
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian u16.
    #[inline]
    pub fn u16(&mut self) -> Result<u16> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian u32.
    #[inline]
    pub fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian u64.
    #[inline]
    pub fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// Reads a 16-byte hash.
    #[inline]
    pub fn hash16(&mut self) -> Result<[u8; 16]> {
        let b = self.take(16)?;
        let mut a = [0u8; 16];
        a.copy_from_slice(b);
        Ok(a)
    }

    /// Reads a `len:u16`-prefixed UTF-8 string.
    pub fn str16(&mut self) -> Result<&'a str> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes).map_err(|_| DecodeError::Malformed("string not utf-8"))
    }

    /// Asserts the whole buffer was consumed.
    pub fn expect_end(&self) -> Result<()> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(DecodeError::TrailingBytes(self.remaining()))
        }
    }
}

/// Growable output buffer with little-endian writers.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// Writer with pre-reserved capacity (hot paths know their sizes).
    pub fn with_capacity(cap: usize) -> Self {
        Writer {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Writer reusing an existing allocation (cleared first) — the
    /// serving loop encodes thousands of answers per second into the
    /// same buffer instead of allocating one per datagram.
    pub fn from_vec(mut buf: Vec<u8>) -> Self {
        buf.clear();
        Writer { buf }
    }

    /// Appends one byte.
    #[inline]
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian u16.
    #[inline]
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u32.
    #[inline]
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u64.
    #[inline]
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends raw bytes.
    #[inline]
    pub fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Appends a `len:u16`-prefixed string.
    pub fn str16(&mut self, s: &str) {
        debug_assert!(s.len() <= u16::MAX as usize);
        self.u16(s.len() as u16);
        self.bytes(s.as_bytes());
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Finishes and returns the buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        let mut w = Writer::new();
        w.u8(0xab);
        w.u16(0x1234);
        w.u32(0xdead_beef);
        w.u64(0x0123_4567_89ab_cdef);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 0xab);
        assert_eq!(r.u16().unwrap(), 0x1234);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), 0x0123_4567_89ab_cdef);
        r.expect_end().unwrap();
    }

    #[test]
    fn little_endian_on_the_wire() {
        let mut w = Writer::new();
        w.u32(1);
        assert_eq!(w.into_bytes(), vec![1, 0, 0, 0]);
    }

    #[test]
    fn truncation_reports_sizes() {
        let mut r = Reader::new(&[1, 2]);
        match r.u32() {
            Err(DecodeError::Truncated { wanted, available }) => {
                assert_eq!((wanted, available), (4, 2));
            }
            other => panic!("expected truncation, got {other:?}"),
        }
    }

    #[test]
    fn str16_round_trip_and_invalid_utf8() {
        let mut w = Writer::new();
        w.str16("héllo");
        let buf = w.into_bytes();
        assert_eq!(Reader::new(&buf).str16().unwrap(), "héllo");

        let bad = [2u8, 0, 0xff, 0xfe];
        assert!(matches!(
            Reader::new(&bad).str16(),
            Err(DecodeError::Malformed(_))
        ));
    }

    #[test]
    fn trailing_bytes_detected() {
        let r = Reader::new(&[0u8; 3]);
        assert!(matches!(r.expect_end(), Err(DecodeError::TrailingBytes(3))));
    }

    #[test]
    fn take_does_not_overconsume_on_error() {
        let mut r = Reader::new(&[1, 2, 3]);
        assert!(r.take(5).is_err());
        // Failed take must leave the cursor untouched.
        assert_eq!(r.remaining(), 3);
        assert_eq!(r.take(3).unwrap(), &[1, 2, 3]);
    }

    #[test]
    fn hash16_round_trip() {
        let h = [7u8; 16];
        let mut w = Writer::new();
        w.bytes(&h);
        assert_eq!(Reader::new(&w.into_bytes()).hash16().unwrap(), h);
    }
}
