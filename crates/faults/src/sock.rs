//! Socket-level impairment: the [`FaultSpec`] semantics applied at the
//! datagram boundary of a *real* UDP socket.
//!
//! [`crate::FaultyLink`] impairs simulated frames flowing through an
//! iterator; [`SocketImpairment`] impairs datagrams about to be written
//! to (or just read from) an actual socket. Same spec, same seeded
//! determinism, same per-direction rates — but the clock is the
//! caller's wall clock (µs since some epoch the caller owns) instead of
//! virtual time, because real sockets live in real time.
//!
//! The layer is applied at the *sender* boundary: a datagram is offered
//! to [`SocketImpairment::admit`] immediately before the `sendto`, and
//! the emitted copies (zero when dropped, two when duplicated) are what
//! actually hits the wire. Applying faults before the kernel means the
//! conservation ledger is exact: what the ledger says was delivered is
//! exactly what entered the loopback, datagram for datagram.
//!
//! Ledger identity, per direction (`faults.sock.<dir>.*`):
//!
//! ```text
//! delivered = offered − dropped − outage_dropped + duplicated
//! ```
//!
//! Truncation and delay never change the datagram count: a truncated
//! datagram still flies (shorter), a delayed one is held in an internal
//! queue and emitted by [`SocketImpairment::drain_due`] once its
//! deadline passes (it counts as delivered at that point). Reordering
//! needs no explicit model here: UDP gives no ordering promise, and
//! delay already produces real reordering on the wire.

use crate::{in_windows, DirectedRates, FaultSpec, LinkDirection, Window};
use etw_telemetry::{Counter, Registry};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// One datagram emitted by the impairment layer, tagged with the
/// caller's routing context (a session index, a peer address — whatever
/// the caller needs to actually send it).
#[derive(Debug, Clone)]
pub struct SockDatagram<C> {
    /// Caller-supplied routing context, cloned onto duplicates.
    pub ctx: C,
    /// Direction the datagram travels.
    pub dir: LinkDirection,
    /// The (possibly truncated) payload to put on the wire.
    pub bytes: Vec<u8>,
}

/// A datagram held back by the delay fault.
#[derive(Debug)]
struct Held<C> {
    due_us: u64,
    datagram: SockDatagram<C>,
}

/// Per-direction `faults.sock.<dir>.*` counters.
#[derive(Clone)]
struct SockTelemetry {
    offered: Counter,
    delivered: Counter,
    dropped: Counter,
    outage_dropped: Counter,
    duplicated: Counter,
    truncated: Counter,
    delayed: Counter,
}

impl SockTelemetry {
    fn new(registry: &Registry, dir: &str) -> Self {
        let name = |what: &str| format!("faults.sock.{dir}.{what}_total");
        SockTelemetry {
            offered: registry.counter(&name("offered")),
            delivered: registry.counter(&name("delivered")),
            dropped: registry.counter(&name("dropped")),
            outage_dropped: registry.counter(&name("outage_dropped")),
            duplicated: registry.counter(&name("duplicated")),
            truncated: registry.counter(&name("truncated")),
            delayed: registry.counter(&name("delayed")),
        }
    }
}

/// Ledger snapshot for one direction, read back from the registry by
/// gates that check conservation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SockLedger {
    /// Datagrams the application asked to send.
    pub offered: u64,
    /// Datagrams that actually went (or will go) on the wire.
    pub delivered: u64,
    /// Randomly dropped.
    pub dropped: u64,
    /// Lost to an outage window.
    pub outage_dropped: u64,
    /// Extra copies emitted.
    pub duplicated: u64,
    /// Delivered short.
    pub truncated: u64,
    /// Held back before delivery.
    pub delayed: u64,
}

impl SockLedger {
    /// The conservation identity this layer guarantees.
    pub fn conserves(&self) -> bool {
        self.delivered == self.offered - self.dropped - self.outage_dropped + self.duplicated
    }

    /// Reads one direction's ledger out of a metrics snapshot.
    pub fn from_snapshot(snap: &etw_telemetry::Snapshot, dir: LinkDirection) -> SockLedger {
        let d = dir_name(dir);
        let c = |what: &str| snap.counter(&format!("faults.sock.{d}.{what}_total"));
        SockLedger {
            offered: c("offered"),
            delivered: c("delivered"),
            dropped: c("dropped"),
            outage_dropped: c("outage_dropped"),
            duplicated: c("duplicated"),
            truncated: c("truncated"),
            delayed: c("delayed"),
        }
    }
}

fn dir_name(dir: LinkDirection) -> &'static str {
    match dir {
        LinkDirection::ToServer => "to_server",
        LinkDirection::FromServer => "from_server",
    }
}

/// Seeded datagram-boundary fault injection for one side of a socket.
///
/// `C` is the caller's routing context carried through the delay queue
/// and cloned onto duplicates (e.g. the destination `SocketAddr`, or a
/// swarm session index).
pub struct SocketImpairment<C> {
    spec: FaultSpec,
    rng: StdRng,
    to_server: SockTelemetry,
    from_server: SockTelemetry,
    held: VecDeque<Held<C>>,
}

impl<C: Clone> SocketImpairment<C> {
    /// Builds the layer; all randomness derives from `spec.seed`, so the
    /// same spec and the same offered sequence produce the same faults.
    pub fn new(spec: FaultSpec, registry: &Registry) -> Self {
        let rng = StdRng::seed_from_u64(spec.seed ^ 0x736f_636b); // "sock"
        SocketImpairment {
            spec,
            rng,
            to_server: SockTelemetry::new(registry, "to_server"),
            from_server: SockTelemetry::new(registry, "from_server"),
            held: VecDeque::new(),
        }
    }

    fn telemetry(&self, dir: LinkDirection) -> &SockTelemetry {
        match dir {
            LinkDirection::ToServer => &self.to_server,
            LinkDirection::FromServer => &self.from_server,
        }
    }

    fn gate(&mut self, rates: &DirectedRates, dir: LinkDirection) -> bool {
        let rate = rates.rate(dir);
        rate > 0.0 && self.rng.gen_bool(rate)
    }

    /// Offers one datagram. Appends zero or more wire-ready datagrams to
    /// `emit`; a delayed datagram is held internally until
    /// [`Self::drain_due`] releases it. `now_us` is the caller's wall
    /// clock in µs since its own epoch (outage [`Window`]s are expressed
    /// on the same axis).
    pub fn admit(
        &mut self,
        ctx: C,
        dir: LinkDirection,
        payload: &[u8],
        now_us: u64,
        emit: &mut Vec<SockDatagram<C>>,
    ) {
        self.telemetry(dir).offered.inc();
        if in_windows(&self.spec.outages, now_us) {
            self.telemetry(dir).outage_dropped.inc();
            return;
        }
        let drop = self.spec.drop;
        if self.gate(&drop, dir) {
            self.telemetry(dir).dropped.inc();
            return;
        }
        let mut bytes = payload.to_vec();
        let truncate = self.spec.truncate;
        if bytes.len() > 1 && self.gate(&truncate, dir) {
            let keep = self.rng.gen_range(1..bytes.len() as u64) as usize;
            bytes.truncate(keep);
            self.telemetry(dir).truncated.inc();
        }
        let duplicate = self.spec.duplicate;
        let copies = if self.gate(&duplicate, dir) {
            self.telemetry(dir).duplicated.inc();
            2
        } else {
            1
        };
        let delay = self.spec.delay;
        let delayed = self.spec.delay_max_us > 0 && self.gate(&delay, dir);
        for _ in 0..copies {
            let datagram = SockDatagram {
                ctx: ctx.clone(),
                dir,
                bytes: bytes.clone(),
            };
            if delayed {
                let extra = self.rng.gen_range(1..=self.spec.delay_max_us);
                self.telemetry(dir).delayed.inc();
                self.held.push_back(Held {
                    due_us: now_us + extra,
                    datagram,
                });
            } else {
                self.telemetry(dir).delivered.inc();
                emit.push(datagram);
            }
        }
    }

    /// Releases every held datagram whose deadline has passed. Call with
    /// `u64::MAX` to flush the queue at shutdown so the conservation
    /// ledger closes.
    pub fn drain_due(&mut self, now_us: u64, emit: &mut Vec<SockDatagram<C>>) {
        let mut i = 0;
        while i < self.held.len() {
            if self.held[i].due_us <= now_us {
                // Order within the held queue is preserved; order
                // against fresh traffic is whatever the deadlines say —
                // that is the reordering this fault exists to cause.
                if let Some(h) = self.held.remove(i) {
                    self.telemetry(h.datagram.dir).delivered.inc();
                    emit.push(h.datagram);
                }
            } else {
                i += 1;
            }
        }
    }

    /// Datagrams currently held by the delay fault.
    pub fn held_len(&self) -> usize {
        self.held.len()
    }

    /// The µs deadline of the soonest held datagram, if any.
    pub fn next_due_us(&self) -> Option<u64> {
        self.held.iter().map(|h| h.due_us).min()
    }
}

/// Returns the outage windows shifted onto a wall-µs axis starting at
/// `epoch_us` — convenience for specs written as offsets from soak
/// start.
pub fn shift_windows(windows: &[Window], epoch_us: u64) -> Vec<Window> {
    windows
        .iter()
        .map(|w| Window {
            start_us: epoch_us + w.start_us,
            end_us: epoch_us + w.end_us,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use etw_telemetry::Registry;

    fn spec(seed: u64) -> FaultSpec {
        FaultSpec {
            seed,
            drop: DirectedRates::symmetric(0.2),
            duplicate: DirectedRates::symmetric(0.1),
            truncate: DirectedRates::symmetric(0.1),
            delay: DirectedRates::symmetric(0.1),
            delay_max_us: 500,
            ..FaultSpec::default()
        }
    }

    fn run(seed: u64) -> (Vec<usize>, SockLedger) {
        let reg = Registry::new();
        let mut imp: SocketImpairment<u32> = SocketImpairment::new(spec(seed), &reg);
        let mut emit = Vec::new();
        for i in 0..500u32 {
            imp.admit(
                i,
                LinkDirection::ToServer,
                &[0xE3; 32],
                i as u64 * 10,
                &mut emit,
            );
        }
        imp.drain_due(u64::MAX, &mut emit);
        let lens: Vec<usize> = emit.iter().map(|d| d.bytes.len()).collect();
        (
            lens,
            SockLedger::from_snapshot(&reg.snapshot(), LinkDirection::ToServer),
        )
    }

    #[test]
    fn ledger_conserves_and_is_deterministic() {
        let (a, la) = run(7);
        let (b, lb) = run(7);
        let (c, _) = run(8);
        assert_eq!(a, b, "same seed, same faults");
        assert_ne!(a, c, "different seed, different faults");
        assert_eq!(la, lb);
        assert!(la.conserves(), "{la:?}");
        assert_eq!(la.offered, 500);
        assert!(la.dropped > 0 && la.duplicated > 0 && la.truncated > 0);
        assert_eq!(la.delivered as usize, a.len());
    }

    #[test]
    fn outage_windows_drop_everything_inside() {
        let reg = Registry::new();
        let s = FaultSpec {
            outages: vec![Window {
                start_us: 100,
                end_us: 200,
            }],
            ..FaultSpec::default()
        };
        let mut imp: SocketImpairment<()> = SocketImpairment::new(s, &reg);
        let mut emit = Vec::new();
        for t in [50u64, 150, 250] {
            imp.admit((), LinkDirection::FromServer, b"x", t, &mut emit);
        }
        let l = SockLedger::from_snapshot(&reg.snapshot(), LinkDirection::FromServer);
        assert_eq!(l.outage_dropped, 1);
        assert_eq!(l.delivered, 2);
        assert!(l.conserves());
    }

    #[test]
    fn delayed_datagrams_release_on_deadline_only() {
        let reg = Registry::new();
        let s = FaultSpec {
            delay: DirectedRates::symmetric(1.0),
            delay_max_us: 100,
            ..FaultSpec::default()
        };
        let mut imp: SocketImpairment<u8> = SocketImpairment::new(s, &reg);
        let mut emit = Vec::new();
        imp.admit(9, LinkDirection::ToServer, b"held", 1_000, &mut emit);
        assert!(emit.is_empty());
        assert_eq!(imp.held_len(), 1);
        let due = imp.next_due_us().unwrap();
        assert!(due > 1_000 && due <= 1_100);
        imp.drain_due(due - 1, &mut emit);
        assert!(emit.is_empty());
        imp.drain_due(due, &mut emit);
        assert_eq!(emit.len(), 1);
        assert_eq!(emit[0].ctx, 9);
        let l = SockLedger::from_snapshot(&reg.snapshot(), LinkDirection::ToServer);
        assert!(l.conserves());
        assert_eq!(l.delayed, 1);
    }

    #[test]
    fn shift_windows_offsets_both_edges() {
        let w = shift_windows(
            &[Window {
                start_us: 10,
                end_us: 20,
            }],
            1_000,
        );
        assert_eq!(w[0].start_us, 1_010);
        assert_eq!(w[0].end_us, 1_020);
    }
}
