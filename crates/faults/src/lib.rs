//! Deterministic fault injection for the capture machine.
//!
//! The paper's capture box ran for ten weeks on a real network, where
//! datagram loss, reordering, duplication and component failure are the
//! normal case, not the exception. This crate models those conditions
//! *deterministically*: every fault decision is drawn from a seeded RNG
//! or a virtual-time window, so a faulty campaign is exactly as
//! reproducible as a perfect one — which is what makes checkpoint/resume
//! byte-identical replay possible.
//!
//! Three fault surfaces share one [`FaultSpec`]:
//!
//! * [`FaultyLink`] — an iterator adapter slotted between the traffic
//!   generator and the capture pipeline. Drops, duplicates, reorders,
//!   delays and truncates frames at per-direction rates, and blacks out
//!   entire [`Window`]s (link outages). All events are surfaced as
//!   `faults.link.*` counters.
//! * [`LossyChannel`] — the datagram-level view used by the active
//!   prober: each send/receive either delivers or silently vanishes,
//!   feeding real request-level timeouts.
//! * [`WorkerFaultPlan`] — a schedule of injected decode-worker crashes
//!   and overload windows, consumed by the supervised pipeline.

pub mod sock;

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use etw_telemetry::{Counter, Registry};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Direction of a frame or datagram relative to the observed server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkDirection {
    /// Client → server (requests, announcements).
    ToServer,
    /// Server → client (answers, status).
    FromServer,
}

/// A fault probability applied per direction.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DirectedRates {
    pub to_server: f64,
    pub from_server: f64,
}

impl DirectedRates {
    /// Same rate in both directions.
    pub fn symmetric(rate: f64) -> Self {
        DirectedRates {
            to_server: rate,
            from_server: rate,
        }
    }

    pub fn rate(&self, dir: LinkDirection) -> f64 {
        match dir {
            LinkDirection::ToServer => self.to_server,
            LinkDirection::FromServer => self.from_server,
        }
    }

    fn any(&self) -> bool {
        self.to_server > 0.0 || self.from_server > 0.0
    }

    fn invalid(&self) -> Option<f64> {
        [self.to_server, self.from_server]
            .into_iter()
            .find(|r| !(0.0..=1.0).contains(r) || r.is_nan())
    }
}

/// A half-open virtual-time interval `[start_us, end_us)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Window {
    pub start_us: u64,
    pub end_us: u64,
}

impl Window {
    pub fn contains(&self, us: u64) -> bool {
        self.start_us <= us && us < self.end_us
    }
}

fn in_windows(windows: &[Window], us: u64) -> bool {
    windows.iter().any(|w| w.contains(us))
}

fn invalid_window(windows: &[Window]) -> Option<Window> {
    windows.iter().copied().find(|w| w.start_us >= w.end_us)
}

/// Full fault configuration for a campaign. `FaultSpec::default()` is a
/// perfect world: every rate zero, no windows, no worker crashes.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Seed for all fault randomness (independent of the traffic seed).
    pub seed: u64,
    /// Probability a frame is silently dropped.
    pub drop: DirectedRates,
    /// Probability a frame is delivered twice (same timestamp).
    pub duplicate: DirectedRates,
    /// Probability a frame swaps wire contents with its neighbour.
    pub reorder: DirectedRates,
    /// Probability a frame is cut short mid-payload.
    pub truncate: DirectedRates,
    /// Probability a frame is held back and re-stamped later.
    pub delay: DirectedRates,
    /// Maximum extra latency for a delayed frame, in virtual µs.
    pub delay_max_us: u64,
    /// Link outages: every frame inside these windows is lost.
    pub outages: Vec<Window>,
    /// Overload windows: the pipeline sheds (drops-and-counts) frames
    /// here instead of blocking the capture.
    pub overload: Vec<Window>,
    /// During overload, keep one frame in every `shed_keep_every`
    /// offered (0 = shed everything inside the window).
    pub shed_keep_every: u64,
    /// Inject a decode-worker crash every N frames per worker (0 = off).
    pub worker_crash_every: u64,
    /// Restarts allowed per worker before it degrades permanently.
    pub max_worker_restarts: u32,
    /// Frames tombstoned after the k-th restart: `base << (k-1)`, capped.
    pub restart_backoff_frames: u64,
    /// Upper bound on the restart backoff.
    pub restart_backoff_cap: u64,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            seed: 0xFA17,
            drop: DirectedRates::default(),
            duplicate: DirectedRates::default(),
            reorder: DirectedRates::default(),
            truncate: DirectedRates::default(),
            delay: DirectedRates::default(),
            delay_max_us: 0,
            outages: Vec::new(),
            overload: Vec::new(),
            shed_keep_every: 4,
            worker_crash_every: 0,
            max_worker_restarts: 3,
            restart_backoff_frames: 2,
            restart_backoff_cap: 64,
        }
    }
}

impl FaultSpec {
    /// True when the link layer has anything to do.
    pub fn link_active(&self) -> bool {
        self.drop.any()
            || self.duplicate.any()
            || self.reorder.any()
            || self.truncate.any()
            || (self.delay.any() && self.delay_max_us > 0)
            || !self.outages.is_empty()
    }

    /// The worker-facing slice of the spec, or `None` when neither
    /// crash injection nor overload shedding is configured.
    pub fn worker_plan(&self) -> Option<WorkerFaultPlan> {
        if self.worker_crash_every == 0 && self.overload.is_empty() {
            return None;
        }
        Some(WorkerFaultPlan {
            crash_every: self.worker_crash_every,
            max_restarts: self.max_worker_restarts,
            backoff_frames: self.restart_backoff_frames,
            backoff_cap: self.restart_backoff_cap,
            overload: self.overload.clone(),
            shed_keep_every: self.shed_keep_every,
        })
    }

    /// First probability outside `[0, 1]`, with its field name, if any.
    pub fn invalid_probability(&self) -> Option<(&'static str, f64)> {
        [
            ("faults.drop", &self.drop),
            ("faults.duplicate", &self.duplicate),
            ("faults.reorder", &self.reorder),
            ("faults.truncate", &self.truncate),
            ("faults.delay", &self.delay),
        ]
        .into_iter()
        .find_map(|(name, rates)| rates.invalid().map(|r| (name, r)))
    }

    /// First empty-or-inverted window, if any.
    pub fn invalid_window(&self) -> Option<(u64, u64)> {
        invalid_window(&self.outages)
            .or_else(|| invalid_window(&self.overload))
            .map(|w| (w.start_us, w.end_us))
    }
}

/// Worker-level fault schedule derived from a [`FaultSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerFaultPlan {
    pub crash_every: u64,
    pub max_restarts: u32,
    pub backoff_frames: u64,
    pub backoff_cap: u64,
    pub overload: Vec<Window>,
    pub shed_keep_every: u64,
}

impl WorkerFaultPlan {
    /// Should worker `worker` crash while handling its `ordinal`-th
    /// frame (1-based)? Workers are offset so they do not all crash on
    /// the same frame count.
    pub fn crash_due(&self, worker: usize, ordinal: u64) -> bool {
        self.crash_every > 0 && (ordinal + worker as u64).is_multiple_of(self.crash_every)
    }

    /// Tombstoned-frame budget after the k-th restart (1-based):
    /// exponential backoff, capped.
    pub fn backoff_after(&self, restart: u32) -> u64 {
        let shift = restart.saturating_sub(1).min(63);
        self.backoff_frames
            .saturating_shl(shift)
            .min(self.backoff_cap)
    }

    /// Should the producer shed the `ordinal`-th offered frame (1-based)
    /// arriving at virtual time `ts_us`?
    pub fn should_shed(&self, ts_us: u64, ordinal: u64) -> bool {
        if !in_windows(&self.overload, ts_us) {
            return false;
        }
        self.shed_keep_every == 0 || !ordinal.is_multiple_of(self.shed_keep_every)
    }
}

trait SaturatingShl {
    fn saturating_shl(self, shift: u32) -> Self;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, shift: u32) -> u64 {
        if self == 0 {
            return 0;
        }
        if shift >= self.leading_zeros() {
            u64::MAX
        } else {
            self << shift
        }
    }
}

/// Panic payload for injected worker crashes, so the supervisor's panic
/// hook can distinguish scheduled faults from genuine bugs.
#[derive(Debug, Clone, Copy)]
pub struct InjectedWorkerCrash;

/// Frame interface the lossy link manipulates. Implemented by the
/// campaign's `TimedFrame`; tests use a trivial in-crate frame.
pub trait LinkFrame {
    /// Capture timestamp (arrival at the tap) in virtual µs.
    fn ts_us(&self) -> u64;
    /// Re-stamp the frame (used when a delayed frame arrives late).
    fn set_ts_us(&mut self, us: u64);
    /// Which side of the tap sent it.
    fn direction(&self) -> LinkDirection;
    /// Bytes on the wire.
    fn wire_len(&self) -> usize;
    /// Cut the frame to `keep` bytes.
    fn truncate_wire(&mut self, keep: usize);
    /// Swap wire contents with a neighbour, keeping both timestamps:
    /// this is how reordering looks to a tap that stamps on arrival.
    fn swap_wire(&mut self, other: &mut Self);
}

struct LinkTelemetry {
    offered: Counter,
    delivered: Counter,
    dropped: Counter,
    duplicated: Counter,
    reordered: Counter,
    delayed: Counter,
    truncated: Counter,
    outage_dropped: Counter,
}

impl LinkTelemetry {
    fn new(registry: &Registry) -> Self {
        LinkTelemetry {
            offered: registry.counter("faults.link.offered_total"),
            delivered: registry.counter("faults.link.delivered_total"),
            dropped: registry.counter("faults.link.dropped_total"),
            duplicated: registry.counter("faults.link.duplicated_total"),
            reordered: registry.counter("faults.link.reordered_total"),
            delayed: registry.counter("faults.link.delayed_total"),
            truncated: registry.counter("faults.link.truncated_total"),
            outage_dropped: registry.counter("faults.link.outage_dropped_total"),
        }
    }
}

/// A delayed frame waiting for its release time. Ordered by
/// `(release_us, tie)` so the heap pops in arrival order with a stable
/// tiebreak.
struct Held<T> {
    release_us: u64,
    tie: u64,
    frame: T,
}

impl<T> PartialEq for Held<T> {
    fn eq(&self, other: &Self) -> bool {
        self.release_us == other.release_us && self.tie == other.tie
    }
}
impl<T> Eq for Held<T> {}
impl<T> PartialOrd for Held<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Held<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.release_us, self.tie).cmp(&(other.release_us, other.tie))
    }
}

/// Deterministic lossy-link iterator adapter.
///
/// Wraps the frame source feeding the capture pipeline and applies, per
/// frame and in this order: outage check, drop, delay, truncate,
/// duplicate, reorder. Because the tap stamps frames on *arrival*, a
/// delayed frame is re-stamped at its release time and a reordered pair
/// swaps wire contents while keeping timestamps — the emitted stream
/// stays time-ordered, exactly as a real capture would observe it.
///
/// Conservation ledger (checked by the soak run):
/// `delivered = offered - dropped - outage_dropped + duplicated`.
pub struct FaultyLink<I>
where
    I: Iterator,
    I::Item: LinkFrame + Clone,
{
    upstream: I,
    spec: FaultSpec,
    rng: StdRng,
    telemetry: LinkTelemetry,
    /// Frames held back by the delay fault, keyed by release time.
    held: BinaryHeap<Reverse<Held<I::Item>>>,
    /// Frames ready to emit, in arrival order.
    ready: VecDeque<I::Item>,
    /// One-slot lookahead so a reorder can swap with its predecessor
    /// before that predecessor is emitted.
    slot: Option<I::Item>,
    tie: u64,
    upstream_done: bool,
}

impl<I> FaultyLink<I>
where
    I: Iterator,
    I::Item: LinkFrame + Clone,
{
    pub fn new(upstream: I, spec: FaultSpec, registry: &Registry) -> Self {
        let rng = StdRng::seed_from_u64(spec.seed ^ 0x6c69_6e6b); // "link"
        FaultyLink {
            upstream,
            spec,
            rng,
            telemetry: LinkTelemetry::new(registry),
            held: BinaryHeap::new(),
            ready: VecDeque::new(),
            slot: None,
            tie: 0,
            upstream_done: false,
        }
    }

    fn gate(&mut self, rates: &DirectedRates, dir: LinkDirection) -> bool {
        let rate = rates.rate(dir);
        rate > 0.0 && self.rng.gen_bool(rate)
    }

    /// Move `frame` toward the output through the one-slot buffer.
    fn push_out(&mut self, frame: I::Item) {
        if let Some(prev) = self.slot.replace(frame) {
            self.ready.push_back(prev);
        }
    }

    /// Release every held frame due at or before `now_us`.
    fn release_due(&mut self, now_us: u64) {
        while let Some(Reverse(top)) = self.held.peek() {
            if top.release_us > now_us {
                break;
            }
            if let Some(Reverse(held)) = self.held.pop() {
                let mut frame = held.frame;
                frame.set_ts_us(held.release_us);
                self.push_out(frame);
            }
        }
    }

    /// Apply the fault gates to one upstream frame.
    fn process(&mut self, mut frame: I::Item) {
        self.telemetry.offered.inc();
        let now = frame.ts_us();
        let dir = frame.direction();

        if in_windows(&self.spec.outages, now) {
            self.telemetry.outage_dropped.inc();
            return;
        }
        let drop = self.spec.drop;
        if self.gate(&drop, dir) {
            self.telemetry.dropped.inc();
            return;
        }
        let delay = self.spec.delay;
        if self.spec.delay_max_us > 0 && self.gate(&delay, dir) {
            let extra = self.rng.gen_range(1..=self.spec.delay_max_us);
            self.telemetry.delayed.inc();
            self.tie += 1;
            self.held.push(Reverse(Held {
                release_us: now + extra,
                tie: self.tie,
                frame,
            }));
            return;
        }
        let truncate = self.spec.truncate;
        if frame.wire_len() > 1 && self.gate(&truncate, dir) {
            let keep = self.rng.gen_range(1..frame.wire_len() as u64) as usize;
            frame.truncate_wire(keep);
            self.telemetry.truncated.inc();
        }
        let duplicate = self.spec.duplicate;
        let dup = self.gate(&duplicate, dir);
        let reorder = self.spec.reorder;
        if self.gate(&reorder, dir) {
            if let Some(prev) = self.slot.as_mut() {
                prev.swap_wire(&mut frame);
                self.telemetry.reordered.add(2);
            }
        }
        if dup {
            self.telemetry.duplicated.inc();
            let copy = frame.clone();
            self.push_out(frame);
            self.push_out(copy);
        } else {
            self.push_out(frame);
        }
    }

    /// Drain everything once upstream is exhausted.
    fn finish_upstream(&mut self) {
        // Remaining held frames release in order after the last frame.
        while let Some(Reverse(held)) = self.held.pop() {
            let mut frame = held.frame;
            frame.set_ts_us(held.release_us);
            self.push_out(frame);
        }
        if let Some(last) = self.slot.take() {
            self.ready.push_back(last);
        }
    }
}

impl<I> Iterator for FaultyLink<I>
where
    I: Iterator,
    I::Item: LinkFrame + Clone,
{
    type Item = I::Item;

    fn next(&mut self) -> Option<I::Item> {
        loop {
            if let Some(frame) = self.ready.pop_front() {
                self.telemetry.delivered.inc();
                return Some(frame);
            }
            if self.upstream_done {
                return None;
            }
            match self.upstream.next() {
                Some(frame) => {
                    self.release_due(frame.ts_us());
                    self.process(frame);
                }
                None => {
                    self.upstream_done = true;
                    self.finish_upstream();
                }
            }
        }
    }
}

/// Datagram-level loss model for the active prober: each send either
/// reaches the far side or silently vanishes. Shares the outage windows
/// with the link model but draws from its own seeded RNG so probe
/// traffic does not perturb capture-side fault decisions.
#[derive(Debug)]
pub struct LossyChannel {
    rng: StdRng,
    drop: DirectedRates,
    outages: Vec<Window>,
}

impl LossyChannel {
    pub fn new(seed: u64, drop: DirectedRates, outages: Vec<Window>) -> Self {
        LossyChannel {
            rng: StdRng::seed_from_u64(seed ^ 0x7072_6f62), // "prob"
            drop,
            outages,
        }
    }

    pub fn from_spec(spec: &FaultSpec) -> Self {
        LossyChannel::new(spec.seed, spec.drop, spec.outages.clone())
    }

    /// Does a datagram sent in `dir` at virtual time `now_us` arrive?
    pub fn delivers(&mut self, dir: LinkDirection, now_us: u64) -> bool {
        if in_windows(&self.outages, now_us) {
            return false;
        }
        let rate = self.drop.rate(dir);
        !(rate > 0.0 && self.rng.gen_bool(rate))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    struct TestFrame {
        ts: u64,
        dir: LinkDirection,
        wire: Vec<u8>,
    }

    impl LinkFrame for TestFrame {
        fn ts_us(&self) -> u64 {
            self.ts
        }
        fn set_ts_us(&mut self, us: u64) {
            self.ts = us;
        }
        fn direction(&self) -> LinkDirection {
            self.dir
        }
        fn wire_len(&self) -> usize {
            self.wire.len()
        }
        fn truncate_wire(&mut self, keep: usize) {
            self.wire.truncate(keep);
        }
        fn swap_wire(&mut self, other: &mut Self) {
            std::mem::swap(&mut self.wire, &mut other.wire);
        }
    }

    fn frames(n: u64) -> Vec<TestFrame> {
        (0..n)
            .map(|i| TestFrame {
                ts: i * 100,
                dir: if i % 2 == 0 {
                    LinkDirection::ToServer
                } else {
                    LinkDirection::FromServer
                },
                wire: vec![i as u8; 64],
            })
            .collect()
    }

    fn run_link(spec: FaultSpec, input: Vec<TestFrame>) -> (Vec<TestFrame>, Registry) {
        let registry = Registry::new();
        let out: Vec<TestFrame> = FaultyLink::new(input.into_iter(), spec, &registry).collect();
        (out, registry)
    }

    fn lossy_spec() -> FaultSpec {
        FaultSpec {
            seed: 7,
            drop: DirectedRates::symmetric(0.1),
            duplicate: DirectedRates::symmetric(0.05),
            reorder: DirectedRates::symmetric(0.08),
            truncate: DirectedRates::symmetric(0.04),
            delay: DirectedRates::symmetric(0.1),
            delay_max_us: 5_000,
            outages: vec![Window {
                start_us: 20_000,
                end_us: 25_000,
            }],
            ..FaultSpec::default()
        }
    }

    #[test]
    fn default_spec_is_identity() {
        let input = frames(500);
        let (out, registry) = run_link(FaultSpec::default(), input.clone());
        assert_eq!(out, input);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("faults.link.offered_total"), 500);
        assert_eq!(snap.counter("faults.link.delivered_total"), 500);
        assert_eq!(snap.counter("faults.link.dropped_total"), 0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let (a, _) = run_link(lossy_spec(), frames(2_000));
        let (b, _) = run_link(lossy_spec(), frames(2_000));
        assert_eq!(a, b);
        let different = FaultSpec {
            seed: 8,
            ..lossy_spec()
        };
        let (c, _) = run_link(different, frames(2_000));
        assert_ne!(a, c);
    }

    #[test]
    fn ledger_conserves_frames() {
        let (out, registry) = run_link(lossy_spec(), frames(5_000));
        let snap = registry.snapshot();
        let offered = snap.counter("faults.link.offered_total");
        let delivered = snap.counter("faults.link.delivered_total");
        let dropped = snap.counter("faults.link.dropped_total");
        let outage = snap.counter("faults.link.outage_dropped_total");
        let duplicated = snap.counter("faults.link.duplicated_total");
        assert_eq!(offered, 5_000);
        assert_eq!(delivered, offered - dropped - outage + duplicated);
        assert_eq!(out.len() as u64, delivered);
        assert!(dropped > 0, "drop rate 0.1 over 5k frames must fire");
        assert!(duplicated > 0);
        assert!(outage > 0, "frames fall inside the outage window");
        assert!(snap.counter("faults.link.reordered_total") > 0);
        assert!(snap.counter("faults.link.delayed_total") > 0);
        assert!(snap.counter("faults.link.truncated_total") > 0);
    }

    #[test]
    fn output_stays_time_ordered() {
        let (out, _) = run_link(lossy_spec(), frames(5_000));
        for pair in out.windows(2) {
            assert!(pair[0].ts <= pair[1].ts, "capture stamps on arrival");
        }
    }

    #[test]
    fn outage_window_drops_everything_inside() {
        let spec = FaultSpec {
            outages: vec![Window {
                start_us: 100_000,
                end_us: 200_000,
            }],
            ..FaultSpec::default()
        };
        let (out, registry) = run_link(spec, frames(3_000));
        assert!(out.iter().all(|f| !(100_000..200_000).contains(&f.ts)));
        let snap = registry.snapshot();
        assert_eq!(snap.counter("faults.link.outage_dropped_total"), 1_000);
    }

    #[test]
    fn delay_restamps_at_release_time() {
        let spec = FaultSpec {
            delay: DirectedRates::symmetric(1.0),
            delay_max_us: 10,
            ..FaultSpec::default()
        };
        let input = frames(100);
        let (out, registry) = run_link(spec, input.clone());
        assert_eq!(out.len(), 100, "delay never loses frames");
        for (f, orig) in out.iter().zip(input.iter()) {
            assert!(f.ts > orig.ts || f.wire != orig.wire || f.ts >= orig.ts);
        }
        for f in &out {
            let orig = input.iter().find(|o| o.wire == f.wire).unwrap();
            assert!(f.ts > orig.ts && f.ts <= orig.ts + 10);
        }
        let snap = registry.snapshot();
        assert_eq!(snap.counter("faults.link.delayed_total"), 100);
    }

    #[test]
    fn reorder_swaps_wire_not_timestamps() {
        let spec = FaultSpec {
            reorder: DirectedRates::symmetric(1.0),
            ..FaultSpec::default()
        };
        let input = frames(4);
        let (out, _) = run_link(spec, input.clone());
        assert_eq!(out.len(), 4);
        let in_ts: Vec<u64> = input.iter().map(|f| f.ts).collect();
        let out_ts: Vec<u64> = out.iter().map(|f| f.ts).collect();
        assert_eq!(in_ts, out_ts, "timestamps keep arrival order");
        let mut in_wires: Vec<Vec<u8>> = input.iter().map(|f| f.wire.clone()).collect();
        let mut out_wires: Vec<Vec<u8>> = out.iter().map(|f| f.wire.clone()).collect();
        assert_ne!(in_wires, out_wires, "contents arrive out of order");
        in_wires.sort();
        out_wires.sort();
        assert_eq!(in_wires, out_wires, "no payload lost or invented");
    }

    #[test]
    fn truncate_shortens_but_keeps_frame() {
        let spec = FaultSpec {
            truncate: DirectedRates::symmetric(1.0),
            ..FaultSpec::default()
        };
        let (out, _) = run_link(spec, frames(50));
        assert_eq!(out.len(), 50);
        assert!(out.iter().all(|f| !f.wire.is_empty() && f.wire.len() < 64));
    }

    #[test]
    fn lossy_channel_outage_and_determinism() {
        let spec = lossy_spec();
        let mut a = LossyChannel::from_spec(&spec);
        let mut b = LossyChannel::from_spec(&spec);
        for t in 0..1_000u64 {
            let dir = if t % 2 == 0 {
                LinkDirection::ToServer
            } else {
                LinkDirection::FromServer
            };
            assert_eq!(a.delivers(dir, t * 100), b.delivers(dir, t * 100));
        }
        let mut c = LossyChannel::from_spec(&spec);
        assert!(
            !c.delivers(LinkDirection::ToServer, 21_000),
            "inside outage"
        );
    }

    #[test]
    fn worker_plan_backoff_and_shed() {
        let spec = FaultSpec {
            worker_crash_every: 10,
            restart_backoff_frames: 2,
            restart_backoff_cap: 16,
            overload: vec![Window {
                start_us: 0,
                end_us: 1_000,
            }],
            shed_keep_every: 4,
            ..FaultSpec::default()
        };
        let plan = spec.worker_plan().unwrap();
        assert_eq!(plan.backoff_after(1), 2);
        assert_eq!(plan.backoff_after(2), 4);
        assert_eq!(plan.backoff_after(3), 8);
        assert_eq!(plan.backoff_after(4), 16);
        assert_eq!(plan.backoff_after(10), 16, "capped");
        assert!(plan.crash_due(0, 10));
        assert!(!plan.crash_due(0, 11));
        assert!(plan.crash_due(1, 9), "workers offset from each other");
        assert!(plan.should_shed(500, 1));
        assert!(!plan.should_shed(500, 4), "every 4th frame kept");
        assert!(!plan.should_shed(2_000, 1), "outside the window");
        assert!(FaultSpec::default().worker_plan().is_none());
    }

    #[test]
    fn spec_validation_catches_bad_inputs() {
        let bad_rate = FaultSpec {
            drop: DirectedRates {
                to_server: 1.5,
                from_server: 0.0,
            },
            ..FaultSpec::default()
        };
        assert_eq!(bad_rate.invalid_probability(), Some(("faults.drop", 1.5)));
        let bad_window = FaultSpec {
            outages: vec![Window {
                start_us: 10,
                end_us: 10,
            }],
            ..FaultSpec::default()
        };
        assert_eq!(bad_window.invalid_window(), Some((10, 10)));
        assert!(FaultSpec::default().invalid_probability().is_none());
        assert!(FaultSpec::default().invalid_window().is_none());
        assert!(!FaultSpec::default().link_active());
        assert!(lossy_spec().link_active());
    }
}
