//! Integration tests pinning the *shape* of every figure the paper
//! reports, at test scale. (EXPERIMENTS.md records the full-scale runs.)

use edonkey_ten_weeks::analysis::{find_peaks, fit_histogram, DatasetStats};
use edonkey_ten_weeks::core::{run_campaign, CampaignConfig, CampaignReport};
use edonkey_ten_weeks::netsim::capture::{CaptureBuffer, LossRecorder};
use edonkey_ten_weeks::netsim::clock::VirtualTime;
use edonkey_ten_weeks::netsim::traffic::RateModel;
use edonkey_ten_weeks::telemetry::Registry;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;

/// One shared medium-sized campaign for all figure tests (keeps the
/// suite fast while giving the distributions enough mass).
fn campaign() -> &'static (CampaignReport, DatasetStats) {
    static RUN: OnceLock<(CampaignReport, DatasetStats)> = OnceLock::new();
    RUN.get_or_init(|| {
        let mut config = CampaignConfig::tiny();
        config.population.n_clients = 1_000;
        config.catalog.n_files = 8_000;
        config.generator.duration_secs = 10 * 3_600;
        let mut stats = DatasetStats::new();
        let report = run_campaign(&config, |r| stats.observe(&r));
        (report, stats)
    })
}

#[test]
fn fig2_losses_are_rare_and_bursty() {
    // Full mechanism at reduced horizon: diurnal+burst traffic into a
    // finite ring.
    let horizon = 50_000u64;
    let model = RateModel::new(5_200.0, 0.45, 0.10, horizon, 10, 0xF162);
    let registry = Registry::new();
    let mut ring = CaptureBuffer::new(16_384, 40_000.0);
    ring.attach_telemetry(&registry);
    let mut recorder = LossRecorder::new();
    let mut rng = StdRng::seed_from_u64(2);
    let mut offered = 0u64;
    for s in 0..horizon {
        let t = VirtualTime::from_secs(s);
        let n = model.sample_arrivals(t, &mut rng);
        offered += n;
        ring.offer_batch(t, n);
        recorder.tick(s, &ring);
        ring.sample_telemetry();
    }
    assert_eq!(ring.captured() + ring.lost(), offered);
    // The fluid simulation and the telemetry layer keep one loss account:
    // ring.* metrics must agree exactly with the LossRecorder series.
    let snap = registry.snapshot();
    assert_eq!(snap.counter("ring.offered_total"), offered);
    assert_eq!(snap.counter("ring.captured_total"), ring.captured());
    assert_eq!(snap.counter("ring.lost_total"), recorder.total());
    assert_eq!(snap.counter("ring.lost_total"), ring.lost());
    let loss_seconds = recorder.losses_per_sec.len() as u64;
    // Loss is concentrated: far fewer loss-seconds than total seconds.
    assert!(
        loss_seconds < horizon / 100,
        "loss in {loss_seconds} seconds"
    );
    // Cumulative curve is a non-decreasing step function ending at the
    // total (the Fig. 2 inset).
    let cum = recorder.cumulative();
    assert!(cum.windows(2).all(|w| w[0].1 <= w[1].1));
    if let Some(&(_, last)) = cum.last() {
        assert_eq!(last, ring.lost());
    }
}

#[test]
fn fig3_first_two_bytes_pathology() {
    let (report, _) = campaign();
    let first = report.bucket_sizes_first_two.as_ref().unwrap();
    let alt = &report.bucket_sizes_alternative;
    // Forged IDs crowd buckets 0 and 256; legit MD4 IDs spread thin.
    let max_first = *first.iter().max().unwrap();
    let max_alt = *alt.iter().max().unwrap();
    assert!(
        first[0] + first[256] > (max_alt * 10),
        "pollution buckets: {} + {} vs alt max {max_alt}",
        first[0],
        first[256]
    );
    assert!(max_first > 20 * max_alt, "{max_first} vs {max_alt}");
    // Same distinct-ID total under both selectors.
    assert_eq!(first.iter().sum::<usize>(), alt.iter().sum::<usize>());
}

#[test]
fn fig4_providers_per_file_heavy_tailed() {
    let (_, stats) = campaign();
    let h = stats.providers_per_file();
    // Most files have very few providers; the top file has many.
    assert!(h.count(1) > 100, "files with 1 provider: {}", h.count(1));
    let max = h.max_value().unwrap();
    assert!(max > 50, "most-provided file has {max} providers");
    // Decay is power-law-like (the paper: "reasonably well fitted").
    let fit = fit_histogram(&h).expect("fit");
    assert!(fit.alpha > 0.8, "alpha {}", fit.alpha);
    assert!(fit.r2 > 0.75, "r2 {}", fit.r2);
}

#[test]
fn fig5_seekers_per_file_heavy_tailed() {
    let (_, stats) = campaign();
    let h = stats.seekers_per_file();
    assert!(h.count(1) > 100);
    assert!(h.max_value().unwrap() > 30);
    let fit = fit_histogram(&h).expect("fit");
    assert!(fit.alpha > 0.8, "alpha {}", fit.alpha);
    assert!(fit.r2 > 0.75, "r2 {}", fit.r2);
}

#[test]
fn fig6_share_limit_bump() {
    let (_, stats) = campaign();
    let h = stats.files_per_provider();
    // The software share limits put visible mass exactly at 1000/2000
    // (paper: "unexpected large number of clients providing a few
    // thousands of files").
    let at_limits = h.count(1_000) + h.count(2_000);
    assert!(at_limits >= 3, "only {at_limits} clients at the limits");
    // And the neighbourhood of the limit is much emptier than the limit
    // itself: it is a bump, not smooth decay.
    let neighbours = h.count(995) + h.count(1_005) + h.count(1_995) + h.count(2_005);
    assert!(
        at_limits > neighbours,
        "bump not visible: {at_limits} vs {neighbours}"
    );
}

#[test]
fn fig7_peak_at_52() {
    let (_, stats) = campaign();
    let h = stats.files_per_seeker();
    let at52 = h.count(52);
    assert!(at52 > 30, "only {at52} clients at 52");
    // Wire corruption and campaign-end truncation shift a minority of
    // capped clients to 51 (they lose one ask), so the immediate left
    // neighbour carries spillover — exactly as a real capture would.
    // The peak must still clearly top both neighbours…
    let around = h.count(51).max(h.count(53));
    assert!(
        at52 as f64 > 1.5 * around.max(1) as f64,
        "52-peak not prominent: {at52} vs neighbours {around}"
    );
    // …and tower over the local median (the detector's prominence,
    // ~70x at full scale per EXPERIMENTS.md).
    let window: Vec<u64> = (46..=58).filter(|&x| x != 52).map(|x| h.count(x)).collect();
    let mut sorted = window.clone();
    sorted.sort_unstable();
    let median = sorted[sorted.len() / 2].max(1);
    assert!(
        at52 > 4 * median,
        "52-peak vs window median: {at52} vs {median} ({window:?})"
    );
    // The generic peak detector finds it without being told where.
    let peaks = find_peaks(&h, 5, 3.0, 10);
    assert!(
        peaks.iter().any(|p| p.value == 52),
        "peak detector missed 52: {peaks:?}"
    );
}

#[test]
fn fig8_media_size_peaks() {
    let (_, stats) = campaign();
    let h = stats.size_histogram_kb();
    let cd = h.count(700 * 1024);
    assert!(cd > 20, "700 MB peak too small: {cd}");
    let gb = h.count(1024 * 1024);
    assert!(gb > 5, "1 GB peak too small: {gb}");
    // Peaks tower over their neighbourhood.
    let nearby = h.count(700 * 1024 + 3_000).max(h.count(700 * 1024 - 3_000));
    assert!(cd > 10 * nearby.max(1));
    // Small files dominate the count overall (the audio mass).
    let small: u64 = h
        .sorted_points()
        .iter()
        .filter(|&&(kb, _)| kb < 50_000)
        .map(|&(_, c)| c)
        .sum();
    assert!(
        small * 2 > h.total(),
        "small files are not the majority: {small}/{}",
        h.total()
    );
}

#[test]
fn t1_headline_ratios() {
    let (report, _) = campaign();
    let d = &report.pipeline.decoder;
    // Undecodable fraction in the right band (paper: 0.68 %).
    let f = d.undecoded_fraction();
    assert!((0.002..0.02).contains(&f), "undecodable fraction {f}");
    // Structural majority (paper: 78 %).
    assert!(d.structural_fraction_of_undecoded() > 0.5);
    // Distinct fileIDs exceed the legitimate catalog: forged IDs inflate
    // the count, as the paper's 275 M figure suggests.
    assert!(report.distinct_files > 8_000);
}
