//! Anonymisation canary: the runtime complement to the etwlint taint
//! pass. The static analysis proves no raw-id dataflow path reaches a
//! byte-emitting sink *within* the call graph it can see; channels,
//! thread hand-offs and byte-level formatting are over-approximated
//! away. This test closes that gap end to end: it drives the batched
//! capture pipeline with frames carrying distinctive sentinel raw
//! identifiers, then scans every externally visible byte surface —
//! dataset XML, checkpoint sidecars, flight-recorder dumps, and the
//! Prometheus exposition — for every plausible encoding of the
//! sentinels (dotted-quad, decimal, hex, raw bytes).

use edonkey_ten_weeks::anonymize::fileid::{BucketedArrays, ByteSelector};
use edonkey_ten_weeks::anonymize::scheme::PaperScheme;
use edonkey_ten_weeks::core::checkpoint::Checkpoint;
use edonkey_ten_weeks::core::pipeline::{
    run_capture_pipeline_batched, PipelineOptions, TailConfig, TimedFrame, TraceOptions,
};
use edonkey_ten_weeks::core::wirepath::{encapsulate, Direction};
use edonkey_ten_weeks::edonkey::ids::{ClientId, FileId};
use edonkey_ten_weeks::edonkey::messages::{Message, Source};
use edonkey_ten_weeks::netsim::clock::VirtualTime;
use edonkey_ten_weeks::sentinel::{
    assert_surface_clean, SENTINEL_FILE, SENTINEL_FILE_2, SENTINEL_IP_A, SENTINEL_IP_B,
};
use edonkey_ten_weeks::telemetry::Registry;
use edonkey_ten_weeks::xmlout::writer::DatasetWriter;
use std::fs;
use std::path::PathBuf;

fn frame(ts: u64, msg: Message, peer: ClientId, dir: Direction, ident: u16) -> TimedFrame {
    let frames = encapsulate(msg.encode(), peer, 4672, dir, ident, 1500);
    assert_eq!(frames.len(), 1, "canary messages must fit one frame");
    TimedFrame {
        ts: VirtualTime(ts),
        bytes: frames[0].to_bytes(),
    }
}

#[test]
fn no_sentinel_raw_id_reaches_any_output_surface() {
    let scratch = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("target")
        .join(format!("canary_{}", std::process::id()));
    let dump_dir = scratch.join("flight");
    fs::create_dir_all(&dump_dir).expect("scratch dir");

    let client_a = ClientId::from_ipv4(SENTINEL_IP_A);
    let client_b = ClientId::from_ipv4(SENTINEL_IP_B);
    let file_a = FileId(SENTINEL_FILE);
    let file_b = FileId(SENTINEL_FILE_2);

    // A stream exercising every id-carrying path: the record's peer,
    // embedded provider clientIDs, and fileIDs in both directions —
    // spread across checkpoint boundaries so sidecars and flight dumps
    // capture mid-stream state that includes the sentinels.
    let frames = vec![
        frame(
            1_000,
            Message::StatusRequest { challenge: 7 },
            client_a,
            Direction::ToServer,
            1,
        ),
        frame(
            2_000,
            Message::GetSources {
                file_ids: vec![file_a, file_b],
            },
            client_a,
            Direction::ToServer,
            2,
        ),
        frame(
            250_000,
            Message::FoundSources {
                file_id: file_a,
                sources: vec![
                    Source {
                        client_id: client_a,
                        port: 4662,
                    },
                    Source {
                        client_id: client_b,
                        port: 4662,
                    },
                ],
            },
            client_b,
            Direction::FromServer,
            3,
        ),
        frame(
            500_000,
            Message::GetSources {
                file_ids: vec![file_b],
            },
            client_b,
            Direction::ToServer,
            4,
        ),
        frame(
            750_000,
            Message::StatusRequest { challenge: 9 },
            client_b,
            Direction::ToServer,
            5,
        ),
    ];

    let registry = Registry::new();
    let opts = PipelineOptions {
        checkpoint_interval_us: 200_000,
        resume: None,
        faults: None,
        trace: Some(TraceOptions {
            ring_slots: 64,
            dump_dir: Some(dump_dir.clone()),
            max_dumps: 16,
        }),
    };
    let tail = TailConfig {
        batch_records: 2,
        batch_queue: 2,
        anon_shards: 1,
    };

    let seed = 0xCAFE;
    let mut sidecars = Vec::new();
    let (stats, _scheme, _fig3, writer) = run_capture_pipeline_batched(
        frames.into_iter(),
        2,
        PaperScheme::paper(24),
        Some(BucketedArrays::new(ByteSelector::FIRST_TWO)),
        &registry,
        &opts,
        tail,
        DatasetWriter::new(Vec::new()).expect("vec writer"),
        |cut, writer_bytes| {
            let cp = Checkpoint::from_pipeline(seed, cut, writer_bytes);
            let path = scratch.join(format!("cp_{}.etwckpt", sidecars.len()));
            cp.write_atomic(&path).expect("sidecar write");
            sidecars.push(path);
        },
    )
    .expect("pipeline");
    assert!(stats.records >= 5, "all five canary messages must decode");
    assert!(!sidecars.is_empty(), "checkpoint cuts must fire mid-stream");

    // Surface 1: the dataset bytes.
    let dataset = writer.finish().expect("vec write");
    assert_surface_clean("dataset xml", &dataset);

    // Surface 2: every checkpoint sidecar — and they must still decode,
    // so the masking is not hiding corruption.
    for path in &sidecars {
        let bytes = fs::read(path).expect("sidecar read");
        assert_surface_clean("checkpoint sidecar", &bytes);
        let cp = Checkpoint::read(path).expect("sidecar decodes");
        assert!(
            cp.client_order.contains(&client_a.raw()),
            "sealed sidecar must still round-trip the real order"
        );
    }

    // Surface 3: flight-recorder dumps (checkpoint cuts dump).
    let mut dumps = 0;
    for entry in fs::read_dir(&dump_dir).expect("dump dir") {
        let path = entry.expect("dir entry").path();
        let bytes = fs::read(&path).expect("dump read");
        assert_surface_clean("flight dump", &bytes);
        dumps += 1;
    }
    assert!(dumps > 0, "checkpoint cuts must produce flight dumps");

    // Surface 4: the Prometheus exposition.
    let metrics = registry.snapshot().render_prometheus();
    assert_surface_clean("/metrics", metrics.as_bytes());

    fs::remove_dir_all(&scratch).ok();
}
