//! The telemetry registry as a witness: every conservation law the
//! report structs satisfy must also hold in the metric counters, the
//! health series must be monotone in both clocks, and the rendered
//! artefacts (health table, Prometheus exposition) must agree with the
//! registry.

use edonkey_ten_weeks::core::{render_health_dat, run_campaign_observed, CampaignConfig};
use edonkey_ten_weeks::telemetry::Registry;

#[test]
fn telemetry_counters_obey_conservation_laws() {
    let registry = Registry::new();
    let mut config = CampaignConfig::tiny();
    config.health_interval_secs = 300;
    let report = run_campaign_observed(&config, &registry, |_| {});
    let snap = registry.snapshot();

    // Ring conservation: offered = captured + lost, counted by the
    // capture hook itself (not derived from the report).
    assert_eq!(
        snap.counter("ring.offered_total"),
        snap.counter("ring.captured_total") + snap.counter("ring.lost_total")
    );
    assert_eq!(snap.counter("ring.offered_total"), report.capture.offered);
    assert_eq!(snap.counter("ring.lost_total"), report.capture.lost);

    // Every captured frame is produced into the pipeline and seen by
    // exactly one decode worker. The decode channels tick per *batch*
    // (frames ride in Vecs since the front end was sharded), so their
    // counters are bounded by the frame count and agree with each
    // other — one out-batch per in-batch.
    let frames = snap.counter("stage.producer.frames_total");
    assert_eq!(frames, report.capture.captured);
    assert_eq!(snap.counter("stage.decode.frames_total"), frames);
    let in_batches = snap.counter("chan.decode_in.sent_total");
    let out_batches = snap.counter("chan.decode_out.sent_total");
    assert!(in_batches > 0 && in_batches <= frames);
    assert_eq!(out_batches, in_batches);

    // The decode service-time histogram saw one sample per batch.
    let service = snap
        .histogram("stage.decode.service_ns")
        .expect("decode histogram exists");
    assert_eq!(service.count, out_batches);
    assert!(service.sum > 0);
    assert!(service.min <= service.max);

    // Sink accounting: records partition into directions, and the
    // anonymiser was timed once per record.
    let records = snap.counter("stage.sink.records_total");
    assert_eq!(records, report.records);
    assert_eq!(
        snap.counter("stage.sink.to_server_total") + snap.counter("stage.sink.from_server_total"),
        records
    );
    assert_eq!(
        snap.histogram("stage.anonymize.service_ns")
            .expect("anonymize histogram exists")
            .count,
        records
    );

    // Application layer: the generator's own counters match the
    // capture-side stats.
    assert_eq!(
        snap.counter("campaign.queries_total"),
        report.capture.queries_generated
    );
    assert_eq!(
        snap.counter("campaign.answers_total"),
        report.capture.answers_generated
    );

    // All queues drained.
    assert_eq!(snap.gauge("chan.decode_in.depth"), 0);
    assert_eq!(snap.gauge("chan.decode_out.depth"), 0);
    assert_eq!(snap.gauge("stage.reorder.depth"), 0);
}

#[test]
fn health_series_is_monotone_and_consistent() {
    let registry = Registry::new();
    let mut config = CampaignConfig::tiny();
    config.health_interval_secs = 300;
    let report = run_campaign_observed(&config, &registry, |_| {});
    let health = &report.health;
    assert!(
        health.records.len() >= 4,
        "1800 virtual s at 300 s intervals must cut several records, got {}",
        health.records.len()
    );

    // Both clocks advance, and cumulative counters never regress.
    let monotone = [
        "ring.offered_total",
        "stage.producer.frames_total",
        "stage.decode.frames_total",
        "stage.sink.records_total",
        "campaign.queries_total",
    ];
    for pair in health.records.windows(2) {
        assert!(pair[1].virtual_us > pair[0].virtual_us);
        assert!(pair[1].wall_secs >= pair[0].wall_secs);
        for name in monotone {
            assert!(
                pair[1].snapshot.counter(name) >= pair[0].snapshot.counter(name),
                "{name} regressed between snapshots"
            );
        }
    }

    // Interval deltas sum back to the final cumulative value.
    for name in monotone {
        let total: u64 = health.counter_deltas(name).iter().sum();
        let last = health.records.last().unwrap().snapshot.counter(name);
        assert_eq!(total, last, "{name} deltas must telescope");
    }

    // The final record agrees with the report's own accounting (it is
    // cut after the sink drains).
    let last = &health.records.last().unwrap().snapshot;
    assert_eq!(last.counter("stage.sink.records_total"), report.records);
    assert_eq!(last.counter("ring.offered_total"), report.capture.offered);
}

#[test]
fn rendered_artefacts_match_the_registry() {
    let registry = Registry::new();
    let mut config = CampaignConfig::tiny();
    config.health_interval_secs = 600;
    let report = run_campaign_observed(&config, &registry, |_| {});

    // The .dat table has one header plus one row per health record,
    // each row leading with the record's virtual seconds.
    let dat = render_health_dat(&report.health);
    let lines: Vec<&str> = dat.lines().collect();
    assert!(lines[0].starts_with('#'));
    assert_eq!(lines.len(), 1 + report.health.records.len());
    for (line, rec) in lines[1..].iter().zip(&report.health.records) {
        let first = line.split_whitespace().next().unwrap();
        assert_eq!(first.parse::<u64>().unwrap(), rec.virtual_secs());
    }

    // The Prometheus exposition carries the ring counters verbatim.
    let prom = registry.snapshot().render_prometheus();
    assert!(prom.contains(&format!(
        "etw_ring_offered_total {}",
        report.capture.offered
    )));
    assert!(prom.contains(&format!("etw_stage_sink_records_total {}", report.records)));
    assert!(prom.contains("# TYPE etw_stage_decode_service_ns histogram"));
}

#[test]
fn disabled_registry_leaves_no_trace() {
    // A campaign run against the disabled registry must behave exactly
    // like the unobserved entry point: no health, empty snapshot.
    let registry = Registry::disabled();
    let report = run_campaign_observed(&CampaignConfig::tiny(), &registry, |_| {});
    assert!(report.health.is_empty());
    let snap = registry.snapshot();
    assert_eq!(snap.counter("ring.offered_total"), 0);
    assert_eq!(snap.render_prometheus(), "");
    assert!(report.records > 0, "the campaign itself still runs");
}
