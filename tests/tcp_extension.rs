//! The TCP measurement extension, end to end — what the paper's
//! conclusion proposes and its §2.2 explains it could not do:
//! eDonkey-over-TCP traffic is segmentised, (lossily) captured, flows
//! are reconstructed, and the message stream is decoded — quantifying
//! how capture loss degrades TCP decoding compared to UDP.

use edonkey_ten_weeks::edonkey::ids::{ClientId, FileId};
use edonkey_ten_weeks::edonkey::messages::{FileEntry, Message};
use edonkey_ten_weeks::edonkey::stream::{encode_stream, StreamDecoder};
use edonkey_ten_weeks::edonkey::tags::{special, Tag, TagList};
use edonkey_ten_weeks::edonkey::SearchExpr;
use edonkey_ten_weeks::netsim::flows::{FlowOutcome, FlowReassembler};
use edonkey_ten_weeks::netsim::tcp::segmentize;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn client_session(client: u32, n_msgs: usize) -> Vec<Message> {
    (0..n_msgs)
        .map(|i| match i % 3 {
            0 => Message::SearchRequest {
                expr: SearchExpr::keyword(format!("kw{}", i % 7)),
            },
            1 => Message::GetSources {
                file_ids: vec![FileId::of_identity((client as u64) << 16 | i as u64)],
            },
            _ => Message::OfferFiles {
                files: vec![FileEntry {
                    file_id: FileId::of_identity(i as u64),
                    client_id: ClientId(client),
                    port: 4662,
                    tags: TagList(vec![
                        Tag::str(special::FILENAME, format!("file {i} from {client}.mp3")),
                        Tag::u32(special::FILESIZE, 3_000_000 + i as u32),
                    ]),
                }],
            },
        })
        .collect()
}

/// Runs `n_flows` TCP sessions through segmentation → capture (with the
/// given segment loss rate) → flow reassembly → stream decoding, and
/// returns (messages sent, messages recovered).
fn tcp_pipeline(n_flows: u32, msgs_per_flow: usize, loss: f64, seed: u64) -> (u64, u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut reasm = FlowReassembler::new();
    let mut sent = 0u64;
    let mut recovered = 0u64;
    for f in 0..n_flows {
        let msgs = client_session(f + 1, msgs_per_flow);
        sent += msgs.len() as u64;
        let stream = encode_stream(&msgs);
        let segs = segmentize(
            0x0a00_0000 + f,
            0x5216_0a01,
            40_000 + (f % 20_000) as u16,
            4661,
            f.wrapping_mul(2_654_435_761),
            &stream,
            1460,
        );
        for seg in &segs {
            if rng.gen_bool(loss) {
                continue; // capture dropped this segment
            }
            match reasm.push(seg) {
                Some(FlowOutcome::Complete(bytes)) => {
                    let mut d = StreamDecoder::new();
                    recovered += d.push(&bytes).len() as u64;
                }
                Some(FlowOutcome::Incomplete { .. }) => {
                    // Paper-faithful: a flow with holes is not decoded
                    // (offsets after the hole are known, but the paper's
                    // point is that naive reconstruction fails; the
                    // resynchronising StreamDecoder could do partial
                    // recovery — measured separately below).
                }
                None => {}
            }
        }
    }
    (sent, recovered)
}

#[test]
fn lossless_tcp_decodes_everything() {
    let (sent, recovered) = tcp_pipeline(40, 30, 0.0, 1);
    assert_eq!(sent, recovered);
}

#[test]
fn small_loss_devastates_naive_tcp_reconstruction() {
    // The paper's §2.2 claim, quantified: with 1 % segment loss, most
    // flows have at least one hole, so naive whole-flow decoding
    // recovers only a minority of messages — while the same loss rate
    // on UDP would cost ≈1 % of messages.
    // Long flows, as real eDonkey TCP sessions are: ~1000 messages ≈
    // 50 segments each.
    let (sent, recovered) = tcp_pipeline(30, 1_000, 0.02, 2);
    let fraction = recovered as f64 / sent as f64;
    assert!(
        fraction < 0.7,
        "naive TCP decoding recovered {fraction} of messages despite holes"
    );
    // UDP equivalent at the same loss: each message independent → ~98 %.
    assert!(fraction < 0.98 - 0.1);
}

#[test]
fn resynchronising_decoder_recovers_partial_flows() {
    // The extension beyond the paper: decode *incomplete* flows with the
    // resynchronising stream decoder, recovering the frames after each
    // hole. It must beat naive whole-flow decoding under loss.
    let mut rng = StdRng::seed_from_u64(3);
    let mut reasm = FlowReassembler::new();
    let mut sent = 0u64;
    let mut naive = 0u64;
    let mut resync = 0u64;
    for f in 0..30u32 {
        let msgs = client_session(f + 1, 1_000);
        sent += msgs.len() as u64;
        let stream = encode_stream(&msgs);
        let segs = segmentize(f, 2, 1000, 4661, f * 7, &stream, 1460);
        for seg in &segs {
            if rng.gen_bool(0.02) {
                continue;
            }
            match reasm.push(seg) {
                Some(FlowOutcome::Complete(bytes)) => {
                    let mut d = StreamDecoder::new();
                    let n = d.push(&bytes).len() as u64;
                    naive += n;
                    resync += n;
                }
                Some(FlowOutcome::Incomplete { pieces, .. }) => {
                    // The reassembler hands back what it salvaged; the
                    // resynchronising decoder recovers the frames between
                    // the holes.
                    let mut d = StreamDecoder::new();
                    for (_, piece) in &pieces {
                        resync += d.push(piece).len() as u64;
                    }
                }
                None => {}
            }
        }
    }
    assert!(
        resync > naive,
        "resync {resync} should beat naive {naive} (sent {sent})"
    );
    // And recover the large majority of messages at 2 % segment loss
    // (each lost segment costs only the messages it carried plus the
    // one straddling its boundary).
    assert!(
        resync as f64 > 0.8 * sent as f64,
        "resync recovered only {resync}/{sent}"
    );
}

#[test]
fn tcp_telemetry_surfaces_reconstruction_health() {
    // The lossy TCP pipeline with live counters attached: `tcp.flows.*`
    // and `tcp.stream.*` must land in one shared registry and agree
    // with each other — the monitor-surface view of §2.2's problem.
    let registry = edonkey_ten_weeks::telemetry::Registry::new();
    let mut rng = StdRng::seed_from_u64(11);
    let mut reasm = FlowReassembler::new();
    reasm.attach_telemetry(&registry);
    let mut decoder = StreamDecoder::new();
    decoder.attach_telemetry(&registry);
    for f in 0..20u32 {
        let msgs = client_session(f + 1, 400);
        let stream = encode_stream(&msgs);
        let segs = segmentize(f, 2, 1000, 4661, f * 13, &stream, 1460);
        for seg in &segs {
            if rng.gen_bool(0.02) {
                continue;
            }
            match reasm.push(seg) {
                Some(FlowOutcome::Complete(bytes)) => {
                    decoder.push(&bytes);
                }
                Some(FlowOutcome::Incomplete { pieces, .. }) => {
                    for (_, piece) in &pieces {
                        decoder.push(piece);
                    }
                }
                None => {}
            }
        }
    }
    let snap = registry.snapshot();
    // Flow-level counters agree with the reassembler's own stats.
    let fs = reasm.stats();
    assert_eq!(snap.counter("tcp.flows.syns_total"), fs.syns);
    assert_eq!(
        snap.counter("tcp.flows.data_segments_total"),
        fs.data_segments
    );
    assert_eq!(
        snap.counter("tcp.flows.complete_total") + snap.counter("tcp.flows.incomplete_total"),
        fs.complete_flows + fs.incomplete_flows
    );
    assert!(
        snap.counter("tcp.flows.incomplete_total") > 0,
        "loss must show"
    );
    // Stream-level counters agree with the decoder and show damage.
    let ss = decoder.stats();
    assert_eq!(snap.counter("tcp.stream.decoded_total"), ss.decoded);
    assert_eq!(
        snap.counter("tcp.stream.skipped_bytes_total"),
        ss.skipped_bytes
    );
    assert!(ss.decoded > 0 && ss.skipped_bytes > 0);
}

#[test]
fn syn_pressure_tracks_connection_state() {
    // The paper's footnote: "the server receives about 5000 syn packets
    // per minute" — connection tracking state is the cost. Open many
    // flows without finishing them and observe the tracked-state growth.
    let mut reasm = FlowReassembler::new();
    for f in 0..5_000u32 {
        let segs = segmentize(f, 2, (f % 60_000) as u16, 4661, f, b"x", 1460);
        reasm.push(&segs[0]); // SYN only: connection opened, never closed
    }
    assert_eq!(reasm.stats().syns, 5_000);
    assert_eq!(reasm.tracked_flows(), 5_000);
}
