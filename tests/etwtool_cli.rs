//! End-to-end tests of the `etwtool` dataset CLI, driving the compiled
//! binary the way a dataset consumer would.

use edonkey_ten_weeks::core::{run_campaign, CampaignConfig};
use edonkey_ten_weeks::xmlout::writer::DatasetWriter;
use std::path::{Path, PathBuf};
use std::process::Command;

fn etwtool() -> Command {
    Command::new(env!("CARGO_BIN_EXE_etwtool"))
}

/// Builds a small dataset file once per test-process.
fn dataset_path(dir: &Path) -> PathBuf {
    let path = dir.join("dataset.xml");
    let file = std::fs::File::create(&path).unwrap();
    let mut w = DatasetWriter::new(std::io::BufWriter::new(file)).unwrap();
    run_campaign(&CampaignConfig::tiny(), |r| w.write_record(&r).unwrap());
    w.finish().unwrap();
    path
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("etwtool-test-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn validate_stats_head() {
    let dir = tempdir("vsh");
    let ds = dataset_path(&dir);

    let out = etwtool().args(["validate"]).arg(&ds).output().unwrap();
    assert!(out.status.success(), "{:?}", out);
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("OK:"), "{text}");
    assert!(text.contains("etw-1.0"));

    let out = etwtool().args(["stats"]).arg(&ds).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("records"), "{text}");
    assert!(text.contains("announcements"));

    let out = etwtool().args(["head"]).arg(&ds).arg("3").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert_eq!(text.lines().count(), 3, "{text}");
    assert!(text.starts_with("#0 AnonRecord"));
}

#[test]
fn compress_decompress_cycle() {
    let dir = tempdir("cdc");
    let ds = dataset_path(&dir);
    let z = dir.join("ds.etwz");
    let back = dir.join("back.xml");

    let out = etwtool()
        .args(["compress"])
        .arg(&ds)
        .arg(&z)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    assert!(z.exists());
    // Compressed file is much smaller.
    let orig = std::fs::metadata(&ds).unwrap().len();
    let packed = std::fs::metadata(&z).unwrap().len();
    assert!(packed * 3 < orig, "{packed} vs {orig}");

    // Tools read .etwz transparently.
    let out = etwtool().args(["validate"]).arg(&z).output().unwrap();
    assert!(out.status.success(), "{out:?}");

    let out = etwtool()
        .args(["decompress"])
        .arg(&z)
        .arg(&back)
        .output()
        .unwrap();
    assert!(out.status.success());
    assert_eq!(
        std::fs::read(&ds).unwrap(),
        std::fs::read(&back).unwrap(),
        "decompressed bytes differ"
    );
}

#[test]
fn split_merge_round_trip() {
    let dir = tempdir("smr");
    let ds = dataset_path(&dir);

    let out = etwtool()
        .args(["split"])
        .arg(&ds)
        .arg("4")
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let parts: Vec<PathBuf> = (0..4)
        .map(|k| dir.join(format!("dataset.part{k}.xml")))
        .collect();
    for p in &parts {
        assert!(p.exists(), "{p:?} missing");
    }

    let merged = dir.join("merged.xml");
    let mut cmd = etwtool();
    cmd.args(["merge"]).arg(&merged);
    for p in &parts {
        cmd.arg(p);
    }
    let out = cmd.output().unwrap();
    assert!(out.status.success(), "{out:?}");

    // Merged dataset validates and has the same record count.
    let out = etwtool().args(["validate"]).arg(&merged).output().unwrap();
    let text = String::from_utf8(out.stdout).unwrap();
    let out2 = etwtool().args(["validate"]).arg(&ds).output().unwrap();
    let text2 = String::from_utf8(out2.stdout).unwrap();
    assert_eq!(text, text2);

    // Merging out of order is rejected (timestamps regress).
    let mut cmd = etwtool();
    cmd.args(["merge"]).arg(dir.join("bad.xml"));
    cmd.arg(&parts[2]).arg(&parts[0]);
    let out = cmd.output().unwrap();
    assert!(!out.status.success(), "out-of-order merge accepted");
}

#[test]
fn bad_usage_fails_cleanly() {
    let out = etwtool().output().unwrap();
    assert!(!out.status.success());
    let out = etwtool()
        .args(["validate", "/nonexistent.xml"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let out = etwtool().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn spec_prints_grammar() {
    let out = etwtool().args(["spec"]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("etw-1.0 dataset specification"));
    assert!(text.contains("<dialog"));
}
