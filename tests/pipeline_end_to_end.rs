//! End-to-end integration: generator → server → wire → lossy capture →
//! parallel decode → anonymise → XML → parse back → analyses. This is
//! the paper's Fig. 1 pipeline exercised as one system.

use edonkey_ten_weeks::analysis::DatasetStats;
use edonkey_ten_weeks::core::{run_campaign, CampaignConfig};
use edonkey_ten_weeks::xmlout::reader::DatasetReader;
use edonkey_ten_weeks::xmlout::schema::validate;
use edonkey_ten_weeks::xmlout::writer::DatasetWriter;

fn tiny() -> CampaignConfig {
    CampaignConfig::tiny()
}

#[test]
fn campaign_to_xml_to_analysis_round_trip() {
    // Stream the campaign into XML and into an in-memory accumulator at
    // the same time.
    let mut writer = DatasetWriter::new(Vec::new()).unwrap();
    let mut live_stats = DatasetStats::new();
    let report = run_campaign(&tiny(), |record| {
        live_stats.observe(&record);
        writer.write_record(&record).unwrap();
    });
    let xml = String::from_utf8(writer.finish().unwrap()).unwrap();

    // The document validates against the formal specification.
    let validation = validate(&xml).expect("dataset validates");
    assert_eq!(validation.records, report.records);

    // Re-reading the XML gives byte-identical analyses: the released
    // dataset carries everything the paper's §3 needs.
    let mut replay_stats = DatasetStats::new();
    for record in DatasetReader::new(&xml) {
        replay_stats.observe(&record.expect("record parses"));
    }
    assert_eq!(replay_stats.records(), live_stats.records());
    assert_eq!(
        replay_stats.providers_per_file().sorted_points(),
        live_stats.providers_per_file().sorted_points()
    );
    assert_eq!(
        replay_stats.files_per_seeker().sorted_points(),
        live_stats.files_per_seeker().sorted_points()
    );
    assert_eq!(
        replay_stats.size_histogram_kb().sorted_points(),
        live_stats.size_histogram_kb().sorted_points()
    );
}

#[test]
fn capture_accounting_is_conserved() {
    let report = run_campaign(&tiny(), |_| {});
    let c = &report.capture;
    let p = &report.pipeline;
    // Frames: offered = captured + lost, and the pipeline consumed
    // exactly the captured ones.
    assert_eq!(c.offered, c.captured + c.lost);
    assert_eq!(p.frames, c.captured);
    // Every frame is classified exactly once at the wire layer:
    // fragments still pending + datagram completions + non-UDP +
    // other-port + parse errors account for all frames.
    let datagram_frames = p.reassembly.whole + p.reassembly.fragments;
    assert_eq!(
        datagram_frames + p.not_udp + p.parse_errors + p.other_port,
        p.frames,
        "wire-layer classification must partition the frames"
    );
    // Every recovered datagram went through the two-step decoder.
    assert_eq!(p.decoder.handled, p.udp_datagrams);
    // Decoder outcomes partition handled datagrams.
    let d = &p.decoder;
    assert_eq!(
        d.decoded + d.structurally_invalid + d.decode_failed + d.not_edonkey,
        d.handled
    );
    // Records = decoded messages.
    assert_eq!(report.records, d.decoded);
}

#[test]
fn anonymised_ids_form_dense_prefixes() {
    // The paper's usability claim: anonymised clientIDs are integers
    // 0..N-1 assigned by order of first appearance. Client values appear
    // both as the record's `peer` and embedded in messages (sources,
    // result providers, server IPs) — density holds over the union, in
    // the anonymiser's traversal order (peer first, then message ids).
    use edonkey_ten_weeks::anonymize::scheme::AnonMessage;
    let mut first_sightings = Vec::new();
    let mut seen_clients = std::collections::HashSet::new();
    let mut seen_files = std::collections::HashSet::new();
    let report = run_campaign(&tiny(), |record| {
        let mut see = |c: u32| {
            if seen_clients.insert(c) {
                first_sightings.push(c);
            }
        };
        see(record.peer);
        match &record.msg {
            AnonMessage::ServerList { servers } => {
                servers.iter().for_each(|&(ip, _)| see(ip));
            }
            AnonMessage::FoundSources { sources, .. } => {
                sources.iter().for_each(|&(c, _)| see(c));
            }
            AnonMessage::SearchResponse { results } => {
                results.iter().for_each(|e| see(e.client));
            }
            AnonMessage::OfferFiles { files } => {
                files.iter().for_each(|e| see(e.client));
            }
            AnonMessage::GetSources { files } => {
                seen_files.extend(files.iter().copied());
            }
            _ => {}
        }
    });
    // First sightings appear in increasing order 0, 1, 2, ...
    for (i, &p) in first_sightings.iter().enumerate() {
        assert_eq!(p as usize, i, "client ids must appear in dense order");
    }
    assert_eq!(seen_clients.len() as u32, report.distinct_clients);
    // File ids referenced in asks are all below the distinct-file count.
    assert!(seen_files.iter().all(|&f| f < report.distinct_files));
}

#[test]
fn corruption_accounting_matches_decoder_view() {
    let mut config = tiny();
    config.p_corrupt = 0.05; // exaggerate for clear statistics
    let report = run_campaign(&config, |_| {});
    let d = &report.pipeline.decoder;
    let undecodable = d.structurally_invalid + d.decode_failed;
    // Every corrupted message that survived the (lossless here) capture
    // must be rejected; noise adds NotEdonkey but never decodes.
    assert_eq!(undecodable, report.capture.corrupted);
    let frac = d.undecoded_fraction();
    assert!(
        (0.03..0.08).contains(&frac),
        "undecodable fraction {frac} vs configured 0.05"
    );
    // Structural share close to the configured 78 %.
    let structural = d.structural_fraction_of_undecoded();
    assert!(
        (0.6..0.95).contains(&structural),
        "structural share {structural}"
    );
}

#[test]
fn zero_corruption_decodes_everything_edonkey() {
    let mut config = tiny();
    config.p_corrupt = 0.0;
    config.p_udp_noise = 0.0;
    let report = run_campaign(&config, |_| {});
    let d = &report.pipeline.decoder;
    assert_eq!(d.structurally_invalid, 0);
    assert_eq!(d.decode_failed, 0);
    assert_eq!(d.not_edonkey, 0);
    assert_eq!(d.decoded, d.handled);
}
