//! Crash-resilience property tests: a campaign killed at a random
//! virtual time under random fault seeds, resumed from its last
//! checkpoint, must reproduce the uninterrupted run — record for record
//! at the API level and **byte for byte** at the dataset-file level.
//!
//! This is the acceptance test of the fault-injection layer: the
//! checkpoint protocol (anonymiser appearance orders + record count +
//! writer offset), the deterministic replay (seeded faults included)
//! and the writer's truncated-tail recovery have to agree, for *every*
//! seed, not just the soak preset's.

use edonkey_ten_weeks::core::campaign::{
    try_resume_campaign_observed, try_resume_campaign_to_writer, try_run_campaign_checkpointed,
    try_run_campaign_to_writer,
};
use edonkey_ten_weeks::core::checkpoint::Checkpoint;
use edonkey_ten_weeks::core::config::CampaignConfig;
use edonkey_ten_weeks::core::pipeline::TailConfig;
use edonkey_ten_weeks::faults::Window;
use edonkey_ten_weeks::telemetry::Registry;
use edonkey_ten_weeks::xmlout::writer::DatasetWriter;
use proptest::prelude::*;
use std::cell::RefCell;

/// A faster variant of the soak preset: same fault classes all active,
/// shorter campaign, windows moved inside the shortened run.
fn small_faulty(seed: u64) -> CampaignConfig {
    let mut config = CampaignConfig::tiny_faulty();
    config.seed = seed;
    config.faults.seed = seed ^ 0xFA17;
    config.generator.duration_secs = 600;
    config.checkpoint_interval_secs = 120;
    config.faults.outages = vec![Window {
        start_us: 200_000_000,
        end_us: 210_000_000,
    }];
    config.faults.overload = vec![
        Window {
            start_us: 100_000_000,
            end_us: 150_000_000,
        },
        Window {
            start_us: 400_000_000,
            end_us: 450_000_000,
        },
    ];
    // A third of the frames → a third of the crash schedule.
    config.faults.worker_crash_every = 1_500;
    config
}

/// Runs the campaign to completion, streaming records through a
/// [`DatasetWriter`] and stamping `writer_bytes` into each checkpoint
/// as `repro soak` does. Returns the finished document bytes, the
/// checkpoints, and the record count.
fn run_writing(config: &CampaignConfig) -> (Vec<u8>, Vec<Checkpoint>, u64) {
    let writer = RefCell::new(DatasetWriter::new(Vec::new()).expect("vec write"));
    let cps = RefCell::new(Vec::new());
    let report = try_run_campaign_checkpointed(
        config,
        &Registry::disabled(),
        |r| writer.borrow_mut().write_record(&r).expect("vec write"),
        |mut cp| {
            cp.writer_bytes = writer.borrow().bytes_written();
            cps.borrow_mut().push(cp);
        },
    )
    .expect("valid config");
    let bytes = writer.into_inner().finish().expect("vec write");
    (bytes, cps.into_inner(), report.records)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4 })]

    /// Kill the campaign at a random point (a random checkpoint plus a
    /// torn partial tail), recover, resume: the rebuilt dataset must be
    /// byte-identical to the uninterrupted run's, and the checkpoints
    /// cut after the kill must be the very same cuts.
    #[test]
    fn killed_campaign_resumes_byte_identical(
        seed in 0u64..1_000,
        cp_frac in 0.0f64..1.0,
        tear_frac in 0.0f64..1.0,
    ) {
        let config = small_faulty(seed);
        let (full, cps, records) = run_writing(&config);
        prop_assert!(cps.len() >= 3, "only {} checkpoints", cps.len());
        prop_assert!(records > 100, "only {records} records");

        // The kill: the machine dies somewhere after checkpoint `cp`,
        // leaving the dataset file torn at an arbitrary byte.
        let cp = &cps[(cp_frac * (cps.len() - 1) as f64) as usize];
        let tear_at = cp.writer_bytes as usize
            + (tear_frac * (full.len() - cp.writer_bytes as usize) as f64) as usize;
        let mut torn = full[..tear_at].to_vec();

        // Recovery: truncate to the checkpoint's writer offset and
        // resume both the writer and the campaign from the checkpoint.
        torn.truncate(cp.writer_bytes as usize);
        let writer = RefCell::new(DatasetWriter::resume(torn, cp.records, cp.writer_bytes));
        let tail_cps = RefCell::new(Vec::new());
        let resumed = try_resume_campaign_observed(
            &config,
            &Registry::disabled(),
            cp,
            |r| writer.borrow_mut().write_record(&r).expect("vec write"),
            |mut c| {
                c.writer_bytes = writer.borrow().bytes_written();
                tail_cps.borrow_mut().push(c);
            },
        )
        .expect("resume accepted");
        let rebuilt = writer.into_inner().finish().expect("vec write");

        prop_assert_eq!(resumed.records + cp.records, records);
        prop_assert_eq!(rebuilt.len(), full.len());
        prop_assert!(rebuilt == full, "rebuilt dataset diverges from the full run");
        // Post-kill checkpoints replay identically, writer offsets
        // included — so a second kill during the resumed run recovers
        // the same way.
        let expected: Vec<&Checkpoint> =
            cps.iter().filter(|c| c.records > cp.records).collect();
        let tail_cps = tail_cps.into_inner();
        prop_assert_eq!(expected.len(), tail_cps.len());
        for (a, b) in expected.iter().zip(&tail_cps) {
            prop_assert_eq!(*a, b);
        }
    }

    /// The batched tail under kill-anywhere: a campaign run through the
    /// overlapped anonymise→format→write stage (random batch size,
    /// random anonymiser shard count in {1, 2, 4, 8}, random *source*
    /// shard count in {1, 2, 4, 8}) must produce the *same bytes and
    /// the same checkpoints* as the serial writer, and a kill at a
    /// random checkpoint resumed through the batched tail must rebuild
    /// the serial run's dataset byte for byte. This is the
    /// cross-implementation guarantee that lets `.etwckpt` files written
    /// by any tail at any shard count resume through any other — now
    /// including the sharded front end: the resume replays generator
    /// workers and the virtual-time merge from the checkpoint exactly.
    #[test]
    fn killed_batched_campaign_resumes_byte_identical(
        seed in 0u64..1_000,
        batch_records in 1usize..64,
        cp_frac in 0.0f64..1.0,
        shard_pow in 0u32..4,
        src_pow in 0u32..4,
    ) {
        let mut config = small_faulty(seed);
        config.source.source_shards = 1 << src_pow;
        // The serial run is the reference for bytes and checkpoints.
        let (full, cps, records) = run_writing(&config);
        prop_assert!(cps.len() >= 3, "only {} checkpoints", cps.len());
        let tail = TailConfig {
            batch_records,
            batch_queue: 2,
            anon_shards: 1 << shard_pow,
        };

        // Uninterrupted batched run: byte- and checkpoint-identical.
        let mut batched_cps = Vec::new();
        let (report, writer) = try_run_campaign_to_writer(
            &config,
            &Registry::disabled(),
            tail,
            DatasetWriter::new(Vec::new()).expect("vec write"),
            |cp| batched_cps.push(cp),
        )
        .expect("valid config");
        let batched_full = writer.finish().expect("vec write");
        prop_assert_eq!(report.records, records);
        prop_assert!(batched_full == full, "batched tail diverges from serial writer");
        prop_assert_eq!(&batched_cps, &cps);

        // Kill after a random checkpoint; resume through the batched
        // tail from the serial run's sidecar.
        let cp = &cps[(cp_frac * (cps.len() - 1) as f64) as usize];
        let torn = full[..cp.writer_bytes as usize].to_vec();
        let mut tail_cps = Vec::new();
        let (resumed, writer) = try_resume_campaign_to_writer(
            &config,
            &Registry::disabled(),
            cp,
            tail,
            DatasetWriter::resume(torn, cp.records, cp.writer_bytes),
            |c| tail_cps.push(c),
        )
        .expect("resume accepted");
        let rebuilt = writer.finish().expect("vec write");

        prop_assert_eq!(resumed.records + cp.records, records);
        prop_assert!(rebuilt == full, "batched resume diverges from the full run");
        let expected: Vec<&Checkpoint> =
            cps.iter().filter(|c| c.records > cp.records).collect();
        prop_assert_eq!(expected.len(), tail_cps.len());
        for (a, b) in expected.iter().zip(&tail_cps) {
            prop_assert_eq!(*a, b);
        }
    }

    /// The checkpoint sidecar round-trips through its text encoding, so
    /// what `repro soak` persists is what resume reads back. Freshly
    /// encoded sidecars speak version 3 (sealed id payloads).
    #[test]
    fn checkpoint_sidecar_roundtrips(seed in 0u64..1_000) {
        let config = small_faulty(seed);
        let (_, cps, _) = run_writing(&config);
        for cp in &cps {
            let text = cp.encode();
            prop_assert!(text.starts_with("etwckpt 3\n"));
            let decoded = Checkpoint::decode(&text).expect("roundtrip");
            prop_assert_eq!(cp, &decoded);
        }
    }

    /// A v1 sidecar — what a PR 4-era run left on disk — restores
    /// through the *sharded* anonymiser byte-identically: upgrading the
    /// binary mid-campaign loses nothing.
    #[test]
    fn v1_sidecar_resumes_through_sharded_tail(
        seed in 0u64..1_000,
        cp_frac in 0.0f64..1.0,
    ) {
        let config = small_faulty(seed);
        let (full, cps, records) = run_writing(&config);
        prop_assert!(cps.len() >= 3, "only {} checkpoints", cps.len());
        let cp = &cps[(cp_frac * (cps.len() - 1) as f64) as usize];

        // Round-trip through the legacy flat text: the decoder must
        // treat the old file exactly like the state it encoded.
        let decoded = Checkpoint::decode(&encode_v1(cp)).expect("v1 decodes");
        prop_assert_eq!(cp, &decoded);

        let torn = full[..cp.writer_bytes as usize].to_vec();
        let (resumed, writer) = try_resume_campaign_to_writer(
            &config,
            &Registry::disabled(),
            &decoded,
            TailConfig { batch_records: 7, batch_queue: 2, anon_shards: 4 },
            DatasetWriter::resume(torn, decoded.records, decoded.writer_bytes),
            |_| {},
        )
        .expect("resume accepted");
        let rebuilt = writer.finish().expect("vec write");
        prop_assert_eq!(resumed.records + cp.records, records);
        prop_assert!(rebuilt == full, "v1-resumed sharded dataset diverges");
    }
}

/// Renders a checkpoint in the legacy v1 sidecar layout (flat id lists,
/// global order implicit in line position) — a faithful copy of what the
/// PR 4 encoder produced, kept here as the compatibility fixture.
fn encode_v1(cp: &Checkpoint) -> String {
    fn push_hex(out: &mut String, id: &edonkey_ten_weeks::edonkey::ids::FileId) {
        for i in 0..16 {
            out.push_str(&format!("{:02x}", id.byte(i)));
        }
        out.push('\n');
    }
    let mut out = String::new();
    out.push_str("etwckpt 1\n");
    out.push_str(&format!("seed {}\n", cp.seed));
    out.push_str(&format!("virtual_us {}\n", cp.virtual_us));
    out.push_str(&format!("next_checkpoint_us {}\n", cp.next_checkpoint_us));
    out.push_str(&format!("records {}\n", cp.records));
    out.push_str(&format!("writer_bytes {}\n", cp.writer_bytes));
    out.push_str(&format!("clients {}\n", cp.client_order.len()));
    for id in &cp.client_order {
        out.push_str(&format!("{id}\n"));
    }
    out.push_str(&format!("files {}\n", cp.file_order.len()));
    for id in &cp.file_order {
        push_hex(&mut out, id);
    }
    match &cp.fig3_order {
        None => out.push_str("fig3 -\n"),
        Some(order) => {
            out.push_str(&format!("fig3 {}\n", order.len()));
            for id in order {
                push_hex(&mut out, id);
            }
        }
    }
    out.push_str("end\n");
    out
}
