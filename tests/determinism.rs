//! Reproducibility guarantees: a campaign is a pure function of its
//! configuration, down to the dataset bytes — regardless of pipeline
//! parallelism.

use edonkey_ten_weeks::core::{run_campaign, CampaignConfig};
use edonkey_ten_weeks::xmlout::writer::DatasetWriter;
use proptest::prelude::*;

fn dataset_bytes(config: &CampaignConfig) -> Vec<u8> {
    let mut writer = DatasetWriter::new(Vec::new()).unwrap();
    run_campaign(config, |record| writer.write_record(&record).unwrap());
    writer.finish().unwrap()
}

#[test]
fn same_seed_same_bytes() {
    let config = CampaignConfig::tiny();
    let a = dataset_bytes(&config);
    let b = dataset_bytes(&config);
    assert_eq!(a, b, "same configuration must give identical datasets");
}

#[test]
fn worker_count_does_not_change_output() {
    let mut one = CampaignConfig::tiny();
    one.decode_workers = 1;
    let mut many = CampaignConfig::tiny();
    many.decode_workers = 8;
    assert_eq!(
        dataset_bytes(&one),
        dataset_bytes(&many),
        "parallel decode must not leak into the dataset"
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4 })]

    /// The sharded traffic source is invisible in the dataset: for a
    /// random seed and any shard count in {2, 4, 8}, the generator
    /// workers + virtual-time merger + per-shard directory indexes
    /// produce byte-identical output to the single-shard source. This
    /// is the PR 10 determinism argument (striped sequence numbers,
    /// merge in global virtual-time order) as a differential property.
    #[test]
    fn source_shards_do_not_change_output(
        seed in 0u64..1_000,
        src_pow in 1u32..4,
    ) {
        let mut serial = CampaignConfig::tiny();
        serial.seed = seed;
        serial.generator.duration_secs = 600;
        serial.source.source_shards = 1;
        let mut sharded = serial.clone();
        sharded.source.source_shards = 1 << src_pow;
        prop_assert_eq!(
            dataset_bytes(&serial),
            dataset_bytes(&sharded),
            "source shard count {} leaked into the dataset bytes",
            1 << src_pow
        );
    }
}

#[test]
fn different_seed_different_dataset() {
    let a = CampaignConfig::tiny();
    let mut b = CampaignConfig::tiny();
    b.seed ^= 0xdead_beef;
    assert_ne!(dataset_bytes(&a), dataset_bytes(&b));
}

#[test]
fn anonymisation_hides_raw_identifiers() {
    // No raw clientID (as dotted IP), no cleartext filename from the
    // catalog vocabulary, and no absolute size in bytes appears in the
    // dataset.
    let xml = String::from_utf8(dataset_bytes(&CampaignConfig::tiny())).unwrap();
    // The catalog's keyword stems would leak if filenames were stored in
    // clear (they only ever appear MD5-hashed).
    for stem in ["midnight", "concert", "acoustic", "remaster"] {
        assert!(
            !xml.contains(&format!("\"{stem}")),
            "cleartext keyword {stem} leaked into the dataset"
        );
    }
    // Every hash attribute is 32 lowercase hex chars.
    for piece in xml.split("hash=\"").skip(1) {
        let h = &piece[..piece.find('"').unwrap()];
        assert_eq!(h.len(), 32, "bad digest {h}");
        assert!(h.bytes().all(|b| b.is_ascii_hexdigit()));
    }
}
