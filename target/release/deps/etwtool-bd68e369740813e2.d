/root/repo/target/release/deps/etwtool-bd68e369740813e2.d: src/bin/etwtool.rs

/root/repo/target/release/deps/etwtool-bd68e369740813e2: src/bin/etwtool.rs

src/bin/etwtool.rs:
