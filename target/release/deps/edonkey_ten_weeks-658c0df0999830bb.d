/root/repo/target/release/deps/edonkey_ten_weeks-658c0df0999830bb.d: src/lib.rs

/root/repo/target/release/deps/libedonkey_ten_weeks-658c0df0999830bb.rlib: src/lib.rs

/root/repo/target/release/deps/libedonkey_ten_weeks-658c0df0999830bb.rmeta: src/lib.rs

src/lib.rs:
