/root/repo/target/release/deps/repro-69de7828fa73fa00.d: src/bin/repro.rs

/root/repo/target/release/deps/repro-69de7828fa73fa00: src/bin/repro.rs

src/bin/repro.rs:
