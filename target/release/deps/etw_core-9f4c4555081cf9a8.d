/root/repo/target/release/deps/etw_core-9f4c4555081cf9a8.d: crates/core/src/lib.rs crates/core/src/campaign.rs crates/core/src/config.rs crates/core/src/pipeline.rs crates/core/src/summary.rs crates/core/src/wirepath.rs

/root/repo/target/release/deps/libetw_core-9f4c4555081cf9a8.rlib: crates/core/src/lib.rs crates/core/src/campaign.rs crates/core/src/config.rs crates/core/src/pipeline.rs crates/core/src/summary.rs crates/core/src/wirepath.rs

/root/repo/target/release/deps/libetw_core-9f4c4555081cf9a8.rmeta: crates/core/src/lib.rs crates/core/src/campaign.rs crates/core/src/config.rs crates/core/src/pipeline.rs crates/core/src/summary.rs crates/core/src/wirepath.rs

crates/core/src/lib.rs:
crates/core/src/campaign.rs:
crates/core/src/config.rs:
crates/core/src/pipeline.rs:
crates/core/src/summary.rs:
crates/core/src/wirepath.rs:
