/root/repo/target/release/deps/etw_probe-c46da98e2c5c8497.d: crates/probe/src/lib.rs crates/probe/src/estimate.rs crates/probe/src/prober.rs

/root/repo/target/release/deps/libetw_probe-c46da98e2c5c8497.rlib: crates/probe/src/lib.rs crates/probe/src/estimate.rs crates/probe/src/prober.rs

/root/repo/target/release/deps/libetw_probe-c46da98e2c5c8497.rmeta: crates/probe/src/lib.rs crates/probe/src/estimate.rs crates/probe/src/prober.rs

crates/probe/src/lib.rs:
crates/probe/src/estimate.rs:
crates/probe/src/prober.rs:
