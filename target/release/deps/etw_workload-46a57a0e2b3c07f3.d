/root/repo/target/release/deps/etw_workload-46a57a0e2b3c07f3.d: crates/workload/src/lib.rs crates/workload/src/catalog.rs crates/workload/src/clients.rs crates/workload/src/filesizes.rs crates/workload/src/generator.rs crates/workload/src/zipf.rs

/root/repo/target/release/deps/libetw_workload-46a57a0e2b3c07f3.rlib: crates/workload/src/lib.rs crates/workload/src/catalog.rs crates/workload/src/clients.rs crates/workload/src/filesizes.rs crates/workload/src/generator.rs crates/workload/src/zipf.rs

/root/repo/target/release/deps/libetw_workload-46a57a0e2b3c07f3.rmeta: crates/workload/src/lib.rs crates/workload/src/catalog.rs crates/workload/src/clients.rs crates/workload/src/filesizes.rs crates/workload/src/generator.rs crates/workload/src/zipf.rs

crates/workload/src/lib.rs:
crates/workload/src/catalog.rs:
crates/workload/src/clients.rs:
crates/workload/src/filesizes.rs:
crates/workload/src/generator.rs:
crates/workload/src/zipf.rs:
