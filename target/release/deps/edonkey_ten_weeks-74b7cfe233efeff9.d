/root/repo/target/release/deps/edonkey_ten_weeks-74b7cfe233efeff9.d: src/lib.rs

/root/repo/target/release/deps/libedonkey_ten_weeks-74b7cfe233efeff9.rlib: src/lib.rs

/root/repo/target/release/deps/libedonkey_ten_weeks-74b7cfe233efeff9.rmeta: src/lib.rs

src/lib.rs:
