/root/repo/target/release/deps/etwtool-501d4915b61e1800.d: src/bin/etwtool.rs

/root/repo/target/release/deps/etwtool-501d4915b61e1800: src/bin/etwtool.rs

src/bin/etwtool.rs:
