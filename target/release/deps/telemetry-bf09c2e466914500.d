/root/repo/target/release/deps/telemetry-bf09c2e466914500.d: crates/bench/benches/telemetry.rs

/root/repo/target/release/deps/telemetry-bf09c2e466914500: crates/bench/benches/telemetry.rs

crates/bench/benches/telemetry.rs:
