/root/repo/target/release/deps/etwtool-696994e0c43c3996.d: src/bin/etwtool.rs

/root/repo/target/release/deps/etwtool-696994e0c43c3996: src/bin/etwtool.rs

src/bin/etwtool.rs:
