/root/repo/target/release/deps/etw_netsim-71c4a348682e3c6e.d: crates/netsim/src/lib.rs crates/netsim/src/capture.rs crates/netsim/src/clock.rs crates/netsim/src/flows.rs crates/netsim/src/frag.rs crates/netsim/src/packet.rs crates/netsim/src/pcap.rs crates/netsim/src/tcp.rs crates/netsim/src/traffic.rs

/root/repo/target/release/deps/libetw_netsim-71c4a348682e3c6e.rlib: crates/netsim/src/lib.rs crates/netsim/src/capture.rs crates/netsim/src/clock.rs crates/netsim/src/flows.rs crates/netsim/src/frag.rs crates/netsim/src/packet.rs crates/netsim/src/pcap.rs crates/netsim/src/tcp.rs crates/netsim/src/traffic.rs

/root/repo/target/release/deps/libetw_netsim-71c4a348682e3c6e.rmeta: crates/netsim/src/lib.rs crates/netsim/src/capture.rs crates/netsim/src/clock.rs crates/netsim/src/flows.rs crates/netsim/src/frag.rs crates/netsim/src/packet.rs crates/netsim/src/pcap.rs crates/netsim/src/tcp.rs crates/netsim/src/traffic.rs

crates/netsim/src/lib.rs:
crates/netsim/src/capture.rs:
crates/netsim/src/clock.rs:
crates/netsim/src/flows.rs:
crates/netsim/src/frag.rs:
crates/netsim/src/packet.rs:
crates/netsim/src/pcap.rs:
crates/netsim/src/tcp.rs:
crates/netsim/src/traffic.rs:
