/root/repo/target/release/deps/edonkey_ten_weeks-eefc09a596637065.d: src/lib.rs

/root/repo/target/release/deps/libedonkey_ten_weeks-eefc09a596637065.rlib: src/lib.rs

/root/repo/target/release/deps/libedonkey_ten_weeks-eefc09a596637065.rmeta: src/lib.rs

src/lib.rs:
