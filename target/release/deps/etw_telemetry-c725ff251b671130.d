/root/repo/target/release/deps/etw_telemetry-c725ff251b671130.d: crates/telemetry/src/lib.rs crates/telemetry/src/channel.rs crates/telemetry/src/health.rs

/root/repo/target/release/deps/libetw_telemetry-c725ff251b671130.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/channel.rs crates/telemetry/src/health.rs

/root/repo/target/release/deps/libetw_telemetry-c725ff251b671130.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/channel.rs crates/telemetry/src/health.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/channel.rs:
crates/telemetry/src/health.rs:
