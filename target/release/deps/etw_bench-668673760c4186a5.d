/root/repo/target/release/deps/etw_bench-668673760c4186a5.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libetw_bench-668673760c4186a5.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libetw_bench-668673760c4186a5.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
