/root/repo/target/release/deps/etw_analysis-02f102df2c2edcae.d: crates/analysis/src/lib.rs crates/analysis/src/behavior.rs crates/analysis/src/cardinality.rs crates/analysis/src/distributions.rs crates/analysis/src/histogram.rs crates/analysis/src/peaks.rs crates/analysis/src/powerlaw.rs crates/analysis/src/report.rs crates/analysis/src/timeseries.rs

/root/repo/target/release/deps/libetw_analysis-02f102df2c2edcae.rlib: crates/analysis/src/lib.rs crates/analysis/src/behavior.rs crates/analysis/src/cardinality.rs crates/analysis/src/distributions.rs crates/analysis/src/histogram.rs crates/analysis/src/peaks.rs crates/analysis/src/powerlaw.rs crates/analysis/src/report.rs crates/analysis/src/timeseries.rs

/root/repo/target/release/deps/libetw_analysis-02f102df2c2edcae.rmeta: crates/analysis/src/lib.rs crates/analysis/src/behavior.rs crates/analysis/src/cardinality.rs crates/analysis/src/distributions.rs crates/analysis/src/histogram.rs crates/analysis/src/peaks.rs crates/analysis/src/powerlaw.rs crates/analysis/src/report.rs crates/analysis/src/timeseries.rs

crates/analysis/src/lib.rs:
crates/analysis/src/behavior.rs:
crates/analysis/src/cardinality.rs:
crates/analysis/src/distributions.rs:
crates/analysis/src/histogram.rs:
crates/analysis/src/peaks.rs:
crates/analysis/src/powerlaw.rs:
crates/analysis/src/report.rs:
crates/analysis/src/timeseries.rs:
