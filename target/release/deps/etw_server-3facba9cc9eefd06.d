/root/repo/target/release/deps/etw_server-3facba9cc9eefd06.d: crates/server/src/lib.rs crates/server/src/engine.rs crates/server/src/index.rs

/root/repo/target/release/deps/libetw_server-3facba9cc9eefd06.rlib: crates/server/src/lib.rs crates/server/src/engine.rs crates/server/src/index.rs

/root/repo/target/release/deps/libetw_server-3facba9cc9eefd06.rmeta: crates/server/src/lib.rs crates/server/src/engine.rs crates/server/src/index.rs

crates/server/src/lib.rs:
crates/server/src/engine.rs:
crates/server/src/index.rs:
