/root/repo/target/release/deps/etw_xmlout-e034f74e7580212d.d: crates/xmlout/src/lib.rs crates/xmlout/src/compress.rs crates/xmlout/src/escape.rs crates/xmlout/src/reader.rs crates/xmlout/src/schema.rs crates/xmlout/src/writer.rs

/root/repo/target/release/deps/libetw_xmlout-e034f74e7580212d.rlib: crates/xmlout/src/lib.rs crates/xmlout/src/compress.rs crates/xmlout/src/escape.rs crates/xmlout/src/reader.rs crates/xmlout/src/schema.rs crates/xmlout/src/writer.rs

/root/repo/target/release/deps/libetw_xmlout-e034f74e7580212d.rmeta: crates/xmlout/src/lib.rs crates/xmlout/src/compress.rs crates/xmlout/src/escape.rs crates/xmlout/src/reader.rs crates/xmlout/src/schema.rs crates/xmlout/src/writer.rs

crates/xmlout/src/lib.rs:
crates/xmlout/src/compress.rs:
crates/xmlout/src/escape.rs:
crates/xmlout/src/reader.rs:
crates/xmlout/src/schema.rs:
crates/xmlout/src/writer.rs:
