/root/repo/target/release/deps/etw_edonkey-b43b46801cad3dee.d: crates/edonkey/src/lib.rs crates/edonkey/src/corrupt.rs crates/edonkey/src/decoder.rs crates/edonkey/src/error.rs crates/edonkey/src/ids.rs crates/edonkey/src/md4.rs crates/edonkey/src/messages.rs crates/edonkey/src/search.rs crates/edonkey/src/session.rs crates/edonkey/src/stream.rs crates/edonkey/src/tags.rs crates/edonkey/src/wire.rs

/root/repo/target/release/deps/libetw_edonkey-b43b46801cad3dee.rlib: crates/edonkey/src/lib.rs crates/edonkey/src/corrupt.rs crates/edonkey/src/decoder.rs crates/edonkey/src/error.rs crates/edonkey/src/ids.rs crates/edonkey/src/md4.rs crates/edonkey/src/messages.rs crates/edonkey/src/search.rs crates/edonkey/src/session.rs crates/edonkey/src/stream.rs crates/edonkey/src/tags.rs crates/edonkey/src/wire.rs

/root/repo/target/release/deps/libetw_edonkey-b43b46801cad3dee.rmeta: crates/edonkey/src/lib.rs crates/edonkey/src/corrupt.rs crates/edonkey/src/decoder.rs crates/edonkey/src/error.rs crates/edonkey/src/ids.rs crates/edonkey/src/md4.rs crates/edonkey/src/messages.rs crates/edonkey/src/search.rs crates/edonkey/src/session.rs crates/edonkey/src/stream.rs crates/edonkey/src/tags.rs crates/edonkey/src/wire.rs

crates/edonkey/src/lib.rs:
crates/edonkey/src/corrupt.rs:
crates/edonkey/src/decoder.rs:
crates/edonkey/src/error.rs:
crates/edonkey/src/ids.rs:
crates/edonkey/src/md4.rs:
crates/edonkey/src/messages.rs:
crates/edonkey/src/search.rs:
crates/edonkey/src/session.rs:
crates/edonkey/src/stream.rs:
crates/edonkey/src/tags.rs:
crates/edonkey/src/wire.rs:
