/root/repo/target/release/deps/etw_anonymize-21287346ff6743e2.d: crates/anonymize/src/lib.rs crates/anonymize/src/clientid.rs crates/anonymize/src/fields.rs crates/anonymize/src/fileid.rs crates/anonymize/src/md5.rs crates/anonymize/src/scheme.rs

/root/repo/target/release/deps/libetw_anonymize-21287346ff6743e2.rlib: crates/anonymize/src/lib.rs crates/anonymize/src/clientid.rs crates/anonymize/src/fields.rs crates/anonymize/src/fileid.rs crates/anonymize/src/md5.rs crates/anonymize/src/scheme.rs

/root/repo/target/release/deps/libetw_anonymize-21287346ff6743e2.rmeta: crates/anonymize/src/lib.rs crates/anonymize/src/clientid.rs crates/anonymize/src/fields.rs crates/anonymize/src/fileid.rs crates/anonymize/src/md5.rs crates/anonymize/src/scheme.rs

crates/anonymize/src/lib.rs:
crates/anonymize/src/clientid.rs:
crates/anonymize/src/fields.rs:
crates/anonymize/src/fileid.rs:
crates/anonymize/src/md5.rs:
crates/anonymize/src/scheme.rs:
