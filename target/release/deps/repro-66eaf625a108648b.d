/root/repo/target/release/deps/repro-66eaf625a108648b.d: src/bin/repro.rs

/root/repo/target/release/deps/repro-66eaf625a108648b: src/bin/repro.rs

src/bin/repro.rs:
