/root/repo/target/release/deps/etw_core-cfe1a26676daf11f.d: crates/core/src/lib.rs crates/core/src/campaign.rs crates/core/src/config.rs crates/core/src/pipeline.rs crates/core/src/summary.rs crates/core/src/wirepath.rs

/root/repo/target/release/deps/libetw_core-cfe1a26676daf11f.rlib: crates/core/src/lib.rs crates/core/src/campaign.rs crates/core/src/config.rs crates/core/src/pipeline.rs crates/core/src/summary.rs crates/core/src/wirepath.rs

/root/repo/target/release/deps/libetw_core-cfe1a26676daf11f.rmeta: crates/core/src/lib.rs crates/core/src/campaign.rs crates/core/src/config.rs crates/core/src/pipeline.rs crates/core/src/summary.rs crates/core/src/wirepath.rs

crates/core/src/lib.rs:
crates/core/src/campaign.rs:
crates/core/src/config.rs:
crates/core/src/pipeline.rs:
crates/core/src/summary.rs:
crates/core/src/wirepath.rs:
