/root/repo/target/release/deps/repro-2030abe5094f07e0.d: src/bin/repro.rs

/root/repo/target/release/deps/repro-2030abe5094f07e0: src/bin/repro.rs

src/bin/repro.rs:
