/root/repo/target/debug/deps/etw_netsim-e28a45d05ba847b0.d: crates/netsim/src/lib.rs crates/netsim/src/capture.rs crates/netsim/src/clock.rs crates/netsim/src/flows.rs crates/netsim/src/frag.rs crates/netsim/src/packet.rs crates/netsim/src/pcap.rs crates/netsim/src/tcp.rs crates/netsim/src/traffic.rs Cargo.toml

/root/repo/target/debug/deps/libetw_netsim-e28a45d05ba847b0.rmeta: crates/netsim/src/lib.rs crates/netsim/src/capture.rs crates/netsim/src/clock.rs crates/netsim/src/flows.rs crates/netsim/src/frag.rs crates/netsim/src/packet.rs crates/netsim/src/pcap.rs crates/netsim/src/tcp.rs crates/netsim/src/traffic.rs Cargo.toml

crates/netsim/src/lib.rs:
crates/netsim/src/capture.rs:
crates/netsim/src/clock.rs:
crates/netsim/src/flows.rs:
crates/netsim/src/frag.rs:
crates/netsim/src/packet.rs:
crates/netsim/src/pcap.rs:
crates/netsim/src/tcp.rs:
crates/netsim/src/traffic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
