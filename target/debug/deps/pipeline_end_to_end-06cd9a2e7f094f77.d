/root/repo/target/debug/deps/pipeline_end_to_end-06cd9a2e7f094f77.d: tests/pipeline_end_to_end.rs

/root/repo/target/debug/deps/pipeline_end_to_end-06cd9a2e7f094f77: tests/pipeline_end_to_end.rs

tests/pipeline_end_to_end.rs:
