/root/repo/target/debug/deps/etw_core-ccaf70b20de71e02.d: crates/core/src/lib.rs crates/core/src/campaign.rs crates/core/src/config.rs crates/core/src/pipeline.rs crates/core/src/summary.rs crates/core/src/wirepath.rs Cargo.toml

/root/repo/target/debug/deps/libetw_core-ccaf70b20de71e02.rmeta: crates/core/src/lib.rs crates/core/src/campaign.rs crates/core/src/config.rs crates/core/src/pipeline.rs crates/core/src/summary.rs crates/core/src/wirepath.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/campaign.rs:
crates/core/src/config.rs:
crates/core/src/pipeline.rs:
crates/core/src/summary.rs:
crates/core/src/wirepath.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
