/root/repo/target/debug/deps/edonkey_ten_weeks-d8f8e3bc5a5db701.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libedonkey_ten_weeks-d8f8e3bc5a5db701.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
