/root/repo/target/debug/deps/repro-b212b59a84b7652c.d: src/bin/repro.rs

/root/repo/target/debug/deps/repro-b212b59a84b7652c: src/bin/repro.rs

src/bin/repro.rs:
