/root/repo/target/debug/deps/anonymize_fileid-71f9f0eafcc360c7.d: crates/bench/benches/anonymize_fileid.rs Cargo.toml

/root/repo/target/debug/deps/libanonymize_fileid-71f9f0eafcc360c7.rmeta: crates/bench/benches/anonymize_fileid.rs Cargo.toml

crates/bench/benches/anonymize_fileid.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
