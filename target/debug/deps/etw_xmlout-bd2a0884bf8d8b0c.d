/root/repo/target/debug/deps/etw_xmlout-bd2a0884bf8d8b0c.d: crates/xmlout/src/lib.rs crates/xmlout/src/compress.rs crates/xmlout/src/escape.rs crates/xmlout/src/reader.rs crates/xmlout/src/schema.rs crates/xmlout/src/writer.rs

/root/repo/target/debug/deps/libetw_xmlout-bd2a0884bf8d8b0c.rlib: crates/xmlout/src/lib.rs crates/xmlout/src/compress.rs crates/xmlout/src/escape.rs crates/xmlout/src/reader.rs crates/xmlout/src/schema.rs crates/xmlout/src/writer.rs

/root/repo/target/debug/deps/libetw_xmlout-bd2a0884bf8d8b0c.rmeta: crates/xmlout/src/lib.rs crates/xmlout/src/compress.rs crates/xmlout/src/escape.rs crates/xmlout/src/reader.rs crates/xmlout/src/schema.rs crates/xmlout/src/writer.rs

crates/xmlout/src/lib.rs:
crates/xmlout/src/compress.rs:
crates/xmlout/src/escape.rs:
crates/xmlout/src/reader.rs:
crates/xmlout/src/schema.rs:
crates/xmlout/src/writer.rs:
