/root/repo/target/debug/deps/pipeline_end_to_end-dd995d9b0d125501.d: tests/pipeline_end_to_end.rs

/root/repo/target/debug/deps/pipeline_end_to_end-dd995d9b0d125501: tests/pipeline_end_to_end.rs

tests/pipeline_end_to_end.rs:
