/root/repo/target/debug/deps/etw_workload-7559b67ac288f3fd.d: crates/workload/src/lib.rs crates/workload/src/catalog.rs crates/workload/src/clients.rs crates/workload/src/filesizes.rs crates/workload/src/generator.rs crates/workload/src/zipf.rs

/root/repo/target/debug/deps/etw_workload-7559b67ac288f3fd: crates/workload/src/lib.rs crates/workload/src/catalog.rs crates/workload/src/clients.rs crates/workload/src/filesizes.rs crates/workload/src/generator.rs crates/workload/src/zipf.rs

crates/workload/src/lib.rs:
crates/workload/src/catalog.rs:
crates/workload/src/clients.rs:
crates/workload/src/filesizes.rs:
crates/workload/src/generator.rs:
crates/workload/src/zipf.rs:
