/root/repo/target/debug/deps/etwtool_cli-fe88892995fd129f.d: tests/etwtool_cli.rs Cargo.toml

/root/repo/target/debug/deps/libetwtool_cli-fe88892995fd129f.rmeta: tests/etwtool_cli.rs Cargo.toml

tests/etwtool_cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_etwtool=placeholder:etwtool
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
