/root/repo/target/debug/deps/etw_edonkey-0585e5c2c6f5899e.d: crates/edonkey/src/lib.rs crates/edonkey/src/corrupt.rs crates/edonkey/src/decoder.rs crates/edonkey/src/error.rs crates/edonkey/src/ids.rs crates/edonkey/src/md4.rs crates/edonkey/src/messages.rs crates/edonkey/src/search.rs crates/edonkey/src/session.rs crates/edonkey/src/stream.rs crates/edonkey/src/tags.rs crates/edonkey/src/wire.rs

/root/repo/target/debug/deps/etw_edonkey-0585e5c2c6f5899e: crates/edonkey/src/lib.rs crates/edonkey/src/corrupt.rs crates/edonkey/src/decoder.rs crates/edonkey/src/error.rs crates/edonkey/src/ids.rs crates/edonkey/src/md4.rs crates/edonkey/src/messages.rs crates/edonkey/src/search.rs crates/edonkey/src/session.rs crates/edonkey/src/stream.rs crates/edonkey/src/tags.rs crates/edonkey/src/wire.rs

crates/edonkey/src/lib.rs:
crates/edonkey/src/corrupt.rs:
crates/edonkey/src/decoder.rs:
crates/edonkey/src/error.rs:
crates/edonkey/src/ids.rs:
crates/edonkey/src/md4.rs:
crates/edonkey/src/messages.rs:
crates/edonkey/src/search.rs:
crates/edonkey/src/session.rs:
crates/edonkey/src/stream.rs:
crates/edonkey/src/tags.rs:
crates/edonkey/src/wire.rs:
