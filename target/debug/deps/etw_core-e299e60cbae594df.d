/root/repo/target/debug/deps/etw_core-e299e60cbae594df.d: crates/core/src/lib.rs crates/core/src/campaign.rs crates/core/src/config.rs crates/core/src/pipeline.rs crates/core/src/summary.rs crates/core/src/wirepath.rs

/root/repo/target/debug/deps/libetw_core-e299e60cbae594df.rlib: crates/core/src/lib.rs crates/core/src/campaign.rs crates/core/src/config.rs crates/core/src/pipeline.rs crates/core/src/summary.rs crates/core/src/wirepath.rs

/root/repo/target/debug/deps/libetw_core-e299e60cbae594df.rmeta: crates/core/src/lib.rs crates/core/src/campaign.rs crates/core/src/config.rs crates/core/src/pipeline.rs crates/core/src/summary.rs crates/core/src/wirepath.rs

crates/core/src/lib.rs:
crates/core/src/campaign.rs:
crates/core/src/config.rs:
crates/core/src/pipeline.rs:
crates/core/src/summary.rs:
crates/core/src/wirepath.rs:
