/root/repo/target/debug/deps/etwtool-15fc44a57667afaf.d: src/bin/etwtool.rs

/root/repo/target/debug/deps/etwtool-15fc44a57667afaf: src/bin/etwtool.rs

src/bin/etwtool.rs:
