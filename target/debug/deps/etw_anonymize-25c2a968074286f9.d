/root/repo/target/debug/deps/etw_anonymize-25c2a968074286f9.d: crates/anonymize/src/lib.rs crates/anonymize/src/clientid.rs crates/anonymize/src/fields.rs crates/anonymize/src/fileid.rs crates/anonymize/src/md5.rs crates/anonymize/src/scheme.rs

/root/repo/target/debug/deps/etw_anonymize-25c2a968074286f9: crates/anonymize/src/lib.rs crates/anonymize/src/clientid.rs crates/anonymize/src/fields.rs crates/anonymize/src/fileid.rs crates/anonymize/src/md5.rs crates/anonymize/src/scheme.rs

crates/anonymize/src/lib.rs:
crates/anonymize/src/clientid.rs:
crates/anonymize/src/fields.rs:
crates/anonymize/src/fileid.rs:
crates/anonymize/src/md5.rs:
crates/anonymize/src/scheme.rs:
