/root/repo/target/debug/deps/etwtool-cdc7f31b8f5d3cb1.d: src/bin/etwtool.rs Cargo.toml

/root/repo/target/debug/deps/libetwtool-cdc7f31b8f5d3cb1.rmeta: src/bin/etwtool.rs Cargo.toml

src/bin/etwtool.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
