/root/repo/target/debug/deps/proptest_server-96faa13a9e1b4cb3.d: crates/server/tests/proptest_server.rs

/root/repo/target/debug/deps/proptest_server-96faa13a9e1b4cb3: crates/server/tests/proptest_server.rs

crates/server/tests/proptest_server.rs:
