/root/repo/target/debug/deps/proptest_server-09ef5b7c1809a623.d: crates/server/tests/proptest_server.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_server-09ef5b7c1809a623.rmeta: crates/server/tests/proptest_server.rs Cargo.toml

crates/server/tests/proptest_server.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
