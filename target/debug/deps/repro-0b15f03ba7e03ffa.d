/root/repo/target/debug/deps/repro-0b15f03ba7e03ffa.d: src/bin/repro.rs

/root/repo/target/debug/deps/repro-0b15f03ba7e03ffa: src/bin/repro.rs

src/bin/repro.rs:
