/root/repo/target/debug/deps/telemetry_health-b9f2328c48a72ff5.d: tests/telemetry_health.rs

/root/repo/target/debug/deps/telemetry_health-b9f2328c48a72ff5: tests/telemetry_health.rs

tests/telemetry_health.rs:
