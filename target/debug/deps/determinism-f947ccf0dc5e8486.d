/root/repo/target/debug/deps/determinism-f947ccf0dc5e8486.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-f947ccf0dc5e8486: tests/determinism.rs

tests/determinism.rs:
