/root/repo/target/debug/deps/proptest_codec-56cd0e18058bce05.d: crates/edonkey/tests/proptest_codec.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_codec-56cd0e18058bce05.rmeta: crates/edonkey/tests/proptest_codec.rs Cargo.toml

crates/edonkey/tests/proptest_codec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
