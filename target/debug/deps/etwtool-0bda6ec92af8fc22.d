/root/repo/target/debug/deps/etwtool-0bda6ec92af8fc22.d: src/bin/etwtool.rs

/root/repo/target/debug/deps/etwtool-0bda6ec92af8fc22: src/bin/etwtool.rs

src/bin/etwtool.rs:
