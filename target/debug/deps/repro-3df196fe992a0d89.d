/root/repo/target/debug/deps/repro-3df196fe992a0d89.d: src/bin/repro.rs

/root/repo/target/debug/deps/repro-3df196fe992a0d89: src/bin/repro.rs

src/bin/repro.rs:
