/root/repo/target/debug/deps/proptest_netsim-d8563d09ffe4c5a7.d: crates/netsim/tests/proptest_netsim.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_netsim-d8563d09ffe4c5a7.rmeta: crates/netsim/tests/proptest_netsim.rs Cargo.toml

crates/netsim/tests/proptest_netsim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
