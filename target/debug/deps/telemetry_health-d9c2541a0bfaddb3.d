/root/repo/target/debug/deps/telemetry_health-d9c2541a0bfaddb3.d: tests/telemetry_health.rs Cargo.toml

/root/repo/target/debug/deps/libtelemetry_health-d9c2541a0bfaddb3.rmeta: tests/telemetry_health.rs Cargo.toml

tests/telemetry_health.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
