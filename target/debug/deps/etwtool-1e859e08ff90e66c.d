/root/repo/target/debug/deps/etwtool-1e859e08ff90e66c.d: src/bin/etwtool.rs

/root/repo/target/debug/deps/etwtool-1e859e08ff90e66c: src/bin/etwtool.rs

src/bin/etwtool.rs:
