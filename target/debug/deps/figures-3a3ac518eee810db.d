/root/repo/target/debug/deps/figures-3a3ac518eee810db.d: tests/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-3a3ac518eee810db.rmeta: tests/figures.rs Cargo.toml

tests/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
