/root/repo/target/debug/deps/etw_netsim-c23e83983653a481.d: crates/netsim/src/lib.rs crates/netsim/src/capture.rs crates/netsim/src/clock.rs crates/netsim/src/flows.rs crates/netsim/src/frag.rs crates/netsim/src/packet.rs crates/netsim/src/pcap.rs crates/netsim/src/tcp.rs crates/netsim/src/traffic.rs

/root/repo/target/debug/deps/libetw_netsim-c23e83983653a481.rlib: crates/netsim/src/lib.rs crates/netsim/src/capture.rs crates/netsim/src/clock.rs crates/netsim/src/flows.rs crates/netsim/src/frag.rs crates/netsim/src/packet.rs crates/netsim/src/pcap.rs crates/netsim/src/tcp.rs crates/netsim/src/traffic.rs

/root/repo/target/debug/deps/libetw_netsim-c23e83983653a481.rmeta: crates/netsim/src/lib.rs crates/netsim/src/capture.rs crates/netsim/src/clock.rs crates/netsim/src/flows.rs crates/netsim/src/frag.rs crates/netsim/src/packet.rs crates/netsim/src/pcap.rs crates/netsim/src/tcp.rs crates/netsim/src/traffic.rs

crates/netsim/src/lib.rs:
crates/netsim/src/capture.rs:
crates/netsim/src/clock.rs:
crates/netsim/src/flows.rs:
crates/netsim/src/frag.rs:
crates/netsim/src/packet.rs:
crates/netsim/src/pcap.rs:
crates/netsim/src/tcp.rs:
crates/netsim/src/traffic.rs:
