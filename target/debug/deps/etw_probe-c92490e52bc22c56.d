/root/repo/target/debug/deps/etw_probe-c92490e52bc22c56.d: crates/probe/src/lib.rs crates/probe/src/estimate.rs crates/probe/src/prober.rs

/root/repo/target/debug/deps/libetw_probe-c92490e52bc22c56.rlib: crates/probe/src/lib.rs crates/probe/src/estimate.rs crates/probe/src/prober.rs

/root/repo/target/debug/deps/libetw_probe-c92490e52bc22c56.rmeta: crates/probe/src/lib.rs crates/probe/src/estimate.rs crates/probe/src/prober.rs

crates/probe/src/lib.rs:
crates/probe/src/estimate.rs:
crates/probe/src/prober.rs:
