/root/repo/target/debug/deps/etw_workload-58b801ec6feeb0a8.d: crates/workload/src/lib.rs crates/workload/src/catalog.rs crates/workload/src/clients.rs crates/workload/src/filesizes.rs crates/workload/src/generator.rs crates/workload/src/zipf.rs

/root/repo/target/debug/deps/libetw_workload-58b801ec6feeb0a8.rlib: crates/workload/src/lib.rs crates/workload/src/catalog.rs crates/workload/src/clients.rs crates/workload/src/filesizes.rs crates/workload/src/generator.rs crates/workload/src/zipf.rs

/root/repo/target/debug/deps/libetw_workload-58b801ec6feeb0a8.rmeta: crates/workload/src/lib.rs crates/workload/src/catalog.rs crates/workload/src/clients.rs crates/workload/src/filesizes.rs crates/workload/src/generator.rs crates/workload/src/zipf.rs

crates/workload/src/lib.rs:
crates/workload/src/catalog.rs:
crates/workload/src/clients.rs:
crates/workload/src/filesizes.rs:
crates/workload/src/generator.rs:
crates/workload/src/zipf.rs:
