/root/repo/target/debug/deps/proptest_pipeline-b16ac779b6d09033.d: crates/core/tests/proptest_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_pipeline-b16ac779b6d09033.rmeta: crates/core/tests/proptest_pipeline.rs Cargo.toml

crates/core/tests/proptest_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
