/root/repo/target/debug/deps/etw_workload-2be7cf77c12c0bc2.d: crates/workload/src/lib.rs crates/workload/src/catalog.rs crates/workload/src/clients.rs crates/workload/src/filesizes.rs crates/workload/src/generator.rs crates/workload/src/zipf.rs Cargo.toml

/root/repo/target/debug/deps/libetw_workload-2be7cf77c12c0bc2.rmeta: crates/workload/src/lib.rs crates/workload/src/catalog.rs crates/workload/src/clients.rs crates/workload/src/filesizes.rs crates/workload/src/generator.rs crates/workload/src/zipf.rs Cargo.toml

crates/workload/src/lib.rs:
crates/workload/src/catalog.rs:
crates/workload/src/clients.rs:
crates/workload/src/filesizes.rs:
crates/workload/src/generator.rs:
crates/workload/src/zipf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
