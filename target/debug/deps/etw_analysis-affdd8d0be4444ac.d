/root/repo/target/debug/deps/etw_analysis-affdd8d0be4444ac.d: crates/analysis/src/lib.rs crates/analysis/src/behavior.rs crates/analysis/src/cardinality.rs crates/analysis/src/distributions.rs crates/analysis/src/histogram.rs crates/analysis/src/peaks.rs crates/analysis/src/powerlaw.rs crates/analysis/src/report.rs crates/analysis/src/timeseries.rs Cargo.toml

/root/repo/target/debug/deps/libetw_analysis-affdd8d0be4444ac.rmeta: crates/analysis/src/lib.rs crates/analysis/src/behavior.rs crates/analysis/src/cardinality.rs crates/analysis/src/distributions.rs crates/analysis/src/histogram.rs crates/analysis/src/peaks.rs crates/analysis/src/powerlaw.rs crates/analysis/src/report.rs crates/analysis/src/timeseries.rs Cargo.toml

crates/analysis/src/lib.rs:
crates/analysis/src/behavior.rs:
crates/analysis/src/cardinality.rs:
crates/analysis/src/distributions.rs:
crates/analysis/src/histogram.rs:
crates/analysis/src/peaks.rs:
crates/analysis/src/powerlaw.rs:
crates/analysis/src/report.rs:
crates/analysis/src/timeseries.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
