/root/repo/target/debug/deps/proptest_netsim-9007bc9e2aa9fd5f.d: crates/netsim/tests/proptest_netsim.rs

/root/repo/target/debug/deps/proptest_netsim-9007bc9e2aa9fd5f: crates/netsim/tests/proptest_netsim.rs

crates/netsim/tests/proptest_netsim.rs:
