/root/repo/target/debug/deps/etw_xmlout-782d094e56e8bf2f.d: crates/xmlout/src/lib.rs crates/xmlout/src/compress.rs crates/xmlout/src/escape.rs crates/xmlout/src/reader.rs crates/xmlout/src/schema.rs crates/xmlout/src/writer.rs

/root/repo/target/debug/deps/etw_xmlout-782d094e56e8bf2f: crates/xmlout/src/lib.rs crates/xmlout/src/compress.rs crates/xmlout/src/escape.rs crates/xmlout/src/reader.rs crates/xmlout/src/schema.rs crates/xmlout/src/writer.rs

crates/xmlout/src/lib.rs:
crates/xmlout/src/compress.rs:
crates/xmlout/src/escape.rs:
crates/xmlout/src/reader.rs:
crates/xmlout/src/schema.rs:
crates/xmlout/src/writer.rs:
