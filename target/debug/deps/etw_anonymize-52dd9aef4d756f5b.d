/root/repo/target/debug/deps/etw_anonymize-52dd9aef4d756f5b.d: crates/anonymize/src/lib.rs crates/anonymize/src/clientid.rs crates/anonymize/src/fields.rs crates/anonymize/src/fileid.rs crates/anonymize/src/md5.rs crates/anonymize/src/scheme.rs

/root/repo/target/debug/deps/libetw_anonymize-52dd9aef4d756f5b.rlib: crates/anonymize/src/lib.rs crates/anonymize/src/clientid.rs crates/anonymize/src/fields.rs crates/anonymize/src/fileid.rs crates/anonymize/src/md5.rs crates/anonymize/src/scheme.rs

/root/repo/target/debug/deps/libetw_anonymize-52dd9aef4d756f5b.rmeta: crates/anonymize/src/lib.rs crates/anonymize/src/clientid.rs crates/anonymize/src/fields.rs crates/anonymize/src/fileid.rs crates/anonymize/src/md5.rs crates/anonymize/src/scheme.rs

crates/anonymize/src/lib.rs:
crates/anonymize/src/clientid.rs:
crates/anonymize/src/fields.rs:
crates/anonymize/src/fileid.rs:
crates/anonymize/src/md5.rs:
crates/anonymize/src/scheme.rs:
