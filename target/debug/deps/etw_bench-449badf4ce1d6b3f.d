/root/repo/target/debug/deps/etw_bench-449badf4ce1d6b3f.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/etw_bench-449badf4ce1d6b3f: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
