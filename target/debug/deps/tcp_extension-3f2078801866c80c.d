/root/repo/target/debug/deps/tcp_extension-3f2078801866c80c.d: tests/tcp_extension.rs

/root/repo/target/debug/deps/tcp_extension-3f2078801866c80c: tests/tcp_extension.rs

tests/tcp_extension.rs:
