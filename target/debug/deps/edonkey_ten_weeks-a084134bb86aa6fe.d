/root/repo/target/debug/deps/edonkey_ten_weeks-a084134bb86aa6fe.d: src/lib.rs

/root/repo/target/debug/deps/libedonkey_ten_weeks-a084134bb86aa6fe.rlib: src/lib.rs

/root/repo/target/debug/deps/libedonkey_ten_weeks-a084134bb86aa6fe.rmeta: src/lib.rs

src/lib.rs:
