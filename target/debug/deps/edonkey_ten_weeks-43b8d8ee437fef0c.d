/root/repo/target/debug/deps/edonkey_ten_weeks-43b8d8ee437fef0c.d: src/lib.rs

/root/repo/target/debug/deps/libedonkey_ten_weeks-43b8d8ee437fef0c.rlib: src/lib.rs

/root/repo/target/debug/deps/libedonkey_ten_weeks-43b8d8ee437fef0c.rmeta: src/lib.rs

src/lib.rs:
