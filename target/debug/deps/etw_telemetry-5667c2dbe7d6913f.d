/root/repo/target/debug/deps/etw_telemetry-5667c2dbe7d6913f.d: crates/telemetry/src/lib.rs crates/telemetry/src/channel.rs crates/telemetry/src/health.rs Cargo.toml

/root/repo/target/debug/deps/libetw_telemetry-5667c2dbe7d6913f.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/channel.rs crates/telemetry/src/health.rs Cargo.toml

crates/telemetry/src/lib.rs:
crates/telemetry/src/channel.rs:
crates/telemetry/src/health.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
