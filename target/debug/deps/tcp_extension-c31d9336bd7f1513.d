/root/repo/target/debug/deps/tcp_extension-c31d9336bd7f1513.d: tests/tcp_extension.rs Cargo.toml

/root/repo/target/debug/deps/libtcp_extension-c31d9336bd7f1513.rmeta: tests/tcp_extension.rs Cargo.toml

tests/tcp_extension.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
