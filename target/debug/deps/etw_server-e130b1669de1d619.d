/root/repo/target/debug/deps/etw_server-e130b1669de1d619.d: crates/server/src/lib.rs crates/server/src/engine.rs crates/server/src/index.rs Cargo.toml

/root/repo/target/debug/deps/libetw_server-e130b1669de1d619.rmeta: crates/server/src/lib.rs crates/server/src/engine.rs crates/server/src/index.rs Cargo.toml

crates/server/src/lib.rs:
crates/server/src/engine.rs:
crates/server/src/index.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
