/root/repo/target/debug/deps/etwtool-1230afa410272202.d: src/bin/etwtool.rs

/root/repo/target/debug/deps/etwtool-1230afa410272202: src/bin/etwtool.rs

src/bin/etwtool.rs:
