/root/repo/target/debug/deps/etw_server-8ee97f87bc286bef.d: crates/server/src/lib.rs crates/server/src/engine.rs crates/server/src/index.rs

/root/repo/target/debug/deps/libetw_server-8ee97f87bc286bef.rlib: crates/server/src/lib.rs crates/server/src/engine.rs crates/server/src/index.rs

/root/repo/target/debug/deps/libetw_server-8ee97f87bc286bef.rmeta: crates/server/src/lib.rs crates/server/src/engine.rs crates/server/src/index.rs

crates/server/src/lib.rs:
crates/server/src/engine.rs:
crates/server/src/index.rs:
