/root/repo/target/debug/deps/proptest_workload-6973a2aee72b47c2.d: crates/workload/tests/proptest_workload.rs

/root/repo/target/debug/deps/proptest_workload-6973a2aee72b47c2: crates/workload/tests/proptest_workload.rs

crates/workload/tests/proptest_workload.rs:
