/root/repo/target/debug/deps/etw_telemetry-b60df1ee354569c8.d: crates/telemetry/src/lib.rs crates/telemetry/src/channel.rs crates/telemetry/src/health.rs

/root/repo/target/debug/deps/etw_telemetry-b60df1ee354569c8: crates/telemetry/src/lib.rs crates/telemetry/src/channel.rs crates/telemetry/src/health.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/channel.rs:
crates/telemetry/src/health.rs:
