/root/repo/target/debug/deps/etw_bench-572edac144f502bb.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libetw_bench-572edac144f502bb.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libetw_bench-572edac144f502bb.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
