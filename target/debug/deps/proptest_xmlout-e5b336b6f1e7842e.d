/root/repo/target/debug/deps/proptest_xmlout-e5b336b6f1e7842e.d: crates/xmlout/tests/proptest_xmlout.rs

/root/repo/target/debug/deps/proptest_xmlout-e5b336b6f1e7842e: crates/xmlout/tests/proptest_xmlout.rs

crates/xmlout/tests/proptest_xmlout.rs:
