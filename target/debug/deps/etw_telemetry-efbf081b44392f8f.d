/root/repo/target/debug/deps/etw_telemetry-efbf081b44392f8f.d: crates/telemetry/src/lib.rs crates/telemetry/src/channel.rs crates/telemetry/src/health.rs

/root/repo/target/debug/deps/libetw_telemetry-efbf081b44392f8f.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/channel.rs crates/telemetry/src/health.rs

/root/repo/target/debug/deps/libetw_telemetry-efbf081b44392f8f.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/channel.rs crates/telemetry/src/health.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/channel.rs:
crates/telemetry/src/health.rs:
