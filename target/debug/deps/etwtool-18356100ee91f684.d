/root/repo/target/debug/deps/etwtool-18356100ee91f684.d: src/bin/etwtool.rs Cargo.toml

/root/repo/target/debug/deps/libetwtool-18356100ee91f684.rmeta: src/bin/etwtool.rs Cargo.toml

src/bin/etwtool.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
