/root/repo/target/debug/deps/etw_probe-1ecac88d51e3087f.d: crates/probe/src/lib.rs crates/probe/src/estimate.rs crates/probe/src/prober.rs Cargo.toml

/root/repo/target/debug/deps/libetw_probe-1ecac88d51e3087f.rmeta: crates/probe/src/lib.rs crates/probe/src/estimate.rs crates/probe/src/prober.rs Cargo.toml

crates/probe/src/lib.rs:
crates/probe/src/estimate.rs:
crates/probe/src/prober.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
