/root/repo/target/debug/deps/proptest_netsim-d1b3fd90e710b9c0.d: crates/netsim/tests/proptest_netsim.rs

/root/repo/target/debug/deps/proptest_netsim-d1b3fd90e710b9c0: crates/netsim/tests/proptest_netsim.rs

crates/netsim/tests/proptest_netsim.rs:
