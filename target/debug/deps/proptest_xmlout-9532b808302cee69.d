/root/repo/target/debug/deps/proptest_xmlout-9532b808302cee69.d: crates/xmlout/tests/proptest_xmlout.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_xmlout-9532b808302cee69.rmeta: crates/xmlout/tests/proptest_xmlout.rs Cargo.toml

crates/xmlout/tests/proptest_xmlout.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
