/root/repo/target/debug/deps/etw_probe-8bf3b5c5a726417e.d: crates/probe/src/lib.rs crates/probe/src/estimate.rs crates/probe/src/prober.rs

/root/repo/target/debug/deps/etw_probe-8bf3b5c5a726417e: crates/probe/src/lib.rs crates/probe/src/estimate.rs crates/probe/src/prober.rs

crates/probe/src/lib.rs:
crates/probe/src/estimate.rs:
crates/probe/src/prober.rs:
