/root/repo/target/debug/deps/proptest_codec-869f3f5c4da1a984.d: crates/edonkey/tests/proptest_codec.rs

/root/repo/target/debug/deps/proptest_codec-869f3f5c4da1a984: crates/edonkey/tests/proptest_codec.rs

crates/edonkey/tests/proptest_codec.rs:
