/root/repo/target/debug/deps/etw_server-8ff5ec6faa80303e.d: crates/server/src/lib.rs crates/server/src/engine.rs crates/server/src/index.rs

/root/repo/target/debug/deps/etw_server-8ff5ec6faa80303e: crates/server/src/lib.rs crates/server/src/engine.rs crates/server/src/index.rs

crates/server/src/lib.rs:
crates/server/src/engine.rs:
crates/server/src/index.rs:
