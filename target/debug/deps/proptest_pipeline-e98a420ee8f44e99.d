/root/repo/target/debug/deps/proptest_pipeline-e98a420ee8f44e99.d: crates/core/tests/proptest_pipeline.rs

/root/repo/target/debug/deps/proptest_pipeline-e98a420ee8f44e99: crates/core/tests/proptest_pipeline.rs

crates/core/tests/proptest_pipeline.rs:
