/root/repo/target/debug/deps/proptest_pipeline-23f888997e3d8da4.d: crates/core/tests/proptest_pipeline.rs

/root/repo/target/debug/deps/proptest_pipeline-23f888997e3d8da4: crates/core/tests/proptest_pipeline.rs

crates/core/tests/proptest_pipeline.rs:
