/root/repo/target/debug/deps/decode-ff7ed0c96fb9f579.d: crates/bench/benches/decode.rs Cargo.toml

/root/repo/target/debug/deps/libdecode-ff7ed0c96fb9f579.rmeta: crates/bench/benches/decode.rs Cargo.toml

crates/bench/benches/decode.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
