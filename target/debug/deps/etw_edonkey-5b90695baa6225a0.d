/root/repo/target/debug/deps/etw_edonkey-5b90695baa6225a0.d: crates/edonkey/src/lib.rs crates/edonkey/src/corrupt.rs crates/edonkey/src/decoder.rs crates/edonkey/src/error.rs crates/edonkey/src/ids.rs crates/edonkey/src/md4.rs crates/edonkey/src/messages.rs crates/edonkey/src/search.rs crates/edonkey/src/session.rs crates/edonkey/src/stream.rs crates/edonkey/src/tags.rs crates/edonkey/src/wire.rs

/root/repo/target/debug/deps/libetw_edonkey-5b90695baa6225a0.rlib: crates/edonkey/src/lib.rs crates/edonkey/src/corrupt.rs crates/edonkey/src/decoder.rs crates/edonkey/src/error.rs crates/edonkey/src/ids.rs crates/edonkey/src/md4.rs crates/edonkey/src/messages.rs crates/edonkey/src/search.rs crates/edonkey/src/session.rs crates/edonkey/src/stream.rs crates/edonkey/src/tags.rs crates/edonkey/src/wire.rs

/root/repo/target/debug/deps/libetw_edonkey-5b90695baa6225a0.rmeta: crates/edonkey/src/lib.rs crates/edonkey/src/corrupt.rs crates/edonkey/src/decoder.rs crates/edonkey/src/error.rs crates/edonkey/src/ids.rs crates/edonkey/src/md4.rs crates/edonkey/src/messages.rs crates/edonkey/src/search.rs crates/edonkey/src/session.rs crates/edonkey/src/stream.rs crates/edonkey/src/tags.rs crates/edonkey/src/wire.rs

crates/edonkey/src/lib.rs:
crates/edonkey/src/corrupt.rs:
crates/edonkey/src/decoder.rs:
crates/edonkey/src/error.rs:
crates/edonkey/src/ids.rs:
crates/edonkey/src/md4.rs:
crates/edonkey/src/messages.rs:
crates/edonkey/src/search.rs:
crates/edonkey/src/session.rs:
crates/edonkey/src/stream.rs:
crates/edonkey/src/tags.rs:
crates/edonkey/src/wire.rs:
