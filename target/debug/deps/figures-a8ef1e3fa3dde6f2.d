/root/repo/target/debug/deps/figures-a8ef1e3fa3dde6f2.d: tests/figures.rs

/root/repo/target/debug/deps/figures-a8ef1e3fa3dde6f2: tests/figures.rs

tests/figures.rs:
