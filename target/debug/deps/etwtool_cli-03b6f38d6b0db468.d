/root/repo/target/debug/deps/etwtool_cli-03b6f38d6b0db468.d: tests/etwtool_cli.rs

/root/repo/target/debug/deps/etwtool_cli-03b6f38d6b0db468: tests/etwtool_cli.rs

tests/etwtool_cli.rs:

# env-dep:CARGO_BIN_EXE_etwtool=/root/repo/target/debug/etwtool
