/root/repo/target/debug/deps/etw_workload-c8b6a4722d96660c.d: crates/workload/src/lib.rs crates/workload/src/catalog.rs crates/workload/src/clients.rs crates/workload/src/filesizes.rs crates/workload/src/generator.rs crates/workload/src/zipf.rs Cargo.toml

/root/repo/target/debug/deps/libetw_workload-c8b6a4722d96660c.rmeta: crates/workload/src/lib.rs crates/workload/src/catalog.rs crates/workload/src/clients.rs crates/workload/src/filesizes.rs crates/workload/src/generator.rs crates/workload/src/zipf.rs Cargo.toml

crates/workload/src/lib.rs:
crates/workload/src/catalog.rs:
crates/workload/src/clients.rs:
crates/workload/src/filesizes.rs:
crates/workload/src/generator.rs:
crates/workload/src/zipf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
