/root/repo/target/debug/deps/repro-b6d8b30f35d7c852.d: src/bin/repro.rs Cargo.toml

/root/repo/target/debug/deps/librepro-b6d8b30f35d7c852.rmeta: src/bin/repro.rs Cargo.toml

src/bin/repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
