/root/repo/target/debug/deps/proptest_anonymize-4343a304366489d6.d: crates/anonymize/tests/proptest_anonymize.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_anonymize-4343a304366489d6.rmeta: crates/anonymize/tests/proptest_anonymize.rs Cargo.toml

crates/anonymize/tests/proptest_anonymize.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
