/root/repo/target/debug/deps/etw_server-df39b3fcc46726d9.d: crates/server/src/lib.rs crates/server/src/engine.rs crates/server/src/index.rs Cargo.toml

/root/repo/target/debug/deps/libetw_server-df39b3fcc46726d9.rmeta: crates/server/src/lib.rs crates/server/src/engine.rs crates/server/src/index.rs Cargo.toml

crates/server/src/lib.rs:
crates/server/src/engine.rs:
crates/server/src/index.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
