/root/repo/target/debug/deps/telemetry-1dc8932cab2d040d.d: crates/bench/benches/telemetry.rs Cargo.toml

/root/repo/target/debug/deps/libtelemetry-1dc8932cab2d040d.rmeta: crates/bench/benches/telemetry.rs Cargo.toml

crates/bench/benches/telemetry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
