/root/repo/target/debug/deps/anonymize_clientid-61d0f03b1b9b5b6b.d: crates/bench/benches/anonymize_clientid.rs Cargo.toml

/root/repo/target/debug/deps/libanonymize_clientid-61d0f03b1b9b5b6b.rmeta: crates/bench/benches/anonymize_clientid.rs Cargo.toml

crates/bench/benches/anonymize_clientid.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
