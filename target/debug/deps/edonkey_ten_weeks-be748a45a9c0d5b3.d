/root/repo/target/debug/deps/edonkey_ten_weeks-be748a45a9c0d5b3.d: src/lib.rs

/root/repo/target/debug/deps/edonkey_ten_weeks-be748a45a9c0d5b3: src/lib.rs

src/lib.rs:
