/root/repo/target/debug/deps/proptest_anonymize-36a3b65b308da481.d: crates/anonymize/tests/proptest_anonymize.rs

/root/repo/target/debug/deps/proptest_anonymize-36a3b65b308da481: crates/anonymize/tests/proptest_anonymize.rs

crates/anonymize/tests/proptest_anonymize.rs:
