/root/repo/target/debug/deps/etw_bench-cfe62597b1680c06.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libetw_bench-cfe62597b1680c06.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
