/root/repo/target/debug/deps/etw_anonymize-2cdd59ef3cf6d165.d: crates/anonymize/src/lib.rs crates/anonymize/src/clientid.rs crates/anonymize/src/fields.rs crates/anonymize/src/fileid.rs crates/anonymize/src/md5.rs crates/anonymize/src/scheme.rs Cargo.toml

/root/repo/target/debug/deps/libetw_anonymize-2cdd59ef3cf6d165.rmeta: crates/anonymize/src/lib.rs crates/anonymize/src/clientid.rs crates/anonymize/src/fields.rs crates/anonymize/src/fileid.rs crates/anonymize/src/md5.rs crates/anonymize/src/scheme.rs Cargo.toml

crates/anonymize/src/lib.rs:
crates/anonymize/src/clientid.rs:
crates/anonymize/src/fields.rs:
crates/anonymize/src/fileid.rs:
crates/anonymize/src/md5.rs:
crates/anonymize/src/scheme.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
