/root/repo/target/debug/deps/edonkey_ten_weeks-0678102397a858dc.d: src/lib.rs

/root/repo/target/debug/deps/edonkey_ten_weeks-0678102397a858dc: src/lib.rs

src/lib.rs:
