/root/repo/target/debug/deps/etw_xmlout-d1f20b887cee6b22.d: crates/xmlout/src/lib.rs crates/xmlout/src/compress.rs crates/xmlout/src/escape.rs crates/xmlout/src/reader.rs crates/xmlout/src/schema.rs crates/xmlout/src/writer.rs Cargo.toml

/root/repo/target/debug/deps/libetw_xmlout-d1f20b887cee6b22.rmeta: crates/xmlout/src/lib.rs crates/xmlout/src/compress.rs crates/xmlout/src/escape.rs crates/xmlout/src/reader.rs crates/xmlout/src/schema.rs crates/xmlout/src/writer.rs Cargo.toml

crates/xmlout/src/lib.rs:
crates/xmlout/src/compress.rs:
crates/xmlout/src/escape.rs:
crates/xmlout/src/reader.rs:
crates/xmlout/src/schema.rs:
crates/xmlout/src/writer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
