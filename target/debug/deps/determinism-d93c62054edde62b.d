/root/repo/target/debug/deps/determinism-d93c62054edde62b.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-d93c62054edde62b: tests/determinism.rs

tests/determinism.rs:
