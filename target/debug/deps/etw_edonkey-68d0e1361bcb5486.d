/root/repo/target/debug/deps/etw_edonkey-68d0e1361bcb5486.d: crates/edonkey/src/lib.rs crates/edonkey/src/corrupt.rs crates/edonkey/src/decoder.rs crates/edonkey/src/error.rs crates/edonkey/src/ids.rs crates/edonkey/src/md4.rs crates/edonkey/src/messages.rs crates/edonkey/src/search.rs crates/edonkey/src/session.rs crates/edonkey/src/stream.rs crates/edonkey/src/tags.rs crates/edonkey/src/wire.rs Cargo.toml

/root/repo/target/debug/deps/libetw_edonkey-68d0e1361bcb5486.rmeta: crates/edonkey/src/lib.rs crates/edonkey/src/corrupt.rs crates/edonkey/src/decoder.rs crates/edonkey/src/error.rs crates/edonkey/src/ids.rs crates/edonkey/src/md4.rs crates/edonkey/src/messages.rs crates/edonkey/src/search.rs crates/edonkey/src/session.rs crates/edonkey/src/stream.rs crates/edonkey/src/tags.rs crates/edonkey/src/wire.rs Cargo.toml

crates/edonkey/src/lib.rs:
crates/edonkey/src/corrupt.rs:
crates/edonkey/src/decoder.rs:
crates/edonkey/src/error.rs:
crates/edonkey/src/ids.rs:
crates/edonkey/src/md4.rs:
crates/edonkey/src/messages.rs:
crates/edonkey/src/search.rs:
crates/edonkey/src/session.rs:
crates/edonkey/src/stream.rs:
crates/edonkey/src/tags.rs:
crates/edonkey/src/wire.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
