/root/repo/target/debug/deps/etw_netsim-529bc7cae7e168a2.d: crates/netsim/src/lib.rs crates/netsim/src/capture.rs crates/netsim/src/clock.rs crates/netsim/src/flows.rs crates/netsim/src/frag.rs crates/netsim/src/packet.rs crates/netsim/src/pcap.rs crates/netsim/src/tcp.rs crates/netsim/src/traffic.rs

/root/repo/target/debug/deps/libetw_netsim-529bc7cae7e168a2.rlib: crates/netsim/src/lib.rs crates/netsim/src/capture.rs crates/netsim/src/clock.rs crates/netsim/src/flows.rs crates/netsim/src/frag.rs crates/netsim/src/packet.rs crates/netsim/src/pcap.rs crates/netsim/src/tcp.rs crates/netsim/src/traffic.rs

/root/repo/target/debug/deps/libetw_netsim-529bc7cae7e168a2.rmeta: crates/netsim/src/lib.rs crates/netsim/src/capture.rs crates/netsim/src/clock.rs crates/netsim/src/flows.rs crates/netsim/src/frag.rs crates/netsim/src/packet.rs crates/netsim/src/pcap.rs crates/netsim/src/tcp.rs crates/netsim/src/traffic.rs

crates/netsim/src/lib.rs:
crates/netsim/src/capture.rs:
crates/netsim/src/clock.rs:
crates/netsim/src/flows.rs:
crates/netsim/src/frag.rs:
crates/netsim/src/packet.rs:
crates/netsim/src/pcap.rs:
crates/netsim/src/tcp.rs:
crates/netsim/src/traffic.rs:
