/root/repo/target/debug/deps/figures-8ba7d359ee6c41e0.d: tests/figures.rs

/root/repo/target/debug/deps/figures-8ba7d359ee6c41e0: tests/figures.rs

tests/figures.rs:
