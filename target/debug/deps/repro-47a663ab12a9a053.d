/root/repo/target/debug/deps/repro-47a663ab12a9a053.d: src/bin/repro.rs Cargo.toml

/root/repo/target/debug/deps/librepro-47a663ab12a9a053.rmeta: src/bin/repro.rs Cargo.toml

src/bin/repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
