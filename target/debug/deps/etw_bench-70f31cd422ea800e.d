/root/repo/target/debug/deps/etw_bench-70f31cd422ea800e.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libetw_bench-70f31cd422ea800e.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libetw_bench-70f31cd422ea800e.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
