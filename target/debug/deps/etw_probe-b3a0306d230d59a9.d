/root/repo/target/debug/deps/etw_probe-b3a0306d230d59a9.d: crates/probe/src/lib.rs crates/probe/src/estimate.rs crates/probe/src/prober.rs

/root/repo/target/debug/deps/etw_probe-b3a0306d230d59a9: crates/probe/src/lib.rs crates/probe/src/estimate.rs crates/probe/src/prober.rs

crates/probe/src/lib.rs:
crates/probe/src/estimate.rs:
crates/probe/src/prober.rs:
