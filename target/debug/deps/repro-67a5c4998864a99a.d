/root/repo/target/debug/deps/repro-67a5c4998864a99a.d: src/bin/repro.rs

/root/repo/target/debug/deps/repro-67a5c4998864a99a: src/bin/repro.rs

src/bin/repro.rs:
