/root/repo/target/debug/deps/capture-2f9db59bc1b194e0.d: crates/bench/benches/capture.rs Cargo.toml

/root/repo/target/debug/deps/libcapture-2f9db59bc1b194e0.rmeta: crates/bench/benches/capture.rs Cargo.toml

crates/bench/benches/capture.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
