/root/repo/target/debug/deps/etwtool_cli-bc6e36cc998d6db2.d: tests/etwtool_cli.rs

/root/repo/target/debug/deps/etwtool_cli-bc6e36cc998d6db2: tests/etwtool_cli.rs

tests/etwtool_cli.rs:

# env-dep:CARGO_BIN_EXE_etwtool=/root/repo/target/debug/etwtool
