/root/repo/target/debug/deps/proptest_workload-149925bc4080b2eb.d: crates/workload/tests/proptest_workload.rs

/root/repo/target/debug/deps/proptest_workload-149925bc4080b2eb: crates/workload/tests/proptest_workload.rs

crates/workload/tests/proptest_workload.rs:
