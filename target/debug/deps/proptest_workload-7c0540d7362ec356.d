/root/repo/target/debug/deps/proptest_workload-7c0540d7362ec356.d: crates/workload/tests/proptest_workload.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_workload-7c0540d7362ec356.rmeta: crates/workload/tests/proptest_workload.rs Cargo.toml

crates/workload/tests/proptest_workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
