/root/repo/target/debug/deps/tcp_extension-968d7e6991c9c6a7.d: tests/tcp_extension.rs

/root/repo/target/debug/deps/tcp_extension-968d7e6991c9c6a7: tests/tcp_extension.rs

tests/tcp_extension.rs:
