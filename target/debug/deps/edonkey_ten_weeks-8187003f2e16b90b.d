/root/repo/target/debug/deps/edonkey_ten_weeks-8187003f2e16b90b.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libedonkey_ten_weeks-8187003f2e16b90b.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
