/root/repo/target/debug/deps/etw_bench-94f6ea05ba6c75b6.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/etw_bench-94f6ea05ba6c75b6: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
