/root/repo/target/debug/deps/etw_analysis-005a5c39810dcab8.d: crates/analysis/src/lib.rs crates/analysis/src/behavior.rs crates/analysis/src/cardinality.rs crates/analysis/src/distributions.rs crates/analysis/src/histogram.rs crates/analysis/src/peaks.rs crates/analysis/src/powerlaw.rs crates/analysis/src/report.rs crates/analysis/src/timeseries.rs

/root/repo/target/debug/deps/etw_analysis-005a5c39810dcab8: crates/analysis/src/lib.rs crates/analysis/src/behavior.rs crates/analysis/src/cardinality.rs crates/analysis/src/distributions.rs crates/analysis/src/histogram.rs crates/analysis/src/peaks.rs crates/analysis/src/powerlaw.rs crates/analysis/src/report.rs crates/analysis/src/timeseries.rs

crates/analysis/src/lib.rs:
crates/analysis/src/behavior.rs:
crates/analysis/src/cardinality.rs:
crates/analysis/src/distributions.rs:
crates/analysis/src/histogram.rs:
crates/analysis/src/peaks.rs:
crates/analysis/src/powerlaw.rs:
crates/analysis/src/report.rs:
crates/analysis/src/timeseries.rs:
