/root/repo/target/debug/deps/etw_workload-fe321dbc148f0a7b.d: crates/workload/src/lib.rs crates/workload/src/catalog.rs crates/workload/src/clients.rs crates/workload/src/filesizes.rs crates/workload/src/generator.rs crates/workload/src/zipf.rs

/root/repo/target/debug/deps/etw_workload-fe321dbc148f0a7b: crates/workload/src/lib.rs crates/workload/src/catalog.rs crates/workload/src/clients.rs crates/workload/src/filesizes.rs crates/workload/src/generator.rs crates/workload/src/zipf.rs

crates/workload/src/lib.rs:
crates/workload/src/catalog.rs:
crates/workload/src/clients.rs:
crates/workload/src/filesizes.rs:
crates/workload/src/generator.rs:
crates/workload/src/zipf.rs:
