/root/repo/target/debug/deps/etw_core-91016fd14411d3d4.d: crates/core/src/lib.rs crates/core/src/campaign.rs crates/core/src/config.rs crates/core/src/pipeline.rs crates/core/src/summary.rs crates/core/src/wirepath.rs

/root/repo/target/debug/deps/libetw_core-91016fd14411d3d4.rlib: crates/core/src/lib.rs crates/core/src/campaign.rs crates/core/src/config.rs crates/core/src/pipeline.rs crates/core/src/summary.rs crates/core/src/wirepath.rs

/root/repo/target/debug/deps/libetw_core-91016fd14411d3d4.rmeta: crates/core/src/lib.rs crates/core/src/campaign.rs crates/core/src/config.rs crates/core/src/pipeline.rs crates/core/src/summary.rs crates/core/src/wirepath.rs

crates/core/src/lib.rs:
crates/core/src/campaign.rs:
crates/core/src/config.rs:
crates/core/src/pipeline.rs:
crates/core/src/summary.rs:
crates/core/src/wirepath.rs:
