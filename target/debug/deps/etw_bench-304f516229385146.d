/root/repo/target/debug/deps/etw_bench-304f516229385146.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libetw_bench-304f516229385146.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
