/root/repo/target/debug/deps/etw_core-6003f35af010998f.d: crates/core/src/lib.rs crates/core/src/campaign.rs crates/core/src/config.rs crates/core/src/pipeline.rs crates/core/src/summary.rs crates/core/src/wirepath.rs

/root/repo/target/debug/deps/etw_core-6003f35af010998f: crates/core/src/lib.rs crates/core/src/campaign.rs crates/core/src/config.rs crates/core/src/pipeline.rs crates/core/src/summary.rs crates/core/src/wirepath.rs

crates/core/src/lib.rs:
crates/core/src/campaign.rs:
crates/core/src/config.rs:
crates/core/src/pipeline.rs:
crates/core/src/summary.rs:
crates/core/src/wirepath.rs:
