/root/repo/target/debug/deps/etw_workload-a6d7085008db021a.d: crates/workload/src/lib.rs crates/workload/src/catalog.rs crates/workload/src/clients.rs crates/workload/src/filesizes.rs crates/workload/src/generator.rs crates/workload/src/zipf.rs

/root/repo/target/debug/deps/libetw_workload-a6d7085008db021a.rlib: crates/workload/src/lib.rs crates/workload/src/catalog.rs crates/workload/src/clients.rs crates/workload/src/filesizes.rs crates/workload/src/generator.rs crates/workload/src/zipf.rs

/root/repo/target/debug/deps/libetw_workload-a6d7085008db021a.rmeta: crates/workload/src/lib.rs crates/workload/src/catalog.rs crates/workload/src/clients.rs crates/workload/src/filesizes.rs crates/workload/src/generator.rs crates/workload/src/zipf.rs

crates/workload/src/lib.rs:
crates/workload/src/catalog.rs:
crates/workload/src/clients.rs:
crates/workload/src/filesizes.rs:
crates/workload/src/generator.rs:
crates/workload/src/zipf.rs:
