/root/repo/target/debug/deps/etw_telemetry-d211d8cc5eb0714f.d: crates/telemetry/src/lib.rs crates/telemetry/src/channel.rs crates/telemetry/src/health.rs Cargo.toml

/root/repo/target/debug/deps/libetw_telemetry-d211d8cc5eb0714f.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/channel.rs crates/telemetry/src/health.rs Cargo.toml

crates/telemetry/src/lib.rs:
crates/telemetry/src/channel.rs:
crates/telemetry/src/health.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
