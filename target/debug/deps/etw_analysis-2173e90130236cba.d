/root/repo/target/debug/deps/etw_analysis-2173e90130236cba.d: crates/analysis/src/lib.rs crates/analysis/src/behavior.rs crates/analysis/src/cardinality.rs crates/analysis/src/distributions.rs crates/analysis/src/histogram.rs crates/analysis/src/peaks.rs crates/analysis/src/powerlaw.rs crates/analysis/src/report.rs crates/analysis/src/timeseries.rs

/root/repo/target/debug/deps/libetw_analysis-2173e90130236cba.rlib: crates/analysis/src/lib.rs crates/analysis/src/behavior.rs crates/analysis/src/cardinality.rs crates/analysis/src/distributions.rs crates/analysis/src/histogram.rs crates/analysis/src/peaks.rs crates/analysis/src/powerlaw.rs crates/analysis/src/report.rs crates/analysis/src/timeseries.rs

/root/repo/target/debug/deps/libetw_analysis-2173e90130236cba.rmeta: crates/analysis/src/lib.rs crates/analysis/src/behavior.rs crates/analysis/src/cardinality.rs crates/analysis/src/distributions.rs crates/analysis/src/histogram.rs crates/analysis/src/peaks.rs crates/analysis/src/powerlaw.rs crates/analysis/src/report.rs crates/analysis/src/timeseries.rs

crates/analysis/src/lib.rs:
crates/analysis/src/behavior.rs:
crates/analysis/src/cardinality.rs:
crates/analysis/src/distributions.rs:
crates/analysis/src/histogram.rs:
crates/analysis/src/peaks.rs:
crates/analysis/src/powerlaw.rs:
crates/analysis/src/report.rs:
crates/analysis/src/timeseries.rs:
