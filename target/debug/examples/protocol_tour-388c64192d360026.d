/root/repo/target/debug/examples/protocol_tour-388c64192d360026.d: examples/protocol_tour.rs

/root/repo/target/debug/examples/protocol_tour-388c64192d360026: examples/protocol_tour.rs

examples/protocol_tour.rs:
