/root/repo/target/debug/examples/active_probe-1a693812bbf70a6a.d: examples/active_probe.rs

/root/repo/target/debug/examples/active_probe-1a693812bbf70a6a: examples/active_probe.rs

examples/active_probe.rs:
