/root/repo/target/debug/examples/quickstart-da3c0ed04bc79e83.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-da3c0ed04bc79e83.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
