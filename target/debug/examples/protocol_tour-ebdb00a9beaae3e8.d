/root/repo/target/debug/examples/protocol_tour-ebdb00a9beaae3e8.d: examples/protocol_tour.rs

/root/repo/target/debug/examples/protocol_tour-ebdb00a9beaae3e8: examples/protocol_tour.rs

examples/protocol_tour.rs:
