/root/repo/target/debug/examples/tcp_capture-aef52ba77b583cd5.d: examples/tcp_capture.rs

/root/repo/target/debug/examples/tcp_capture-aef52ba77b583cd5: examples/tcp_capture.rs

examples/tcp_capture.rs:
