/root/repo/target/debug/examples/tcp_capture-740ce783eedf5d13.d: examples/tcp_capture.rs Cargo.toml

/root/repo/target/debug/examples/libtcp_capture-740ce783eedf5d13.rmeta: examples/tcp_capture.rs Cargo.toml

examples/tcp_capture.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
