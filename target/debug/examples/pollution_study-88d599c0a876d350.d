/root/repo/target/debug/examples/pollution_study-88d599c0a876d350.d: examples/pollution_study.rs

/root/repo/target/debug/examples/pollution_study-88d599c0a876d350: examples/pollution_study.rs

examples/pollution_study.rs:
