/root/repo/target/debug/examples/capture_campaign-812eb8824a54d75c.d: examples/capture_campaign.rs

/root/repo/target/debug/examples/capture_campaign-812eb8824a54d75c: examples/capture_campaign.rs

examples/capture_campaign.rs:
