/root/repo/target/debug/examples/behavior_study-2f5b0710d377e5c5.d: examples/behavior_study.rs

/root/repo/target/debug/examples/behavior_study-2f5b0710d377e5c5: examples/behavior_study.rs

examples/behavior_study.rs:
