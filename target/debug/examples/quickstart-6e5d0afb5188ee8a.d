/root/repo/target/debug/examples/quickstart-6e5d0afb5188ee8a.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-6e5d0afb5188ee8a: examples/quickstart.rs

examples/quickstart.rs:
