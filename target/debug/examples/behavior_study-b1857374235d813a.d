/root/repo/target/debug/examples/behavior_study-b1857374235d813a.d: examples/behavior_study.rs Cargo.toml

/root/repo/target/debug/examples/libbehavior_study-b1857374235d813a.rmeta: examples/behavior_study.rs Cargo.toml

examples/behavior_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
