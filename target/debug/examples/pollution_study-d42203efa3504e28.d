/root/repo/target/debug/examples/pollution_study-d42203efa3504e28.d: examples/pollution_study.rs

/root/repo/target/debug/examples/pollution_study-d42203efa3504e28: examples/pollution_study.rs

examples/pollution_study.rs:
