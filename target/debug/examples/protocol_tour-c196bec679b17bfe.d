/root/repo/target/debug/examples/protocol_tour-c196bec679b17bfe.d: examples/protocol_tour.rs Cargo.toml

/root/repo/target/debug/examples/libprotocol_tour-c196bec679b17bfe.rmeta: examples/protocol_tour.rs Cargo.toml

examples/protocol_tour.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
