/root/repo/target/debug/examples/active_probe-66c313e364eed1ae.d: examples/active_probe.rs

/root/repo/target/debug/examples/active_probe-66c313e364eed1ae: examples/active_probe.rs

examples/active_probe.rs:
